(** Chaos schedules: explicit fault timelines.

    A schedule is a seed plus a list of timed events over a fixed horizon.
    Six event kinds are scripted into the {!Dream_fault.Fault_model}
    ({!stage}); two — [Torn_tail] and [Checkpoint] — are harness-level
    oracle probes that never touch the model.  Epochs are fault-model
    epochs: event [at = n] fires during the n-th [begin_epoch] call, which
    the harness issues at the start of controller epoch [n - 1]. *)

type event =
  | Switch_crash of { at : int; switch : int; downtime : int }
  | Controller_crash of { at : int }
  | Partition of { at : int; group : int; span : int }
  | Heal_hint of { at : int; group : int }
      (** fires a heal event on a group (partitioned or not) — the
          breaker-probe race primitive *)
  | Storm of { at : int; tasks : int }
  | Noise of { at : int; span : int; timeout_rate : float; loss_rate : float; perturb : float }
      (** a window of counter loss / fetch timeouts / value perturbation *)
  | Torn_tail of { at : int; drop : int }
      (** oracle probe: cut [drop] bytes off the serialized journal and
          assert the parser recovers exactly a prefix *)
  | Checkpoint of { at : int }
      (** oracle probe: snapshot, restore, re-snapshot, assert
          bit-identity; then seal a real checkpoint *)

type t = { seed : int; horizon : int; events : event list }

val at_of : event -> int

val kind_of : event -> string

val pp_event : Format.formatter -> event -> unit

val generate : seed:int -> num_switches:int -> groups:int -> horizon:int -> events:int -> t
(** Seeded generation: equal inputs yield the identical schedule.  Events
    are sorted by epoch (stable on ties).  @raise Invalid_argument on
    non-positive dimensions. *)

val validate : num_switches:int -> groups:int -> t -> (unit, string) result
(** Bounds-check a schedule (e.g. one parsed from a reproducer file)
    against the harness topology before staging it. *)

val stage : t -> Dream_fault.Fault_model.t -> unit
(** Register every fault-model event on a fresh model.  Harness-level
    probes are skipped.  @raise Invalid_argument if the schedule targets a
    switch or group the model does not have — {!validate} first for
    untrusted input. *)

val shrink_event : event -> event list
(** Strictly-smaller variants of one event (shorter windows, lower rates),
    largest reduction first; empty for atomic events. *)

val to_json : t -> Dream_obs.Json.t

val of_json : Dream_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; structural errors only — use {!validate} for
    range checks. *)
