(** Seed banks: generate-and-check many schedules, shrink what fails.

    One {!run} is the unit of chaos testing: a master seed expands into
    [schedules] independent schedule seeds, each schedule runs through the
    {!Harness} with the full {!Oracle} suite, and any failing schedule is
    minimized by {!Shrink} into a replayable reproducer.  The whole bank
    is a pure function of its arguments — same seed, same bank, byte for
    byte — which is what lets CI pin a fixed seed bank and lets a
    reproducer file replay anywhere. *)

type coverage = {
  switch_crashes : int;
  controller_crashes : int;
  partitions : int;
  heal_hints : int;
  storms : int;
  noise_windows : int;
  torn_tails : int;
  checkpoint_probes : int;
}

type failure = {
  f_schedule : Schedule.t;  (** the original failing schedule *)
  f_canary : bool;
  f_first : Oracle.violation;  (** first violation of the original run *)
  f_minimized : Schedule.t;  (** the shrunk reproducer *)
  f_stats : Shrink.stats;
}

type outcome = {
  schedules : int;
  seed : int;
  horizon : int;
  events_per_schedule : int;
  canary : bool;
  coverage : coverage;  (** events scheduled across the whole bank *)
  recoveries : int;  (** controller fail-overs survived, bank-wide *)
  checkpoints : int;
  torn_tail_checks : int;
  storm_submissions : int;
  violations : int;  (** total violations across all schedules *)
  differential_ok : bool;
      (** the zero-event schedule was byte-identical to the seed run *)
  failures : failure list;  (** minimized, at most [max_failures] *)
}

val run :
  ?canary:bool ->
  ?horizon:int ->
  ?events:int ->
  ?max_failures:int ->
  schedules:int ->
  seed:int ->
  unit ->
  outcome
(** Run a bank.  [canary] plants the demonstration bug in every schedule
    (see {!Harness.run}).  At most [max_failures] (default 3) failing
    schedules are shrunk; later failures still count toward [violations].
    @raise Invalid_argument if [schedules < 1]. *)

val reproducer_to_string : failure -> string
(** One-line JSON document: version tag, canary flag, first violation and
    the minimized schedule with its seed. *)

val reproducer_of_string : string -> (bool * Schedule.t, string) result
(** Parse and bounds-check a reproducer file; returns (canary, schedule)
    ready for {!Harness.run}. *)
