(** Invariant oracles the chaos harness runs against every schedule.

    Each oracle returns the violations it found (empty list = holds); the
    harness accumulates them and a non-empty total fails the schedule,
    which the shrinker then minimizes.  Oracles are read-only: running
    them must never change the behaviour of the run they observe (the one
    exception is {!staleness}'s bookkeeping table, which belongs to the
    oracle itself, not the system under test). *)

type violation = { epoch : int; code : string; detail : string }

val to_string : violation -> string

val invariants : epoch:int -> Dream_core.Controller.t -> violation list
(** The {!Dream_recovery.Invariant} suite (conservation, capacity,
    disjoint partition of filters, occupancy vs allocation, rule
    ownership, torn-epoch capacity) via
    {!Dream_core.Controller.check_invariants_now} — identical semantics to
    the controller's own in-tick check. *)

val breaker_transitions :
  epoch:int ->
  prev:Dream_switch.Breaker.state array ->
  now:Dream_switch.Breaker.state array ->
  violation list
(** Epoch-over-epoch state legality per {!Dream_switch.Breaker.legal_transition}.
    The harness resets [prev] across a controller fail-over: restoring a
    checkpoint legitimately rewinds breakers to older states. *)

val seed_staleness :
  controller:Dream_core.Controller.t -> prev:(int, int) Hashtbl.t -> unit
(** Rebuild [prev] from the controller's current staleness levels.  The
    harness calls this after a fail-over: the restored controller's levels
    come from checkpoint + journal replay, so comparing them against the
    pre-crash baseline would manufacture growth that never happened. *)

val staleness :
  epoch:int ->
  cap:int ->
  noise_active:bool ->
  controller:Dream_core.Controller.t ->
  prev:(int, int) Hashtbl.t ->
  violation list
(** Bounded staleness: past [cap] (the degraded config's
    [shed_max_staleness]), a task's stale streak may only grow while one
    of its switches is down, partitioned or behind a non-closed breaker,
    or while a scripted noise window ([noise_active]) is open.  Growth
    beyond the cap in calm conditions means the deadline scheduler shed a
    task it had promised not to.  [prev] holds last epoch's levels and is
    updated in place. *)

val checkpoint_roundtrip : epoch:int -> Dream_core.Controller.t -> violation list
(** Snapshot, restore a standalone controller from it, snapshot again:
    the two documents must be byte-identical. *)

val torn_tail :
  epoch:int -> drop:int -> Dream_recovery.Journal.entry list -> violation list
(** Serialize the journal, cut [drop] bytes off the tail, re-parse: the
    parser must succeed and recover exactly a prefix of what was written
    (a torn tail is forgivable, a corrupted value is not). *)
