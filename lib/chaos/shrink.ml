(* Schedule minimization, delta-debugging style.  Two phases:

   1. ddmin over the event list — drop ever-smaller chunks while the
      schedule still fails, converging to a 1-minimal event subset;
   2. event-level shrinking — replace single events with strictly smaller
      variants (shorter windows, lower rates) while failure persists.

   The failure predicate re-runs the harness, so every accepted reduction
   is a real, replayable failing schedule.  A run budget bounds the total
   work; once exhausted, candidates are treated as passing and the current
   (still failing) schedule is kept. *)

type stats = { runs : int; initial_events : int; final_events : int }

let split_chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k l acc = if k = 0 then (List.rev acc, l) else begin
      match l with [] -> (List.rev acc, []) | x :: xs -> take (k - 1) xs (x :: acc)
    end
  in
  let rec go i l acc =
    if i >= n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size l [] in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 l []

let minimize ?(max_runs = 2000) ~fails (sched : Schedule.t) =
  let runs = ref 0 in
  let check s =
    if !runs >= max_runs then false
    else begin
      incr runs;
      fails s
    end
  in
  let with_events evs = { sched with Schedule.events = evs } in
  (* Phase 1: ddmin.  Remove one of [n] chunks; on success restart with
     coarser granularity, otherwise refine until chunks are single events. *)
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else begin
      let n = min n len in
      let chunks = split_chunks n events in
      let rec try_remove i =
        if i >= List.length chunks then None
        else begin
          let remaining = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
          if List.length remaining < len && check (with_events remaining) then Some remaining
          else try_remove (i + 1)
        end
      in
      match try_remove 0 with
      | Some remaining -> ddmin remaining (max 2 (n - 1))
      | None -> if n < len then ddmin events (min len (2 * n)) else events
    end
  in
  let events = ddmin sched.Schedule.events 2 in
  (* Phase 2: per-event shrinking to a fixpoint.  Every accepted variant
     strictly reduces an integer measure (or zeroes a rate), so the loop
     terminates even without the run budget. *)
  let arr = ref (Array.of_list events) in
  let improved = ref true in
  while !improved do
    improved := false;
    Array.iteri
      (fun i e ->
        let rec try_variants = function
          | [] -> ()
          | v :: rest ->
            let candidate = Array.copy !arr in
            candidate.(i) <- v;
            if check (with_events (Array.to_list candidate)) then begin
              arr := candidate;
              improved := true
            end
            else try_variants rest
        in
        try_variants (Schedule.shrink_event e))
      !arr
  done;
  let final = with_events (Array.to_list !arr) in
  ( final,
    {
      runs = !runs;
      initial_events = List.length sched.Schedule.events;
      final_events = List.length final.Schedule.events;
    } )
