module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Config = Dream_core.Config
module Controller = Dream_core.Controller
module Metrics = Dream_core.Metrics
module Fault_model = Dream_fault.Fault_model
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Journal = Dream_recovery.Journal
module Task_spec = Dream_tasks.Task_spec
module Source = Dream_traffic.Source
module Aggregate = Dream_traffic.Aggregate

(* The fixed chaos topology: small enough that a 500-schedule bank runs in
   seconds, rich enough that partitions (4 groups of 2 switches), storms
   and crashes all have something to break. *)
let num_switches = 8

let groups = 4

let default_horizon = 48

let default_events = 12

let strategy = Allocator.Dream Dream_allocator.default_config

let scenario ~seed ~horizon =
  {
    Scenario.default with
    Scenario.seed;
    num_tasks = 10;
    arrival_window = 16;
    mean_duration = 14;
    min_duration = 6;
    total_epochs = horizon;
  }

(* Same derivation as the degraded-mode sweep: a second, shorter-lived
   arrival schedule feeds admission storms deterministically. *)
let storm_pool (s : Scenario.t) =
  Arrival.schedule
    {
      s with
      Scenario.seed = s.Scenario.seed + 7919;
      num_tasks = max 8 (s.Scenario.num_tasks / 2);
      mean_duration = max 5 (s.Scenario.mean_duration / 4);
    }

let base_config ~seed =
  {
    Config.default with
    Config.faults = Some { Fault_model.zero with Fault_model.seed = seed };
    degraded = Some Config.default_degraded;
    (* The oracle layer runs the invariant suite itself and keeps the
       violations' details; the in-tick tally would only duplicate it. *)
    check_invariants = false;
  }

let submit controller (s : Arrival.submission) =
  ignore
    (Controller.submit controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
       ~source:(Source.of_generator s.Arrival.generator) ~duration:s.Arrival.duration)

let outcome_tag = function
  | Metrics.Completed -> "completed"
  | Metrics.Dropped -> "dropped"
  | Metrics.Rejected -> "rejected"

(* Canonical run fingerprint for the differential oracle: every record,
   the summary, the robustness counters and the rule churn, rendered with
   full float precision so byte equality means behavioural equality. *)
let digest_of controller =
  let b = Buffer.create 1024 in
  let s = Controller.summary controller in
  Printf.bprintf b "summary %d %d %d %d %d %.17g %.17g %.17g %.17g\n" s.Metrics.submitted
    s.Metrics.admitted s.Metrics.rejected s.Metrics.dropped s.Metrics.completed
    s.Metrics.mean_satisfaction s.Metrics.p5_satisfaction s.Metrics.rejection_pct
    s.Metrics.drop_pct;
  let r = s.Metrics.robustness in
  Printf.bprintf b "robustness %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n"
    r.Metrics.crashes r.Metrics.recoveries r.Metrics.switch_down_epochs r.Metrics.fetch_timeouts
    r.Metrics.fetch_retries r.Metrics.fetch_failures r.Metrics.stale_epochs
    r.Metrics.counters_lost r.Metrics.install_failures r.Metrics.recovery_reinstalls
    r.Metrics.controller_crashes r.Metrics.reconcile_removed r.Metrics.reconcile_installed
    r.Metrics.invariant_violations r.Metrics.partitions r.Metrics.partition_epochs
    r.Metrics.breaker_opens r.Metrics.breaker_probes r.Metrics.breaker_skips r.Metrics.sheds;
  List.iter
    (fun (rec_ : Metrics.record) ->
      Printf.bprintf b "record %d %s %s %d %d %d %.17g %.17g\n" rec_.Metrics.task_id
        (Task_spec.kind_to_string rec_.Metrics.kind)
        (outcome_tag rec_.Metrics.outcome)
        rec_.Metrics.arrived_at rec_.Metrics.ended_at rec_.Metrics.active_epochs
        rec_.Metrics.satisfaction rec_.Metrics.mean_accuracy)
    (Controller.records controller);
  Printf.bprintf b "rules %d %d\n"
    (Controller.total_rules_installed controller)
    (Controller.total_rules_fetched controller);
  Buffer.contents b

(* The seed run the differential oracle compares against: the same
   scenario and config driven with none of the chaos machinery — no
   journal, no checkpoints, no oracles, no storm feed.  An empty schedule
   through {!run} must produce a byte-identical digest. *)
let reference_digest ~seed ~horizon =
  let scenario = scenario ~seed ~horizon in
  let controller =
    Controller.create ~config:(base_config ~seed) ~strategy
      ~num_switches:scenario.Scenario.num_switches ~capacity:scenario.Scenario.capacity
  in
  let pending = ref (Arrival.schedule scenario) in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter (submit controller) due;
    Controller.tick controller
  done;
  Controller.finalize controller;
  digest_of controller

type result = {
  schedule : Schedule.t;
  canary : bool;
  violations : Oracle.violation list;
  recoveries : int;
  checkpoints : int;
  torn_tail_checks : int;
  storm_submissions : int;
  canary_fired : bool;
  summary : Metrics.summary;
  digest : string;
}

let failed r = r.violations <> []

(* The planted bug the harness must be able to find: with [canary] set, the
   first time an admission storm lands while a partition window is open,
   one allocation is silently corrupted past switch capacity.  The
   invariant oracle must flag it, and the shrinker must reduce whatever
   schedule exposed it to its essence — one partition plus one storm. *)
let maybe_fire_canary ~canary ~fired ~capacity controller =
  if not canary || !fired then ()
  else begin
    match Controller.faults controller with
    | Some fm
      when Controller.storm_tasks_pending controller > 0 && Fault_model.partitioned_count fm > 0
      -> begin
        match Controller.active_task_ids controller with
        | task_id :: _ ->
          Allocator.force_allocation (Controller.allocator controller) ~task_id ~switch:0
            ~alloc:(2 * capacity);
          fired := true
        | [] -> ()
      end
    | _ -> ()
  end

let noise_active (sched : Schedule.t) ~model_epoch =
  List.exists
    (fun e ->
      match e with
      | Schedule.Noise { at; span; timeout_rate; loss_rate; _ } ->
        at <= model_epoch && model_epoch < at + span && (timeout_rate > 0.0 || loss_rate > 0.0)
      | _ -> false)
    sched.Schedule.events

let run ?(canary = false) ?(backend = Aggregate.Flat) (sched : Schedule.t) =
  let scenario = scenario ~seed:sched.Schedule.seed ~horizon:sched.Schedule.horizon in
  let config = { (base_config ~seed:sched.Schedule.seed) with Config.store_backend = backend } in
  let controller =
    ref
      (Controller.create ~config ~strategy
         ~num_switches:scenario.Scenario.num_switches ~capacity:scenario.Scenario.capacity)
  in
  (match Controller.faults !controller with
  | Some fm -> Schedule.stage sched fm
  | None -> ());
  let sink = Journal.memory () in
  Controller.set_journal !controller (Some sink);
  let snapshot = ref (Controller.checkpoint !controller) in
  let pending = ref (Arrival.schedule scenario) in
  let reserve = ref (storm_pool scenario) in
  let violations = ref [] in
  let recoveries = ref 0 in
  let checkpoints = ref 0 in
  let torn_checks = ref 0 in
  let storm_submissions = ref 0 in
  let fired = ref false in
  let prev_breakers = ref (Controller.breaker_states !controller) in
  let prev_stale = Hashtbl.create 16 in
  let cap = Config.default_degraded.Config.shed_max_staleness in
  let add vs = violations := vs @ !violations in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    let model_epoch = epoch + 1 in
    (* Feed the storm the previous tick requested, then regular arrivals. *)
    let want = Controller.storm_tasks_pending !controller in
    for _ = 1 to want do
      match !reserve with
      | [] -> ()
      | s :: rest ->
        reserve := rest;
        incr storm_submissions;
        submit !controller s
    done;
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter (submit !controller) due;
    Controller.tick !controller;
    (* Controller fail-over, exactly as the crash-recovery experiment. *)
    if Controller.controller_crash_pending !controller then begin
      incr recoveries;
      let env = Controller.environment !controller in
      let at_epoch = Controller.epoch !controller in
      (match
         Controller.recover ~env ~snapshot:!snapshot ~journal:(Journal.entries sink) ~at_epoch
       with
      | Error msg -> add [ { Oracle.epoch; code = "recover-failed"; detail = msg } ]
      | Ok successor ->
        Controller.set_journal successor (Some sink);
        controller := successor;
        snapshot := Controller.checkpoint successor);
      (* Restoring a checkpoint legitimately rewinds breakers to older
         states and staleness to replayed levels; neither oracle may read
         the rewind as organic movement. *)
      prev_breakers := Controller.breaker_states !controller;
      Oracle.seed_staleness ~controller:!controller ~prev:prev_stale
    end;
    maybe_fire_canary ~canary ~fired ~capacity:scenario.Scenario.capacity !controller;
    (* Harness-level probes scheduled for this model epoch. *)
    List.iter
      (fun e ->
        match e with
        | Schedule.Torn_tail { at; drop } when at = model_epoch ->
          incr torn_checks;
          add (Oracle.torn_tail ~epoch ~drop (Journal.entries sink))
        | Schedule.Checkpoint { at } when at = model_epoch ->
          incr checkpoints;
          add (Oracle.checkpoint_roundtrip ~epoch !controller);
          snapshot := Controller.checkpoint !controller
        | _ -> ())
      sched.Schedule.events;
    (* Standing oracles, every epoch. *)
    add (Oracle.invariants ~epoch !controller);
    let now = Controller.breaker_states !controller in
    add (Oracle.breaker_transitions ~epoch ~prev:!prev_breakers ~now);
    prev_breakers := now;
    add
      (Oracle.staleness ~epoch ~cap
         ~noise_active:(noise_active sched ~model_epoch)
         ~controller:!controller ~prev:prev_stale)
  done;
  (* Every scripted event must have been consumed (noise windows may
     legitimately outlive the horizon). *)
  (match Controller.faults !controller with
  | Some fm ->
    let expected =
      List.length
        (List.filter
           (fun e ->
             match e with
             | Schedule.Noise { at; span; _ } -> at + span > sched.Schedule.horizon
             | _ -> false)
           sched.Schedule.events)
    in
    let pending_inj = Fault_model.pending_injections fm in
    if pending_inj <> expected then
      add
        [
          {
            Oracle.epoch = scenario.Scenario.total_epochs;
            code = "injections-unconsumed";
            detail =
              Printf.sprintf "%d scripted events still pending at the horizon (expected %d)"
                pending_inj expected;
          };
        ]
  | None -> ());
  Controller.finalize !controller;
  let digest = digest_of !controller in
  {
    schedule = sched;
    canary;
    violations = List.rev !violations;
    recoveries = !recoveries;
    checkpoints = !checkpoints;
    torn_tail_checks = !torn_checks;
    storm_submissions = !storm_submissions;
    canary_fired = !fired;
    summary = Controller.summary !controller;
    digest;
  }
