(** Failing-schedule minimization (delta debugging).

    Given a schedule for which [fails] holds, find a smaller one for which
    it still holds: first ddmin over the event list (drop chunks, then
    single events), then per-event shrinking (shorter downtimes and
    windows, lower rates) to a fixpoint.  [fails] re-runs the harness, so
    every accepted step is a genuine replayable reproducer. *)

type stats = { runs : int; initial_events : int; final_events : int }

val minimize :
  ?max_runs:int -> fails:(Schedule.t -> bool) -> Schedule.t -> Schedule.t * stats
(** [minimize ~fails sched] assumes [fails sched] is true and returns a
    minimized schedule for which it still is, plus how much work that
    took.  [max_runs] (default 2000) bounds the number of [fails]
    evaluations; at the budget the current reduction is returned. *)
