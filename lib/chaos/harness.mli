(** Deterministic simulation harness: run one chaos schedule end to end.

    A run drives the standard controller loop (arrivals, storms fed from a
    deterministic reserve pool, fail-over on controller crashes — the same
    driver shape as the crash-recovery experiment) over a fixed small
    topology, with the schedule staged into the fault model, and evaluates
    the {!Oracle} suite after every tick.  Everything is a pure function
    of (schedule, canary flag): two runs of the same schedule are
    byte-identical, which is what makes shrinking and replay possible. *)

val num_switches : int
(** 8 — the fixed chaos topology. *)

val groups : int
(** 4 partition groups of 2 switches. *)

val default_horizon : int

val default_events : int

val reference_digest : seed:int -> horizon:int -> string
(** Digest of the seed run: same scenario and config, driven with none of
    the chaos machinery (no journal, checkpoints, oracles or storm feed).
    The differential oracle asserts an empty schedule matches this byte
    for byte. *)

type result = {
  schedule : Schedule.t;
  canary : bool;
  violations : Oracle.violation list;  (** empty = the schedule passed *)
  recoveries : int;  (** controller fail-overs survived *)
  checkpoints : int;  (** scheduled checkpoint probes taken *)
  torn_tail_checks : int;
  storm_submissions : int;
  canary_fired : bool;  (** the planted bug's trigger condition was met *)
  summary : Dream_core.Metrics.summary;
  digest : string;  (** canonical run fingerprint, see {!reference_digest} *)
}

val failed : result -> bool

val run : ?canary:bool -> ?backend:Dream_traffic.Aggregate.backend -> Schedule.t -> result
(** Execute one schedule.  [backend] (default [Flat]) selects the counter
    store representation for the whole run; the bank's differential oracle
    replays the empty schedule under [Reference] and demands a
    byte-identical digest.  [canary] plants the guarded demonstration bug:
    the first time a storm lands during an open partition window, one
    allocation is corrupted past switch capacity — the invariant oracle
    must catch it.  Never set outside tests and demonstrations. *)
