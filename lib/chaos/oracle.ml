module Controller = Dream_core.Controller
module Fault_model = Dream_fault.Fault_model
module Breaker = Dream_switch.Breaker
module Invariant = Dream_recovery.Invariant
module Journal = Dream_recovery.Journal
module Switch_id = Dream_traffic.Switch_id

type violation = { epoch : int; code : string; detail : string }

let to_string v = Printf.sprintf "epoch %d: %s — %s" v.epoch v.code v.detail

let invariants ~epoch controller =
  List.map
    (fun (v : Invariant.violation) ->
      { epoch; code = "invariant:" ^ v.Invariant.code; detail = v.Invariant.detail })
    (Controller.check_invariants_now controller)

let breaker_transitions ~epoch ~prev ~now =
  if Array.length prev <> Array.length now then
    [
      {
        epoch;
        code = "breaker-population";
        detail =
          Printf.sprintf "breaker count changed %d -> %d" (Array.length prev) (Array.length now);
      };
    ]
  else begin
    let out = ref [] in
    Array.iteri
      (fun sw from ->
        let into = now.(sw) in
        if not (Breaker.legal_transition ~from ~into) then
          out :=
            {
              epoch;
              code = "breaker-transition";
              detail =
                Printf.sprintf "switch %d: %s -> %s is unreachable in the state machine" sw
                  (Breaker.state_to_string from) (Breaker.state_to_string into);
            }
            :: !out)
      prev;
    List.rev !out
  end

(* Bounded staleness: above the shed cap, a task's stale streak may only
   grow while something is actually wrong with one of its switches (down,
   partitioned, breaker not closed) or a scripted noise window is open.
   Growth beyond the cap in calm conditions means the deadline scheduler
   shed a task it had promised not to.  [prev] carries last epoch's levels
   across calls and is updated in place. *)
let seed_staleness ~controller ~prev =
  Hashtbl.reset prev;
  List.iter
    (fun task_id ->
      match Controller.staleness_of controller ~task_id with
      | Some level -> Hashtbl.replace prev task_id level
      | None -> ())
    (Controller.active_task_ids controller)

let staleness ~epoch ~cap ~noise_active ~controller ~prev =
  let faults = Controller.faults controller in
  let breakers = Controller.breaker_states controller in
  let adverse task_id =
    noise_active
    ||
    match (Controller.task_switches controller ~task_id, faults) with
    | Some switches, Some fm ->
      Switch_id.Set.exists
        (fun sw ->
          Fault_model.is_down fm sw || Fault_model.is_partitioned fm sw
          || sw < Array.length breakers
             && (match breakers.(sw) with Breaker.Closed -> false | Breaker.Open | Breaker.Half_open -> true))
        switches
    | _, _ -> false
  in
  let out = ref [] in
  let ids = Controller.active_task_ids controller in
  List.iter
    (fun task_id ->
      match Controller.staleness_of controller ~task_id with
      | None -> ()
      | Some level ->
        let before = Option.value ~default:0 (Hashtbl.find_opt prev task_id) in
        if level > cap && level > before && not (adverse task_id) then
          out :=
            {
              epoch;
              code = "staleness-cap";
              detail =
                Printf.sprintf
                  "task %d staleness grew %d -> %d past cap %d with all switches healthy" task_id
                  before level cap;
            }
            :: !out)
    ids;
  seed_staleness ~controller ~prev;
  List.rev !out

let checkpoint_roundtrip ~epoch controller =
  let s1 = Controller.snapshot controller in
  match Controller.restore s1 with
  | Error msg -> [ { epoch; code = "checkpoint-restore"; detail = msg } ]
  | Ok restored ->
    let s2 = Controller.snapshot restored in
    if String.equal s1 s2 then []
    else
      [
        {
          epoch;
          code = "checkpoint-identity";
          detail =
            Printf.sprintf "re-snapshot of restored controller differs (%d vs %d bytes)"
              (String.length s1) (String.length s2);
        };
      ]

let torn_tail ~epoch ~drop entries =
  let full = String.concat "" (List.map Journal.entry_to_string entries) in
  let keep = max 0 (String.length full - drop) in
  let cut = String.sub full 0 keep in
  match Journal.entries_of_string cut with
  | Error msg -> [ { epoch; code = "torn-tail-parse"; detail = msg } ]
  | Ok parsed ->
    let rec prefix = function
      | [], _ -> true
      | _ :: _, [] -> false
      | p :: ps, e :: es ->
        String.equal (Journal.entry_to_string p) (Journal.entry_to_string e) && prefix (ps, es)
    in
    if prefix (parsed, entries) then []
    else
      [
        {
          epoch;
          code = "torn-tail-prefix";
          detail =
            Printf.sprintf
              "parsed %d entries from a %d-byte cut that are not a prefix of the %d written"
              (List.length parsed) drop (List.length entries);
        };
      ]
