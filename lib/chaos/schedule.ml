module Rng = Dream_util.Rng
module Fault_model = Dream_fault.Fault_model
module Json = Dream_obs.Json

type event =
  | Switch_crash of { at : int; switch : int; downtime : int }
  | Controller_crash of { at : int }
  | Partition of { at : int; group : int; span : int }
  | Heal_hint of { at : int; group : int }
  | Storm of { at : int; tasks : int }
  | Noise of { at : int; span : int; timeout_rate : float; loss_rate : float; perturb : float }
  | Torn_tail of { at : int; drop : int }
  | Checkpoint of { at : int }

type t = { seed : int; horizon : int; events : event list }

let at_of = function
  | Switch_crash { at; _ }
  | Controller_crash { at }
  | Partition { at; _ }
  | Heal_hint { at; _ }
  | Storm { at; _ }
  | Noise { at; _ }
  | Torn_tail { at; _ }
  | Checkpoint { at } ->
    at

let kind_of = function
  | Switch_crash _ -> "switch_crash"
  | Controller_crash _ -> "controller_crash"
  | Partition _ -> "partition"
  | Heal_hint _ -> "heal_hint"
  | Storm _ -> "storm"
  | Noise _ -> "noise"
  | Torn_tail _ -> "torn_tail"
  | Checkpoint _ -> "checkpoint"

let pp_event ppf e =
  match e with
  | Switch_crash { at; switch; downtime } ->
    Format.fprintf ppf "@%d switch_crash sw=%d downtime=%d" at switch downtime
  | Controller_crash { at } -> Format.fprintf ppf "@%d controller_crash" at
  | Partition { at; group; span } ->
    Format.fprintf ppf "@%d partition group=%d span=%d" at group span
  | Heal_hint { at; group } -> Format.fprintf ppf "@%d heal_hint group=%d" at group
  | Storm { at; tasks } -> Format.fprintf ppf "@%d storm tasks=%d" at tasks
  | Noise { at; span; timeout_rate; loss_rate; perturb } ->
    Format.fprintf ppf "@%d noise span=%d timeout=%.2f loss=%.2f perturb=%.2f" at span
      timeout_rate loss_rate perturb
  | Torn_tail { at; drop } -> Format.fprintf ppf "@%d torn_tail drop=%d" at drop
  | Checkpoint { at } -> Format.fprintf ppf "@%d checkpoint" at

(* Generation weights, out of 100.  Partitions, storms and noise are the
   interesting composers (they interact with breakers, admission and the
   retry budget); torn tails and checkpoints are oracle probes and need
   fewer samples. *)
let generate ~seed ~num_switches ~groups ~horizon ~events =
  if num_switches < 1 then invalid_arg "Schedule.generate: num_switches must be >= 1";
  if groups < 1 then invalid_arg "Schedule.generate: groups must be >= 1";
  if horizon < 2 then invalid_arg "Schedule.generate: horizon must be >= 2";
  if events < 0 then invalid_arg "Schedule.generate: events must be >= 0";
  let rng = Rng.create seed in
  let gen () =
    (* Leave the final epoch event-free so every window has at least one
       epoch to be observed in. *)
    let at = 1 + Rng.int rng (horizon - 1) in
    match Rng.int rng 100 with
    | k when k < 18 ->
      Switch_crash { at; switch = Rng.int rng num_switches; downtime = 1 + Rng.int rng 6 }
    | k when k < 34 -> Partition { at; group = Rng.int rng groups; span = 1 + Rng.int rng 8 }
    | k when k < 44 -> Heal_hint { at; group = Rng.int rng groups }
    | k when k < 60 -> Storm { at; tasks = 1 + Rng.int rng 4 }
    | k when k < 74 ->
      Noise
        {
          at;
          span = 1 + Rng.int rng 6;
          timeout_rate = 0.2 +. Rng.float rng 0.6;
          loss_rate = Rng.float rng 0.5;
          perturb = Rng.float rng 0.3;
        }
    | k when k < 84 -> Controller_crash { at }
    | k when k < 92 -> Torn_tail { at; drop = Rng.int rng 48 }
    | _ -> Checkpoint { at }
  in
  let evs = List.init events (fun _ -> gen ()) in
  (* Stable: events sharing an epoch keep generation order, so a schedule
     prints and replays identically. *)
  { seed; horizon; events = List.stable_sort (fun a b -> Int.compare (at_of a) (at_of b)) evs }

let validate ~num_switches ~groups t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.horizon < 2 then err "horizon %d is too short" t.horizon
  else begin
    let rec go = function
      | [] -> Ok ()
      | e :: rest ->
        let at = at_of e in
        if at < 1 || at > t.horizon then err "event %s: epoch %d outside [1, %d]" (kind_of e) at t.horizon
        else begin
          match e with
          | Switch_crash { switch; downtime; _ } ->
            if switch < 0 || switch >= num_switches then err "switch_crash: unknown switch %d" switch
            else if downtime < 1 then err "switch_crash: downtime %d < 1" downtime
            else go rest
          | Partition { group; span; _ } ->
            if group < 0 || group >= groups then err "partition: unknown group %d" group
            else if span < 1 then err "partition: span %d < 1" span
            else go rest
          | Heal_hint { group; _ } ->
            if group < 0 || group >= groups then err "heal_hint: unknown group %d" group else go rest
          | Storm { tasks; _ } -> if tasks < 1 then err "storm: tasks %d < 1" tasks else go rest
          | Noise { span; timeout_rate; loss_rate; perturb; _ } ->
            let unit_ok v = v >= 0.0 && v <= 1.0 in
            if span < 1 then err "noise: span %d < 1" span
            else if not (unit_ok timeout_rate) then err "noise: timeout_rate out of [0, 1]"
            else if not (unit_ok loss_rate) then err "noise: loss_rate out of [0, 1]"
            else if not (perturb >= 0.0 && Float.is_finite perturb) then
              err "noise: perturb must be finite and >= 0"
            else go rest
          | Torn_tail { drop; _ } -> if drop < 0 then err "torn_tail: drop %d < 0" drop else go rest
          | Controller_crash _ | Checkpoint _ -> go rest
        end
    in
    go t.events
  end

(* Register every fault-model event of the schedule; [Torn_tail] and
   [Checkpoint] are harness-level probes and stay out of the model. *)
let stage t fm =
  List.iter
    (fun e ->
      match e with
      | Switch_crash { at; switch; downtime } -> Fault_model.schedule_crash fm ~at ~switch ~downtime
      | Controller_crash { at } -> Fault_model.schedule_controller_crash fm ~at
      | Partition { at; group; span } -> Fault_model.schedule_partition fm ~at ~group ~span
      | Heal_hint { at; group } -> Fault_model.schedule_heal fm ~at ~group
      | Storm { at; tasks } -> Fault_model.schedule_storm fm ~at ~tasks
      | Noise { at; span; timeout_rate; loss_rate; perturb } ->
        Fault_model.schedule_noise fm ~at ~span ~timeout_rate ~loss_rate ~perturb_stddev:perturb
      | Torn_tail _ | Checkpoint _ -> ())
    t.events

(* ---- shrinking candidates ---- *)

(* Strictly-smaller variants of one event, largest reduction first.  The
   shrinker tries each; every variant reduces an integer measure, so
   event-level shrinking terminates. *)
let shrink_event e =
  let ints v mk = if v > 1 then (if v / 2 >= 1 && v / 2 < v then [ mk (v / 2) ] else []) @ [ mk 1 ] else [] in
  match e with
  | Switch_crash { at; switch; downtime } ->
    ints downtime (fun downtime -> Switch_crash { at; switch; downtime })
  | Partition { at; group; span } -> ints span (fun span -> Partition { at; group; span })
  | Storm { at; tasks } -> ints tasks (fun tasks -> Storm { at; tasks })
  | Noise { at; span; timeout_rate; loss_rate; perturb } ->
    (if span > 1 then [ Noise { at; span = span / 2; timeout_rate; loss_rate; perturb } ] else [])
    @ (if loss_rate > 0.0 then [ Noise { at; span; timeout_rate; loss_rate = 0.0; perturb } ] else [])
    @ (if perturb > 0.0 then [ Noise { at; span; timeout_rate; loss_rate; perturb = 0.0 } ] else [])
    @
    if timeout_rate > 0.25 then
      [ Noise { at; span; timeout_rate = timeout_rate /. 2.0; loss_rate; perturb } ]
    else []
  | Torn_tail { at; drop } -> if drop > 0 then [ Torn_tail { at; drop = drop / 2 } ] else []
  | Controller_crash _ | Heal_hint _ | Checkpoint _ -> []

(* ---- JSON round trip (reproducer files) ---- *)

let event_to_json e =
  let base = [ ("kind", Json.Str (kind_of e)); ("at", Json.Int (at_of e)) ] in
  let extra =
    match e with
    | Switch_crash { switch; downtime; _ } ->
      [ ("switch", Json.Int switch); ("downtime", Json.Int downtime) ]
    | Controller_crash _ | Checkpoint _ -> []
    | Partition { group; span; _ } -> [ ("group", Json.Int group); ("span", Json.Int span) ]
    | Heal_hint { group; _ } -> [ ("group", Json.Int group) ]
    | Storm { tasks; _ } -> [ ("tasks", Json.Int tasks) ]
    | Noise { span; timeout_rate; loss_rate; perturb; _ } ->
      [
        ("span", Json.Int span);
        ("timeout_rate", Json.Float timeout_rate);
        ("loss_rate", Json.Float loss_rate);
        ("perturb", Json.Float perturb);
      ]
    | Torn_tail { drop; _ } -> [ ("drop", Json.Int drop) ]
  in
  Json.Obj (base @ extra)

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ("horizon", Json.Int t.horizon);
      ("events", Json.List (List.map event_to_json t.events));
    ]

let json_int name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field %S" name)

let json_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let ( let* ) = Result.bind

let event_of_json j =
  let* kind =
    match Option.bind (Json.member "kind" j) Json.to_str with
    | Some k -> Ok k
    | None -> Error "event without a \"kind\" field"
  in
  let* at = json_int "at" j in
  match kind with
  | "switch_crash" ->
    let* switch = json_int "switch" j in
    let* downtime = json_int "downtime" j in
    Ok (Switch_crash { at; switch; downtime })
  | "controller_crash" -> Ok (Controller_crash { at })
  | "partition" ->
    let* group = json_int "group" j in
    let* span = json_int "span" j in
    Ok (Partition { at; group; span })
  | "heal_hint" ->
    let* group = json_int "group" j in
    Ok (Heal_hint { at; group })
  | "storm" ->
    let* tasks = json_int "tasks" j in
    Ok (Storm { at; tasks })
  | "noise" ->
    let* span = json_int "span" j in
    let* timeout_rate = json_float "timeout_rate" j in
    let* loss_rate = json_float "loss_rate" j in
    let* perturb = json_float "perturb" j in
    Ok (Noise { at; span; timeout_rate; loss_rate; perturb })
  | "torn_tail" ->
    let* drop = json_int "drop" j in
    Ok (Torn_tail { at; drop })
  | "checkpoint" -> Ok (Checkpoint { at })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let of_json j =
  let* seed = json_int "seed" j in
  let* horizon = json_int "horizon" j in
  let* events =
    match Json.member "events" j with
    | Some (Json.List evs) ->
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* e = event_of_json e in
          Ok (e :: acc))
        (Ok []) evs
      |> Result.map List.rev
    | _ -> Error "missing or non-list \"events\" field"
  in
  Ok { seed; horizon; events }
