module Rng = Dream_util.Rng
module Json = Dream_obs.Json

type coverage = {
  switch_crashes : int;
  controller_crashes : int;
  partitions : int;
  heal_hints : int;
  storms : int;
  noise_windows : int;
  torn_tails : int;
  checkpoint_probes : int;
}

let zero_coverage =
  {
    switch_crashes = 0;
    controller_crashes = 0;
    partitions = 0;
    heal_hints = 0;
    storms = 0;
    noise_windows = 0;
    torn_tails = 0;
    checkpoint_probes = 0;
  }

let count_events cov (sched : Schedule.t) =
  List.fold_left
    (fun c e ->
      match e with
      | Schedule.Switch_crash _ -> { c with switch_crashes = c.switch_crashes + 1 }
      | Schedule.Controller_crash _ -> { c with controller_crashes = c.controller_crashes + 1 }
      | Schedule.Partition _ -> { c with partitions = c.partitions + 1 }
      | Schedule.Heal_hint _ -> { c with heal_hints = c.heal_hints + 1 }
      | Schedule.Storm _ -> { c with storms = c.storms + 1 }
      | Schedule.Noise _ -> { c with noise_windows = c.noise_windows + 1 }
      | Schedule.Torn_tail _ -> { c with torn_tails = c.torn_tails + 1 }
      | Schedule.Checkpoint _ -> { c with checkpoint_probes = c.checkpoint_probes + 1 })
    cov sched.Schedule.events

type failure = {
  f_schedule : Schedule.t;
  f_canary : bool;
  f_first : Oracle.violation;
  f_minimized : Schedule.t;
  f_stats : Shrink.stats;
}

type outcome = {
  schedules : int;
  seed : int;
  horizon : int;
  events_per_schedule : int;
  canary : bool;
  coverage : coverage;
  recoveries : int;
  checkpoints : int;
  torn_tail_checks : int;
  storm_submissions : int;
  violations : int;
  differential_ok : bool;
  failures : failure list;
}

let schedule_seed master = Int64.to_int (Rng.bits64 master) land max_int

let run ?(canary = false) ?(horizon = Harness.default_horizon)
    ?(events = Harness.default_events) ?(max_failures = 3) ~schedules ~seed () =
  if schedules < 1 then invalid_arg "Bank.run: schedules must be >= 1";
  (* Differential oracle: a schedule with zero adversity must be
     byte-identical to the seed run without any chaos machinery. *)
  let empty = { Schedule.seed; horizon; events = [] } in
  let empty_run = Harness.run ~canary:false empty in
  (* Backend differential: the same zero-adversity run under the boxed
     reference store must land on the same digest — the flat store is a
     representation change, never a behaviour change. *)
  let reference_run =
    Harness.run ~canary:false ~backend:Dream_traffic.Aggregate.Reference empty
  in
  let differential_ok =
    String.equal empty_run.Harness.digest (Harness.reference_digest ~seed ~horizon)
    && (not (Harness.failed empty_run))
    && String.equal reference_run.Harness.digest empty_run.Harness.digest
    && not (Harness.failed reference_run)
  in
  let master = Rng.create seed in
  let coverage = ref zero_coverage in
  let recoveries = ref 0 in
  let checkpoints = ref 0 in
  let torn = ref 0 in
  let storm_submissions = ref 0 in
  let violations = ref 0 in
  let failures = ref [] in
  for _ = 1 to schedules do
    let sched =
      Schedule.generate ~seed:(schedule_seed master) ~num_switches:Harness.num_switches
        ~groups:Harness.groups ~horizon ~events
    in
    coverage := count_events !coverage sched;
    let result = Harness.run ~canary sched in
    recoveries := !recoveries + result.Harness.recoveries;
    checkpoints := !checkpoints + result.Harness.checkpoints;
    torn := !torn + result.Harness.torn_tail_checks;
    storm_submissions := !storm_submissions + result.Harness.storm_submissions;
    violations := !violations + List.length result.Harness.violations;
    match result.Harness.violations with
    | first :: _ when List.length !failures < max_failures ->
      let fails s = Harness.failed (Harness.run ~canary s) in
      let minimized, stats = Shrink.minimize ~fails sched in
      failures :=
        { f_schedule = sched; f_canary = canary; f_first = first; f_minimized = minimized;
          f_stats = stats }
        :: !failures
    | _ -> ()
  done;
  {
    schedules;
    seed;
    horizon;
    events_per_schedule = events;
    canary;
    coverage = !coverage;
    recoveries = !recoveries;
    checkpoints = !checkpoints;
    torn_tail_checks = !torn;
    storm_submissions = !storm_submissions;
    violations = !violations;
    differential_ok;
    failures = List.rev !failures;
  }

(* ---- reproducer files ---- *)

let reproducer_to_string (f : failure) =
  Json.to_string
    (Json.Obj
       [
         ("chaos", Json.Int 1);
         ("canary", Json.Bool f.f_canary);
         ( "violation",
           Json.Obj
             [
               ("epoch", Json.Int f.f_first.Oracle.epoch);
               ("code", Json.Str f.f_first.Oracle.code);
               ("detail", Json.Str f.f_first.Oracle.detail);
             ] );
         ("schedule", Schedule.to_json f.f_minimized);
       ])

let ( let* ) = Result.bind

let reproducer_of_string s =
  let* j = Json.of_string s in
  let* () =
    match Option.bind (Json.member "chaos" j) Json.to_int with
    | Some 1 -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported reproducer version %d" v)
    | None -> Error "not a chaos reproducer (missing \"chaos\" field)"
  in
  let canary =
    match Json.member "canary" j with Some (Json.Bool b) -> b | _ -> false
  in
  let* sched =
    match Json.member "schedule" j with
    | Some sj -> Schedule.of_json sj
    | None -> Error "missing \"schedule\" field"
  in
  let* () = Schedule.validate ~num_switches:Harness.num_switches ~groups:Harness.groups sched in
  Ok (canary, sched)
