(** Per-switch circuit breaker for the control channel.

    Sustained adversity (a partitioned group, a switch whose channel times
    out every epoch) would otherwise make the controller burn its retry
    budget on the same dead switch every tick.  The breaker wraps the
    retry machinery with the classic three-state machine: [Closed] passes
    calls through and counts consecutive failures; after
    [failure_threshold] failures it trips to [Open], where calls are
    skipped outright for [cooldown_epochs] epochs; then one probe is
    allowed ([Half_open]) — success closes the breaker, failure re-opens
    it for another full cooldown.

    The machine is deliberately randomness-free: transitions depend only
    on the sequence of recorded outcomes and {!begin_epoch} calls, so a
    seeded fault schedule yields a deterministic transition history. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker (>= 1) *)
  cooldown_epochs : int;  (** epochs to stay open before probing (>= 1) *)
}

val default_config : config
(** Threshold 3, cooldown 4 epochs. *)

type state = Closed | Open | Half_open

type t

val create : config -> t
(** Fresh breaker in [Closed].  @raise Invalid_argument on a non-positive
    threshold or cooldown. *)

val state : t -> state

val config : t -> config

val opens : t -> int
(** Times this breaker has tripped (including probe-failure re-opens). *)

val probes : t -> int
(** Times an open breaker transitioned to [Half_open] to probe. *)

val begin_epoch : t -> unit
(** Advance the cooldown clock; an [Open] breaker whose cooldown elapsed
    becomes [Half_open] (the next call is the probe). *)

val allow : t -> bool
(** May the controller attempt a call this epoch?  [false] only when
    [Open]. *)

val hint_probe : t -> unit
(** External evidence the channel recovered (e.g. a partition-heal event):
    an [Open] breaker forfeits the rest of its cooldown and probes at the
    next {!begin_epoch}.  No-op in any other state. *)

val record_success : t -> unit
(** A call completed: resets the failure count; closes a [Half_open]
    breaker. *)

val record_failure : t -> unit
(** A call failed after exhausting its retries: counts toward the
    threshold when [Closed]; immediately re-opens a [Half_open] breaker. *)

val legal_transition : from:state -> into:state -> bool
(** May a breaker observed in [from] at one epoch boundary be observed in
    [into] at the next?  Observations are epoch-granular — several
    micro-steps can happen inside one tick (cooldown elapses, probe
    succeeds), so [Open] to [Closed] is legal — but [Closed] to
    [Half_open] is not: probing is only reachable through [Open], and no
    composition of per-tick steps skips that.  Shared by the chaos oracle
    and the property tests so both enforce the same state-machine law. *)

val state_to_string : state -> string

val state_code : state -> int
(** Gauge encoding: [Closed] 0, [Half_open] 1, [Open] 2. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append config and full mutable state to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch. *)
