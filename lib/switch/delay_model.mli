(** Control-loop delay model (Section 6.5).

    The prototype's control loop spends time fetching all counters, saving
    or deleting only the changed rules, and computing allocations and
    reports at the controller.  The paper reports that software switches
    save/delete 512 rules in under 20 ms and that fetch dominates because
    every counter is fetched while updates are incremental.  This module
    prices those operations so the simulator can (a) reproduce the Fig 17a
    breakdown and (b) degrade freshly-installed counters by the fraction of
    the epoch lost to rule installation, reproducing the prototype-vs-
    simulator gap of Figs 8 and 9. *)

type costs = {
  fetch_per_rule_ms : float;
  save_per_rule_ms : float;
  delete_per_rule_ms : float;
  rtt_ms : float;  (** per-switch round-trip cost of a batch *)
}

val default : costs
(** Calibrated to the paper's prototype numbers: save/delete 0.038 ms/rule
    (20 ms / 512 rules), fetch 0.012 ms/rule, RTT 0.25 ms. *)

val fetch_ms : costs -> rules:int -> switches:int -> float
(** Cost of fetching [rules] counters spread over [switches] switches. *)

val save_ms : costs -> installs:int -> removals:int -> switches:int -> float
(** Cost of the incremental rule update. *)

val install_miss_fraction : costs -> epoch_ms:float -> installs:int -> switches:int -> float
(** Fraction of the measurement epoch a freshly-installed rule misses while
    the update is in flight, in \[0, 1\]. *)
