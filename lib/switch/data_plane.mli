(** Fallible data-plane interface to one switch.

    The controller talks to switches through this wrapper instead of
    touching {!Tcam} directly, so every operation it issues can fail the
    way a real southbound channel fails: the switch may be [`Down]
    (crashed, its TCAM contents lost), a counter fetch may [`Timeout], a
    fetched batch may come back with counters missing or perturbed, and a
    rule install may simply not land ([`Failed]).

    Without a fault model every operation reduces exactly to the
    underlying {!Tcam} call — same results, same stats — so fault-free
    runs are bit-for-bit identical to driving the TCAM directly. *)

type fetch_error = [ `Down | `Timeout | `Unreachable ]

type install_error = [ `Capacity | `Duplicate | `Down | `Failed | `Unreachable ]

type t

val create : ?faults:Dream_fault.Fault_model.t -> Switch.t -> t
(** The fault model is shared across the network's data planes; pass the
    same [t] to every switch so per-switch streams line up with ids. *)

val switch : t -> Switch.t

val id : t -> Dream_traffic.Switch_id.t

val tcam : t -> Tcam.t

val faults : t -> Dream_fault.Fault_model.t option

val down : t -> bool
(** Whether the switch is currently crashed (always [false] without a
    fault model). *)

val partitioned : t -> bool
(** Whether the control channel to this switch is currently partitioned:
    the TCAM keeps counting (unlike a crash) but every control operation
    returns [`Unreachable] until the window closes. *)

val latency_factor : t -> float
(** Control-channel latency multiplier for this switch (straggler
    inflation); 1.0 without a fault model. *)

val rules_of : t -> owner:int -> Dream_prefix.Prefix.t list

val read :
  t ->
  owner:int ->
  Dream_traffic.Aggregate.t ->
  ((Dream_prefix.Prefix.t * float) list, fetch_error) result
(** Fetch one task's counters.  A [`Timeout] still prices the fetch in the
    TCAM stats (the bytes were sent; the reply never came), so retries cost
    modelled control-loop time.  On success, individual counters may have
    been dropped ([counter_loss_rate]) or perturbed ([perturb_stddev]). *)

val install :
  t -> owner:int -> Dream_prefix.Prefix.t -> (unit, install_error) result

val remove :
  t -> owner:int -> Dream_prefix.Prefix.t -> (bool, [ `Down | `Unreachable ]) result

val crash : t -> unit
(** Wipe the switch's TCAM (crash semantics: state lost, no priced
    deletes).  The fault model decides {e when}; the controller applies it. *)

type audit_result = { strays_removed : int; missing_installed : int }

val audit :
  t ->
  expected:(int * Dream_prefix.Prefix.t list) list ->
  (audit_result, [ `Down | `Unreachable ]) result
(** Reconcile the switch's installed rules against [expected] (owner →
    prefixes, as produced by {!Tcam.dump}): stray rules are deleted first,
    then missing rules reinstalled, so the table never transiently exceeds
    capacity.  Used by controller recovery; [`Down] if the switch is
    currently crashed (it will be reconciled when it comes back). *)
