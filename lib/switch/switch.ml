type t = { id : Dream_traffic.Switch_id.t; tcam : Tcam.t }

let create ~id ~capacity = { id; tcam = Tcam.create ~capacity }

let id t = t.id

let tcam t = t.tcam

let capacity t = Tcam.capacity t.tcam

let network ~num_switches ~capacity =
  if num_switches <= 0 then
    invalid_arg (Printf.sprintf "Switch.network: num_switches must be positive, got %d" num_switches);
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Switch.network: capacity must be positive, got %d" capacity);
  Array.init num_switches (fun id -> create ~id ~capacity)
