type t = { id : Dream_traffic.Switch_id.t; tcam : Tcam.t }

let create ~id ~capacity = { id; tcam = Tcam.create ~capacity }

let id t = t.id

let tcam t = t.tcam

let capacity t = Tcam.capacity t.tcam

let network ~num_switches ~capacity =
  Array.init num_switches (fun id -> create ~id ~capacity)
