module Prefix = Dream_prefix.Prefix
module Aggregate = Dream_traffic.Aggregate

type stats = { installs : int; removals : int; fetches : int }

type t = {
  capacity : int;
  tables : (int, Prefix.Set.t ref) Hashtbl.t; (* owner -> installed prefixes *)
  mutable used : int;
  mutable installs : int;
  mutable removals : int;
  mutable fetches : int;
}

type delta = { added : int; removed : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tcam.create: capacity must be positive";
  { capacity; tables = Hashtbl.create 64; used = 0; installs = 0; removals = 0; fetches = 0 }

let capacity t = t.capacity

let used t = t.used

let free t = t.capacity - t.used

let table t owner =
  match Hashtbl.find_opt t.tables owner with
  | Some set -> set
  | None ->
    let set = ref Prefix.Set.empty in
    Hashtbl.replace t.tables owner set;
    set

let used_by t ~owner =
  match Hashtbl.find_opt t.tables owner with
  | Some set -> Prefix.Set.cardinal !set
  | None -> 0

let owners t =
  Hashtbl.fold (fun owner set acc -> if Prefix.Set.is_empty !set then acc else owner :: acc) t.tables []

let rules_of t ~owner =
  match Hashtbl.find_opt t.tables owner with
  | Some set -> Prefix.Set.elements !set
  | None -> []

let dump t =
  Hashtbl.fold
    (fun owner set acc ->
      if Prefix.Set.is_empty !set then acc else (owner, Prefix.Set.elements !set) :: acc)
    t.tables []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let install t ~owner p =
  let set = table t owner in
  if Prefix.Set.mem p !set then Error `Duplicate
  else if t.used >= t.capacity then Error `Capacity
  else begin
    set := Prefix.Set.add p !set;
    t.used <- t.used + 1;
    t.installs <- t.installs + 1;
    Ok ()
  end

let remove t ~owner p =
  match Hashtbl.find_opt t.tables owner with
  | None -> false
  | Some set ->
    if Prefix.Set.mem p !set then begin
      set := Prefix.Set.remove p !set;
      t.used <- t.used - 1;
      t.removals <- t.removals + 1;
      true
    end
    else false

let remove_owner t ~owner =
  match Hashtbl.find_opt t.tables owner with
  | None -> 0
  | Some set ->
    let n = Prefix.Set.cardinal !set in
    t.used <- t.used - n;
    t.removals <- t.removals + n;
    Hashtbl.remove t.tables owner;
    n

let sync t ~owner ~prefixes =
  let target = Prefix.Set.of_list prefixes in
  let set = table t owner in
  let to_remove = Prefix.Set.diff !set target in
  let to_add = Prefix.Set.diff target !set in
  let removed = Prefix.Set.cardinal to_remove in
  let added = Prefix.Set.cardinal to_add in
  if t.used - removed + added > t.capacity then
    invalid_arg
      (Printf.sprintf "Tcam.sync: owner %d would exceed capacity (%d used, -%d +%d, cap %d)"
         owner t.used removed added t.capacity);
  set := target;
  t.used <- t.used - removed + added;
  t.removals <- t.removals + removed;
  t.installs <- t.installs + added;
  { added; removed }

let read t ~owner aggregate =
  let rules = rules_of t ~owner in
  t.fetches <- t.fetches + List.length rules;
  (* Rule sets come out of the Prefix.Set in compare order, which is
     first-address order — exactly the sorted batch the flat store answers
     in one narrowing pass.  Element-wise identical to mapping
     [Aggregate.volume]. *)
  Aggregate.read_prefixes aggregate rules

let wipe t =
  Hashtbl.reset t.tables;
  t.used <- 0

let stats t = { installs = t.installs; removals = t.removals; fetches = t.fetches }

let reset_stats t =
  t.installs <- 0;
  t.removals <- 0;
  t.fetches <- 0
