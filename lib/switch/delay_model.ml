type costs = {
  fetch_per_rule_ms : float;
  save_per_rule_ms : float;
  delete_per_rule_ms : float;
  rtt_ms : float;
}

let default =
  { fetch_per_rule_ms = 0.012; save_per_rule_ms = 0.038; delete_per_rule_ms = 0.038; rtt_ms = 0.25 }

let batch_rtt costs switches = costs.rtt_ms *. float_of_int (max 0 switches)

let fetch_ms costs ~rules ~switches =
  (costs.fetch_per_rule_ms *. float_of_int (max 0 rules)) +. batch_rtt costs switches

let save_ms costs ~installs ~removals ~switches =
  (costs.save_per_rule_ms *. float_of_int (max 0 installs))
  +. (costs.delete_per_rule_ms *. float_of_int (max 0 removals))
  +. batch_rtt costs switches

let install_miss_fraction costs ~epoch_ms ~installs ~switches =
  if epoch_ms <= 0.0 then 0.0
  else begin
    let delay = save_ms costs ~installs ~removals:0 ~switches in
    Float.min 1.0 (delay /. epoch_ms)
  end
