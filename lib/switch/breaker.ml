(* Per-switch circuit breaker over the control channel.  Entirely
   deterministic: state advances only on recorded outcomes and epoch
   boundaries, never on randomness, so a fixed fault schedule always
   produces the same transition sequence. *)

type config = { failure_threshold : int; cooldown_epochs : int }

let default_config = { failure_threshold = 3; cooldown_epochs = 4 }

let validate_config c =
  if c.failure_threshold < 1 then invalid_arg "Breaker: failure_threshold must be >= 1";
  if c.cooldown_epochs < 1 then invalid_arg "Breaker: cooldown_epochs must be >= 1"

type state = Closed | Open | Half_open

type t = {
  config : config;
  mutable state : state;
  mutable failures : int; (* consecutive failures while closed *)
  mutable cooldown_left : int; (* epochs until an open breaker probes *)
  mutable opens : int;
  mutable probes : int;
}

let create config =
  validate_config config;
  { config; state = Closed; failures = 0; cooldown_left = 0; opens = 0; probes = 0 }

let state t = t.state

let config t = t.config

let opens t = t.opens

let probes t = t.probes

let state_to_string = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

(* Gauge encoding: healthy = 0 so dashboards sum to "how broken are we". *)
let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

(* Observed at epoch granularity: within one controller tick a breaker can
   take several micro-steps (begin_epoch promotes Open to Half_open, then a
   probe success closes it), so Open -> Closed is a legal observation.  The
   one impossible hop is Closed -> Half_open: probing is only ever reached
   through Open, and no sequence of micro-steps hides that. *)
let legal_transition ~from ~into =
  match (from, into) with Closed, Half_open -> false | _, _ -> true

let begin_epoch t =
  match t.state with
  | Closed | Half_open -> ()
  | Open ->
      t.cooldown_left <- t.cooldown_left - 1;
      if t.cooldown_left <= 0 then begin
        t.state <- Half_open;
        t.probes <- t.probes + 1
      end

let allow t = match t.state with Closed | Half_open -> true | Open -> false

(* External recovery evidence (e.g. a partition-heal event): an open
   breaker skips the rest of its cooldown and probes at the next epoch
   boundary.  No-op in any other state. *)
let hint_probe t = match t.state with Open -> t.cooldown_left <- 0 | Closed | Half_open -> ()

let trip t =
  t.state <- Open;
  t.failures <- 0;
  t.cooldown_left <- t.config.cooldown_epochs;
  t.opens <- t.opens + 1

let record_failure t =
  match t.state with
  | Open -> ()
  | Half_open -> trip t (* probe failed: straight back to open *)
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.config.failure_threshold then trip t

let record_success t =
  match t.state with
  | Open -> ()
  | Closed -> t.failures <- 0
  | Half_open ->
      t.state <- Closed;
      t.failures <- 0

(* ---- checkpoint serialization ---- *)

let emit w t =
  let module C = Dream_util.Codec in
  C.int w "threshold" t.config.failure_threshold;
  C.int w "cooldown" t.config.cooldown_epochs;
  C.int w "state" (state_code t.state);
  C.int w "failures" t.failures;
  C.int w "cooldown_left" t.cooldown_left;
  C.int w "opens" t.opens;
  C.int w "probes" t.probes

let parse r =
  let module C = Dream_util.Codec in
  let failure_threshold = C.int_field r "threshold" in
  let cooldown_epochs = C.int_field r "cooldown" in
  let config = { failure_threshold; cooldown_epochs } in
  validate_config config;
  let state =
    match C.int_field r "state" with
    | 0 -> Closed
    | 1 -> Half_open
    | 2 -> Open
    | n -> invalid_arg (Printf.sprintf "Breaker.parse: unknown state code %d" n)
  in
  let failures = C.int_field r "failures" in
  let cooldown_left = C.int_field r "cooldown_left" in
  let opens = C.int_field r "opens" in
  let probes = C.int_field r "probes" in
  { config; state; failures; cooldown_left; opens; probes }
