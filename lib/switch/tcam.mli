(** TCAM rule table of one switch.

    Rules are (owner task, prefix) pairs with hardware counters; capacity is
    the number of TCAM entries available to measurement (the dynamically
    allocable pool of Section 4).  The table never exceeds capacity:
    {!sync} installs a task's new prefix set only up to the per-call
    budget, and {!install} fails when full.

    Counter values come from {!read}: the simulator stands in for the data
    plane by evaluating each rule's prefix against the epoch's traffic
    aggregate.  Install/remove churn is tracked so the control-loop delay
    model (Fig 17) can price incremental rule updates. *)

type t

type stats = {
  installs : int;  (** rules written since last [reset_stats] *)
  removals : int;  (** rules deleted since last [reset_stats] *)
  fetches : int;  (** counters fetched since last [reset_stats] *)
}

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val used : t -> int
(** Total installed rules across all owners. *)

val free : t -> int

val used_by : t -> owner:int -> int

val owners : t -> int list

val rules_of : t -> owner:int -> Dream_prefix.Prefix.t list
(** Installed prefixes of one task, in prefix order. *)

val dump : t -> (int * Dream_prefix.Prefix.t list) list
(** Every installed rule, grouped by owner in owner order with prefixes in
    prefix order — the deterministic full-table view used by checkpoints
    and the recovery audit. *)

val install : t -> owner:int -> Dream_prefix.Prefix.t -> (unit, [ `Capacity | `Duplicate ]) result

val remove : t -> owner:int -> Dream_prefix.Prefix.t -> bool
(** [true] if the rule existed. *)

val remove_owner : t -> owner:int -> int
(** Delete all rules of a task (when it is dropped or ends); returns the
    number removed. *)

type delta = { added : int; removed : int }

val sync : t -> owner:int -> prefixes:Dream_prefix.Prefix.t list -> delta
(** Incremental update: make the task's installed set equal [prefixes]
    (removals first, then installs; unchanged rules are untouched).
    @raise Invalid_argument if the new set would exceed capacity. *)

val read : t -> owner:int -> Dream_traffic.Aggregate.t -> (Dream_prefix.Prefix.t * float) list
(** Per-rule counters of a task against this epoch's traffic at this
    switch.  Counts one fetch per rule in the stats. *)

val wipe : t -> unit
(** Drop every rule of every owner without touching the churn stats: a
    switch crash losing its table, not controller-issued deletes (which
    the delay model would otherwise price). *)

val stats : t -> stats

val reset_stats : t -> unit
