(** One simulated switch: an identifier plus its TCAM measurement pool.

    The network is a flat set of these (DREAM is topology-agnostic: tasks
    only care which switches see their traffic). *)

type t

val create : id:Dream_traffic.Switch_id.t -> capacity:int -> t

val id : t -> Dream_traffic.Switch_id.t

val tcam : t -> Tcam.t

val capacity : t -> int

val network : num_switches:int -> capacity:int -> t array
(** [network ~num_switches ~capacity] builds switches 0..n-1 with equal
    capacity, indexed by id.
    @raise Invalid_argument if [num_switches <= 0] or [capacity <= 0]. *)
