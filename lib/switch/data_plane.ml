module Prefix = Dream_prefix.Prefix
module Fault_model = Dream_fault.Fault_model

type fetch_error = [ `Down | `Timeout | `Unreachable ]

type install_error = [ `Capacity | `Duplicate | `Down | `Failed | `Unreachable ]

type t = { switch : Switch.t; faults : Fault_model.t option }

let create ?faults switch = { switch; faults }

let switch t = t.switch

let id t = Switch.id t.switch

let tcam t = Switch.tcam t.switch

let faults t = t.faults

let down t =
  match t.faults with None -> false | Some fm -> Fault_model.is_down fm (id t)

let partitioned t =
  match t.faults with None -> false | Some fm -> Fault_model.is_partitioned fm (id t)

let latency_factor t =
  match t.faults with None -> 1.0 | Some fm -> Fault_model.latency_factor fm (id t)

let rules_of t ~owner = Tcam.rules_of (tcam t) ~owner

let read t ~owner aggregate =
  if down t then Error `Down
    (* A partition is not a timeout: nothing is routed, so the fetch is
       never issued, never priced, and consumes no data-stream draws.  The
       TCAM keeps counting underneath. *)
  else if partitioned t then Error `Unreachable
  else begin
    (* The fetch is issued (and priced through the TCAM stats) before the
       timeout verdict: a timed-out batch costs the control loop the same
       wire time as a successful one. *)
    let pairs = Tcam.read (tcam t) ~owner aggregate in
    match t.faults with
    | None -> Ok pairs
    | Some fm ->
      if Fault_model.fetch_times_out fm (id t) then Error `Timeout
      else begin
        let surviving =
          List.filter_map
            (fun (p, v) ->
              if Fault_model.lose_counter fm (id t) then None
              else Some (p, Fault_model.perturb fm (id t) v))
            pairs
        in
        Ok surviving
      end
  end

let install t ~owner p =
  if down t then Error `Down
  else if partitioned t then Error `Unreachable
  else begin
    match t.faults with
    | Some fm when Fault_model.install_fails fm (id t) -> Error `Failed
    | Some _ | None -> (Tcam.install (tcam t) ~owner p :> (unit, install_error) result)
  end

let remove t ~owner p =
  if down t then Error `Down
  else if partitioned t then Error `Unreachable
  else Ok (Tcam.remove (tcam t) ~owner p)

let crash t =
  Tcam.wipe (tcam t)

type audit_result = { strays_removed : int; missing_installed : int }

let audit t ~expected =
  if down t then Error `Down
  else if partitioned t then Error `Unreachable
  else begin
    let tcam = tcam t in
    let expected_sets =
      List.map (fun (owner, rules) -> (owner, Prefix.Set.of_list rules)) expected
    in
    let want_of owner =
      match List.assoc_opt owner expected_sets with
      | Some set -> set
      | None -> Prefix.Set.empty
    in
    let removed = ref 0 in
    let installed = ref 0 in
    (* Pass 1: delete strays first so reinstalls can never transiently
       overflow the table (the expected state fit before the crash). *)
    List.iter
      (fun (owner, rules) ->
        let want = want_of owner in
        List.iter
          (fun p ->
            if (not (Prefix.Set.mem p want)) && Tcam.remove tcam ~owner p then incr removed)
          rules)
      (Tcam.dump tcam);
    (* Pass 2: reinstall missing rules.  Recovery runs over the reliable
       control channel (retried until acked), so installs bypass the
       fault model's per-message install failures. *)
    List.iter
      (fun (owner, want) ->
        let have = Prefix.Set.of_list (Tcam.rules_of tcam ~owner) in
        Prefix.Set.iter
          (fun p ->
            if not (Prefix.Set.mem p have) then begin
              match Tcam.install tcam ~owner p with
              | Ok () -> incr installed
              | Error (`Capacity | `Duplicate) -> ()
            end)
          want)
      expected_sets;
    Ok { strays_removed = !removed; missing_installed = !installed }
  end
