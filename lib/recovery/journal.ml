module C = Dream_util.Codec
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Task_spec = Dream_tasks.Task_spec

type end_cause = Completed | Dropped

type entry =
  | Admit of {
      epoch : int;
      task_id : int;
      spec : Task_spec.t;
      topology : Topology.t;
      duration : int;
      drop_priority : int;
      accuracy_history : float;
      global_only : bool;
      source : string;
    }
  | Reject of { epoch : int; task_id : int; kind : Task_spec.kind }
  | Alloc of { epoch : int; task_id : int; switch : Switch_id.t; alloc : int }
  | Install of { epoch : int; task_id : int; switch : Switch_id.t; prefix : Prefix.t }
  | Delete of { epoch : int; task_id : int; switch : Switch_id.t; prefix : Prefix.t }
  | Purge of { epoch : int; task_id : int }
  | Switch_down of { epoch : int; switch : Switch_id.t }
  | Switch_up of { epoch : int; switch : Switch_id.t }
  | Task_end of {
      epoch : int;
      task_id : int;
      kind : Task_spec.kind;
      cause : end_cause;
      arrived_at : int;
      active_epochs : int;
      satisfaction : float;
      mean_accuracy : float;
    }

let epoch_of = function
  | Admit { epoch; _ }
  | Reject { epoch; _ }
  | Alloc { epoch; _ }
  | Install { epoch; _ }
  | Delete { epoch; _ }
  | Purge { epoch; _ }
  | Switch_down { epoch; _ }
  | Switch_up { epoch; _ }
  | Task_end { epoch; _ } ->
    epoch

let entry_name = function
  | Admit _ -> "admit"
  | Reject _ -> "reject"
  | Alloc _ -> "alloc"
  | Install _ -> "install"
  | Delete _ -> "delete"
  | Purge _ -> "purge"
  | Switch_down _ -> "switch_down"
  | Switch_up _ -> "switch_up"
  | Task_end _ -> "task_end"

let cause_to_string = function Completed -> "completed" | Dropped -> "dropped"

let cause_of_string = function
  | "completed" -> Some Completed
  | "dropped" -> Some Dropped
  | _ -> None

(* A rule event (install/delete) shares its field layout; only the section
   name distinguishes them. *)
let encode_rule w name ~epoch ~task_id ~switch ~prefix =
  C.section w name;
  C.int w "epoch" epoch;
  C.int w "task_id" task_id;
  C.int w "switch" switch;
  C.string w "prefix" (Prefix.to_string prefix)

let encode w = function
  | Admit { epoch; task_id; spec; topology; duration; drop_priority; accuracy_history;
            global_only; source } ->
    C.section w "admit";
    C.int w "epoch" epoch;
    C.int w "task_id" task_id;
    C.int w "duration" duration;
    C.int w "drop_priority" drop_priority;
    C.float w "accuracy_history" accuracy_history;
    C.bool w "global_only" global_only;
    Task_spec.emit w spec;
    Topology.emit w topology;
    (* The serialized source is itself a multi-line document; escaping
       folds it onto the journal's one-line-per-field grid. *)
    C.string w "source" (String.escaped source)
  | Reject { epoch; task_id; kind } ->
    C.section w "reject";
    C.int w "epoch" epoch;
    C.int w "task_id" task_id;
    C.string w "kind" (Task_spec.kind_to_string kind)
  | Alloc { epoch; task_id; switch; alloc } ->
    C.section w "alloc";
    C.int w "epoch" epoch;
    C.int w "task_id" task_id;
    C.int w "switch" switch;
    C.int w "alloc" alloc
  | Install { epoch; task_id; switch; prefix } ->
    encode_rule w "install" ~epoch ~task_id ~switch ~prefix
  | Delete { epoch; task_id; switch; prefix } ->
    encode_rule w "delete" ~epoch ~task_id ~switch ~prefix
  | Purge { epoch; task_id } ->
    C.section w "purge";
    C.int w "epoch" epoch;
    C.int w "task_id" task_id
  | Switch_down { epoch; switch } ->
    C.section w "switch_down";
    C.int w "epoch" epoch;
    C.int w "switch" switch
  | Switch_up { epoch; switch } ->
    C.section w "switch_up";
    C.int w "epoch" epoch;
    C.int w "switch" switch
  | Task_end { epoch; task_id; kind; cause; arrived_at; active_epochs; satisfaction;
               mean_accuracy } ->
    C.section w "task_end";
    C.int w "epoch" epoch;
    C.int w "task_id" task_id;
    C.string w "kind" (Task_spec.kind_to_string kind);
    C.string w "cause" (cause_to_string cause);
    C.int w "arrived_at" arrived_at;
    C.int w "active_epochs" active_epochs;
    C.float w "satisfaction" satisfaction;
    C.float w "mean_accuracy" mean_accuracy

let kind_field r =
  let s = C.string_field r "kind" in
  match Task_spec.kind_of_string s with
  | Some k -> k
  | None -> C.parse_error 0 (Printf.sprintf "unknown task kind %S" s)

let decode_rule r make =
  let epoch = C.int_field r "epoch" in
  let task_id = C.int_field r "task_id" in
  let switch = C.int_field r "switch" in
  let s = C.string_field r "prefix" in
  match Prefix.of_string s with
  | prefix -> make ~epoch ~task_id ~switch ~prefix
  | exception Invalid_argument _ -> C.parse_error 0 (Printf.sprintf "invalid prefix %S" s)

let decode r =
  match C.peek_section r with
  | None -> C.parse_error 0 "expected a journal entry section"
  | Some name ->
    C.expect_section r name;
    (match name with
    | "admit" ->
      let epoch = C.int_field r "epoch" in
      let task_id = C.int_field r "task_id" in
      let duration = C.int_field r "duration" in
      let drop_priority = C.int_field r "drop_priority" in
      let accuracy_history = C.float_field r "accuracy_history" in
      let global_only = C.bool_field r "global_only" in
      let spec = Task_spec.parse r in
      let topology = Topology.parse r in
      let source =
        let escaped = C.string_field r "source" in
        try Scanf.unescaped escaped
        with Scanf.Scan_failure _ | Failure _ ->
          C.parse_error 0 "admit entry: undecodable source blob"
      in
      Admit { epoch; task_id; spec; topology; duration; drop_priority; accuracy_history;
              global_only; source }
    | "reject" ->
      let epoch = C.int_field r "epoch" in
      let task_id = C.int_field r "task_id" in
      let kind = kind_field r in
      Reject { epoch; task_id; kind }
    | "alloc" ->
      let epoch = C.int_field r "epoch" in
      let task_id = C.int_field r "task_id" in
      let switch = C.int_field r "switch" in
      let alloc = C.int_field r "alloc" in
      Alloc { epoch; task_id; switch; alloc }
    | "install" ->
      decode_rule r (fun ~epoch ~task_id ~switch ~prefix ->
          Install { epoch; task_id; switch; prefix })
    | "delete" ->
      decode_rule r (fun ~epoch ~task_id ~switch ~prefix ->
          Delete { epoch; task_id; switch; prefix })
    | "purge" ->
      let epoch = C.int_field r "epoch" in
      let task_id = C.int_field r "task_id" in
      Purge { epoch; task_id }
    | "switch_down" ->
      let epoch = C.int_field r "epoch" in
      let switch = C.int_field r "switch" in
      Switch_down { epoch; switch }
    | "switch_up" ->
      let epoch = C.int_field r "epoch" in
      let switch = C.int_field r "switch" in
      Switch_up { epoch; switch }
    | "task_end" ->
      let epoch = C.int_field r "epoch" in
      let task_id = C.int_field r "task_id" in
      let kind = kind_field r in
      let cause =
        let s = C.string_field r "cause" in
        match cause_of_string s with
        | Some c -> c
        | None -> C.parse_error 0 (Printf.sprintf "unknown end cause %S" s)
      in
      let arrived_at = C.int_field r "arrived_at" in
      let active_epochs = C.int_field r "active_epochs" in
      let satisfaction = C.float_field r "satisfaction" in
      let mean_accuracy = C.float_field r "mean_accuracy" in
      Task_end { epoch; task_id; kind; cause; arrived_at; active_epochs; satisfaction;
                 mean_accuracy }
    | other -> C.parse_error 0 (Printf.sprintf "unknown journal entry [%s]" other))

let entry_to_string e =
  let w = C.writer () in
  encode w e;
  C.contents w

let entries_of_string s =
  (* Every encoded line ends in '\n', so bytes after the last newline can
     only be a torn final append.  Drop them before parsing: a truncated
     value line ("0x1.9p-1" cut to "0x1.9") would otherwise still parse,
     silently recovering a corrupted value instead of dropping the torn
     entry. *)
  let s =
    match String.rindex_opt s '\n' with
    | Some i when i < String.length s - 1 -> String.sub s 0 (i + 1)
    | Some _ -> s
    | None -> ""
  in
  let r = C.reader_of_string s in
  let rec go acc =
    if C.at_end r then Ok (List.rev acc)
    else begin
      match decode r with
      | e -> go (e :: acc)
      | exception C.Parse_error err ->
        (* Only an incomplete *final* entry is forgivable: it means the
           writer died mid-append.  Anything with entries after it is
           corruption. *)
        let rec rest_has_section () =
          if C.at_end r then false
          else if C.peek_section r <> None then true
          else begin
            C.skip_line r;
            rest_has_section ()
          end
        in
        if rest_has_section () then Error (C.error_to_string err) else Ok (List.rev acc)
    end
  in
  go []

(* ---- sinks ---- *)

type backing = Memory | File of { path : string; mutable oc : out_channel }

type sink = {
  mutable entries_rev : entry list;
  mutable count : int;
  backing : backing;
  mutable closed : bool;
}

let memory () = { entries_rev = []; count = 0; backing = Memory; closed = false }

let file path =
  { entries_rev = []; count = 0; backing = File { path; oc = open_out path }; closed = false }

let check_open t op =
  if t.closed then invalid_arg (Printf.sprintf "Journal.%s: sink is closed" op)

let append t e =
  check_open t "append";
  t.entries_rev <- e :: t.entries_rev;
  t.count <- t.count + 1;
  match t.backing with
  | Memory -> ()
  | File f ->
    output_string f.oc (entry_to_string e);
    flush f.oc

let entries t = List.rev t.entries_rev

let length t = t.count

let flush t =
  check_open t "flush";
  match t.backing with Memory -> () | File f -> flush f.oc

let truncate t =
  check_open t "truncate";
  t.entries_rev <- [];
  t.count <- 0;
  match t.backing with
  | Memory -> ()
  | File f ->
    close_out f.oc;
    f.oc <- open_out f.path

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backing with Memory -> () | File f -> close_out f.oc
  end
