(** Runtime invariant checker.

    When enabled ({!Dream_core.Config} [check_invariants]), the controller
    runs {!check_all} at the end of every epoch and tallies violations in
    its robustness metrics.  The checks are properties the system must
    uphold at every epoch boundary, fault or no fault:

    - the DREAM allocator conserves capacity on every switch (allocations
      plus phantom headroom equal capacity, and headroom is never
      negative);
    - the sum of per-task allocations on a switch never exceeds its
      capacity, and neither does its installed rule count;
    - every task's counters form an exact disjoint partition of its flow
      filter (the divide-and-merge invariant);
    - a task never occupies more TCAM entries on a switch than it was
      allocated;
    - every rule installed on a switch belongs to a live task, and — on
      switches that are currently up — the installed set matches the
      task's configured counters exactly;
    - a torn epoch never leaves a rule count above capacity. *)

type violation = { code : string; detail : string }

val to_string : violation -> string

val check_all :
  allocator:Dream_alloc.Allocator.t ->
  switches:Dream_switch.Switch.t array ->
  up:(Dream_traffic.Switch_id.t -> bool) ->
  tasks:Dream_tasks.Task.t list ->
  violation list
(** [up] says whether a switch is currently reachable; rule-set equality
    is only asserted on reachable switches (a crashed switch has lost its
    table by design and is reconciled when it returns). *)
