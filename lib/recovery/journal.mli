(** Write-ahead journal of control-plane actions.

    Every externally visible decision the controller takes — admitting or
    rejecting a task, changing an allocation, installing or deleting a
    rule, observing a switch crash — is appended here {e before} its
    effects are applied.  Recovery after a controller crash is then: load
    the last checkpoint, replay the journal suffix in order, and reconcile
    each switch against the replayed expectation.

    Entries deliberately carry raw data (spec, topology, serialized
    source, record fields) rather than live objects, so replay can rebuild
    controller state without re-running any decision logic: the journal
    records {e outcomes}, and replay applies them verbatim.  This is what
    makes replay deterministic even though the original decisions depended
    on transient allocator state that is not checkpointed. *)

type end_cause = Completed | Dropped

type entry =
  | Admit of {
      epoch : int;
      task_id : int;
      spec : Dream_tasks.Task_spec.t;
      topology : Dream_traffic.Topology.t;
      duration : int;
      drop_priority : int;
      accuracy_history : float;
      global_only : bool;
      source : string;
          (** the task's traffic source, serialized at admission time
              ({!Dream_traffic.Source.emit}); replay fast-forwards it to
              the recovery epoch by discarding epochs, which consumes
              exactly the RNG draws the live run would have *)
    }
  | Reject of { epoch : int; task_id : int; kind : Dream_tasks.Task_spec.kind }
  | Alloc of { epoch : int; task_id : int; switch : Dream_traffic.Switch_id.t; alloc : int }
  | Install of {
      epoch : int;
      task_id : int;
      switch : Dream_traffic.Switch_id.t;
      prefix : Dream_prefix.Prefix.t;
    }
  | Delete of {
      epoch : int;
      task_id : int;
      switch : Dream_traffic.Switch_id.t;
      prefix : Dream_prefix.Prefix.t;
    }
  | Purge of { epoch : int; task_id : int }
      (** all rules of a task removed everywhere (task ended or dropped) *)
  | Switch_down of { epoch : int; switch : Dream_traffic.Switch_id.t }
      (** the switch crashed: its TCAM contents are gone *)
  | Switch_up of { epoch : int; switch : Dream_traffic.Switch_id.t }
  | Task_end of {
      epoch : int;
      task_id : int;
      kind : Dream_tasks.Task_spec.kind;
      cause : end_cause;
      arrived_at : int;
      active_epochs : int;
      satisfaction : float;
      mean_accuracy : float;
    }

val epoch_of : entry -> int

val entry_name : entry -> string
(** Stable lowercase tag per constructor ([Admit] -> ["admit"], …) — used
    to break down replayed journal suffixes in the telemetry trace. *)

val encode : Dream_util.Codec.writer -> entry -> unit

val decode : Dream_util.Codec.reader -> entry
(** @raise Dream_util.Codec.Parse_error on malformed input. *)

val entry_to_string : entry -> string

val entries_of_string : string -> (entry list, string) result
(** Parse a journal body.  A torn final entry (the classic crash-while-
    appending artifact) is dropped rather than rejected: everything before
    it was written completely and remains replayable.  The tail may be
    torn at {e any} byte — a trailing fragment with no final newline is
    discarded outright, never parsed, so a truncated value line cannot be
    recovered as a silently corrupted field.  A malformed entry
    {e followed by} further entries is a corruption, not a torn tail, and
    yields [Error]. *)

(** {1 Sinks} *)

type sink
(** An append-only destination.  The in-memory entry list is always
    maintained (recovery replays from it); a file-backed sink additionally
    appends each entry to disk and flushes, so the journal survives the
    process. *)

val memory : unit -> sink

val file : string -> sink
(** Opens (and truncates) [path] for appending.
    @raise Sys_error if the file cannot be opened. *)

val append : sink -> entry -> unit

val entries : sink -> entry list
(** All entries appended since the last {!truncate}, in append order. *)

val length : sink -> int

val flush : sink -> unit
(** Force buffered bytes of a file sink to the OS.  {!append} already
    flushes per entry; the controller additionally calls this at every
    checkpoint boundary so the on-disk journal can never trail the sealed
    snapshot even if the per-append flush discipline is ever relaxed.
    No-op for memory sinks. *)

val truncate : sink -> unit
(** Discard all entries — called right after a checkpoint is sealed, since
    recovery only ever needs the suffix after the last snapshot. *)

val close : sink -> unit
(** Flush and release the file handle.  Idempotent: closing twice is a
    no-op.  Any other operation on a closed sink raises
    [Invalid_argument] — a journal that silently dropped appends after
    close would be a torn tail the recovery path could never see. *)
