module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Task = Dream_tasks.Task
module Monitor = Dream_tasks.Monitor
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator

type violation = { code : string; detail : string }

let to_string v = Printf.sprintf "%s: %s" v.code v.detail

let violation code fmt = Printf.ksprintf (fun detail -> { code; detail }) fmt

let check_allocator ~allocator acc =
  match Allocator.dream allocator with
  | None -> acc
  | Some a -> begin
    match Dream_allocator.check_invariants a with
    | Ok () -> acc
    | Error msg -> violation "allocator-conservation" "%s" msg :: acc
  end

let alloc_on task sw =
  match Switch_id.Map.find_opt sw (Task.allocations task) with Some a -> a | None -> 0

let check_switch ~tasks sw acc =
  let id = Switch.id sw in
  let tcam = Switch.tcam sw in
  let acc =
    if Tcam.used tcam > Tcam.capacity tcam then
      violation "switch-capacity" "switch %d holds %d rules, capacity %d" id (Tcam.used tcam)
        (Tcam.capacity tcam)
      :: acc
    else acc
  in
  let allocated =
    List.fold_left (fun sum task -> sum + alloc_on task id) 0 tasks
  in
  let acc =
    if allocated > Switch.capacity sw then
      violation "switch-capacity" "switch %d allocations sum to %d, capacity %d" id allocated
        (Switch.capacity sw)
      :: acc
    else acc
  in
  (* Every installed rule must belong to a live task: remove_task purges a
     task's rules everywhere, so an unknown owner is leaked state. *)
  let live = List.fold_left (fun s t -> Task.id t :: s) [] tasks in
  List.fold_left
    (fun acc (owner, rules) ->
      if List.mem owner live then acc
      else
        violation "orphan-rules" "switch %d holds %d rules of dead task %d" id
          (List.length rules) owner
        :: acc)
    acc (Tcam.dump tcam)

let check_task ~switches ~up task acc =
  let id = Task.id task in
  let acc =
    if Monitor.is_partition (Task.monitor task) then acc
    else violation "partition" "task %d counters do not partition its filter" id :: acc
  in
  Switch_id.Set.fold
    (fun sw acc ->
      let alloc = alloc_on task sw in
      let used = Task.counters_used task sw in
      let acc =
        if used > alloc then
          violation "usage-within-allocation"
            "task %d configures %d counters on switch %d, allocated %d" id used sw alloc
          :: acc
        else acc
      in
      if not (up sw) then acc
      else begin
        let tcam = Switch.tcam switches.(sw) in
        let installed = Prefix.Set.of_list (Tcam.rules_of tcam ~owner:id) in
        let desired = Prefix.Set.of_list (Task.desired_rules task sw) in
        if Prefix.Set.equal installed desired then acc
        else
          violation "rules-match"
            "task %d on switch %d: %d rules installed, %d configured (%d stray, %d missing)" id
            sw
            (Prefix.Set.cardinal installed)
            (Prefix.Set.cardinal desired)
            (Prefix.Set.cardinal (Prefix.Set.diff installed desired))
            (Prefix.Set.cardinal (Prefix.Set.diff desired installed))
          :: acc
      end)
    (Task.switches task) acc

let check_all ~allocator ~switches ~up ~tasks =
  let acc = check_allocator ~allocator [] in
  let acc = Array.fold_right (fun sw acc -> check_switch ~tasks sw acc) switches acc in
  let acc = List.fold_left (fun acc t -> check_task ~switches ~up t acc) acc tasks in
  List.rev acc
