(** Expression-level allocation classifier for the [hot-path-alloc] pass.

    Purely syntactic: an expression is classified by what it {e spells},
    not by what flambda may later unbox — so the classifier is
    deterministic across compiler flags and errs on the side of
    reporting.  The classes mirror where the zero-alloc work found words
    going: structural constructors (tuples, records, variants with
    payloads, list/array literals), closures and partial applications,
    append-style builders ([@], [^], [List.append], [String.concat] and
    friends), boxed-float producers (the [+.] family, [float_of_int]),
    [Printf]/[Format] calls, and a curated list of allocating stdlib
    entry points ([List.map], [Array.make], [Hashtbl.create], ...). *)

type t =
  | Tuple
  | Record
  | Variant of string  (** constructor applied to a payload, e.g. ["Some"] *)
  | List_literal  (** a [::] spine; reported once at the head cons *)
  | Array_literal
  | Closure  (** [fun]/[function] nested inside a body *)
  | Partial_app of string  (** under-saturated call to a known intra-repo function *)
  | Append of string  (** [@], [^], [List.append], [String.concat], ... *)
  | Boxed_float of string  (** [+.]-family result, [float_of_int], ... *)
  | Format_call of string  (** any [Printf.*] / [Format.*] application *)
  | Alloc_fn of string  (** known allocating stdlib function *)

val id : t -> string
(** Short stable class tag for messages and tests: ["tuple"], ["record"],
    ["variant"], ["list"], ["array"], ["closure"], ["partial-app"],
    ["append"], ["boxed-float"], ["format"], ["alloc-fn"]. *)

val describe : t -> string
(** One-clause human description, e.g.
    ["tuple construction"] or ["partial application of Task.configure"]. *)

val classify :
  ?arity_of:(Longident.t -> int option) -> Parsetree.expression -> t option
(** Classify one expression node ([None] = does not allocate, as far as
    syntax can tell).  [arity_of] resolves intra-repo function arities for
    partial-application detection; absent or returning [None] means
    "assume saturated".  The caller owns traversal — [classify] never
    recurses, so a [::] spine classifies at every cons and the caller
    deduplicates (see {!cons_tail}). *)

val cons_tail : Parsetree.expression -> Parsetree.expression option
(** The tail expression of a [::] application, for spine deduplication:
    the caller marks it visited so a list literal reports once. *)
