(** Whole-repo, deterministic intra-repo call graph over parsetrees.

    Nodes are top-level value bindings (including bindings inside named
    top-level submodules, tracked as ["Sub.f"]); an edge [a -> b] exists
    when [a]'s body mentions an identifier that resolves to [b].
    Mentioning is enough — a function passed as an argument is an edge,
    which is the conservative direction for reachability analyses: a
    first-class use can always end in a call.

    Resolution is purely syntactic and module-qualified: [f] resolves in
    the defining file, [M.f] through the repo-wide module index (every
    file [m.ml] declares module [M]; ambiguous module names resolve to
    every candidate), [Dream_lib.M.f] through the library prefix (maps to
    [lib/lib/m.ml]), and simple top-level aliases ([module O = Dream_obs])
    and top-level [open]s are expanded one step.  What cannot be resolved
    — functor applications, [Lapply], computed functions — contributes no
    edge; the analysis documents that loophole rather than guessing.

    Entry points are bindings carrying a [[@hot]] (or [[@@hot]])
    attribute.  {!reachable_from_hot} is a breadth-first closure from the
    sorted entry set, each node paired with one witness call chain, so a
    finding can say {e how} the hot loop reaches the allocation. *)

type node = {
  n_file : string;  (** path as given to {!build} *)
  n_module : string;  (** file-level module name, e.g. ["Controller"] *)
  n_name : string;  (** binding name, possibly ["Sub.f"] for submodule bindings *)
  n_loc : Location.t;
  n_hot : bool;  (** carries a [[@hot]] attribute *)
  n_arity : int;  (** syntactic arity: leading [fun]/[function] parameters *)
  n_binding : Parsetree.value_binding;
}

type t

val build : (string * Parsetree.structure) list -> t
(** Build the graph from [(path, parsetree)] pairs; order-insensitive
    (internal order is sorted by path). *)

val nodes : t -> node list
(** All nodes, sorted by (file, name). *)

val hot_roots : t -> node list
(** The [[@hot]]-annotated entry set, sorted by (file, name). *)

val reachable_from_hot : t -> (node * string list) list
(** Breadth-first closure from {!hot_roots}.  Each reachable node comes
    with a witness chain of ["Module.name"] labels, entry point first and
    the node itself last; the chain is deterministic (BFS over sorted
    nodes and sorted successor lists).  Includes the roots themselves
    (singleton chains). *)

val label : node -> string
(** ["Module.name"], the spelling used in chains and findings. *)

val arity_of_ident : t -> file:string -> Longident.t -> int option
(** Resolve an identifier as {!build} did, from the viewpoint of [file];
    [Some arity] when it names exactly one known function of non-zero
    arity, [None] on ambiguity or unknowns (callers must treat [None] as
    "assume saturated"). *)

(** {2 Parsetree helpers shared with the engine's passes} *)

val qualified : Longident.t -> string list
(** Flatten a [Longident.t], stripping a leading [Stdlib]; [[]] for
    [Lapply]. *)

val top_bindings : Parsetree.structure -> (string * Parsetree.value_binding) list
(** Top-level value bindings in declaration order, descending into named
    top-level submodules with dotted names (["Sub.f"]). *)

val arity_of_expr : Parsetree.expression -> int
(** Syntactic arity: the leading [fun]/[function] parameter spine. *)
