module Json = Dream_obs.Json

type severity = Error | Warning

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
}

let v ~rule ~file ~line ~col ~severity message = { rule; file; line; col; severity; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s" t.file t.line t.col
    (severity_to_string t.severity)
    t.rule t.message

let to_json t =
  Json.Obj
    [
      ("rule", Json.Str t.rule);
      ("file", Json.Str t.file);
      ("line", Json.Int t.line);
      ("col", Json.Int t.col);
      ("severity", Json.Str (severity_to_string t.severity));
      ("message", Json.Str t.message);
    ]

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let field k = function Some v -> Ok v | None -> Error ("finding: bad field " ^ k) in
  let ( let* ) = Result.bind in
  let* rule = field "rule" (str "rule") in
  let* file = field "file" (str "file") in
  let* line = field "line" (int "line") in
  let* col = field "col" (int "col") in
  let* severity = field "severity" (Option.bind (str "severity") severity_of_string) in
  let* message = field "message" (str "message") in
  Ok { rule; file; line; col; severity; message }
