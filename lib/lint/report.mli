(** Reporters over a finding list.  Both write to an explicit formatter,
    so the library never touches stdout on its own.

    [?baseline] is the [(baselined, new)] pair from the ratchet gate
    (counts of findings covered vs. not covered by the committed
    {!Baseline}); when given, both renderers append it to the summary. *)

val version : int
(** Report schema version (2: adds [by_rule] and the optional baseline
    summary fields). *)

val by_rule : Finding.t list -> (string * int) list
(** Finding counts per rule id, sorted by rule. *)

val text : ?baseline:int * int -> Format.formatter -> Finding.t list -> unit
(** One compiler-style line per finding, then a summary line
    ([N findings (E errors, W warnings)] or [no findings]) and the
    per-rule counts. *)

val json : ?baseline:int * int -> Format.formatter -> Finding.t list -> unit
(** A single JSON object [{"version": 2, "count": N, "errors": E,
    "warnings": W, "by_rule": {...}, "findings": [...]}] rendered
    through {!Dream_obs.Json}, newline-terminated.  Machine-readable and
    re-parseable by the same codec ({!of_json_string}). *)

val to_json : ?baseline:int * int -> Finding.t list -> Dream_obs.Json.t

val of_json_string : string -> (Finding.t list, string) result
(** Parse a report produced by {!json} back into findings — the CI
    artifact stays readable by the repo's own tooling.  Accepts both
    version 1 and version 2 documents (only [findings] is read). *)
