(** Reporters over a finding list.  Both write to an explicit formatter,
    so the library never touches stdout on its own. *)

val text : Format.formatter -> Finding.t list -> unit
(** One compiler-style line per finding, then a summary line
    ([N findings (E errors, W warnings)] or [no findings]). *)

val json : Format.formatter -> Finding.t list -> unit
(** A single JSON object [{"version": 1, "count": N, "errors": E,
    "warnings": W, "findings": [...]}] rendered through
    {!Dream_obs.Json}, newline-terminated.  Machine-readable and
    re-parseable by the same codec ({!of_json_string}). *)

val to_json : Finding.t list -> Dream_obs.Json.t

val of_json_string : string -> (Finding.t list, string) result
(** Parse a report produced by {!json} back into findings — the CI
    artifact stays readable by the repo's own tooling. *)
