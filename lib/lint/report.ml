module Json = Dream_obs.Json

let version = 2

let count_severity findings =
  List.fold_left
    (fun (errors, warnings) (f : Finding.t) ->
      match f.Finding.severity with
      | Finding.Error -> (errors + 1, warnings)
      | Finding.Warning -> (errors, warnings + 1))
    (0, 0) findings

let by_rule findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      Hashtbl.replace tbl f.Finding.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.Finding.rule)))
    findings;
  Hashtbl.fold (fun r c acc -> (r, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let text ?baseline ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) findings;
  (match findings with
  | [] -> Format.fprintf ppf "no findings@."
  | _ ->
    let errors, warnings = count_severity findings in
    Format.fprintf ppf "%d finding%s (%d error%s, %d warning%s)@." (List.length findings)
      (if List.length findings = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s");
    List.iter (fun (rule, n) -> Format.fprintf ppf "  %s: %d@." rule n) (by_rule findings));
  match baseline with
  | None -> ()
  | Some (baselined, fresh) ->
    Format.fprintf ppf "baseline: %d finding%s baselined, %d new@." baselined
      (if baselined = 1 then "" else "s")
      fresh

let to_json ?baseline findings =
  let errors, warnings = count_severity findings in
  Json.Obj
    ([
       ("version", Json.Int version);
       ("count", Json.Int (List.length findings));
       ("errors", Json.Int errors);
       ("warnings", Json.Int warnings);
       ("by_rule", Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (by_rule findings)));
     ]
    @ (match baseline with
      | None -> []
      | Some (baselined, fresh) ->
        [ ("baselined", Json.Int baselined); ("new", Json.Int fresh) ])
    @ [ ("findings", Json.List (List.map Finding.to_json findings)) ])

let json ?baseline ppf findings =
  Format.fprintf ppf "%s@." (Json.to_string (to_json ?baseline findings))

let of_json_string s =
  let ( let* ) = Result.bind in
  let* j = Json.of_string s in
  match Json.member "findings" j with
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* fs = acc in
        let* f = Finding.of_json item in
        Ok (f :: fs))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "report: missing findings list"
