module Json = Dream_obs.Json

let count_severity findings =
  List.fold_left
    (fun (errors, warnings) (f : Finding.t) ->
      match f.Finding.severity with
      | Finding.Error -> (errors + 1, warnings)
      | Finding.Warning -> (errors, warnings + 1))
    (0, 0) findings

let text ppf findings =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) findings;
  match findings with
  | [] -> Format.fprintf ppf "no findings@."
  | _ ->
    let errors, warnings = count_severity findings in
    Format.fprintf ppf "%d finding%s (%d error%s, %d warning%s)@." (List.length findings)
      (if List.length findings = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")

let to_json findings =
  let errors, warnings = count_severity findings in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("count", Json.Int (List.length findings));
      ("errors", Json.Int errors);
      ("warnings", Json.Int warnings);
      ("findings", Json.List (List.map Finding.to_json findings));
    ]

let json ppf findings = Format.fprintf ppf "%s@." (Json.to_string (to_json findings))

let of_json_string s =
  let ( let* ) = Result.bind in
  let* j = Json.of_string s in
  match Json.member "findings" j with
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* fs = acc in
        let* f = Finding.of_json item in
        Ok (f :: fs))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "report: missing findings list"
