open Parsetree

type t =
  | Tuple
  | Record
  | Variant of string
  | List_literal
  | Array_literal
  | Closure
  | Partial_app of string
  | Append of string
  | Boxed_float of string
  | Format_call of string
  | Alloc_fn of string

let id = function
  | Tuple -> "tuple"
  | Record -> "record"
  | Variant _ -> "variant"
  | List_literal -> "list"
  | Array_literal -> "array"
  | Closure -> "closure"
  | Partial_app _ -> "partial-app"
  | Append _ -> "append"
  | Boxed_float _ -> "boxed-float"
  | Format_call _ -> "format"
  | Alloc_fn _ -> "alloc-fn"

let describe = function
  | Tuple -> "tuple construction"
  | Record -> "record construction"
  | Variant c -> Printf.sprintf "variant %s with a payload" c
  | List_literal -> "list construction"
  | Array_literal -> "array literal"
  | Closure -> "closure construction"
  | Partial_app f -> Printf.sprintf "partial application of %s" f
  | Append f -> Printf.sprintf "%s builds a fresh copy" f
  | Boxed_float f -> Printf.sprintf "%s boxes its float result" f
  | Format_call f -> Printf.sprintf "%s allocates format machinery" f
  | Alloc_fn f -> Printf.sprintf "%s allocates its result" f

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let qualified lid =
  match flatten lid with "Stdlib" :: rest -> rest | parts -> parts

let append_fns =
  [
    "@"; "^"; "List.append"; "List.concat"; "List.concat_map"; "List.flatten";
    "Array.append"; "Array.concat"; "String.concat"; "String.cat"; "Bytes.cat";
  ]

(* Only conversions, deliberately: local float *arithmetic* ([+.], [*.],
   ...) is unboxed by ocamlopt, so flagging every operator would drown
   the report in non-allocations.  A conversion result handed onward is
   the syntactic shape that reliably ends up boxed (stored, returned, or
   passed as a polymorphic argument). *)
let float_producers =
  [ "float_of_int"; "float_of_string"; "Float.of_int"; "Float.of_string" ]

(* Curated allocating stdlib entry points that show up in this codebase's
   hot paths; anything missing is a documented loophole, not a bug. *)
let alloc_fns =
  [
    "List.map"; "List.mapi"; "List.map2"; "List.rev"; "List.rev_append";
    "List.rev_map"; "List.filter"; "List.filter_map"; "List.init"; "List.sort";
    "List.stable_sort"; "List.sort_uniq"; "List.split"; "List.combine";
    "List.of_seq"; "List.to_seq";
    "Array.make"; "Array.init"; "Array.create_float"; "Array.make_matrix";
    "Array.copy"; "Array.sub"; "Array.map"; "Array.mapi"; "Array.to_list";
    "Array.of_list"; "Array.of_seq";
    "String.make"; "String.init"; "String.sub"; "String.map"; "String.split_on_char";
    "String.to_seq"; "String.uppercase_ascii"; "String.lowercase_ascii";
    "String.capitalize_ascii";
    "Bytes.make"; "Bytes.create"; "Bytes.init"; "Bytes.sub"; "Bytes.copy";
    "Bytes.of_string"; "Bytes.to_string"; "Bytes.sub_string";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.fold"; "Hashtbl.to_seq";
    "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes";
    "Queue.create"; "Stack.create"; "ref";
    "string_of_int"; "string_of_float"; "Int.to_string"; "Float.to_string";
    "Option.map"; "Option.some"; "Option.to_list"; "Result.map"; "Result.bind";
  ]

let head_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match qualified txt with [] -> None | parts -> Some (String.concat "." parts))
  | _ -> None

let head_lid e = match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let is_format_call name =
  String.length name > 7
  && (String.sub name 0 7 = "Printf." || String.sub name 0 7 = "Format.")

let cons_tail e =
  match e.pexp_desc with
  | Pexp_construct
      ({ txt = Longident.Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ _; tl ]; _ }) ->
    Some tl
  | _ -> None

let classify ?arity_of e =
  match e.pexp_desc with
  | Pexp_tuple _ -> Some Tuple
  | Pexp_record _ -> Some Record
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) -> Some List_literal
  | Pexp_construct ({ txt; _ }, Some _) -> (
    match qualified txt with
    | [] -> None
    | parts -> Some (Variant (String.concat "." parts)))
  | Pexp_variant (_, Some _) -> Some (Variant "`poly")
  | Pexp_array (_ :: _) -> Some Array_literal
  | Pexp_fun _ | Pexp_function _ -> Some Closure
  | Pexp_lazy _ -> Some Closure
  | Pexp_apply (f, args) -> (
    match head_name f with
    | None -> None
    | Some name ->
      if List.mem name append_fns then Some (Append name)
      else if List.mem name float_producers then Some (Boxed_float name)
      else if is_format_call name then Some (Format_call name)
      else if List.mem name alloc_fns then Some (Alloc_fn name)
      else
        let arity =
          match (arity_of, head_lid f) with
          | Some fn, Some lid -> fn lid
          | _ -> None
        in
        (match arity with
        | Some a when List.length args < a -> Some (Partial_app name)
        | _ -> None))
  | _ -> None
