open Parsetree

let parse_error_rule = "parse-error"
let unused_suppression_rule = "unused-suppression"

type suppression = {
  s_rule : string;
  s_region : Location.t;
  s_attr_loc : Location.t;
  s_file_level : bool;
  mutable s_used : bool;
}

let position_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Inclusive containment of a point in a node's source range. *)
let within region (line, col) =
  let s = region.Location.loc_start and e = region.Location.loc_end in
  let after_start =
    line > s.Lexing.pos_lnum
    || (line = s.Lexing.pos_lnum && col >= s.Lexing.pos_cnum - s.Lexing.pos_bol)
  in
  let before_end =
    line < e.Lexing.pos_lnum
    || (line = e.Lexing.pos_lnum && col <= e.Lexing.pos_cnum - e.Lexing.pos_bol)
  in
  after_start && before_end

let allow_payload attr =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (rule, _, _)); _ }, _);
          _;
        };
      ] ->
    Ok rule
  | _ -> Error "expected a string literal rule id, as in [@lint.allow \"rule-id\"]"

let finding_at ~rule ~file ~severity loc message =
  let line, col = position_of loc in
  Finding.v ~rule ~file ~line ~col ~severity message

let parse path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
    Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexing error")
  | exception exn -> Error (Location.in_file path, "cannot parse: " ^ Printexc.to_string exn)

let lint_string ?(rules = Rules.all) ~path src =
  let active = List.filter (fun (r : Rules.t) -> r.Rules.applies path) rules in
  match parse path src with
  | Error (loc, msg) ->
    [ finding_at ~rule:parse_error_rule ~file:path ~severity:Finding.Error loc msg ]
  | Ok structure ->
    let findings = ref [] in
    let suppressions = ref [] in
    let meta ~loc message =
      findings :=
        finding_at ~rule:unused_suppression_rule ~file:path ~severity:Finding.Warning loc
          message
        :: !findings
    in
    let emit_for (r : Rules.t) ~loc message =
      findings :=
        finding_at ~rule:r.Rules.id ~file:path ~severity:r.Rules.severity loc message
        :: !findings
    in
    let register ~file_level ~region attrs =
      List.iter
        (fun attr ->
          if attr.attr_name.Location.txt = "lint.allow" then
            match allow_payload attr with
            | Error msg -> meta ~loc:attr.attr_loc ("malformed [@lint.allow]: " ^ msg)
            | Ok rule when not (List.mem rule Rules.ids) ->
              meta ~loc:attr.attr_loc
                (Printf.sprintf "[@lint.allow %S] names an unknown rule" rule)
            | Ok rule ->
              suppressions :=
                {
                  s_rule = rule;
                  s_region = region;
                  s_attr_loc = attr.attr_loc;
                  s_file_level = file_level;
                  s_used = false;
                }
                :: !suppressions)
        attrs
    in
    let expr_rules = List.filter (fun (r : Rules.t) -> r.Rules.expr <> None) active in
    let mod_rules = List.filter (fun (r : Rules.t) -> r.Rules.module_expr <> None) active in
    let default = Ast_iterator.default_iterator in
    let iterator =
      {
        default with
        Ast_iterator.expr =
          (fun it e ->
            register ~file_level:false ~region:e.pexp_loc e.pexp_attributes;
            List.iter
              (fun (r : Rules.t) ->
                match r.Rules.expr with Some hook -> hook ~emit:(emit_for r) e | None -> ())
              expr_rules;
            default.Ast_iterator.expr it e);
        Ast_iterator.module_expr =
          (fun it m ->
            List.iter
              (fun (r : Rules.t) ->
                match r.Rules.module_expr with
                | Some hook -> hook ~emit:(emit_for r) m
                | None -> ())
              mod_rules;
            default.Ast_iterator.module_expr it m);
        Ast_iterator.value_binding =
          (fun it vb ->
            register ~file_level:false ~region:vb.pvb_loc vb.pvb_attributes;
            default.Ast_iterator.value_binding it vb);
        Ast_iterator.structure_item =
          (fun it si ->
            (match si.pstr_desc with
            | Pstr_attribute attr -> register ~file_level:true ~region:si.pstr_loc [ attr ]
            | _ -> ());
            default.Ast_iterator.structure_item it si);
      }
    in
    iterator.Ast_iterator.structure iterator structure;
    List.iter
      (fun (r : Rules.t) ->
        match r.Rules.file with
        | Some hook -> hook ~emit:(emit_for r) ~path structure
        | None -> ())
      active;
    (* Suppression pass: a finding survives unless an allow for its rule
       covers its position; every allow that fires is marked used. *)
    let suppressed (f : Finding.t) =
      let matching =
        List.filter
          (fun s ->
            s.s_rule = f.Finding.rule
            && (s.s_file_level || within s.s_region (f.Finding.line, f.Finding.col)))
          !suppressions
      in
      List.iter (fun s -> s.s_used <- true) matching;
      matching <> []
    in
    let kept = List.filter (fun f -> not (suppressed f)) !findings in
    let active_ids = List.map (fun (r : Rules.t) -> r.Rules.id) active in
    let unused =
      List.filter_map
        (fun s ->
          (* Only site-level allows must pay their way, and only when the
             rule they name actually ran on this file. *)
          if s.s_used || s.s_file_level || not (List.mem s.s_rule active_ids) then None
          else
            Some
              (finding_at ~rule:unused_suppression_rule ~file:path ~severity:Finding.Warning
                 s.s_attr_loc
                 (Printf.sprintf "[@lint.allow %S] suppresses nothing; remove it" s.s_rule)))
        !suppressions
    in
    List.sort Finding.compare (kept @ unused)

let lint_file ?rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> lint_string ?rules ~path src
  | exception Sys_error msg ->
    [
      Finding.v ~rule:parse_error_rule ~file:path ~line:1 ~col:0 ~severity:Finding.Error
        ("cannot read file: " ^ msg);
    ]
