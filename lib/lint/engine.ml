open Parsetree

let parse_error_rule = "parse-error"
let unused_suppression_rule = "unused-suppression"

type suppression = {
  s_rule : string;
  s_region : Location.t;
  s_attr_loc : Location.t;
  s_file_level : bool;
  mutable s_used : bool;
}

let position_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Inclusive containment of a point in a node's source range. *)
let within region (line, col) =
  let s = region.Location.loc_start and e = region.Location.loc_end in
  let after_start =
    line > s.Lexing.pos_lnum
    || (line = s.Lexing.pos_lnum && col >= s.Lexing.pos_cnum - s.Lexing.pos_bol)
  in
  let before_end =
    line < e.Lexing.pos_lnum
    || (line = e.Lexing.pos_lnum && col <= e.Lexing.pos_cnum - e.Lexing.pos_bol)
  in
  after_start && before_end

let string_payload attr =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Ok s
  | _ -> Error "expected a string literal"

let allow_payload attr =
  match string_payload attr with
  | Ok rule -> Ok rule
  | Error _ -> Error "expected a string literal rule id, as in [@lint.allow \"rule-id\"]"

let finding_at ~rule ~file ~severity loc message =
  let line, col = position_of loc in
  Finding.v ~rule ~file ~line ~col ~severity message

let parse path src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
    Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexing error")
  | exception exn -> Error (Location.in_file path, "cannot parse: " ^ Printexc.to_string exn)

(* ---- the per-file layer: syntactic rules plus [@lint.allow] ---- *)

let lint_parsed ?(extra = []) ~rules ~path structure =
  let active = List.filter (fun (r : Rules.t) -> r.Rules.applies path) rules in
  let findings = ref extra in
  let suppressions = ref [] in
  let meta ~loc message =
    findings :=
      finding_at ~rule:unused_suppression_rule ~file:path ~severity:Finding.Warning loc
        message
      :: !findings
  in
  let emit_for (r : Rules.t) ~loc message =
    findings :=
      finding_at ~rule:r.Rules.id ~file:path ~severity:r.Rules.severity loc message
      :: !findings
  in
  let register ~file_level ~region attrs =
    List.iter
      (fun attr ->
        if attr.attr_name.Location.txt = "lint.allow" then
          match allow_payload attr with
          | Error msg -> meta ~loc:attr.attr_loc ("malformed [@lint.allow]: " ^ msg)
          | Ok rule when not (List.mem rule Rules.ids) ->
            meta ~loc:attr.attr_loc
              (Printf.sprintf "[@lint.allow %S] names an unknown rule" rule)
          | Ok rule ->
            suppressions :=
              {
                s_rule = rule;
                s_region = region;
                s_attr_loc = attr.attr_loc;
                s_file_level = file_level;
                s_used = false;
              }
              :: !suppressions)
      attrs
  in
  let expr_rules = List.filter (fun (r : Rules.t) -> r.Rules.expr <> None) active in
  let mod_rules = List.filter (fun (r : Rules.t) -> r.Rules.module_expr <> None) active in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          register ~file_level:false ~region:e.pexp_loc e.pexp_attributes;
          List.iter
            (fun (r : Rules.t) ->
              match r.Rules.expr with Some hook -> hook ~emit:(emit_for r) e | None -> ())
            expr_rules;
          default.Ast_iterator.expr it e);
      Ast_iterator.module_expr =
        (fun it m ->
          List.iter
            (fun (r : Rules.t) ->
              match r.Rules.module_expr with
              | Some hook -> hook ~emit:(emit_for r) m
              | None -> ())
            mod_rules;
          default.Ast_iterator.module_expr it m);
      Ast_iterator.value_binding =
        (fun it vb ->
          register ~file_level:false ~region:vb.pvb_loc vb.pvb_attributes;
          default.Ast_iterator.value_binding it vb);
      Ast_iterator.structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute attr -> register ~file_level:true ~region:si.pstr_loc [ attr ]
          | _ -> ());
          default.Ast_iterator.structure_item it si);
    }
  in
  iterator.Ast_iterator.structure iterator structure;
  List.iter
    (fun (r : Rules.t) ->
      match r.Rules.file with
      | Some hook -> hook ~emit:(emit_for r) ~path structure
      | None -> ())
    active;
  (* Suppression pass: a finding survives unless an allow for its rule
     covers its position; every allow that fires is marked used. *)
  let suppressed (f : Finding.t) =
    let matching =
      List.filter
        (fun s ->
          s.s_rule = f.Finding.rule
          && (s.s_file_level || within s.s_region (f.Finding.line, f.Finding.col)))
        !suppressions
    in
    List.iter (fun s -> s.s_used <- true) matching;
    matching <> []
  in
  let kept = List.filter (fun f -> not (suppressed f)) !findings in
  let active_ids = List.map (fun (r : Rules.t) -> r.Rules.id) active in
  let unused =
    List.filter_map
      (fun s ->
        (* Only site-level allows must pay their way, and only when the
           rule they name actually ran on this file. *)
        if s.s_used || s.s_file_level || not (List.mem s.s_rule active_ids) then None
        else
          Some
            (finding_at ~rule:unused_suppression_rule ~file:path ~severity:Finding.Warning
               s.s_attr_loc
               (Printf.sprintf "[@lint.allow %S] suppresses nothing; remove it" s.s_rule)))
      !suppressions
  in
  List.sort Finding.compare (kept @ unused)

(* ---- interprocedural pass: domain-safety ---- *)

(* Field names declared [mutable] anywhere in the repo: a toplevel record
   literal touching one of them is mutable module state even when the
   type lives in another file. *)
let mutable_field_names parsed =
  let set = Hashtbl.create 32 in
  List.iter
    (fun (_, structure) ->
      let default = Ast_iterator.default_iterator in
      let it =
        {
          default with
          Ast_iterator.type_declaration =
            (fun it td ->
              (match td.ptype_kind with
              | Ptype_record labels ->
                List.iter
                  (fun l ->
                    if l.pld_mutable = Asttypes.Mutable then
                      Hashtbl.replace set l.pld_name.Location.txt ())
                  labels
              | _ -> ());
              default.Ast_iterator.type_declaration it td);
        }
      in
      it.Ast_iterator.structure it structure)
    parsed;
  set

let rec result_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e', _)
  | Pexp_open (_, e')
  | Pexp_sequence (_, e')
  | Pexp_let (_, _, e') ->
    result_expr e'
  | _ -> e

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Callgraph.qualified txt with [] -> None | parts -> Some parts)
  | _ -> None

let last_segment name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* What kind of mutable state does this toplevel value create?  [Atomic]
   is deliberately absent: atomics are the domain-safe primitive the
   finding suggests migrating to. *)
let mutable_kind ~mut_fields e =
  let e = result_expr e in
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
    match ident_path f with
    | Some [ "ref" ] -> Some "ref cell"
    | Some [ "Hashtbl"; ("create" | "copy" | "of_seq") ] -> Some "Hashtbl"
    | Some [ "Buffer"; "create" ] -> Some "Buffer"
    | Some [ "Queue"; "create" ] -> Some "Queue"
    | Some [ "Stack"; "create" ] -> Some "Stack"
    | Some [ "Array"; ("make" | "init" | "create_float" | "make_matrix" | "copy" | "of_list") ]
      ->
      Some "array"
    | Some [ "Bytes"; ("create" | "make" | "init" | "of_string") ] -> Some "mutable bytes"
    | Some ("Bigarray" :: _) -> Some "Bigarray"
    | _ -> None)
  | Pexp_array (_ :: _) -> Some "array"
  | Pexp_record (fields, _)
    when List.exists
           (fun (({ txt; _ } : Longident.t Location.loc), _) ->
             match List.rev (Callgraph.qualified txt) with
             | [] -> false
             | field :: _ -> Hashtbl.mem mut_fields field)
           fields ->
    Some "record with mutable fields"
  | _ -> None

let mentions_ident name e =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match ident_path e with
          | Some parts -> (
            match List.rev parts with
            | leaf :: _ when leaf = name -> found := true
            | _ -> ())
          | None -> ());
          if not !found then default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  !found

let domain_safety_findings ~severity parsed =
  let mut_fields = mutable_field_names parsed in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (path, structure) ->
      let bindings = Callgraph.top_bindings structure in
      let file_findings =
        List.filter_map
          (fun (name, vb) ->
            (* Functions construct per call, not at module init. *)
            if Callgraph.arity_of_expr vb.pvb_expr > 0 then None
            else
              match mutable_kind ~mut_fields vb.pvb_expr with
              | None -> None
              | Some kind ->
                let short = last_segment name in
                let siblings =
                  List.length
                    (List.filter
                       (fun (name', vb') ->
                         name' <> name && mentions_ident short vb'.pvb_expr)
                       bindings)
                in
                Some
                  (finding_at ~rule:Rules.domain_safety_id ~file:path ~severity vb.pvb_loc
                     (Printf.sprintf
                        "toplevel mutable state (%s) is shared by every domain once the \
                         sharded controller fans out; referenced by %d sibling top-level \
                         binding%s — pass it to callers explicitly or guard it with a \
                         domain-safe primitive"
                        kind siblings
                        (if siblings = 1 then "" else "s"))))
          bindings
      in
      if file_findings <> [] then Hashtbl.replace tbl path file_findings)
    parsed;
  tbl

(* ---- interprocedural pass: hot-path-alloc ---- *)

type alloc_allow = {
  a_file : string;
  a_region : Location.t;
  a_attr_loc : Location.t;
  mutable a_used : bool;
}

let alloc_allow_name = "alloc.allow"

(* Every [@alloc.allow "reason"] in the repo, wherever it sits: allows in
   code that later drops out of the hot set must be cleaned up, so all of
   them are subject to the unused check. *)
let collect_alloc_allows parsed =
  let allows = ref [] and malformed = ref [] in
  List.iter
    (fun (path, structure) ->
      let register ~region attrs =
        List.iter
          (fun attr ->
            if attr.attr_name.Location.txt = alloc_allow_name then
              match string_payload attr with
              | Ok reason when String.trim reason <> "" ->
                allows :=
                  { a_file = path; a_region = region; a_attr_loc = attr.attr_loc; a_used = false }
                  :: !allows
              | Ok _ | Error _ ->
                malformed :=
                  finding_at ~rule:unused_suppression_rule ~file:path
                    ~severity:Finding.Warning attr.attr_loc
                    "malformed [@alloc.allow]: expected a non-empty reason string, as in \
                     [@alloc.allow \"tuple is the public API\"]"
                  :: !malformed)
          attrs
      in
      let default = Ast_iterator.default_iterator in
      let it =
        {
          default with
          Ast_iterator.expr =
            (fun it e ->
              register ~region:e.pexp_loc e.pexp_attributes;
              default.Ast_iterator.expr it e);
          Ast_iterator.value_binding =
            (fun it vb ->
              register ~region:vb.pvb_loc vb.pvb_attributes;
              default.Ast_iterator.value_binding it vb);
        }
      in
      it.Ast_iterator.structure it structure)
    parsed;
  (!allows, !malformed)

(* Walk one reachable binding body for allocation sites.  The leading
   parameter spine is peeled (defining a function is not an allocation on
   the path that calls it); everything underneath is classified. *)
let walk_hot_body ~graph ~file ~emit body =
  let skip = Hashtbl.create 8 in
  let arity_of lid = Callgraph.arity_of_ident graph ~file lid in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (* A constructor's immediate tuple payload is its argument list,
             not a separate tuple allocation; a [::] spine reports once at
             the head. *)
          (match e.pexp_desc with
          | Pexp_construct (_, Some ({ pexp_desc = Pexp_tuple _; _ } as payload)) ->
            Hashtbl.replace skip payload.pexp_loc ()
          | _ -> ());
          (match Alloc_class.cons_tail e with
          | Some tl -> Hashtbl.replace skip tl.pexp_loc ()
          | None -> ());
          (if not (Hashtbl.mem skip e.pexp_loc) then
             match Alloc_class.classify ~arity_of e with
             | Some cls -> emit ~loc:e.pexp_loc cls
             | None -> ());
          default.Ast_iterator.expr it e);
    }
  in
  let rec start e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> start b
    | Pexp_function cases ->
      List.iter
        (fun c ->
          Option.iter (it.Ast_iterator.expr it) c.pc_guard;
          it.Ast_iterator.expr it c.pc_rhs)
        cases
    | _ -> it.Ast_iterator.expr it e
  in
  start body

let hot_path_findings ~severity ~applies parsed =
  let graph = Callgraph.build parsed in
  let allows, malformed = collect_alloc_allows parsed in
  let findings = ref [] in
  List.iter
    (fun ((node : Callgraph.node), chain) ->
      let file = node.Callgraph.n_file in
      if applies file then begin
        let chain_s = String.concat " -> " chain in
        let emit ~loc cls =
          let line, col = position_of loc in
          let covering =
            List.filter
              (fun a -> a.a_file = file && within a.a_region (line, col))
              allows
          in
          if covering <> [] then List.iter (fun a -> a.a_used <- true) covering
          else
            findings :=
              Finding.v ~rule:Rules.hot_path_alloc_id ~file ~line ~col ~severity
                (Printf.sprintf
                   "%s on a hot path ([@hot] %s); hoist it, reuse arena scratch, or \
                    justify it with [@alloc.allow \"reason\"]"
                   (Alloc_class.describe cls) chain_s)
              :: !findings
        in
        walk_hot_body ~graph ~file ~emit node.Callgraph.n_binding.pvb_expr
      end)
    (Callgraph.reachable_from_hot graph);
  let unused =
    List.filter_map
      (fun a ->
        if a.a_used then None
        else
          Some
            (finding_at ~rule:unused_suppression_rule ~file:a.a_file
               ~severity:Finding.Warning a.a_attr_loc
               "[@alloc.allow] suppresses nothing (site not allocating, or no longer \
                reachable from a [@hot] entry); remove it"))
      allows
  in
  !findings @ malformed @ unused

(* ---- repo-level drivers ---- *)

let lint_string ?(rules = Rules.all) ?extra ~path src =
  match parse path src with
  | Error (loc, msg) ->
    [ finding_at ~rule:parse_error_rule ~file:path ~severity:Finding.Error loc msg ]
  | Ok structure -> lint_parsed ?extra ~rules ~path structure

let lint_file ?rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> lint_string ?rules ~path src
  | exception Sys_error msg ->
    [
      Finding.v ~rule:parse_error_rule ~file:path ~line:1 ~col:0 ~severity:Finding.Error
        ("cannot read file: " ^ msg);
    ]

let lint_sources ?(rules = Rules.all) sources =
  let parsed = List.map (fun (path, src) -> (path, parse path src)) sources in
  let oks =
    List.filter_map (function p, Ok s -> Some (p, s) | _, Error _ -> None) parsed
  in
  let find_rule id = List.find_opt (fun (r : Rules.t) -> r.Rules.id = id) rules in
  let domain_tbl =
    match find_rule Rules.domain_safety_id with
    | Some r ->
      domain_safety_findings ~severity:r.Rules.severity
        (List.filter (fun (p, _) -> r.Rules.applies p) oks)
    | None -> Hashtbl.create 1
  in
  let hot =
    match find_rule Rules.hot_path_alloc_id with
    | Some r -> hot_path_findings ~severity:r.Rules.severity ~applies:r.Rules.applies oks
    | None -> []
  in
  let per_file =
    List.concat_map
      (fun (path, res) ->
        match res with
        | Error (loc, msg) ->
          [ finding_at ~rule:parse_error_rule ~file:path ~severity:Finding.Error loc msg ]
        | Ok structure ->
          let extra =
            Option.value ~default:[] (Hashtbl.find_opt domain_tbl path)
          in
          lint_parsed ~extra ~rules ~path structure)
      parsed
  in
  List.sort Finding.compare (hot @ per_file)

let lint_files ?rules paths =
  let sources, unreadable =
    List.fold_left
      (fun (sources, unreadable) path ->
        match In_channel.with_open_bin path In_channel.input_all with
        | src -> ((path, src) :: sources, unreadable)
        | exception Sys_error msg ->
          ( sources,
            Finding.v ~rule:parse_error_rule ~file:path ~line:1 ~col:0
              ~severity:Finding.Error ("cannot read file: " ^ msg)
            :: unreadable ))
      ([], []) paths
  in
  List.sort Finding.compare (unreadable @ lint_sources ?rules (List.rev sources))

(* Deterministic recursive walk: sorted entries; [_build], [_opam] and
   dot-directories (and dot-files) skipped at every level. *)
let rec ml_files_under path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun entry ->
           (not (String.length entry > 0 && entry.[0] = '.'))
           && entry <> "_build" && entry <> "_opam")
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []
