open Parsetree

type emit = loc:Location.t -> string -> unit

type t = {
  id : string;
  doc : string;
  severity : Finding.severity;
  applies : string -> bool;
  expr : (emit:emit -> Parsetree.expression -> unit) option;
  module_expr : (emit:emit -> Parsetree.module_expr -> unit) option;
  file : (emit:emit -> path:string -> Parsetree.structure -> unit) option;
}

let rule ?expr ?module_expr ?file id ~doc ~severity ~applies =
  { id; doc; severity; applies; expr; module_expr; file }

(* ---- path policies ---- *)

let components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let in_lib path = List.mem "lib" (components path)
let in_test path = List.mem "test" (components path)
let everywhere _ = true

(* ---- longident helpers ---- *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* [Stdlib.Random.int] and [Random.int] are the same name for policy
   purposes. *)
let qualified lid =
  match flatten lid with "Stdlib" :: rest -> rest | parts -> parts

let name_of lid = String.concat "." (qualified lid)

let ident_path e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (qualified txt) | _ -> None

(* ---- determinism: randomness ---- *)

let determinism_random =
  let check_expr ~emit e =
    match ident_path e with
    | Some ("Random" :: _) ->
      emit ~loc:e.pexp_loc
        (Printf.sprintf
           "%s: all randomness must flow through the seeded Dream_util.Rng (lib/util/rng.ml)"
           (match e.pexp_desc with Pexp_ident { txt; _ } -> name_of txt | _ -> "Random"))
    | _ -> ()
  in
  let check_module ~emit m =
    match m.pmod_desc with
    | Pmod_ident { txt; _ } when qualified txt = [ "Random" ] ->
      emit ~loc:m.pmod_loc
        "aliasing or opening Random: all randomness must flow through Dream_util.Rng"
    | _ -> ()
  in
  rule "determinism-random" ~severity:Finding.Error ~applies:everywhere
    ~doc:"no Stdlib.Random: randomness flows through the seeded Dream_util.Rng"
    ~expr:check_expr ~module_expr:check_module

(* ---- determinism: wall clock ---- *)

let clock_reads = [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

let determinism_clock =
  let check_expr ~emit e =
    match ident_path e with
    | Some path when List.mem path clock_reads ->
      emit ~loc:e.pexp_loc
        (Printf.sprintf
           "%s: wall-clock reads must go through Dream_obs.Clock so runs stay deterministic"
           (String.concat "." path))
    | _ -> ()
  in
  rule "determinism-clock" ~severity:Finding.Error ~applies:everywhere
    ~doc:"no direct wall-clock reads: time flows through Dream_obs.Clock" ~expr:check_expr

(* ---- determinism: GC statistics ---- *)

(* GC counters are as nondeterministic as the wall clock: they move with
   allocation noise from the runtime itself.  Profiling reads them
   through Dream_obs.Gc_stats so tests can substitute a manual source. *)
let determinism_gc =
  let check_expr ~emit e =
    match ident_path e with
    | Some ("Gc" :: _ as path) ->
      emit ~loc:e.pexp_loc
        (Printf.sprintf
           "%s: GC statistics must flow through Dream_obs.Gc_stats so profiling stays mockable"
           (String.concat "." path))
    | _ -> ()
  in
  let check_module ~emit m =
    match m.pmod_desc with
    | Pmod_ident { txt; _ } when qualified txt = [ "Gc" ] ->
      emit ~loc:m.pmod_loc
        "aliasing or opening Gc: GC statistics must flow through Dream_obs.Gc_stats"
    | _ -> ()
  in
  rule "determinism-gc" ~severity:Finding.Error ~applies:everywhere
    ~doc:"no direct Gc reads: GC statistics flow through Dream_obs.Gc_stats"
    ~expr:check_expr ~module_expr:check_module

(* ---- float equality ---- *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]
let float_makers = [ "float_of_int"; "Float.of_int" ]

(* Syntactically float: a float literal, an application of a float
   arithmetic operator or int->float conversion, or a [: float]
   annotation.  Purely syntactic — identifiers of float type are not
   recognised — so the rule has no false positives by construction. *)
let rec is_floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ })
    -> true
  | Pexp_apply (f, _) -> (
    match ident_path f with
    | Some path ->
      let name = String.concat "." path in
      List.mem name float_ops || List.mem name float_makers
    | None -> false)
  | Pexp_open (_, e') | Pexp_sequence (_, e') -> is_floaty e'
  | _ -> false

let float_equality =
  let eq_ops = [ "="; "<>"; "compare" ] in
  let check_expr ~emit e =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some [ op ] when List.mem op eq_ops ->
        if List.exists (fun (_, arg) -> is_floaty arg) args then
          emit ~loc:e.pexp_loc
            (Printf.sprintf
               "(%s) on a float operand: exact float equality is fragile; use an epsilon \
                helper (Dream_util.Stats.approx_equal) or an ordering comparison"
               op)
      | _ -> ())
    | _ -> ()
  in
  rule "float-equality" ~severity:Finding.Error
    ~applies:(fun path -> not (in_test path))
    ~doc:"no =, <> or polymorphic compare on syntactically-float operands" ~expr:check_expr

(* ---- exception hygiene ---- *)

let exception_hygiene =
  let catch_all case =
    match (case.pc_lhs.ppat_desc, case.pc_guard) with
    | Ppat_any, None -> true
    | Ppat_exception { ppat_desc = Ppat_any; _ }, None -> true
    | _ -> false
  in
  let check_expr ~emit e =
    match e.pexp_desc with
    | Pexp_try (_, cases) ->
      List.iter
        (fun case ->
          if catch_all case then
            emit ~loc:case.pc_lhs.ppat_loc
              "catch-all `with _ ->' silently discards the exception; match the exceptions \
               you expect, or bind the exception and report it")
        cases
    | Pexp_match (_, cases) ->
      List.iter
        (fun case ->
          match case.pc_lhs.ppat_desc with
          | Ppat_exception { ppat_desc = Ppat_any; _ } when case.pc_guard = None ->
            emit ~loc:case.pc_lhs.ppat_loc
              "catch-all `exception _ ->' silently discards the exception; match the \
               exceptions you expect, or bind the exception and report it"
          | _ -> ())
        cases
    | _ -> ()
  in
  rule "exception-hygiene" ~severity:Finding.Error ~applies:in_lib
    ~doc:"no catch-all exception handlers that discard the exception in lib/"
    ~expr:check_expr

(* ---- partiality ---- *)

let partial_accessors =
  [ [ "List"; "hd" ]; [ "List"; "tl" ]; [ "List"; "nth" ]; [ "Option"; "get" ] ]

let partiality =
  let check_expr ~emit e =
    match ident_path e with
    | Some path when List.mem path partial_accessors ->
      emit ~loc:e.pexp_loc
        (Printf.sprintf "%s raises on empty input; handle the empty case explicitly"
           (String.concat "." path))
    | _ -> ()
  in
  rule "partiality" ~severity:Finding.Warning ~applies:in_lib
    ~doc:"no Failure-raising accessors (List.hd/tl/nth, Option.get) in lib/"
    ~expr:check_expr

(* ---- stdout hygiene ---- *)

let stdout_writers =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_char" ];
    [ "print_bytes" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_newline" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_int" ];
    [ "Format"; "print_float" ];
    [ "Format"; "print_newline" ];
    [ "Format"; "print_cut" ];
    [ "Format"; "print_space" ];
  ]

let stdout_hygiene =
  let check_expr ~emit e =
    match ident_path e with
    | Some path when List.mem path stdout_writers ->
      emit ~loc:e.pexp_loc
        (Printf.sprintf
           "%s writes to stdout from library code; use Format on an explicit formatter \
            (e.g. Table.out), Logs, or the Obs exporters"
           (String.concat "." path))
    | _ -> ()
  in
  rule "stdout-hygiene" ~severity:Finding.Warning ~applies:in_lib
    ~doc:"no implicit stdout printing in lib/; output goes through an explicit formatter"
    ~expr:check_expr

(* ---- mli coverage ---- *)

let mli_coverage =
  let check_file ~emit ~path _structure =
    (* Only meaningful for sources that exist on disk: in-memory sources
       (Engine.lint_string with a synthetic path) have no sibling to find. *)
    if
      Filename.check_suffix path ".ml"
      && Sys.file_exists path
      && not (Sys.file_exists (path ^ "i"))
    then
      let pos = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 } in
      emit
        ~loc:{ Location.loc_start = pos; loc_end = pos; loc_ghost = true }
        (Printf.sprintf "missing interface %si: every lib/ module declares its API in a .mli"
           path)
  in
  rule "mli-coverage" ~severity:Finding.Warning ~applies:in_lib
    ~doc:"every lib/**/*.ml has a sibling .mli" ~file:check_file

(* ---- interprocedural passes ----

   These two rules have no per-file hooks: their findings come from the
   whole-repo layer in {!Engine.lint_sources} (call graph + allocation
   classifier, and the toplevel-mutable-state scan).  They are registered
   here so [--rules] selection, [--help], severity, directory policy and
   the [@lint.allow] unknown-rule check treat them like any other rule. *)

let hot_path_alloc_id = "hot-path-alloc"
let domain_safety_id = "domain-safety"

let hot_path_alloc =
  rule hot_path_alloc_id ~severity:Finding.Error ~applies:everywhere
    ~doc:
      "no allocation site reachable from a [@hot] entry point (interprocedural; suppress \
       a justified site with [@alloc.allow \"reason\"])"

let domain_safety =
  rule domain_safety_id ~severity:Finding.Warning ~applies:in_lib
    ~doc:
      "no toplevel mutable state in lib/: every ref/Hashtbl/Buffer/mutable-record/array \
       binding at module level is a latent race once shard controllers fan out across \
       domains"

let all =
  [
    determinism_random;
    determinism_clock;
    determinism_gc;
    float_equality;
    exception_hygiene;
    partiality;
    stdout_hygiene;
    mli_coverage;
    hot_path_alloc;
    domain_safety;
  ]

let find id = List.find_opt (fun r -> r.id = id) all
let ids = List.map (fun r -> r.id) all
