(** Committed findings baseline with a ratchet.

    The two interprocedural passes surface real pre-existing debt; the
    baseline lets CI fail on {e new} findings while the inventory burns
    down.  Granularity is per (rule, file) {e count} — line numbers shift
    too much to fingerprint individual findings, counts do not — and each
    entry can carry a human reason (why this debt is parked, not fixed).

    Ratchet semantics:
    - the gate ({!diff}) fails when any (rule, file) count exceeds its
      baseline entry (a missing entry is a zero);
    - {!update} refuses to grow any entry of an existing baseline — the
      committed file can only shrink; new debt is either fixed or
      explicitly allowed at the site ([[@alloc.allow]]/[[@lint.allow]]);
    - reasons survive {!update} for entries that persist.

    {!debt_snapshot} renders current per-rule totals as a
    [Bench_snapshot] ([BENCH_lint_debt.json], every count [Lower_better])
    so [dream-bench trend] tracks the burn-down next to perf. *)

type entry = {
  b_rule : string;
  b_file : string;
  b_count : int;  (** > 0 *)
  b_reason : string option;
}

type t = entry list
(** Always sorted by (rule, file); entries unique per (rule, file). *)

val version : int

val empty : t

val of_findings : Finding.t list -> t
(** Count findings per (rule, file); no reasons. *)

type delta = {
  d_rule : string;
  d_file : string;
  d_baseline : int;  (** 0 when the key is absent from the baseline *)
  d_current : int;
}

type diff = {
  fresh : delta list;  (** current > baseline: ratchet violations *)
  improved : delta list;  (** current < baseline: stale entries to shrink away *)
}

val diff : baseline:t -> current:t -> diff
(** Both lists sorted by (rule, file). *)

val update : old_:t option -> current:t -> (t, string) result
(** The new baseline: [current]'s counts with [old_]'s reasons carried
    forward on persisting keys.  With [old_ = Some _] (the committed file
    exists) any grown or new key is an error naming the keys — bootstrap
    from nothing is the only way the baseline grows. *)

val covered : t -> Finding.t -> bool
(** The baseline has a non-zero entry for this finding's (rule, file). *)

val debt_snapshot : Finding.t list -> Dream_obs.Bench_snapshot.t
(** Figure id ["lint-debt"]: one [debt_<rule>] metric per rule with
    findings plus [debt_total], all counts, all [Lower_better] with zero
    tolerance. *)

val to_json : t -> Dream_obs.Json.t

val of_json : Dream_obs.Json.t -> (t, string) result

val to_string : t -> string

val of_string : string -> (t, string) result

val read : string -> (t, string) result
(** Load a baseline file; the error names the path. *)

val write : t -> path:string -> (unit, string) result
