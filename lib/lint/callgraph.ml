open Parsetree

type node = {
  n_file : string;
  n_module : string;
  n_name : string;
  n_loc : Location.t;
  n_hot : bool;
  n_arity : int;
  n_binding : Parsetree.value_binding;
}

(* Per-file resolution context: the file's own module name, its simple
   top-level aliases ([module O = Dream_obs]) and its top-level opens. *)
type ctx = { c_aliases : (string * string list) list; c_opens : string list list }

type t = {
  cg_nodes : (string * string, node) Hashtbl.t;  (* (file, name) -> node *)
  cg_keys : (string * string) list;  (* sorted *)
  cg_edges : (string * string, (string * string) list) Hashtbl.t;  (* sorted targets *)
  cg_by_module : (string, string list) Hashtbl.t;  (* module name -> sorted files *)
  cg_ctx : (string, ctx) Hashtbl.t;
  cg_suffix : (string * string, (string * string) list) Hashtbl.t;
      (* (file, last segment of a dotted binding name) -> keys, so [f] inside
         submodule [Sub] finds [Sub.f] without scanning every node *)
}

let key n = (n.n_file, n.n_name)
let label n = n.n_module ^ "." ^ n.n_name

let compare_key (f1, n1) (f2, n2) =
  match String.compare f1 f2 with 0 -> String.compare n1 n2 | c -> c

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let path_components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

(* [lib/core/controller.ml] -> [Some "core"]: the library directory, for
   resolving [Dream_core.Controller.tick]-style qualified names. *)
let lib_of_path path =
  let rec go = function
    | "lib" :: next :: _ when not (Filename.check_suffix next ".ml") -> Some next
    | _ :: rest -> go rest
    | [] -> None
  in
  go (path_components path)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

let qualified lid =
  match flatten lid with "Stdlib" :: rest -> rest | parts -> parts

let has_hot_attr attrs =
  List.exists (fun a -> a.attr_name.Location.txt = "hot") attrs

let rec arity_of_expr e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> 1 + arity_of_expr body
  | Pexp_newtype (_, body) -> arity_of_expr body
  | Pexp_constraint (body, _) -> arity_of_expr body
  | Pexp_function _ -> 1
  | _ -> 0

let rec binding_names pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_constraint (p, _) -> binding_names p
  | Ppat_tuple ps -> List.concat_map binding_names ps
  | _ -> []

(* Top-level bindings of a structure, descending into named submodules
   with a dotted prefix; other structures (functor bodies, local modules)
   are out of scope by design. *)
let rec collect_bindings ~prefix items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.concat_map
          (fun vb ->
            List.map
              (fun name ->
                ( prefix ^ name,
                  vb.pvb_loc,
                  has_hot_attr vb.pvb_attributes,
                  arity_of_expr vb.pvb_expr,
                  vb ))
              (binding_names vb.pvb_pat))
          vbs
      | Pstr_module
          {
            pmb_name = { txt = Some sub; _ };
            pmb_expr = { pmod_desc = Pmod_structure s; _ };
            _;
          } ->
        collect_bindings ~prefix:(prefix ^ sub ^ ".") s
      | _ -> [])
    items

let ctx_of_structure items =
  let aliases, opens =
    List.fold_left
      (fun (aliases, opens) item ->
        match item.pstr_desc with
        | Pstr_module
            {
              pmb_name = { txt = Some name; _ };
              pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
              _;
            } ->
          ((name, qualified txt) :: aliases, opens)
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } ->
          (aliases, qualified txt :: opens)
        | _ -> (aliases, opens))
      ([], []) items
  in
  { c_aliases = List.rev aliases; c_opens = List.rev opens }

let node_opt t k = Hashtbl.find_opt t.cg_nodes k

let files_of_module t m =
  match Hashtbl.find_opt t.cg_by_module m with Some fs -> fs | None -> []

let same_file_nodes t ~file name =
  (* Exact name, or a submodule binding referenced unqualified from inside
     its own submodule ([Sub.f] reached as [f]). *)
  match node_opt t (file, name) with
  | Some n -> [ n ]
  | None -> (
    match Hashtbl.find_opt t.cg_suffix (file, name) with
    | Some keys -> List.filter_map (node_opt t) keys
    | None -> [])

let is_dream_lib l =
  String.length l > 6 && String.sub l 0 6 = "Dream_"

(* Resolve one (already alias-expanded) dotted path to candidate nodes. *)
let resolve_direct t ~file parts =
  match parts with
  | [ f ] -> same_file_nodes t ~file f
  | [ m; f ] ->
    let sub = match node_opt t (file, m ^ "." ^ f) with Some n -> [ n ] | None -> [] in
    sub
    @ List.filter_map (fun fl -> node_opt t (fl, f)) (files_of_module t m)
  | [ l; m; f ] when is_dream_lib l ->
    let libdir = String.lowercase_ascii (String.sub l 6 (String.length l - 6)) in
    files_of_module t m
    |> List.filter (fun fl -> lib_of_path fl = Some libdir)
    |> List.filter_map (fun fl -> node_opt t (fl, f))
  | [ m; s; f ] ->
    List.filter_map (fun fl -> node_opt t (fl, s ^ "." ^ f)) (files_of_module t m)
  | _ -> []

let resolve t ~file parts =
  let ctx =
    match Hashtbl.find_opt t.cg_ctx file with
    | Some c -> c
    | None -> { c_aliases = []; c_opens = [] }
  in
  let expand parts =
    match parts with
    | a :: rest -> (
      match List.assoc_opt a ctx.c_aliases with
      | Some target -> target @ rest
      | None -> parts)
    | [] -> []
  in
  let parts = expand parts in
  let direct = resolve_direct t ~file parts in
  let via_opens =
    List.concat_map (fun o -> resolve_direct t ~file (o @ parts)) ctx.c_opens
  in
  List.sort_uniq (fun a b -> compare_key (key a) (key b)) (direct @ via_opens)

(* Every identifier mentioned in an expression, in traversal order.
   Mentions, not calls: a function passed first-class is an edge. *)
let idents_of_expr e =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match qualified txt with [] -> () | parts -> acc := parts :: !acc)
          | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  List.rev !acc

let build files =
  let files = List.sort (fun (a, _) (b, _) -> String.compare a b) files in
  let t =
    {
      cg_nodes = Hashtbl.create 256;
      cg_keys = [];
      cg_edges = Hashtbl.create 256;
      cg_by_module = Hashtbl.create 64;
      cg_ctx = Hashtbl.create 64;
      cg_suffix = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (path, structure) ->
      let m = module_name_of_path path in
      let existing = files_of_module t m in
      Hashtbl.replace t.cg_by_module m (List.sort String.compare (path :: existing));
      Hashtbl.replace t.cg_ctx path (ctx_of_structure structure);
      List.iter
        (fun (name, loc, hot, arity, vb) ->
          let node =
            {
              n_file = path;
              n_module = m;
              n_name = name;
              n_loc = loc;
              n_hot = hot;
              n_arity = arity;
              n_binding = vb;
            }
          in
          (* First binding of a name wins; shadowing rebinds are rare at
             top level and the first site is the stable anchor. *)
          if not (Hashtbl.mem t.cg_nodes (key node)) then begin
            Hashtbl.replace t.cg_nodes (key node) node;
            match String.rindex_opt name '.' with
            | None -> ()
            | Some i ->
              let last = String.sub name (i + 1) (String.length name - i - 1) in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt t.cg_suffix (path, last))
              in
              Hashtbl.replace t.cg_suffix (path, last)
                (List.sort_uniq compare_key (key node :: prev))
          end)
        (collect_bindings ~prefix:"" structure))
    files;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.cg_nodes [] |> List.sort compare_key
  in
  let t = { t with cg_keys = keys } in
  List.iter
    (fun k ->
      match node_opt t k with
      | None -> ()
      | Some n ->
        let targets =
          idents_of_expr n.n_binding.pvb_expr
          |> List.concat_map (fun parts -> resolve t ~file:n.n_file parts)
          |> List.map key
          |> List.filter (fun k' -> k' <> k)
          |> List.sort_uniq compare_key
        in
        Hashtbl.replace t.cg_edges k targets)
    keys;
  t

let nodes t = List.filter_map (node_opt t) t.cg_keys
let hot_roots t = List.filter (fun n -> n.n_hot) (nodes t)

let successors t k =
  match Hashtbl.find_opt t.cg_edges k with Some ts -> ts | None -> []

let reachable_from_hot t =
  let visited = Hashtbl.create 64 in
  let pred = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      let k = key n in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        Queue.push k queue
      end)
    (hot_roots t);
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    List.iter
      (fun s ->
        if not (Hashtbl.mem visited s) then begin
          Hashtbl.replace visited s ();
          Hashtbl.replace pred s k;
          Queue.push s queue
        end)
      (successors t k)
  done;
  let chain_of k =
    let rec go k acc =
      match Hashtbl.find_opt pred k with None -> k :: acc | Some p -> go p (k :: acc)
    in
    go k []
    |> List.filter_map (fun k -> Option.map label (node_opt t k))
  in
  t.cg_keys
  |> List.filter (Hashtbl.mem visited)
  |> List.filter_map (fun k ->
         Option.map (fun n -> (n, chain_of k)) (node_opt t k))

let top_bindings structure =
  List.map (fun (name, _, _, _, vb) -> (name, vb)) (collect_bindings ~prefix:"" structure)

let arity_of_ident t ~file lid =
  match qualified lid with
  | [] -> None
  | parts -> (
    match resolve t ~file parts with
    | [ n ] when n.n_arity > 0 -> Some n.n_arity
    | _ -> None)
