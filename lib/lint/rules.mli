(** The rule registry: every invariant [dream-lint] enforces.

    A rule is a set of syntactic hooks over the OCaml parsetree plus a
    directory policy.  Rules are purely syntactic — they see names, not
    types — so each one errs on the side of precision: it flags the
    spellings that appear in this codebase and documents its loopholes
    (module aliases, [open]) rather than guessing at types.

    Directory policies are expressed over path components, so
    [lib/core/controller.ml], [./lib/core/controller.ml] and
    [/abs/repo/lib/core/controller.ml] are all "in [lib/]".  Blessed
    files ([lib/util/rng.ml], [lib/obs/clock.ml]) are not hard-coded
    here: they carry [[@lint.allow "rule-id"]] attributes, so the
    exemption is visible — and auditable — at the site itself. *)

type emit = loc:Location.t -> string -> unit
(** Rules report through [emit]; the engine fills in rule id, severity
    and file, and runs the suppression pass afterwards. *)

type t = {
  id : string;
  doc : string;  (** one-line description for [--help] and reports *)
  severity : Finding.severity;
  applies : string -> bool;  (** path policy, over the path as given *)
  expr : (emit:emit -> Parsetree.expression -> unit) option;
      (** called on every expression in scope *)
  module_expr : (emit:emit -> Parsetree.module_expr -> unit) option;
      (** called on every module expression (catches [open M], [module X = M]) *)
  file : (emit:emit -> path:string -> Parsetree.structure -> unit) option;
      (** called once per file, for whole-file checks like mli coverage *)
}

val all : t list
(** Every registered rule, in report order. *)

val hot_path_alloc_id : string
(** ["hot-path-alloc"] — allocation sites reachable from a [[@hot]] entry
    point.  Declared here (severity, policy, docs) but computed by the
    interprocedural layer in {!Engine.lint_sources}; per-file runs
    ({!Engine.lint_string}) never produce it. *)

val domain_safety_id : string
(** ["domain-safety"] — toplevel mutable state in [lib/].  Declared here,
    computed by the interprocedural layer. *)

val find : string -> t option
(** Look up a rule by id. *)

val ids : string list

val in_lib : string -> bool
(** [true] when the path has a ["lib"] directory component. *)

val in_test : string -> bool
