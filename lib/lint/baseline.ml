module Json = Dream_obs.Json
module Bench = Dream_obs.Bench_snapshot

type entry = { b_rule : string; b_file : string; b_count : int; b_reason : string option }

type t = entry list

let version = 1

let empty = []

let compare_key (r1, f1) (r2, f2) =
  match String.compare r1 r2 with 0 -> String.compare f1 f2 | c -> c

let compare_entry a b = compare_key (a.b_rule, a.b_file) (b.b_rule, b.b_file)

let normalize t = List.sort compare_entry t

let of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let k = (f.Finding.rule, f.Finding.file) in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    findings;
  Hashtbl.fold
    (fun (rule, file) count acc ->
      { b_rule = rule; b_file = file; b_count = count; b_reason = None } :: acc)
    tbl []
  |> normalize

type delta = { d_rule : string; d_file : string; d_baseline : int; d_current : int }

type diff = { fresh : delta list; improved : delta list }

let count_of t (rule, file) =
  match List.find_opt (fun e -> e.b_rule = rule && e.b_file = file) t with
  | Some e -> e.b_count
  | None -> 0

let diff ~baseline ~current =
  let keys =
    List.map (fun e -> (e.b_rule, e.b_file)) (baseline @ current)
    |> List.sort_uniq compare_key
  in
  let deltas =
    List.map
      (fun (rule, file) ->
        {
          d_rule = rule;
          d_file = file;
          d_baseline = count_of baseline (rule, file);
          d_current = count_of current (rule, file);
        })
      keys
  in
  {
    fresh = List.filter (fun d -> d.d_current > d.d_baseline) deltas;
    improved = List.filter (fun d -> d.d_current < d.d_baseline) deltas;
  }

let update ~old_ ~current =
  match old_ with
  | None -> Ok (normalize current)
  | Some old_ -> (
    let d = diff ~baseline:old_ ~current in
    match d.fresh with
    | [] ->
      Ok
        (List.map
           (fun e ->
             let reason =
               match
                 List.find_opt
                   (fun o -> o.b_rule = e.b_rule && o.b_file = e.b_file)
                   old_
               with
               | Some o -> o.b_reason
               | None -> e.b_reason
             in
             { e with b_reason = reason })
           (normalize current))
    | grown ->
      Error
        (Printf.sprintf
           "baseline can only shrink; fix or [@alloc.allow] the new findings in: %s"
           (String.concat ", "
              (List.map
                 (fun g ->
                   Printf.sprintf "%s %s (%d -> %d)" g.d_rule g.d_file g.d_baseline
                     g.d_current)
                 grown))))

let covered t (f : Finding.t) = count_of t (f.Finding.rule, f.Finding.file) > 0

let debt_snapshot findings =
  let by_rule = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      Hashtbl.replace by_rule f.Finding.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_rule f.Finding.rule)))
    findings;
  let rules =
    Hashtbl.fold (fun r c acc -> (r, c) :: acc) by_rule []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let metrics =
    List.map
      (fun (rule, count) ->
        Bench.metric ~unit_:"count" ~direction:Bench.Lower_better ~tolerance_pct:0.0
          ("debt_" ^ rule) (float_of_int count))
      rules
    @ [
        Bench.metric ~unit_:"count" ~direction:Bench.Lower_better ~tolerance_pct:0.0
          "debt_total"
          (float_of_int (List.length findings));
      ]
  in
  Bench.make ~figure:"lint-debt" ~quick:false ~metrics ()

let entry_to_json e =
  Json.Obj
    ([
       ("rule", Json.Str e.b_rule);
       ("file", Json.Str e.b_file);
       ("count", Json.Int e.b_count);
     ]
    @ match e.b_reason with None -> [] | Some r -> [ ("reason", Json.Str r) ])

let entry_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  match (str "rule", str "file", int "count") with
  | Some rule, Some file, Some count when count > 0 ->
    Ok { b_rule = rule; b_file = file; b_count = count; b_reason = str "reason" }
  | _ -> Error "baseline: entry needs rule, file and a positive count"

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("entries", Json.List (List.map entry_to_json (normalize t)));
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "version" j) Json.to_int with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "baseline: version %d, expected %d" v version)
    | None -> Error "baseline: missing version"
  in
  match Json.member "entries" j with
  | Some (Json.List items) ->
    let* entries =
      List.fold_left
        (fun acc item ->
          let* es = acc in
          let* e = entry_of_json item in
          Ok (e :: es))
        (Ok []) items
    in
    let entries = normalize entries in
    let keys = List.map (fun e -> (e.b_rule, e.b_file)) entries in
    if List.length keys <> List.length (List.sort_uniq compare_key keys) then
      Error "baseline: duplicate (rule, file) entry"
    else Ok entries
  | _ -> Error "baseline: missing entries list"

let to_string t = Json.to_string (to_json t)

let of_string s = Result.bind (Json.of_string s) of_json

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> (
    match of_string s with Ok t -> Ok t | Error e -> Error (path ^ ": " ^ e))
  | exception Sys_error msg -> Error ("cannot read baseline: " ^ msg)

let write t ~path =
  match
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (to_string t);
        Out_channel.output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error ("cannot write baseline: " ^ msg)
