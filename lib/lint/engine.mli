(** The rule engine: parse one OCaml implementation, run every applicable
    rule's hooks over the parsetree in a single {!Ast_iterator} pass,
    then apply [[@lint.allow "rule-id"]] suppressions.

    Suppression semantics:
    - [[@lint.allow "r"]] on an expression, or [[@@lint.allow "r"]] on a
      [let] binding, silences rule [r] within that node's source range.
    - A floating [[@@@lint.allow "r"]] silences rule [r] for the whole
      file.  File-level allows are policy declarations (e.g.
      [lib/util/rng.ml] declaring itself the blessed randomness module)
      and may legitimately match nothing.
    - Every site-level allow must silence at least one finding;
      otherwise the engine reports it under {!unused_suppression_rule}.
      An allow naming an unknown rule, or with a payload that is not a
      string literal, is reported the same way.

    Two engine-level ids appear in findings in addition to {!Rules.ids}:
    [parse-error] (the file does not parse; linting cannot proceed) and
    [unused-suppression]. *)

val parse_error_rule : string
val unused_suppression_rule : string

val lint_string : ?rules:Rules.t list -> path:string -> string -> Finding.t list
(** Lint source text as if it lived at [path] (the path decides which
    directory policies apply).  [rules] defaults to {!Rules.all}.
    Returns findings sorted by file, line, column and rule. *)

val lint_file : ?rules:Rules.t list -> string -> Finding.t list
(** Read and lint one [.ml] file; an unreadable file yields a single
    [parse-error] finding rather than an exception. *)
