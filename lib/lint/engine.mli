(** The rule engine, two layers deep.

    {b Per-file layer}: parse one OCaml implementation, run every
    applicable rule's hooks over the parsetree in a single
    {!Ast_iterator} pass, then apply [[@lint.allow "rule-id"]]
    suppressions.

    {b Interprocedural layer} ({!lint_sources} / {!lint_files}): parse
    the whole file set once, build the {!Callgraph}, and run the two
    repo-level passes on top of the per-file rules:

    - [hot-path-alloc]: every allocation site (classified by
      {!Alloc_class}) inside a binding reachable from a [[@hot]] entry
      point is reported with its witness call chain.  Suppression is
      [[@alloc.allow "reason"]] on the expression or binding — the
      payload is a human reason, not a rule id — and an allow that
      suppresses nothing (or has a malformed/empty payload) is itself a
      finding, so the allowlist can only shrink.
    - [domain-safety]: toplevel mutable state in [lib/] ([ref],
      [Hashtbl.create], [Buffer.create], arrays, records with fields
      declared [mutable] anywhere in the repo) is reported as a latent
      race ahead of the planned [Domain] fan-out, with a count of the
      sibling top-level bindings that touch it.  Suppression is the
      ordinary [[@lint.allow "domain-safety"]].

    Per-file [[@lint.allow]] semantics (unchanged):
    - [[@lint.allow "r"]] on an expression, or [[@@lint.allow "r"]] on a
      [let] binding, silences rule [r] within that node's source range.
    - A floating [[@@@lint.allow "r"]] silences rule [r] for the whole
      file.  File-level allows are policy declarations and may
      legitimately match nothing.
    - Every site-level allow must silence at least one finding;
      otherwise the engine reports it under {!unused_suppression_rule},
      as it does for unknown rule names and malformed payloads.

    Two engine-level ids appear in findings in addition to {!Rules.ids}:
    [parse-error] (the file does not parse; linting cannot proceed) and
    [unused-suppression]. *)

val parse_error_rule : string
val unused_suppression_rule : string

val lint_string : ?rules:Rules.t list -> ?extra:Finding.t list -> path:string -> string -> Finding.t list
(** Lint source text as if it lived at [path] (the path decides which
    directory policies apply).  [rules] defaults to {!Rules.all}.
    [extra] injects precomputed findings (the interprocedural layer's
    [domain-safety] results) into the suppression pass, so site allows
    cover them.  Per-file only: the interprocedural passes never run
    here.  Returns findings sorted by file, line, column and rule. *)

val lint_file : ?rules:Rules.t list -> string -> Finding.t list
(** Read and lint one [.ml] file (per-file layer only); an unreadable
    file yields a single [parse-error] finding rather than an
    exception. *)

val lint_sources : ?rules:Rules.t list -> (string * string) list -> Finding.t list
(** The full two-layer analysis over an in-memory file set of
    [(path, source)] pairs: per-file rules plus [hot-path-alloc] and
    [domain-safety] (each only when present in [rules]).  Deterministic:
    the same sources in any order produce the same sorted findings. *)

val lint_files : ?rules:Rules.t list -> string list -> Finding.t list
(** {!lint_sources} over files read from disk; unreadable files become
    [parse-error] findings. *)

val ml_files_under : string -> string list
(** Deterministic recursive walk: all [.ml] files under a path, sorted
    at every directory level, with [_build], [_opam] and dot-entries
    skipped.  A non-directory [.ml] path yields itself; anything else
    yields []. *)
