(** One static-analysis finding: a rule violation at a source location.

    Findings are plain data so reporters ({!Report}), the engine's
    suppression pass and the test suite can all share them.  The JSON
    codec round-trips through {!Dream_obs.Json} — the same codec the
    telemetry exporters use — so CI can parse the report with the
    machinery the repo already trusts. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["determinism-random"] *)
  file : string;  (** path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  severity : severity;
  message : string;
}

val v :
  rule:string -> file:string -> line:int -> col:int -> severity:severity -> string -> t

val compare : t -> t -> int
(** Order by file, then line, column and rule id: reports are stable
    regardless of rule-evaluation order. *)

val severity_to_string : severity -> string

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity [rule] message] — one line, compiler-style,
    so editors and CI annotations can parse it. *)

val to_json : t -> Dream_obs.Json.t

val of_json : Dream_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the missing or ill-typed field. *)
