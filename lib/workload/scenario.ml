module Task_spec = Dream_tasks.Task_spec
module Profile = Dream_traffic.Profile

module Rng = Dream_util.Rng

type t = {
  seed : int;
  num_switches : int;
  capacity : int;
  switches_per_task : int;
  num_tasks : int;
  arrival_window : int;
  mean_duration : int;
  min_duration : int;
  total_epochs : int;
  kinds : Task_spec.kind list;
  filter_length : int;
  leaf_length : int;
  threshold : float;
  accuracy_bound : float;
  profile_of : Rng.t -> float -> Profile.t;
}

(* Tasks see traffic aggregates of very different sizes (the paper samples
   /4 chunks of a CAIDA trace): scale the source population per task. *)
let heterogeneous_profile rng threshold =
  let base = Profile.default ~threshold in
  let factor = Rng.pick rng [| 0.5; 1.0; 1.0; 2.0; 3.0; 6.0 |] in
  let scale n = max 1 (int_of_float (float_of_int n *. factor)) in
  {
    base with
    Profile.heavy_count = scale base.Profile.heavy_count;
    medium_count = scale base.Profile.medium_count;
    small_count = scale base.Profile.small_count;
  }

let fixed_traffic_profile ~calibration rng _threshold = heterogeneous_profile rng calibration

let default =
  {
    seed = 7;
    num_switches = 8;
    capacity = 1024;
    switches_per_task = 8;
    num_tasks = 88;
    arrival_window = 280;
    mean_duration = 140;
    min_duration = 40;
    total_epochs = 560;
    kinds = Task_spec.all_kinds;
    filter_length = 12;
    leaf_length = 24;
    threshold = 8.0;
    accuracy_bound = 0.8;
    profile_of = heterogeneous_profile;
  }

let with_kind t kind = { t with kinds = [ kind ] }

let concurrency t =
  float_of_int (t.num_tasks * t.mean_duration) /. float_of_int (max 1 t.arrival_window)

let pp ppf t =
  Format.fprintf ppf
    "%d tasks (%s) on %d switches x %d entries, %d sw/task, window=%d dur=%d total=%d theta=%.1f bound=%.0f%%"
    t.num_tasks
    (String.concat "+" (List.map Task_spec.kind_to_string t.kinds))
    t.num_switches t.capacity t.switches_per_task t.arrival_window t.mean_duration t.total_epochs
    t.threshold (t.accuracy_bound *. 100.0)
