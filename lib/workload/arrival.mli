(** Task arrival schedule: materialises a scenario into concrete task
    submissions (arrival epoch, spec, topology, trace generator,
    duration), deterministically from the scenario seed. *)

type submission = {
  arrival : int;
  spec : Dream_tasks.Task_spec.t;
  topology : Dream_traffic.Topology.t;
  generator : Dream_traffic.Generator.t;
  duration : int;
}

val schedule : Scenario.t -> submission list
(** Submissions sorted by arrival epoch.  Each task gets a distinct flow
    filter, its own switch mapping and an independent traffic stream.
    Kinds cycle through [scenario.kinds]; durations are exponential with
    the scenario mean, floored at the minimum. *)
