module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Task_spec = Dream_tasks.Task_spec

type submission = {
  arrival : int;
  spec : Task_spec.t;
  topology : Topology.t;
  generator : Generator.t;
  duration : int;
}

let distinct_filters rng (s : Scenario.t) =
  (* Draw distinct filter indices among the 2^filter_length possibilities. *)
  let space = 1 lsl s.Scenario.filter_length in
  if s.Scenario.num_tasks > space then
    invalid_arg "Arrival.schedule: more tasks than available filters";
  let seen = Hashtbl.create (2 * s.Scenario.num_tasks) in
  let rec draw () =
    let i = Rng.int rng space in
    if Hashtbl.mem seen i then draw ()
    else begin
      Hashtbl.replace seen i ();
      Prefix.nth_descendant Prefix.root ~length:s.Scenario.filter_length i
    end
  in
  List.init s.Scenario.num_tasks (fun _ -> draw ())

let schedule (s : Scenario.t) =
  let rng = Rng.create s.Scenario.seed in
  let filters = distinct_filters rng s in
  let kinds = Array.of_list s.Scenario.kinds in
  let submissions =
    List.mapi
      (fun i filter ->
        let arrival = Rng.int rng (max 1 s.Scenario.arrival_window) in
        let duration =
          max s.Scenario.min_duration
            (int_of_float (Rng.exponential rng (float_of_int s.Scenario.mean_duration)))
        in
        let kind = kinds.(i mod Array.length kinds) in
        let spec =
          Task_spec.make ~kind ~filter ~leaf_length:s.Scenario.leaf_length
            ~threshold:s.Scenario.threshold ~accuracy_bound:s.Scenario.accuracy_bound ()
        in
        let topology =
          Topology.create (Rng.split rng) ~filter ~num_switches:s.Scenario.num_switches
            ~switches_per_task:s.Scenario.switches_per_task
        in
        let generator =
          Generator.create (Rng.split rng) ~topology
            ~profile:(s.Scenario.profile_of (Rng.split rng) s.Scenario.threshold)
        in
        { arrival; spec; topology; generator; duration })
      filters
  in
  List.sort (fun a b -> Int.compare a.arrival b.arrival) submissions
