(** Experiment scenario description (Section 6.1).

    A scenario fixes the network (switches, capacity), the task population
    (count, kinds, thresholds, bounds, spatial spread), the arrival process
    (Poisson over a window, exponential durations) and the traffic profile.
    The paper's prototype setting is 256 tasks over 8 switches arriving in
    20 minutes with 5-minute average durations; {!default} is a
    time-compressed version of that with the same load shape (concurrency
    ~ a third of the task count), sized so a full capacity sweep runs in
    seconds. *)

type t = {
  seed : int;
  num_switches : int;
  capacity : int;  (** TCAM entries per switch *)
  switches_per_task : int;  (** power of two; the spatial spread of a task *)
  num_tasks : int;
  arrival_window : int;  (** epochs during which tasks arrive *)
  mean_duration : int;  (** epochs; durations are exponential, floored *)
  min_duration : int;
  total_epochs : int;  (** simulation length *)
  kinds : Dream_tasks.Task_spec.kind list;  (** tasks cycle through these *)
  filter_length : int;  (** task flow filters, e.g. /12 *)
  leaf_length : int;  (** drill-down floor *)
  threshold : float;
  accuracy_bound : float;
  profile_of : Dream_util.Rng.t -> float -> Dream_traffic.Profile.t;
      (** traffic profile per task, given a task-specific RNG and the
          threshold.  The default draws a size factor per task (0.5x..3x
          source counts), reproducing the paper's heterogeneous per-task
          traffic — the heterogeneity that makes Equal's tail collapse. *)
}

val heterogeneous_profile : Dream_util.Rng.t -> float -> Dream_traffic.Profile.t
(** The default [profile_of]: {!Dream_traffic.Profile.default} calibrated
    to the given threshold, with a per-task size factor of 0.5x-6x. *)

val fixed_traffic_profile : calibration:float -> Dream_util.Rng.t -> float -> Dream_traffic.Profile.t
(** A [profile_of] that ignores the scenario threshold and calibrates
    traffic to [calibration] instead — for threshold sweeps, where traffic
    must stay fixed while the task threshold moves (a lower threshold then
    really does mean more reportable items, as in Fig 12b/13b). *)

val default : t
(** 8 switches, 88 tasks arriving over 280 epochs with mean duration 140
    (expected concurrency ~44), 560 epochs total, combined HH+HHH+CD
    workload, /12 filters drilling to /24, 8 Mb threshold, 80% bound,
    heterogeneous per-task traffic (0.5x-6x source populations). *)

val with_kind : t -> Dream_tasks.Task_spec.kind -> t
(** Restrict the workload to a single task type. *)

val concurrency : t -> float
(** Expected number of simultaneously active tasks. *)

val pp : Format.formatter -> t -> unit
