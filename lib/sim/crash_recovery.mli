(** Crash-recovery experiment: the controller is periodically checkpointed
    and journals every control-plane action; when the fault model declares
    a controller crash, the driver fails over with
    {!Dream_core.Controller.recover} — last checkpoint + journal replay +
    switch reconciliation — and the run continues on the surviving
    network.

    Measured per crash rate, over several fault seeds (mean ± stddev):
    task satisfaction and scored accuracy (how much fail-overs cost
    overall), the estimated-accuracy dip right after fail-over (the
    measurement state a crash legitimately loses), and the time to
    reconverge — epochs until the mean smoothed estimated accuracy is back
    within 5% of its pre-crash level.  Crashes whose tasks all end before
    reconverging are excluded from the reconvergence stat.  The runtime
    invariant checker runs every epoch; its violation count must stay 0. *)

type run_result = {
  summary : Dream_core.Metrics.summary;
  mean_accuracy : float;  (** mean scored accuracy over admitted tasks, in \[0, 1\] *)
  crashes : int;  (** controller crashes survived *)
  reconverge_epochs : float list;  (** one entry per crash that reconverged *)
  accuracy_dips : float list;  (** estimated-accuracy drop at each fail-over, in \[0, 1\] *)
}

type stat = { mean : float; stddev : float }

type point = {
  crash_rate : float;
  runs : int;  (** seeds aggregated into this point *)
  crashes : float;  (** mean controller crashes per run *)
  satisfaction : stat;  (** mean task satisfaction, percent *)
  accuracy : stat;  (** mean scored accuracy, in \[0, 1\] *)
  reconverge : stat;  (** epochs to reconverge after a crash *)
  dip : stat;  (** estimated-accuracy dip at fail-over, in \[0, 1\] *)
  reconciled_removed : int;  (** stray rules removed by audits, total over runs *)
  reconciled_installed : int;  (** missing rules reinstalled by audits, total over runs *)
  invariant_violations : int;  (** total over runs; 0 when recovery is correct *)
}

val default_rates : float list
(** [0; 0.01; 0.02; 0.05] controller crashes per epoch. *)

val default_seeds : int list

val default_checkpoint_interval : int
(** Epochs between checkpoints (20). *)

val run_once :
  ?config:Dream_core.Config.t ->
  ?checkpoint_interval:int ->
  ?fault_seed:int ->
  crash_rate:float ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  run_result
(** One full run with fail-over; invariant checking is forced on.
    @raise Invalid_argument if [crash_rate] is outside \[0, 1\] or
    [checkpoint_interval <= 0]. *)

val sweep :
  ?config:Dream_core.Config.t ->
  ?checkpoint_interval:int ->
  ?seeds:int list ->
  ?rates:float list ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  point list

val print_points : point list -> unit

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** The crash-recovery sweep on the combined workload with DREAM.
    Returns per-rate satisfaction and invariant-violation counts (the
    latter gate at zero tolerance). *)
