module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics
module Task_spec = Dream_tasks.Task_spec

type sweep_cell = { x : string; strategy : string; summary : Metrics.summary }

let run_sweep ~name ~variants =
  List.concat_map
    (fun (x, scenario) ->
      List.map
        (fun strategy ->
          let result = Experiment.run scenario strategy in
          { x; strategy = result.Experiment.strategy; summary = result.Experiment.summary })
        Experiment.standard_strategies)
    variants
  |> fun cells -> (name, cells)

let print_satisfaction sweeps =
  Table.heading "Figure 12: parameter sensitivity, satisfaction (HHH tasks, capacity 1024)";
  List.iter
    (fun (name, cells) ->
      Table.subheading (Printf.sprintf "(%s) satisfaction mean / 5th pct" name);
      Table.row [ name; "strategy"; "mean"; "p5" ];
      List.iter
        (fun c ->
          Table.row
            [
              c.x;
              c.strategy;
              Table.pct c.summary.Metrics.mean_satisfaction;
              Table.pct c.summary.Metrics.p5_satisfaction;
            ])
        cells)
    sweeps

let print_rejection sweeps =
  Table.heading "Figure 13: parameter sensitivity, rejection and drop";
  List.iter
    (fun (name, cells) ->
      Table.subheading (Printf.sprintf "(%s) rejection / drop" name);
      Table.row [ name; "strategy"; "reject%"; "drop%" ];
      List.iter
        (fun c ->
          Table.row
            [
              c.x;
              c.strategy;
              Table.pct c.summary.Metrics.rejection_pct;
              Table.pct c.summary.Metrics.drop_pct;
            ])
        cells)
    sweeps

let run ~quick =
  let base =
    Scenario.with_kind
      (if quick then Fig06.quick_scale Scenario.default else Scenario.default)
      Task_spec.Hierarchical_heavy_hitter
  in
  let base = { base with Scenario.capacity = 1024 } in
  let sweeps =
    [
      run_sweep ~name:"accuracy bound"
        ~variants:
          (List.map
             (fun b ->
               (Printf.sprintf "%.0f%%" (b *. 100.0), { base with Scenario.accuracy_bound = b }))
             [ 0.6; 0.7; 0.8; 0.9 ]);
      run_sweep ~name:"threshold (Mb)"
        ~variants:
          (List.map
             (fun th ->
               (* Traffic stays calibrated to 8 Mb while the task threshold
                  moves, so a smaller threshold genuinely means more (and
                  smaller) HHHs to find. *)
               ( Printf.sprintf "%.0f" th,
                 {
                   base with
                   Scenario.threshold = th;
                   profile_of = Scenario.fixed_traffic_profile ~calibration:8.0;
                 } ))
             [ 4.0; 8.0; 16.0; 32.0 ]);
      run_sweep ~name:"switches per task"
        ~variants:
          (List.map
             (fun k -> (string_of_int k, { base with Scenario.switches_per_task = k }))
             [ 2; 4; 8 ]);
      run_sweep ~name:"duration (epochs)"
        ~variants:
          (List.map
             (fun factor ->
               let d = base.Scenario.mean_duration * factor / 2 in
               (string_of_int d, { base with Scenario.mean_duration = d }))
             [ 1; 2; 4; 8 ]);
    ]
  in
  print_satisfaction sweeps;
  print_rejection sweeps;
  Experiment.grouped_summary_metrics
    (List.concat_map snd sweeps)
    ~group_of:(fun c -> c.strategy)
    ~summary_of:(fun c -> c.summary)
