module Step_policy = Dream_alloc.Step_policy

type trace = { policy : Step_policy.t; allocations : int array }

let goal epoch =
  if epoch < 100 then 400
  else if epoch < 200 then 1200
  else if epoch < 300 then 600
  else if epoch < 400 then 1400
  else 300

let simulate policy ~epochs =
  let params = Step_policy.default_params in
  let allocations = Array.make epochs 0 in
  let alloc = ref 100 and step = ref params.Step_policy.addend in
  let last_status = ref None and changed = ref false in
  let just_flipped = ref false in
  for epoch = 0 to epochs - 1 do
    let target = goal epoch in
    let status = if !alloc >= target then `Rich else `Poor in
    begin
      match (!changed, !last_status) with
      | true, Some previous when previous = status ->
        (* Growth pauses for one round after a flip, damping the
           oscillation around the target. *)
        if !just_flipped then just_flipped := false
        else step := Step_policy.grow policy params !step
      | true, Some _ ->
        step := Step_policy.shrink policy params !step;
        just_flipped := true
      | true, None | false, _ -> ()
    end;
    last_status := Some status;
    let before = !alloc in
    (match status with
    | `Poor -> alloc := !alloc + !step
    | `Rich -> alloc := max 0 (!alloc - !step));
    changed := !alloc <> before;
    allocations.(epoch) <- !alloc
  done;
  { policy; allocations }

let mean_absolute_error trace =
  let n = Array.length trace.allocations in
  let sum = ref 0.0 in
  Array.iteri
    (fun epoch alloc -> sum := !sum +. Float.abs (float_of_int (alloc - goal epoch)))
    trace.allocations;
  !sum /. float_of_int (max 1 n)

let run ~quick =
  let epochs = if quick then 250 else 500 in
  Table.heading "Figure 4: step update policies tracking a moving resource target";
  let sample = max 1 (epochs / 25) in
  let traces = List.map (fun p -> simulate p ~epochs) Step_policy.all in
  Table.series ~name:"Goal"
    (List.init (epochs / sample) (fun i ->
         let e = i * sample in
         (string_of_int e, float_of_int (goal e))));
  List.iter
    (fun t ->
      Table.series
        ~name:(Step_policy.to_string t.policy)
        (List.init (epochs / sample) (fun i ->
             let e = i * sample in
             (string_of_int e, float_of_int t.allocations.(e)))))
    traces;
  Table.subheading "mean |allocation - goal| (lower is better; MM should win)";
  List.iter
    (fun t ->
      Table.row [ Step_policy.to_string t.policy; Table.f2 (mean_absolute_error t) ])
    traces;
  List.map
    (fun t ->
      Dream_obs.Bench_snapshot.metric ~unit_:"entries"
        ~direction:Dream_obs.Bench_snapshot.Lower_better
        ~tolerance_pct:Experiment.gate_tolerance
        (Printf.sprintf "mae_%s" (Step_policy.to_string t.policy))
        (mean_absolute_error t))
    traces
