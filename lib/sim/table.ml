let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title = Printf.printf "\n-- %s --\n" title

let row cells =
  let padded = List.map (fun c -> Printf.sprintf "%12s" c) cells in
  print_endline (String.concat "  " padded)

let series ~name points =
  Printf.printf "%s:\n" name;
  List.iter (fun (x, v) -> Printf.printf "  %10s  %8.2f\n" x v) points

let pct v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v
