(* All output goes through [out] — one explicit formatter, flushed per
   line ("@.") so Table lines interleave correctly with any direct
   channel writes from the binaries. *)
let out = Format.std_formatter

let heading title =
  Format.fprintf out "\n%s\n%s@." title (String.make (String.length title) '=')

let subheading title = Format.fprintf out "\n-- %s --@." title

let row cells =
  let padded = List.map (fun c -> Printf.sprintf "%12s" c) cells in
  Format.fprintf out "%s@." (String.concat "  " padded)

let series ~name points =
  Format.fprintf out "%s:@." name;
  List.iter (fun (x, v) -> Format.fprintf out "  %10s  %8.2f@." x v) points

let pct v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v
