let registry : (string * string * (quick:bool -> unit)) list =
  [
    ("fig2", "HH recall vs counters over time; per-switch recall", Fig02.run);
    ("fig4", "step update policies (MM/AM/AA/MA) convergence", Fig04.run);
    ("fig6", "satisfaction + rejection/drop vs capacity (Figs 6 & 7)", Fig06.run);
    ("fig8", "prototype-vs-simulator validation (Figs 8 & 9)", Fig08.run);
    ("fig10", "large-scale satisfaction + rejection/drop (Figs 10 & 11)", Fig06.run_large);
    ("fig12", "parameter sensitivity (Figs 12 & 13)", Fig12.run);
    ("fig14", "arrival-rate sensitivity", Fig14.run);
    ("fig15", "headroom x allocation interval", Fig15.run);
    ("fig16", "Fixed_k configurations", Fig16.run);
    ("fig17", "control-loop delay breakdown and allocation delay", Fig17.run);
    ("ablation", "design ablations: allocation signal, step policy, TCAM vs sketch", Ablation.run);
    ("faults", "satisfaction/accuracy degradation vs failure rate", Fault_sweep.run);
    ("crash-recovery", "checkpoint/journal fail-over vs controller crash rate", Crash_recovery.run);
    ("telemetry-overhead", "epoch-time cost of the telemetry exporters (on vs off)",
     Telemetry_overhead.run);
    ("degraded-mode", "fast-degrade vs stall-baseline under partitions/stragglers/storms",
     Degraded_mode.run);
    ("chaos-coverage", "deterministic chaos schedule bank vs the invariant-oracle suite",
     Chaos_coverage.run);
  ]

let all = List.map (fun (id, descr, _) -> (id, descr)) registry

let run ~quick id =
  match List.find_opt (fun (id', _, _) -> id' = id) registry with
  | Some (_, _, f) ->
    f ~quick;
    Ok ()
  | None -> Error (Printf.sprintf "unknown figure id %S" id)

let run_all ~quick = List.iter (fun (_, _, f) -> f ~quick) registry
