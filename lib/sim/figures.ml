module Snapshot = Dream_obs.Bench_snapshot
module Profile = Dream_obs.Profile

(* Each entry records the fixed seed set its harness draws from, purely
   as snapshot provenance (the harnesses hard-code their seeds). *)
let scenario_seed = Dream_workload.Scenario.default.Dream_workload.Scenario.seed

let registry : (string * string * int list * (quick:bool -> Snapshot.metric list)) list =
  [
    ("fig2", "HH recall vs counters over time; per-switch recall", [ 31 ], Fig02.run);
    ("fig4", "step update policies (MM/AM/AA/MA) convergence", [], Fig04.run);
    ("fig6", "satisfaction + rejection/drop vs capacity (Figs 6 & 7)", [ scenario_seed ],
     Fig06.run);
    ("fig8", "prototype-vs-simulator validation (Figs 8 & 9)", [ scenario_seed ], Fig08.run);
    ("fig10", "large-scale satisfaction + rejection/drop (Figs 10 & 11)", [ 11 ],
     Fig06.run_large);
    ("fig12", "parameter sensitivity (Figs 12 & 13)", [ scenario_seed ], Fig12.run);
    ("fig14", "arrival-rate sensitivity", [ scenario_seed ], Fig14.run);
    ("fig15", "headroom x allocation interval", [ scenario_seed ], Fig15.run);
    ("fig16", "Fixed_k configurations", [ scenario_seed ], Fig16.run);
    ("fig17", "control-loop delay breakdown and allocation delay", [ scenario_seed ], Fig17.run);
    ("ablation", "design ablations: allocation signal, step policy, TCAM vs sketch",
     [ scenario_seed; 301 ], Ablation.run);
    ("faults", "satisfaction/accuracy degradation vs failure rate", [ 97; 193; 389 ],
     Fault_sweep.run);
    ("crash-recovery", "checkpoint/journal fail-over vs controller crash rate",
     [ 211; 499; 733 ], Crash_recovery.run);
    ("telemetry-overhead", "epoch-time cost of the telemetry exporters (on vs off)", [ 97 ],
     Telemetry_overhead.run);
    ("degraded-mode", "fast-degrade vs stall-baseline under partitions/stragglers/storms",
     [ 97 ], Degraded_mode.run);
    ("chaos-coverage", "deterministic chaos schedule bank vs the invariant-oracle suite",
     [ 42 ], Chaos_coverage.run);
  ]

let all = List.map (fun (id, descr, _, _) -> (id, descr)) registry

(* Run one harness under a profile span and, when asked, emit its
   BENCH_<figure>.json.  A caller-supplied profile accumulates across
   figures (the phases of a shared profile name every figure run so far);
   the default is a fresh profile per figure. *)
let run_entry ?snapshot_dir ?profile ~quick (id, _descr, seeds, f) =
  let profile = match profile with Some p -> p | None -> Profile.create () in
  let metrics = Profile.span profile id (fun () -> f ~quick) in
  match snapshot_dir with
  | None -> Ok ()
  | Some dir -> (
    let snap = Snapshot.make ~figure:id ~quick ~seeds ~metrics ~phases:(Profile.stats profile) () in
    match Snapshot.write snap ~dir with
    | Ok path ->
      Format.fprintf Table.out "snapshot: %s@." path;
      Ok ()
    | Error e -> Error (Printf.sprintf "%s: %s" id e))

let run ?snapshot_dir ?profile ~quick id =
  match List.find_opt (fun (id', _, _, _) -> id' = id) registry with
  | Some entry -> run_entry ?snapshot_dir ?profile ~quick entry
  | None -> Error (Printf.sprintf "unknown figure id %S" id)

let run_all ?snapshot_dir ?profile ~quick () =
  let errors =
    List.filter_map
      (fun entry ->
        match run_entry ?snapshot_dir ?profile ~quick entry with
        | Ok () -> None
        | Error e -> Some e)
      registry
  in
  match errors with [] -> Ok () | es -> Error (String.concat "; " es)
