(** Plain-text series/table output shared by all figure harnesses, so the
    bench output is uniform and diffable.

    This module is the presentation layer's one blessed route to stdout:
    everything prints through {!out}, an explicit formatter, which keeps
    the rest of [lib/] clean under dream-lint's [stdout-hygiene] rule. *)

val out : Format.formatter
(** The formatter every figure harness prints on (standard output). *)

val heading : string -> unit
(** Print a figure heading with an underline. *)

val subheading : string -> unit

val row : string list -> unit
(** Print one row of fixed-width cells. *)

val series : name:string -> (string * float) list -> unit
(** Print a named series as "x  value" lines. *)

val pct : float -> string
(** Format a percentage with one decimal. *)

val f2 : float -> string
(** Two-decimal float. *)
