(** Figures 8 and 9: simulator validation against the prototype.

    The paper runs the same workload through its prototype (real switches,
    control-loop delay, satisfaction scored with estimated accuracy) and
    its simulator (no delay, real accuracy) and shows the curves agree,
    with the prototype's tail slightly lower (missed traffic during rule
    updates) and its rejection slightly lower.

    We reproduce both sides: the "_p" rows use the prototype configuration
    ({!Dream_core.Config.prototype}); plain rows use the simulator
    configuration. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
