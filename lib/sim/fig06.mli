(** Figures 6 and 7 (and their large-scale siblings 10 and 11): per-task
    satisfaction (mean and 5th percentile) and rejection/drop ratios versus
    switch capacity, for each workload (HH, HHH, CD, combined) under DREAM,
    Equal and Fixed_32.  Both figures come from the same runs, so one call
    prints both. *)

type cell = {
  workload : string;
  capacity : int;
  strategy : string;
  summary : Dream_core.Metrics.summary;
}

val sweep :
  ?config:Dream_core.Config.t ->
  base:Dream_workload.Scenario.t ->
  capacities:int list ->
  strategies:Dream_alloc.Allocator.strategy list ->
  workloads:(string * Dream_workload.Scenario.t) list ->
  unit ->
  cell list

val print_satisfaction : title:string -> cell list -> unit

val print_rejection_drop : title:string -> cell list -> unit

val cell_metrics : cell list -> Dream_obs.Bench_snapshot.metric list
(** Per-strategy mean satisfaction / rejection / drop across a cell grid. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Prototype-scale sweep (Figs 6/7). *)

val run_large : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Large-scale sweep (Figs 10/11): more switches and tasks. *)

val workloads_of : Dream_workload.Scenario.t -> (string * Dream_workload.Scenario.t) list
(** The four workloads: HH, HHH, CD, Combined. *)

val quick_scale : Dream_workload.Scenario.t -> Dream_workload.Scenario.t
(** Time-compress a scenario (half window, durations and length) keeping
    the same expected concurrency. *)
