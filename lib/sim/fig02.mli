(** Figure 2: accuracy of HH detection.

    (a) Recall of one heavy-hitter task over time under fixed counter
    budgets (256..2048 entries): more counters mean higher recall, and
    recall sags when the trace's heavy-hitter population grows.

    (b) With the same budget, two switches seeing skewed shares of the
    traffic reach different per-switch recall — the spatial-diversity
    leverage DREAM exploits. *)

type point = { epoch : int; recall : float }

val recall_series :
  seed:int ->
  resources:int ->
  epochs:int ->
  bin:int ->
  point list
(** Binned global recall of a single HH task driven with a fixed total
    counter budget split over two switches. *)

val per_switch_series :
  seed:int -> resources:int -> epochs:int -> bin:int -> (point list * point list)
(** Binned per-switch recall of the same setup (switch 0, switch 1). *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Prints the figure tables and returns the headline numbers (mean
    recall per budget and per switch) for the benchmark snapshot. *)
