(** The telemetry-overhead figure: time the same experiment with the
    telemetry bundle attached and detached, report the per-epoch cost of
    tracing + metrics (< 5% is the budget; detached must be free), and
    check the two runs produced identical summaries — the zero-diff
    guarantee made visible in the bench output. *)

val run : quick:bool -> unit
