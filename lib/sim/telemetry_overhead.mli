(** The telemetry-overhead figure: time the same experiment with the
    telemetry bundle attached and detached, report the per-epoch cost of
    tracing + metrics (< 5% is the budget; detached must be free), and
    check the two runs produced identical summaries — the zero-diff
    guarantee made visible in the bench output.

    Besides the table, the run writes a machine-readable snapshot of the
    same numbers to {!json_path} in the working directory, one compact
    JSON object per run, for CI trend tracking. *)

val json_path : string
(** ["BENCH_telemetry_overhead.json"] *)

val run : quick:bool -> unit
