(** The telemetry-overhead figure: time the same experiment with the
    telemetry bundle attached and detached, report the per-epoch cost of
    tracing + metrics (< 5% is the budget; detached must be free), and
    check the two runs produced identical summaries — the zero-diff
    guarantee made visible in the bench output.

    The same numbers come back as benchmark-snapshot metrics (the figure
    runner writes [BENCH_telemetry_overhead.json]): wall-clock timings are
    [Info] — tracked, never gating — while the trace volume and the
    zero-diff bit gate exactly. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
