(** Ablations of DREAM's design choices (beyond the paper's figures).

    - accuracy signal: the paper argues (Section 4) for allocating on
      [max (global, local)] per switch rather than global accuracy alone;
      the ablation runs both.
    - step policy inside the full system: Fig 4 compares policies on a
      synthetic target; here MM/AM/AA/MA drive the real allocator.
    - TCAM vs sketch: accuracy-versus-resource curves of the two
      measurement primitives for the same HH workload (Section 3's
      generality argument made concrete). *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Prints every ablation table and returns the headline satisfaction /
    recall numbers for the benchmark snapshot. *)
