(** Figure 4: comparing step-update policies (MM/AM/AA/MA).

    An isolated allocation loop tracks a time-varying resource target: the
    task is "rich" when its allocation exceeds the (hidden) target and
    "poor" otherwise; allocations move by the current step, and the step
    adapts per policy.  MM converges quickly after target jumps and settles
    tight; additive-increase policies lag, and MA overshoots for long. *)

type trace = { policy : Dream_alloc.Step_policy.t; allocations : int array }

val goal : int -> int
(** The paper-style moving target: jumps between plateaus. *)

val simulate : Dream_alloc.Step_policy.t -> epochs:int -> trace

val mean_absolute_error : trace -> float
(** Mean |allocation - goal| over the run — the convergence score. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Prints the figure and returns each policy's convergence score. *)
