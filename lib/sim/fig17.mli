(** Figure 17: control-loop delay.

    (a) Breakdown of the per-epoch control loop: modelled fetch and
    incremental save/delete times dominate the measured controller
    computation (allocation is negligible), and fetch outweighs save
    because every counter is fetched while updates are incremental.

    (b) Mean and 95th-percentile allocation delay as tasks span more
    switches (the per-switch allocator sees more tasks). *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Prints both tables and returns the modelled phase delays at capacity
    1024 plus the p95 allocation delay per switches-per-task point. *)
