module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Fault_model = Dream_fault.Fault_model

type point = {
  rate : float;
  strategy : string;
  summary : Metrics.summary;
  mean_accuracy : float; (* over admitted tasks, in [0, 1] *)
}

let default_rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ]

let mean_accuracy records =
  let accs =
    List.filter_map
      (fun (r : Metrics.record) ->
        match r.Metrics.outcome with
        | Metrics.Rejected -> None
        | Metrics.Completed | Metrics.Dropped -> Some r.Metrics.mean_accuracy)
      records
  in
  Dream_util.Stats.mean accs

let run_point ?(config = Config.default) ?(fault_seed = 97) scenario strategy rate =
  let config =
    if rate <= 0.0 then config
    else { config with Config.faults = Some (Fault_model.uniform ~seed:fault_seed rate) }
  in
  let result = Experiment.run ~config scenario strategy in
  {
    rate;
    strategy = result.Experiment.strategy;
    summary = result.Experiment.summary;
    mean_accuracy = mean_accuracy result.Experiment.records;
  }

let sweep ?config ?fault_seed ?(rates = default_rates) scenario strategy =
  List.map (fun rate -> run_point ?config ?fault_seed scenario strategy rate) rates

type stat = { mean : float; stddev : float }

type aggregate = {
  agg_rate : float;
  agg_strategy : string;
  agg_runs : int;
  agg_satisfaction : stat;
  agg_p5 : stat;
  agg_accuracy : stat;
  agg_drop_pct : stat;
}

let default_seeds = [ 97; 193; 389 ]

let stat xs = { mean = Dream_util.Stats.mean xs; stddev = Dream_util.Stats.stddev xs }

let sweep_seeds ?config ?(seeds = default_seeds) ?(rates = default_rates) scenario strategy =
  if seeds = [] then invalid_arg "Fault_sweep: at least one seed required";
  List.map
    (fun rate ->
      let points =
        List.map (fun fault_seed -> run_point ?config ~fault_seed scenario strategy rate) seeds
      in
      let over f = stat (List.map f points) in
      {
        agg_rate = rate;
        agg_strategy =
          (match points with
          | p :: _ -> p.strategy
          | [] -> Dream_alloc.Allocator.strategy_name strategy);
        agg_runs = List.length points;
        agg_satisfaction = over (fun p -> p.summary.Metrics.mean_satisfaction);
        agg_p5 = over (fun p -> p.summary.Metrics.p5_satisfaction);
        agg_accuracy = over (fun p -> p.mean_accuracy);
        agg_drop_pct = over (fun p -> p.summary.Metrics.drop_pct);
      })
    rates

let print_points points =
  Table.row
    [ "rate"; "mean-sat"; "p5-sat"; "accuracy"; "drop%"; "down-ep"; "stale"; "retries"; "reinst" ];
  List.iter
    (fun p ->
      let s = p.summary in
      let r = s.Metrics.robustness in
      Table.row
        [
          Printf.sprintf "%.2f" p.rate;
          Table.pct s.Metrics.mean_satisfaction;
          Table.pct s.Metrics.p5_satisfaction;
          Table.f2 p.mean_accuracy;
          Table.pct s.Metrics.drop_pct;
          string_of_int r.Metrics.switch_down_epochs;
          string_of_int r.Metrics.stale_epochs;
          string_of_int r.Metrics.fetch_retries;
          string_of_int r.Metrics.recovery_reinstalls;
        ])
    points

let pm s = Printf.sprintf "%.1f±%.1f" s.mean s.stddev
let pm_frac s = Printf.sprintf "%.2f±%.2f" s.mean s.stddev

let print_aggregates aggs =
  Table.row [ "rate"; "runs"; "mean-sat±sd"; "p5-sat±sd"; "accuracy±sd"; "drop%±sd" ];
  List.iter
    (fun a ->
      Table.row
        [
          Printf.sprintf "%.2f" a.agg_rate;
          string_of_int a.agg_runs;
          pm a.agg_satisfaction;
          pm a.agg_p5;
          pm_frac a.agg_accuracy;
          pm a.agg_drop_pct;
        ])
    aggs

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  let seeds = if quick then [ 97; 193 ] else default_seeds in
  Table.heading "Fault sweep: satisfaction/accuracy degradation vs failure rate (combined workload)";
  List.concat_map
    (fun strategy ->
      let name = Dream_alloc.Allocator.strategy_name strategy in
      let aggs = sweep_seeds ~seeds base strategy in
      Table.subheading name;
      print_aggregates aggs;
      List.concat_map
        (fun a ->
          let m suffix v =
            Dream_obs.Bench_snapshot.metric ~unit_:"pct"
              ~direction:Dream_obs.Bench_snapshot.Higher_better
              ~tolerance_pct:Experiment.gate_tolerance
              (Printf.sprintf "%s:%s@%.2f" name suffix a.agg_rate)
              v
          in
          [
            m "satisfaction" a.agg_satisfaction.mean;
            m "accuracy" (a.agg_accuracy.mean *. 100.0);
          ])
        aggs)
    [ Experiment.dream_strategy; Dream_alloc.Allocator.Equal ]
