module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config
module Fault_model = Dream_fault.Fault_model
module Telemetry = Dream_obs.Telemetry
module Trace = Dream_obs.Trace
module Clock = Dream_obs.Clock
module Profile = Dream_obs.Profile
module Gc_stats = Dream_obs.Gc_stats
module Snapshot = Dream_obs.Bench_snapshot

(* A fault-injecting scenario so the event paths (crashes, retries, stale
   fallbacks) are part of what gets priced, not just the happy path. *)
let scenario_of ~quick =
  let s = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  { s with Scenario.num_switches = 8 }

let config_of ~telemetry =
  { Config.default with Config.faults = Some (Fault_model.uniform ~seed:97 0.05); telemetry }

let timed f =
  let t0 = Clock.now_ms Clock.cpu in
  let r = f () in
  (r, (Clock.now_ms Clock.cpu -. t0) /. 1000.0)

(* Best-of-N wall time: the minimum is the least-noisy estimate of the
   code's intrinsic cost on a shared machine. *)
let best_of ~reps f =
  let rec go best result i =
    if i >= reps then (result, best)
    else begin
      let r, s = timed f in
      go (Float.min best s) (Some r) (i + 1)
    end
  in
  match go infinity None 0 with
  | Some r, best -> (r, best)
  | None, _ -> invalid_arg "best_of: reps must be positive"

let run ~quick =
  let scenario = scenario_of ~quick in
  let reps = if quick then 2 else 3 in
  Table.heading "telemetry overhead: exporters on vs off";
  Format.fprintf Table.out "scenario: %a@." Scenario.pp scenario;
  Format.fprintf Table.out "reps: best of %d per mode@.@." reps;
  let off, off_s =
    best_of ~reps (fun () ->
        Experiment.run ~config:(config_of ~telemetry:None) scenario Experiment.dream_strategy)
  in
  let last_bundle = ref None in
  let on, on_s =
    best_of ~reps (fun () ->
        let bundle = Telemetry.create () in
        last_bundle := Some bundle;
        Experiment.run
          ~config:(config_of ~telemetry:(Some bundle))
          scenario Experiment.dream_strategy)
  in
  let epochs = scenario.Scenario.total_epochs in
  let ms_per_epoch s = s *. 1000.0 /. float_of_int epochs in
  Table.row [ "mode"; "epochs"; "total_s"; "ms/epoch" ];
  Table.row
    [ "disabled"; string_of_int epochs; Printf.sprintf "%.3f" off_s;
      Printf.sprintf "%.3f" (ms_per_epoch off_s) ];
  Table.row
    [ "enabled"; string_of_int epochs; Printf.sprintf "%.3f" on_s;
      Printf.sprintf "%.3f" (ms_per_epoch on_s) ];
  let overhead = if off_s > 0.0 then (on_s -. off_s) /. off_s *. 100.0 else 0.0 in
  Format.fprintf Table.out "@.overhead: %+.1f%% epoch time with telemetry enabled (budget < 5%%)@." overhead;
  (match !last_bundle with
  | Some bundle ->
    Format.fprintf Table.out "trace items per run: %d@." (Trace.length (Telemetry.trace bundle))
  | None -> ());
  let identical = off.Experiment.summary = on.Experiment.summary in
  Format.fprintf Table.out "zero-diff check: summaries %s@."
    (if identical then "identical" else "DIVERGED — telemetry touched simulation state!");
  let trace_items =
    match !last_bundle with
    | Some bundle -> Trace.length (Telemetry.trace bundle)
    | None -> 0
  in
  (* One profiled run prices the epoch loop's allocations.  Seeded runs
     allocate deterministically, so epoch_alloc_words gates (2% headroom
     absorbs deliberate small feature work); epochs/sec is wall clock and
     stays informational like the other timings. *)
  let profile = Profile.create () in
  let profiled_config =
    { (config_of ~telemetry:(Some (Telemetry.create ~profile ()))) with
      Config.store_backend = Dream_traffic.Aggregate.current_backend ()
    }
  in
  let _, profiled_s = timed (fun () -> Experiment.run ~config:profiled_config scenario Experiment.dream_strategy) in
  let epoch_alloc_words =
    match Profile.find profile "epoch" with
    | Some stat ->
      let r = stat.Profile.gc in
      (r.Gc_stats.minor_words +. r.Gc_stats.major_words -. r.Gc_stats.promoted_words)
      /. float_of_int epochs
    | None -> Float.nan
  in
  let epochs_per_sec =
    if profiled_s > 0.0 then float_of_int epochs /. profiled_s else 0.0
  in
  Format.fprintf Table.out "profiled: %.0f words allocated per epoch, %.1f epochs/s@."
    epoch_alloc_words epochs_per_sec;
  (* Wall-clock numbers are Info — tracked in every diff and trend, but a
     noisy machine must never fail the gate on them.  The deterministic
     outputs (trace volume, the zero-diff bit) gate exactly. *)
  let wall name v = Snapshot.metric ~unit_:"s" name v in
  let exact name v =
    Snapshot.metric ~unit_:"count" ~direction:Snapshot.Higher_better ~tolerance_pct:0.0 name
      (float_of_int v)
  in
  [
    Snapshot.metric ~unit_:"count" "epochs" (float_of_int epochs);
    Snapshot.metric ~unit_:"count" "reps" (float_of_int reps);
    wall "disabled_s" off_s;
    wall "enabled_s" on_s;
    Snapshot.metric ~unit_:"ms" "disabled_ms_per_epoch" (ms_per_epoch off_s);
    Snapshot.metric ~unit_:"ms" "enabled_ms_per_epoch" (ms_per_epoch on_s);
    Snapshot.metric ~unit_:"pct" "overhead_pct" overhead;
    exact "trace_items" trace_items;
    exact "zero_diff" (if identical then 1 else 0);
    Snapshot.metric ~unit_:"count" "epochs_per_sec" epochs_per_sec;
    Snapshot.metric ~unit_:"words" ~direction:Snapshot.Lower_better ~tolerance_pct:2.0
      "epoch_alloc_words" epoch_alloc_words;
  ]
