(** Figure 16: Fixed-allocation configurations.  Fixed_8 satisfies nearly
    every admitted task but rejects most submissions; Fixed_64 admits
    nearly all and starves them.  No fixed fraction matches DREAM on both
    axes at once. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
