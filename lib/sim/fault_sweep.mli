(** Fault-sweep experiment: how gracefully does the control loop degrade as
    the control channel and switches fail?

    Each point runs one scenario with {!Dream_fault.Fault_model.uniform}
    failure rates (fetch timeouts, counter loss, install failures at the
    sweep rate; crashes and perturbation at a tenth of it) and reports the
    paper's satisfaction metrics next to the robustness counters.  Rate 0
    runs without any fault model — the baseline every other point is
    compared against. *)

type point = {
  rate : float;  (** the uniform failure rate of this run *)
  strategy : string;
  summary : Dream_core.Metrics.summary;
  mean_accuracy : float;  (** mean per-task scored accuracy over admitted tasks, in \[0, 1\] *)
}

val default_rates : float list
(** [0; 0.02; 0.05; 0.1; 0.2] *)

val run_point :
  ?config:Dream_core.Config.t ->
  ?fault_seed:int ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  float ->
  point

val sweep :
  ?config:Dream_core.Config.t ->
  ?fault_seed:int ->
  ?rates:float list ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  point list

val print_points : point list -> unit
(** The satisfaction-vs-failure-rate table. *)

(** {1 Multi-seed aggregation}

    One seed per point makes the sweep an anecdote; the aggregate runs
    each rate under several fault seeds and reports mean ± population
    stddev, so degradation trends can be told apart from fault-schedule
    luck. *)

type stat = { mean : float; stddev : float }

type aggregate = {
  agg_rate : float;
  agg_strategy : string;
  agg_runs : int;  (** seeds aggregated *)
  agg_satisfaction : stat;  (** mean satisfaction, percent *)
  agg_p5 : stat;  (** 5th-percentile satisfaction, percent *)
  agg_accuracy : stat;  (** mean scored accuracy, in \[0, 1\] *)
  agg_drop_pct : stat;
}

val default_seeds : int list
(** [97; 193; 389] *)

val sweep_seeds :
  ?config:Dream_core.Config.t ->
  ?seeds:int list ->
  ?rates:float list ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  aggregate list
(** {!run_point} per (rate, seed), aggregated per rate.
    @raise Invalid_argument on an empty seed list. *)

val print_aggregates : aggregate list -> unit

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** Sweep DREAM and Equal over {!default_rates} on the combined workload,
    multi-seed, reporting mean ± stddev.  Returns the per-rate mean
    satisfaction and accuracy for the benchmark snapshot. *)
