module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Config = Dream_core.Config

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  let base = { base with Scenario.capacity = 1024 } in
  let headrooms = [ ("none", 0.0); ("1%", 0.01); ("5%", 0.05); ("10%", 0.1) ] in
  let intervals = [ 2; 4; 8; 16 ] in
  Table.heading "Figure 15: headroom size x allocation interval (DREAM, capacity 1024)";
  Table.row [ "headroom"; "interval"; "mean"; "p5"; "reject%"; "drop%" ];
  let cells =
    List.concat_map
      (fun (label, fraction) ->
        List.map
          (fun interval ->
            let strategy =
              Allocator.Dream
                { Dream_allocator.default_config with Dream_allocator.headroom_fraction = fraction }
            in
            let config = { Config.default with Config.allocation_interval = interval } in
            let r = Experiment.run ~config base strategy in
            let s = r.Experiment.summary in
            Table.row
              [
                label;
                string_of_int interval;
                Table.pct s.Metrics.mean_satisfaction;
                Table.pct s.Metrics.p5_satisfaction;
                Table.pct s.Metrics.rejection_pct;
                Table.pct s.Metrics.drop_pct;
              ];
            (Printf.sprintf "headroom_%s_interval_%d" label interval, r))
          intervals)
      headrooms
  in
  Experiment.grouped_summary_metrics cells ~group_of:fst
    ~summary_of:(fun (_, r) -> r.Experiment.summary)
