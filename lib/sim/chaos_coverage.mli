(** The chaos-coverage figure: run a fixed-seed schedule bank through the
    simulation-testing harness and report what the bank exercised — events
    scheduled per kind, fail-overs and checkpoint round-trips driven,
    whether the zero-adversity differential stayed byte-identical — plus
    any violations with their shrink statistics. *)

val print_outcome : Dream_chaos.Bank.outcome -> unit

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** 40 schedules under [--quick], 200 otherwise, master seed 42.  Returns
    exact-match coverage gates: violations and differential divergence
    must stay at their baseline, exercised-coverage counts must not
    shrink. *)
