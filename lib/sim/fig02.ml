module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Epoch_data = Dream_traffic.Epoch_data
module Aggregate = Dream_traffic.Aggregate
module Task_spec = Dream_tasks.Task_spec
module Task = Dream_tasks.Task
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth

type point = { epoch : int; recall : float }

(* A growing heavy-hitter population, as in the paper's trace where the
   recall of a fixed budget degrades once more HHs appear. *)
let profile ~threshold =
  {
    (Profile.default ~threshold) with
    Profile.heavy_count = 80;
    medium_count = 120;
    small_count = 200;
    switch_skew = 0.9;
    phases =
      [
        { Profile.start_epoch = 0; heavy_scale = 0.5 };
        { Profile.start_epoch = 80; heavy_scale = 1.0 };
        { Profile.start_epoch = 160; heavy_scale = 2.0 };
        { Profile.start_epoch = 240; heavy_scale = 3.0 };
      ];
  }

type setup = {
  task : Task.t;
  generator : Generator.t;
  ground_truth : Ground_truth.t;
  allocations : int Switch_id.Map.t;
  spec : Task_spec.t;
}

let make_setup ~seed ~resources =
  let rng = Rng.create seed in
  let filter = Prefix.of_string "10.16.0.0/12" in
  let topology = Topology.create rng ~filter ~num_switches:2 ~switches_per_task:2 in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator = Generator.create (Rng.split rng) ~topology ~profile:(profile ~threshold:8.0) in
  let task = Task.create ~id:0 ~spec ~topology () in
  let per_switch = resources / 2 in
  let allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw per_switch acc)
      (Task.switches task) Switch_id.Map.empty
  in
  { task; generator; ground_truth = Ground_truth.create spec; allocations; spec }

(* One epoch of the Algorithm 1 loop, bypassing the TCAM simulator: read
   counters straight off the per-switch aggregates. *)
let step s ~epoch =
  let data = Generator.next s.generator in
  let readings =
    Switch_id.Set.fold
      (fun sw acc ->
        let aggregate = Epoch_data.switch_view data sw in
        let pairs =
          List.map (fun p -> (p, Aggregate.volume aggregate p)) (Task.desired_rules s.task sw)
        in
        (sw, pairs) :: acc)
      (Task.switches s.task) []
  in
  Task.ingest_counters s.task readings;
  let report = Task.make_report s.task ~epoch in
  ignore (Task.estimate_accuracy s.task);
  Task.configure s.task ~allocations:s.allocations;
  (data, report)

let binned points ~bin =
  List.map
    (fun (p : Dream_util.Timeseries.point) ->
      { epoch = p.Dream_util.Timeseries.epoch; recall = p.Dream_util.Timeseries.value })
    (Dream_util.Timeseries.binned points ~bin)

let recall_series ~seed ~resources ~epochs ~bin =
  let s = make_setup ~seed ~resources in
  let raw = ref [] in
  for epoch = 0 to epochs - 1 do
    let data, report = step s ~epoch in
    let truth = Ground_truth.evaluate s.ground_truth data report in
    raw := (epoch, truth.Ground_truth.real_accuracy) :: !raw
  done;
  binned !raw ~bin

let per_switch_recall (spec : Task_spec.t) data report sw =
  let view = Epoch_data.switch_view data sw in
  let truth_sw = Ground_truth.true_heavy_hitters spec view in
  let detected = Report.prefixes report in
  let hits = Prefix.Set.cardinal (Prefix.Set.inter detected truth_sw) in
  let total = Prefix.Set.cardinal truth_sw in
  if total = 0 then 1.0 else float_of_int hits /. float_of_int total

let per_switch_series ~seed ~resources ~epochs ~bin =
  let s = make_setup ~seed ~resources in
  let raw0 = ref [] and raw1 = ref [] in
  for epoch = 0 to epochs - 1 do
    let data, report = step s ~epoch in
    (* Keep the CD-style ground-truth state advancing consistently. *)
    ignore (Ground_truth.evaluate s.ground_truth data report);
    raw0 := (epoch, per_switch_recall s.spec data report 0) :: !raw0;
    raw1 := (epoch, per_switch_recall s.spec data report 1) :: !raw1
  done;
  (binned !raw0 ~bin, binned !raw1 ~bin)

let mean_recall series = Dream_util.Stats.mean (List.map (fun p -> p.recall) series)

let run ~quick =
  let epochs = if quick then 160 else 320 in
  let bin = if quick then 20 else 40 in
  Table.heading "Figure 2a: HH recall over time, fixed counter budgets";
  let budget_means =
    List.map
      (fun resources ->
        let series = recall_series ~seed:31 ~resources ~epochs ~bin in
        Table.series
          ~name:(Printf.sprintf "%d counters" resources)
          (List.map (fun p -> (string_of_int p.epoch, p.recall)) series);
        Format.fprintf Table.out "  %a@."
          (fun ppf -> Dream_util.Timeseries.pp_series ppf ~name:"recall")
          (List.map
             (fun p -> { Dream_util.Timeseries.epoch = p.epoch; value = p.recall })
             series);
        (resources, mean_recall series))
      [ 256; 512; 1024; 2048 ]
  in
  Table.heading "Figure 2b: per-switch recall diverges (512 counters, skewed split)";
  let s0, s1 = per_switch_series ~seed:31 ~resources:512 ~epochs ~bin in
  Table.series ~name:"switch 0" (List.map (fun p -> (string_of_int p.epoch, p.recall)) s0);
  Table.series ~name:"switch 1" (List.map (fun p -> (string_of_int p.epoch, p.recall)) s1);
  let m name v =
    Dream_obs.Bench_snapshot.metric ~direction:Dream_obs.Bench_snapshot.Higher_better
      ~tolerance_pct:Experiment.gate_tolerance name v
  in
  List.map (fun (r, v) -> m (Printf.sprintf "mean_recall_%d" r) v) budget_means
  @ [ m "switch0_mean_recall" (mean_recall s0); m "switch1_mean_recall" (mean_recall s1) ]
