(** Figure 14: arrival-rate sensitivity — satisfaction and rejection/drop
    as the number of tasks arriving in the fixed window grows. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
