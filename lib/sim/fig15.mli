(** Figure 15: headroom and allocation-epoch sensitivity.

    (a) Larger allocation intervals adapt too slowly and lower
    satisfaction. (b) Without headroom, DREAM admits tasks it must then
    drop; 5-10% headroom makes drops negligible at a small rejection
    cost. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
