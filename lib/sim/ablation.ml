module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Epoch_data = Dream_traffic.Epoch_data
module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Task = Dream_tasks.Task
module Task_spec = Dream_tasks.Task_spec
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Step_policy = Dream_alloc.Step_policy
module Sketch_hh = Dream_sketch.Sketch_hh
module Sampled_hh = Dream_sketch.Sampled_hh
module Stats = Dream_util.Stats

let satisfaction_metric ~name v =
  Dream_obs.Bench_snapshot.metric ~unit_:"pct"
    ~direction:Dream_obs.Bench_snapshot.Higher_better
    ~tolerance_pct:Experiment.gate_tolerance name v

let accuracy_signal_ablation ~base =
  Table.heading "Ablation: per-switch allocation signal (max(global, local) vs global only)";
  Table.row [ "signal"; "mean"; "p5"; "reject%"; "drop%" ];
  List.map
    (fun (label, metric_name, mode) ->
      let config = { Config.default with Config.accuracy_mode = mode } in
      let r = Experiment.run ~config base Experiment.dream_strategy in
      let s = r.Experiment.summary in
      Table.row
        [
          label;
          Table.pct s.Metrics.mean_satisfaction;
          Table.pct s.Metrics.p5_satisfaction;
          Table.pct s.Metrics.rejection_pct;
          Table.pct s.Metrics.drop_pct;
        ];
      satisfaction_metric
        ~name:(Printf.sprintf "signal_%s_satisfaction" metric_name)
        s.Metrics.mean_satisfaction)
    [ ("max(g,l)", "overall", Task.Overall); ("global", "global_only", Task.Global_only) ]

let step_policy_ablation ~base =
  Table.heading "Ablation: step policy driving the full allocator";
  Table.row [ "policy"; "mean"; "p5"; "reject%"; "drop%" ];
  List.map
    (fun policy ->
      let strategy =
        Allocator.Dream { Dream_allocator.default_config with Dream_allocator.policy }
      in
      let r = Experiment.run base strategy in
      let s = r.Experiment.summary in
      Table.row
        [
          Step_policy.to_string policy;
          Table.pct s.Metrics.mean_satisfaction;
          Table.pct s.Metrics.p5_satisfaction;
          Table.pct s.Metrics.rejection_pct;
          Table.pct s.Metrics.drop_pct;
        ];
      satisfaction_metric
        ~name:(Printf.sprintf "policy_%s_satisfaction" (Step_policy.to_string policy))
        s.Metrics.mean_satisfaction)
    Step_policy.all

(* One HH task measured three ways at the same resource count: the TCAM
   pipeline (entries), a Count-Min sketch (cells) and NetFlow-style flow
   sampling (records).  Their error shapes differ: TCAMs lose recall while
   drilling, sketches lose precision to collisions, sampling loses both. *)
let tcam_vs_sketch ~epochs =
  Table.heading
    "Ablation: TCAM vs Count-Min sketch vs flow sampling, accuracy vs resources (one HH task)";
  Table.row
    [ "resources"; "tcam-recall"; "sketch-recall"; "sketch-prec"; "sample-recall"; "sample-prec" ];
  List.concat_map
    (fun resources ->
      let rng = Rng.create 301 in
      let filter = Prefix.of_string "10.16.0.0/12" in
      let topology = Topology.create rng ~filter ~num_switches:2 ~switches_per_task:2 in
      let spec =
        Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
      in
      let profile =
        { (Profile.default ~threshold:8.0) with Profile.heavy_count = 40; medium_count = 60 }
      in
      let generator = Generator.create (Rng.split rng) ~topology ~profile in
      let task = Task.create ~id:0 ~spec ~topology () in
      let ground_truth = Dream_tasks.Ground_truth.create spec in
      let allocations =
        Dream_traffic.Switch_id.Set.fold
          (fun sw acc -> Dream_traffic.Switch_id.Map.add sw (resources / 2) acc)
          (Task.switches task) Dream_traffic.Switch_id.Map.empty
      in
      let sketch = Sketch_hh.create ~spec ~cells:resources ~seed:17 () in
      let sampler = Sampled_hh.create ~spec ~budget:resources ~seed:23 () in
      let tcam_recalls = ref [] and sk_recalls = ref [] and sk_precisions = ref [] in
      let sa_recalls = ref [] and sa_precisions = ref [] in
      for epoch = 0 to epochs - 1 do
        let data = Generator.next generator in
        (* TCAM side. *)
        let readings =
          Dream_traffic.Switch_id.Set.fold
            (fun sw acc ->
              let agg = Epoch_data.switch_view data sw in
              ( sw,
                List.map
                  (fun p -> (p, Dream_traffic.Aggregate.volume agg p))
                  (Task.desired_rules task sw) )
              :: acc)
            (Task.switches task) []
        in
        Task.ingest_counters task readings;
        let report = Task.make_report task ~epoch in
        let truth = Dream_tasks.Ground_truth.evaluate ground_truth data report in
        ignore (Task.estimate_accuracy task);
        Task.configure task ~allocations;
        tcam_recalls := truth.Dream_tasks.Ground_truth.real_accuracy :: !tcam_recalls;
        (* Sketch side: same combined traffic, same resource count. *)
        let combined = data.Epoch_data.combined in
        Sketch_hh.observe_epoch sketch combined;
        sk_recalls := Sketch_hh.real_accuracy sketch combined ~precision:false :: !sk_recalls;
        sk_precisions := Sketch_hh.real_accuracy sketch combined ~precision:true :: !sk_precisions;
        Sampled_hh.observe_epoch sampler combined;
        sa_recalls := Sampled_hh.real_accuracy sampler combined ~precision:false :: !sa_recalls;
        sa_precisions :=
          Sampled_hh.real_accuracy sampler combined ~precision:true :: !sa_precisions
      done;
      Table.row
        [
          string_of_int resources;
          Table.f2 (Stats.mean !tcam_recalls);
          Table.f2 (Stats.mean !sk_recalls);
          Table.f2 (Stats.mean !sk_precisions);
          Table.f2 (Stats.mean !sa_recalls);
          Table.f2 (Stats.mean !sa_precisions);
        ];
      if resources = 256 then
        [
          satisfaction_metric ~name:"tcam_recall_256" (Stats.mean !tcam_recalls);
          satisfaction_metric ~name:"sketch_recall_256" (Stats.mean !sk_recalls);
          satisfaction_metric ~name:"sketch_precision_256" (Stats.mean !sk_precisions);
          satisfaction_metric ~name:"sample_recall_256" (Stats.mean !sa_recalls);
          satisfaction_metric ~name:"sample_precision_256" (Stats.mean !sa_precisions);
        ]
      else [])
    [ 64; 128; 256; 512; 1024 ]

(* Why the paper abandoned its hardware switch: throttle the per-epoch
   rule-update rate and watch satisfaction collapse (Section 6.1 measured
   1 s for 256 rules on the Pica8 3290 — i.e. a budget of ~256 per 1 s
   epoch, and a tenth of that for 512-rule batches). *)
let hardware_ablation ~base =
  Table.heading "Ablation: hardware rule-installation rate (updates per switch per epoch)";
  Table.row [ "budget"; "mean"; "p5"; "drop%" ];
  List.map
    (fun (label, budget) ->
      let config =
        match budget with
        | None -> Config.default
        | Some installs_per_epoch -> Config.hardware ~installs_per_epoch
      in
      let r = Experiment.run ~config base Experiment.dream_strategy in
      let s = r.Experiment.summary in
      Table.row
        [
          label;
          Table.pct s.Metrics.mean_satisfaction;
          Table.pct s.Metrics.p5_satisfaction;
          Table.pct s.Metrics.drop_pct;
        ];
      satisfaction_metric
        ~name:(Printf.sprintf "hardware_%s_satisfaction" label)
        s.Metrics.mean_satisfaction)
    [ ("software", None); ("512", Some 512); ("256", Some 256); ("64", Some 64) ]

let run ~quick =
  let base =
    let s = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
    { s with Scenario.capacity = 1024 }
  in
  let signal = accuracy_signal_ablation ~base in
  let policies = step_policy_ablation ~base in
  let hardware = hardware_ablation ~base in
  let sensors = tcam_vs_sketch ~epochs:(if quick then 60 else 150) in
  signal @ policies @ hardware @ sensors
