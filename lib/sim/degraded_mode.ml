module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Config = Dream_core.Config
module Controller = Dream_core.Controller
module Metrics = Dream_core.Metrics
module Fault_model = Dream_fault.Fault_model
module Source = Dream_traffic.Source
module Snapshot = Dream_obs.Bench_snapshot

type point = {
  level : float;
  mode : string;
  summary : Metrics.summary;
  mean_accuracy : float; (* over admitted tasks, in [0, 1] *)
  deadline_ms : float;
  deadline_violations : int;
  worst_fetch_ms : float;
  max_staleness : int;
  storm_submissions : int;
}

let default_levels = [ 0.0; 0.25; 0.5; 1.0 ]

let mean_accuracy records =
  let accs =
    List.filter_map
      (fun (r : Metrics.record) ->
        match r.Metrics.outcome with
        | Metrics.Rejected -> None
        | Metrics.Completed | Metrics.Dropped -> Some r.Metrics.mean_accuracy)
      records
  in
  Dream_util.Stats.mean accs

(* Storms submit real tasks, so they need real specs, topologies and
   traffic.  The pool is a second arrival schedule derived deterministically
   from the scenario seed — shorter-lived tasks, drawn in order as storms
   fire, so a (scenario, fault seed) pair always storms identically. *)
let storm_pool scenario =
  let s =
    {
      scenario with
      Scenario.seed = scenario.Scenario.seed + 7919;
      num_tasks = max 8 (scenario.Scenario.num_tasks / 2);
      mean_duration = max 5 (scenario.Scenario.mean_duration / 4);
    }
  in
  Arrival.schedule s

let submit controller (s : Arrival.submission) =
  ignore
    (Controller.submit controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
       ~source:(Source.of_generator s.Arrival.generator) ~duration:s.Arrival.duration)

(* Experiment.run's driver loop, extended with the two things this sweep
   measures: tenant admission storms (the controller signals how many extra
   submissions the fault model asked for; we feed it from the storm pool)
   and per-epoch deadline accounting against the modelled fetch time. *)
let drive ?telemetry ~config ~deadline_ms scenario strategy =
  let config = { config with Config.telemetry } in
  let controller =
    Controller.create ~config ~strategy ~num_switches:scenario.Scenario.num_switches
      ~capacity:scenario.Scenario.capacity
  in
  let pending = ref (Arrival.schedule scenario) in
  let reserve = ref (storm_pool scenario) in
  let storm_submissions = ref 0 in
  let max_stale = ref 0 in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    let want = Controller.storm_tasks_pending controller in
    for _ = 1 to want do
      match !reserve with
      | [] -> ()
      | s :: rest ->
        reserve := rest;
        incr storm_submissions;
        submit controller s
    done;
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter (submit controller) due;
    Controller.tick controller;
    max_stale := max !max_stale (Controller.max_staleness controller)
  done;
  Controller.finalize controller;
  let samples = Controller.delay_samples controller in
  let violations =
    List.fold_left
      (fun n (s : Controller.delay_sample) ->
        if s.Controller.fetch_ms > deadline_ms +. 1e-6 then n + 1 else n)
      0 samples
  in
  let worst =
    List.fold_left (fun w (s : Controller.delay_sample) -> Float.max w s.Controller.fetch_ms) 0.0
      samples
  in
  (controller, violations, worst, !max_stale, !storm_submissions)

let run_spec ?telemetry ?(config = Config.default) ~mode ~level ~degraded spec scenario strategy =
  let config = { config with Config.faults = Some spec; Config.degraded = degraded } in
  let deadline_ms =
    let d = match degraded with Some d -> d | None -> Config.default_degraded in
    d.Config.deadline_fraction *. config.Config.epoch_ms
  in
  let controller, deadline_violations, worst_fetch_ms, max_staleness, storm_submissions =
    drive ?telemetry ~config ~deadline_ms scenario strategy
  in
  {
    level;
    mode;
    summary = Controller.summary controller;
    mean_accuracy = mean_accuracy (Controller.records controller);
    deadline_ms;
    deadline_violations;
    worst_fetch_ms;
    max_staleness;
    storm_submissions;
  }

let run_point ?telemetry ?config ?(fault_seed = 97) ?(degraded = Some Config.default_degraded)
    scenario strategy level =
  let mode = match degraded with Some _ -> "degraded" | None -> "baseline" in
  run_spec ?telemetry ?config ~mode ~level ~degraded
    (Fault_model.adversity ~seed:fault_seed level)
    scenario strategy

let sweep ?config ?fault_seed ?(levels = default_levels) scenario strategy =
  List.concat_map
    (fun level ->
      [
        run_point ?config ?fault_seed ~degraded:(Some Config.default_degraded) scenario strategy
          level;
        run_point ?config ?fault_seed ~degraded:None scenario strategy level;
      ])
    levels

(* The acceptance experiment: partitions always take out exactly a quarter
   of the fleet.  With [partition_groups = 4] and [partition_eligible = 1],
   only group 0 (switches congruent to 0 mod 4) can partition.  The default
   rate gives recurring windows with a roughly 50% duty cycle
   (rate * mean / (1 + rate * mean)); [~rate:1.0] makes the partition
   essentially permanent — the sustained extreme the figure also plots. *)
let quarter_partition_spec ?(seed = 97) ?(rate = 0.12) () =
  {
    Fault_model.zero with
    Fault_model.seed;
    partition_rate = rate;
    mean_partition = 8.0;
    partition_groups = 4;
    partition_eligible = 1;
  }

type quarter = {
  q_baseline : point;
  q_partition : point;
  q_stall : point;
  q_sustained : point;
}

let run_quarter ?config ?(fault_seed = 97) scenario strategy =
  let degraded = Some Config.default_degraded in
  let q_baseline =
    run_spec ?config ~mode:"no-partition" ~level:0.0 ~degraded
      { Fault_model.zero with Fault_model.seed = fault_seed }
      scenario strategy
  in
  let spec = quarter_partition_spec ~seed:fault_seed () in
  let q_partition =
    run_spec ?config ~mode:"partition-25%" ~level:0.25 ~degraded spec scenario strategy
  in
  let q_stall = run_spec ?config ~mode:"stall-25%" ~level:0.25 ~degraded:None spec scenario strategy in
  let q_sustained =
    run_spec ?config ~mode:"sustained-25%" ~level:0.25 ~degraded
      (quarter_partition_spec ~seed:fault_seed ~rate:1.0 ())
      scenario strategy
  in
  { q_baseline; q_partition; q_stall; q_sustained }

let print_points points =
  Table.row
    [
      "level"; "mode"; "mean-sat"; "p5-sat"; "drop%"; "ddl-viol"; "worst-fetch"; "max-stale";
      "sheds"; "brk-open"; "brk-skip"; "part-ep";
    ];
  List.iter
    (fun p ->
      let s = p.summary in
      let r = s.Metrics.robustness in
      Table.row
        [
          Printf.sprintf "%.2f" p.level;
          p.mode;
          Table.pct s.Metrics.mean_satisfaction;
          Table.pct s.Metrics.p5_satisfaction;
          Table.pct s.Metrics.drop_pct;
          string_of_int p.deadline_violations;
          Printf.sprintf "%.0fms" p.worst_fetch_ms;
          string_of_int p.max_staleness;
          string_of_int r.Metrics.sheds;
          string_of_int r.Metrics.breaker_opens;
          string_of_int r.Metrics.breaker_skips;
          string_of_int r.Metrics.partition_epochs;
        ])
    points

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  let levels = if quick then [ 0.0; 0.5; 1.0 ] else default_levels in
  Table.heading
    "degraded mode: fast-degrade (breakers + deadline shedding) vs stall-baseline, by adversity \
     level";
  print_points (sweep ~levels base Experiment.dream_strategy);
  Table.subheading
    "25% partition acceptance (groups=4, eligible=1; recurring ~50% duty, plus the sustained \
     extreme)";
  let q = run_quarter base Experiment.dream_strategy in
  print_points [ q.q_baseline; q.q_partition; q.q_stall; q.q_sustained ];
  let b = q.q_baseline.summary.Metrics.mean_satisfaction in
  let p = q.q_partition.summary.Metrics.mean_satisfaction in
  let drop = if b > 0.0 then (b -. p) /. b *. 100.0 else 0.0 in
  Format.fprintf Table.out
    "@.satisfaction drop under 25%% partition: %.1f%% (budget 15%%); deadline violations: %d@."
    drop q.q_partition.deadline_violations;
  (* The acceptance pair as snapshot metrics: all modelled quantities, so
     they reproduce exactly from the seed and gate tightly. *)
  let tol = Experiment.gate_tolerance in
  let pct name direction v = Snapshot.metric ~unit_:"pct" ~direction ~tolerance_pct:tol name v in
  let count name v =
    Snapshot.metric ~unit_:"count" ~direction:Snapshot.Lower_better ~tolerance_pct:0.0 name
      (float_of_int v)
  in
  [
    pct "baseline_satisfaction" Snapshot.Higher_better b;
    pct "partition_satisfaction" Snapshot.Higher_better p;
    pct "satisfaction_drop_pct" Snapshot.Lower_better drop;
    Snapshot.metric ~unit_:"pct" "drop_budget_pct" 15.0;
    count "deadline_violations" q.q_partition.deadline_violations;
    Snapshot.metric ~unit_:"count" "stall_deadline_violations"
      (float_of_int q.q_stall.deadline_violations);
    Snapshot.metric ~unit_:"ms" ~direction:Snapshot.Lower_better ~tolerance_pct:tol
      "worst_fetch_ms" q.q_partition.worst_fetch_ms;
    count "max_staleness" q.q_partition.max_staleness;
    Snapshot.metric ~unit_:"count" "storm_submissions"
      (float_of_int q.q_partition.storm_submissions);
    pct "sustained_satisfaction" Snapshot.Higher_better
      q.q_sustained.summary.Metrics.mean_satisfaction;
  ]
