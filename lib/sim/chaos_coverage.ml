module Bank = Dream_chaos.Bank
module Schedule = Dream_chaos.Schedule
module Oracle = Dream_chaos.Oracle

let print_outcome (o : Bank.outcome) =
  Format.fprintf Table.out
    "bank: %d schedules x %d events over %d epochs (seed %d)@.@." o.Bank.schedules
    o.Bank.events_per_schedule o.Bank.horizon o.Bank.seed;
  let c = o.Bank.coverage in
  Table.row [ "event kind"; "scheduled" ];
  Table.row [ "switch-crash"; string_of_int c.Bank.switch_crashes ];
  Table.row [ "controller-crash"; string_of_int c.Bank.controller_crashes ];
  Table.row [ "partition"; string_of_int c.Bank.partitions ];
  Table.row [ "heal-hint"; string_of_int c.Bank.heal_hints ];
  Table.row [ "storm"; string_of_int c.Bank.storms ];
  Table.row [ "noise-window"; string_of_int c.Bank.noise_windows ];
  Table.row [ "torn-tail"; string_of_int c.Bank.torn_tails ];
  Table.row [ "checkpoint-probe"; string_of_int c.Bank.checkpoint_probes ];
  Format.fprintf Table.out
    "@.exercised: %d fail-overs, %d checkpoint round-trips, %d torn-tail parses, %d storm \
     submissions@."
    o.Bank.recoveries o.Bank.checkpoints o.Bank.torn_tail_checks o.Bank.storm_submissions;
  Format.fprintf Table.out "differential (zero-adversity vs seed run): %s@."
    (if o.Bank.differential_ok then "byte-identical" else "DIVERGED");
  Format.fprintf Table.out "violations: %d across %d failing schedules@." o.Bank.violations
    (List.length o.Bank.failures);
  List.iter
    (fun (f : Bank.failure) ->
      Format.fprintf Table.out
        "  seed %d: %s — shrunk %d -> %d events in %d runs@."
        f.Bank.f_schedule.Schedule.seed
        (Oracle.to_string f.Bank.f_first)
        f.Bank.f_stats.Dream_chaos.Shrink.initial_events f.Bank.f_stats.Dream_chaos.Shrink.final_events
        f.Bank.f_stats.Dream_chaos.Shrink.runs)
    o.Bank.failures

let run ~quick =
  Table.heading "chaos coverage: deterministic schedule bank against the oracle suite";
  let schedules = if quick then 40 else 200 in
  let o = Bank.run ~schedules ~seed:42 () in
  print_outcome o;
  let module S = Dream_obs.Bench_snapshot in
  let count name direction v =
    S.metric ~unit_:"count" ~direction ~tolerance_pct:0.0 name (float_of_int v)
  in
  [
    (* Exact-match gates: any violation or differential divergence fails,
       and a drop in exercised coverage is a regression too. *)
    count "violations" S.Lower_better o.Bank.violations;
    count "differential_ok" S.Higher_better (if o.Bank.differential_ok then 1 else 0);
    count "recoveries" S.Higher_better o.Bank.recoveries;
    count "checkpoints" S.Higher_better o.Bank.checkpoints;
    count "torn_tail_checks" S.Higher_better o.Bank.torn_tail_checks;
    count "storm_submissions" S.Higher_better o.Bank.storm_submissions;
  ]
