(** Figures 12 and 13: parameter sensitivity of HHH tasks at a constrained
    capacity — satisfaction (12) and rejection/drop (13) as one parameter
    varies at a time: accuracy bound, task threshold, switches per task,
    and task duration. *)

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
