module Scenario = Dream_workload.Scenario
module Controller = Dream_core.Controller
module Stats = Dream_util.Stats

let mean_of f samples = Stats.mean (List.map f samples)

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  Table.heading "Figure 17a: control loop delay breakdown per epoch (ms)";
  Table.row [ "capacity"; "fetch"; "save"; "report"; "allocate"; "configure" ];
  (* Only fetch and save come from the deterministic delay model; report,
     allocate and configure are measured wall-clock time, so of the
     headline metrics at capacity 1024 only the modelled pair gates
     tightly — the wall-clock columns are tracked as Info. *)
  let headline = ref [] in
  List.iter
    (fun capacity ->
      let scenario = { base with Scenario.capacity } in
      let r = Experiment.run scenario Experiment.dream_strategy in
      let samples = r.Experiment.delay_samples in
      let phases =
        [
          ("fetch_ms", mean_of (fun s -> s.Controller.fetch_ms) samples);
          ("save_ms", mean_of (fun s -> s.Controller.save_ms) samples);
          ("report_ms", mean_of (fun s -> s.Controller.report_ms) samples);
          ("allocate_ms", mean_of (fun s -> s.Controller.allocate_ms) samples);
          ("configure_ms", mean_of (fun s -> s.Controller.configure_ms) samples);
        ]
      in
      if capacity = 1024 then headline := phases;
      Table.row (string_of_int capacity :: List.map (fun (_, v) -> Table.f2 v) phases))
    [ 256; 512; 1024; 2048 ];
  Table.heading "Figure 17b: allocation delay vs switches per task (ms)";
  Table.row [ "sw/task"; "mean"; "p95" ];
  let alloc_p95 = ref [] in
  List.iter
    (fun k ->
      let scenario = { base with Scenario.switches_per_task = k; Scenario.capacity = 1024 } in
      let r = Experiment.run scenario Experiment.dream_strategy in
      let allocs =
        List.filter_map
          (fun s ->
            if s.Controller.allocate_ms > 0.0 then Some s.Controller.allocate_ms else None)
          r.Experiment.delay_samples
      in
      match allocs with
      | [] -> Table.row [ string_of_int k; "-"; "-" ]
      | _ :: _ ->
        let p95 = Stats.percentile 95.0 allocs in
        alloc_p95 := (k, p95) :: !alloc_p95;
        Table.row [ string_of_int k; Table.f2 (Stats.mean allocs); Table.f2 p95 ])
    [ 2; 4; 8 ];
  let gated name v =
    Dream_obs.Bench_snapshot.metric ~unit_:"ms"
      ~direction:Dream_obs.Bench_snapshot.Lower_better
      ~tolerance_pct:Experiment.gate_tolerance name v
  in
  let info name v = Dream_obs.Bench_snapshot.metric ~unit_:"ms" name v in
  let modelled = function "fetch_ms" | "save_ms" -> true | _ -> false in
  List.map
    (fun (name, v) -> (if modelled name then gated else info) ("cap1024_" ^ name) v)
    !headline
  @ List.rev_map (fun (k, p95) -> info (Printf.sprintf "alloc_p95_ms_sw%d" k) p95) !alloc_p95
