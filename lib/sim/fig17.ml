module Scenario = Dream_workload.Scenario
module Controller = Dream_core.Controller
module Stats = Dream_util.Stats

let mean_of f samples = Stats.mean (List.map f samples)

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  Table.heading "Figure 17a: control loop delay breakdown per epoch (ms)";
  Table.row [ "capacity"; "fetch"; "save"; "report"; "allocate"; "configure" ];
  List.iter
    (fun capacity ->
      let scenario = { base with Scenario.capacity } in
      let r = Experiment.run scenario Experiment.dream_strategy in
      let samples = r.Experiment.delay_samples in
      Table.row
        [
          string_of_int capacity;
          Table.f2 (mean_of (fun s -> s.Controller.fetch_ms) samples);
          Table.f2 (mean_of (fun s -> s.Controller.save_ms) samples);
          Table.f2 (mean_of (fun s -> s.Controller.report_ms) samples);
          Table.f2 (mean_of (fun s -> s.Controller.allocate_ms) samples);
          Table.f2 (mean_of (fun s -> s.Controller.configure_ms) samples);
        ])
    [ 256; 512; 1024; 2048 ];
  Table.heading "Figure 17b: allocation delay vs switches per task (ms)";
  Table.row [ "sw/task"; "mean"; "p95" ];
  List.iter
    (fun k ->
      let scenario = { base with Scenario.switches_per_task = k; Scenario.capacity = 1024 } in
      let r = Experiment.run scenario Experiment.dream_strategy in
      let allocs =
        List.filter_map
          (fun s ->
            if s.Controller.allocate_ms > 0.0 then Some s.Controller.allocate_ms else None)
          r.Experiment.delay_samples
      in
      match allocs with
      | [] -> Table.row [ string_of_int k; "-"; "-" ]
      | _ :: _ ->
        Table.row
          [
            string_of_int k;
            Table.f2 (Stats.mean allocs);
            Table.f2 (Stats.percentile 95.0 allocs);
          ])
    [ 2; 4; 8 ]
