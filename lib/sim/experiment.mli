(** Run one scenario under one allocation strategy and collect the paper's
    metrics.  All randomness comes from the scenario seed, so a (scenario,
    strategy, config) triple is fully reproducible. *)

type result = {
  strategy : string;
  scenario : Dream_workload.Scenario.t;
  summary : Dream_core.Metrics.summary;
  records : Dream_core.Metrics.record list;
  delay_samples : Dream_core.Controller.delay_sample list;
  rules_installed : int;
  rules_fetched : int;
  robustness : Dream_core.Metrics.robustness;
      (** fault/recovery counters; {!Dream_core.Metrics.no_faults} unless
          the config carries a fault spec *)
}

val run :
  ?config:Dream_core.Config.t ->
  (* default: {!Dream_core.Config.default} with the ambient
     {!Dream_traffic.Aggregate.current_backend} as its store backend *)
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  result

val dream_strategy : Dream_alloc.Allocator.strategy
(** DREAM with its default configuration. *)

val standard_strategies : Dream_alloc.Allocator.strategy list
(** The paper's comparison set: DREAM, Equal, Fixed_32. *)

(** {1 Benchmark-snapshot helpers}

    Figure harnesses report their headline numbers as
    {!Dream_obs.Bench_snapshot.metric} values.  Simulation outputs are
    seed-deterministic, so these gate with a tight default tolerance
    ({!gate_tolerance}); wall-clock-derived numbers must instead be
    emitted with {!Dream_obs.Bench_snapshot.Info} direction. *)

val gate_tolerance : float
(** Default tolerance (percent) for deterministic simulation metrics. *)

val summary_metrics :
  ?tolerance_pct:float ->
  prefix:string ->
  Dream_core.Metrics.summary ->
  Dream_obs.Bench_snapshot.metric list
(** Satisfaction / rejection / drop of one summary, names prefixed with
    [prefix]. *)

val grouped_summary_metrics :
  ?tolerance_pct:float ->
  'a list ->
  group_of:('a -> string) ->
  summary_of:('a -> Dream_core.Metrics.summary) ->
  Dream_obs.Bench_snapshot.metric list
(** Mean satisfaction / rejection / drop per group (e.g. per strategy),
    metric names ["<group>:<field>"]. *)
