module Scenario = Dream_workload.Scenario
module Config = Dream_core.Config

let capacities = [ 256; 512; 1024; 2048 ]

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  (* Quick mode validates on the combined workload only; full mode covers
     all four workloads like the paper. *)
  let workloads =
    if quick then [ ("Combined", base) ] else Fig06.workloads_of base
  in
  let cells config suffix =
    List.map
      (fun c -> { c with Fig06.strategy = c.Fig06.strategy ^ suffix })
      (Fig06.sweep ~config ~base ~capacities ~strategies:Experiment.standard_strategies
         ~workloads ())
  in
  let prototype = cells Config.prototype "_p" in
  let simulator = cells Config.default "" in
  let interleaved =
    List.sort
      (fun a b ->
        let c = compare a.Fig06.workload b.Fig06.workload in
        if c <> 0 then c
        else begin
          let c = compare a.Fig06.capacity b.Fig06.capacity in
          if c <> 0 then c else compare a.Fig06.strategy b.Fig06.strategy
        end)
      (prototype @ simulator)
  in
  Fig06.print_satisfaction
    ~title:"Figure 8: satisfaction, prototype (_p: delay model + estimated accuracy) vs simulator"
    interleaved;
  Fig06.print_rejection_drop ~title:"Figure 9: rejection and drop, prototype vs simulator"
    interleaved;
  Fig06.cell_metrics interleaved
