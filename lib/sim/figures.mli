(** Registry of all figure harnesses keyed by the ids used in DESIGN.md's
    per-experiment index.  Figures that share runs are grouped (fig6 also
    prints Fig 7, etc.).

    Every harness returns its headline numbers as
    {!Dream_obs.Bench_snapshot.metric} values; with [snapshot_dir] set the
    runner wraps the run in a {!Dream_obs.Profile} span and writes the
    versioned [BENCH_<figure>.json] snapshot (metrics + measured phases)
    there — the artifact [dream_bench] and the CI perf gate compare. *)

val all : (string * string) list
(** (id, description) in presentation order. *)

val run :
  ?snapshot_dir:string ->
  ?profile:Dream_obs.Profile.t ->
  quick:bool ->
  string ->
  (unit, string) result
(** Run one figure id; [Error] names the unknown id or a snapshot-write
    failure.  A caller-supplied [profile] accumulates spans across calls;
    by default each run profiles into a fresh one. *)

val run_all :
  ?snapshot_dir:string ->
  ?profile:Dream_obs.Profile.t ->
  quick:bool ->
  unit ->
  (unit, string) result
(** Run every figure; collects all failures into one [Error]. *)
