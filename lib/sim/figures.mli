(** Registry of all figure harnesses keyed by the ids used in DESIGN.md's
    per-experiment index.  Figures that share runs are grouped (fig6 also
    prints Fig 7, etc.). *)

val all : (string * string) list
(** (id, description) in presentation order. *)

val run : quick:bool -> string -> (unit, string) result
(** Run one figure id; [Error] names the unknown id. *)

val run_all : quick:bool -> unit
