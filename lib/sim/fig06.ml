module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics
module Task_spec = Dream_tasks.Task_spec

type cell = { workload : string; capacity : int; strategy : string; summary : Metrics.summary }

(* Quick mode shrinks the population and moderately shortens durations,
   keeping the expected concurrency (and thus the contention regime) of the
   full-scale scenario while cutting simulated task-epochs to ~30%. *)
let quick_scale (s : Scenario.t) =
  let num_tasks = max 8 (s.Scenario.num_tasks * 2 / 5) in
  let window = max 40 (s.Scenario.arrival_window * 3 / 7) in
  let duration = max 40 (s.Scenario.mean_duration * 5 / 7) in
  {
    s with
    num_tasks;
    arrival_window = window;
    mean_duration = duration;
    min_duration = max 30 (s.Scenario.min_duration * 5 / 7);
    total_epochs = window + (2 * duration);
  }

let workloads_of (base : Scenario.t) =
  [
    ("HH", Scenario.with_kind base Task_spec.Heavy_hitter);
    ("HHH", Scenario.with_kind base Task_spec.Hierarchical_heavy_hitter);
    ("CD", Scenario.with_kind base Task_spec.Change_detection);
    ("Combined", base);
  ]

let sweep ?config ~base:_ ~capacities ~strategies ~workloads () =
  List.concat_map
    (fun (name, scenario) ->
      List.concat_map
        (fun capacity ->
          List.map
            (fun strategy ->
              let scenario = { scenario with Scenario.capacity } in
              let result = Experiment.run ?config scenario strategy in
              {
                workload = name;
                capacity;
                strategy = result.Experiment.strategy;
                summary = result.Experiment.summary;
              })
            strategies)
        capacities)
    workloads

let print_satisfaction ~title cells =
  Table.heading title;
  let workloads = List.sort_uniq compare (List.map (fun c -> c.workload) cells) in
  List.iter
    (fun w ->
      Table.subheading (Printf.sprintf "%s workload: satisfaction (mean / 5th pct)" w);
      Table.row [ "capacity"; "strategy"; "mean"; "p5" ];
      List.iter
        (fun c ->
          if c.workload = w then
            Table.row
              [
                string_of_int c.capacity;
                c.strategy;
                Table.pct c.summary.Metrics.mean_satisfaction;
                Table.pct c.summary.Metrics.p5_satisfaction;
              ])
        cells)
    workloads

let print_rejection_drop ~title cells =
  Table.heading title;
  let workloads = List.sort_uniq compare (List.map (fun c -> c.workload) cells) in
  List.iter
    (fun w ->
      Table.subheading (Printf.sprintf "%s workload: rejection and drop ratios" w);
      Table.row [ "capacity"; "strategy"; "reject%"; "drop%" ];
      List.iter
        (fun c ->
          if c.workload = w then
            Table.row
              [
                string_of_int c.capacity;
                c.strategy;
                Table.pct c.summary.Metrics.rejection_pct;
                Table.pct c.summary.Metrics.drop_pct;
              ])
        cells)
    workloads

let capacities = [ 256; 512; 1024; 2048 ]

(* Headline numbers: per-strategy means across the whole (workload x
   capacity) grid — coarse, but exactly reproducible from the seed. *)
let cell_metrics cells =
  Experiment.grouped_summary_metrics cells ~group_of:(fun c -> c.strategy)
    ~summary_of:(fun c -> c.summary)

let run ~quick =
  let base = if quick then quick_scale Scenario.default else Scenario.default in
  let cells =
    sweep ~base ~capacities ~strategies:Experiment.standard_strategies
      ~workloads:(workloads_of base) ()
  in
  print_satisfaction ~title:"Figure 6: satisfaction vs switch capacity (prototype scale)" cells;
  print_rejection_drop ~title:"Figure 7: rejection and drop vs switch capacity" cells;
  cell_metrics cells

let large_base =
  {
    Scenario.default with
    Scenario.num_switches = 16;
    num_tasks = 128;
    switches_per_task = 8;
    seed = 11;
  }

let run_large ~quick =
  let base = if quick then quick_scale large_base else large_base in
  let workloads = if quick then [ ("Combined", base) ] else workloads_of base in
  let cells =
    sweep ~base ~capacities ~strategies:Experiment.standard_strategies ~workloads ()
  in
  print_satisfaction ~title:"Figure 10: satisfaction, large-scale simulation" cells;
  print_rejection_drop ~title:"Figure 11: rejection and drop, large-scale simulation" cells;
  cell_metrics cells
