module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator

let capacities = [ 256; 512; 1024; 2048 ]

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  Table.heading "Figure 16: Fixed_k allocation configurations (combined workload)";
  Table.row [ "capacity"; "strategy"; "mean"; "p5"; "reject%" ];
  let cells =
    List.concat_map
      (fun capacity ->
        List.map
          (fun k ->
            let scenario = { base with Scenario.capacity } in
            let r = Experiment.run scenario (Allocator.Fixed k) in
            let s = r.Experiment.summary in
            Table.row
              [
                string_of_int capacity;
                r.Experiment.strategy;
                Table.pct s.Metrics.mean_satisfaction;
                Table.pct s.Metrics.p5_satisfaction;
                Table.pct s.Metrics.rejection_pct;
              ];
            r)
          [ 8; 16; 32; 64 ])
      capacities
  in
  Experiment.grouped_summary_metrics cells
    ~group_of:(fun r -> r.Experiment.strategy)
    ~summary_of:(fun r -> r.Experiment.summary)
