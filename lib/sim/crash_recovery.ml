module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Controller = Dream_core.Controller
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Fault_model = Dream_fault.Fault_model
module Journal = Dream_recovery.Journal
module Stats = Dream_util.Stats

type run_result = {
  summary : Metrics.summary;
  mean_accuracy : float;
  crashes : int;
  reconverge_epochs : float list;
  accuracy_dips : float list;
}

type stat = { mean : float; stddev : float }

type point = {
  crash_rate : float;
  runs : int;
  crashes : float;
  satisfaction : stat;
  accuracy : stat;
  reconverge : stat;
  dip : stat;
  reconciled_removed : int;
  reconciled_installed : int;
  invariant_violations : int;
}

let default_rates = [ 0.0; 0.01; 0.02; 0.05 ]
let default_fault_seed = 211
let default_seeds = [ default_fault_seed; 499; 733 ]
let default_checkpoint_interval = 20

(* Recovered: mean smoothed estimated accuracy back within 5% of its
   pre-crash level. *)
let reconverge_target = 0.95

let crash_spec ~seed rate =
  if rate < 0.0 || rate > 1.0 || Float.is_nan rate then
    invalid_arg "Crash_recovery: controller crash rate must be in [0, 1]";
  { Fault_model.zero with Fault_model.seed; controller_crash_rate = rate }

let mean_estimated_accuracy controller =
  match
    List.filter_map
      (fun id -> Controller.smoothed_accuracy controller ~task_id:id)
      (Controller.active_task_ids controller)
  with
  | [] -> None
  | accs -> Some (Stats.mean accs)

let mean_scored_accuracy records =
  Stats.mean
    (List.filter_map
       (fun (r : Metrics.record) ->
         match r.Metrics.outcome with
         | Metrics.Rejected -> None
         | Metrics.Completed | Metrics.Dropped -> Some r.Metrics.mean_accuracy)
       records)

let run_once ?(config = Config.default) ?(checkpoint_interval = default_checkpoint_interval)
    ?(fault_seed = default_fault_seed) ~crash_rate (scenario : Scenario.t) strategy =
  if checkpoint_interval <= 0 then invalid_arg "Crash_recovery: checkpoint interval must be > 0";
  let config =
    {
      config with
      Config.faults = Some (crash_spec ~seed:fault_seed crash_rate);
      check_invariants = true;
    }
  in
  let controller =
    ref
      (Controller.create ~config ~strategy ~num_switches:scenario.Scenario.num_switches
         ~capacity:scenario.Scenario.capacity)
  in
  let sink = Journal.memory () in
  Controller.set_journal !controller (Some sink);
  let snapshot = ref (Controller.checkpoint !controller) in
  let pending = ref (Arrival.schedule scenario) in
  let crashes = ref 0 in
  let reconverge = ref [] in
  let dips = ref [] in
  (* (first post-recovery epoch, pre-crash accuracy) while reconverging *)
  let tracking = ref None in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    if epoch > 0 && epoch mod checkpoint_interval = 0 then
      snapshot := Controller.checkpoint !controller;
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter
      (fun (s : Arrival.submission) ->
        ignore
          (Controller.submit !controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
             ~source:(Dream_traffic.Source.of_generator s.Arrival.generator)
             ~duration:s.Arrival.duration))
      due;
    let baseline = mean_estimated_accuracy !controller in
    Controller.tick !controller;
    (match (!tracking, mean_estimated_accuracy !controller) with
    | Some (since, target), Some acc when acc >= reconverge_target *. target ->
      reconverge := float_of_int (epoch - since + 1) :: !reconverge;
      tracking := None
    | Some _, None ->
      (* every task alive at the crash has ended: nothing left to watch *)
      tracking := None
    | _ -> ());
    if Controller.controller_crash_pending !controller then begin
      incr crashes;
      let env = Controller.environment !controller in
      let at_epoch = Controller.epoch !controller in
      match
        Controller.recover ~env ~snapshot:!snapshot ~journal:(Journal.entries sink) ~at_epoch
      with
      | Error msg -> failwith ("Crash_recovery: fail-over failed: " ^ msg)
      | Ok successor ->
        Controller.set_journal successor (Some sink);
        controller := successor;
        (* Checkpoint immediately: the fresh snapshot carries the recovery
           tallies forward, so a second crash before the next scheduled
           checkpoint does not forget this one. *)
        snapshot := Controller.checkpoint successor;
        (match (baseline, mean_estimated_accuracy successor) with
        | Some before, Some after ->
          dips := Float.max 0.0 (before -. after) :: !dips;
          tracking := Some (epoch + 1, before)
        | Some before, None -> tracking := Some (epoch + 1, before)
        | None, _ -> ())
    end
  done;
  Controller.finalize !controller;
  {
    summary = Controller.summary !controller;
    mean_accuracy = mean_scored_accuracy (Controller.records !controller);
    crashes = !crashes;
    reconverge_epochs = List.rev !reconverge;
    accuracy_dips = List.rev !dips;
  }

let stat xs = { mean = Stats.mean xs; stddev = Stats.stddev xs }

let sweep ?config ?checkpoint_interval ?(seeds = default_seeds) ?(rates = default_rates) scenario
    strategy =
  if seeds = [] then invalid_arg "Crash_recovery: at least one seed required";
  List.map
    (fun rate ->
      let runs =
        List.map
          (fun fault_seed ->
            run_once ?config ?checkpoint_interval ~fault_seed ~crash_rate:rate scenario strategy)
          seeds
      in
      let sum_rob f =
        List.fold_left (fun acc r -> acc + f r.summary.Metrics.robustness) 0 runs
      in
      {
        crash_rate = rate;
        runs = List.length runs;
        crashes = Stats.mean (List.map (fun (r : run_result) -> float_of_int r.crashes) runs);
        satisfaction = stat (List.map (fun r -> r.summary.Metrics.mean_satisfaction) runs);
        accuracy = stat (List.map (fun r -> r.mean_accuracy) runs);
        reconverge = stat (List.concat_map (fun r -> r.reconverge_epochs) runs);
        dip = stat (List.concat_map (fun r -> r.accuracy_dips) runs);
        reconciled_removed = sum_rob (fun r -> r.Metrics.reconcile_removed);
        reconciled_installed = sum_rob (fun r -> r.Metrics.reconcile_installed);
        invariant_violations = sum_rob (fun r -> r.Metrics.invariant_violations);
      })
    rates

(* Satisfaction stats are already percentages; accuracies and dips are in
   [0, 1] and get scaled for display. *)
let pm s = Printf.sprintf "%.1f±%.1f" s.mean s.stddev
let pm_frac s = pm { mean = s.mean *. 100.0; stddev = s.stddev *. 100.0 }

let print_points points =
  Table.row
    [
      "rate";
      "runs";
      "crashes";
      "sat%±sd";
      "acc%±sd";
      "reconv-ep";
      "dip%±sd";
      "reconciled";
      "inv-viol";
    ];
  List.iter
    (fun p ->
      Table.row
        [
          Printf.sprintf "%.2f" p.crash_rate;
          string_of_int p.runs;
          Printf.sprintf "%.1f" p.crashes;
          pm p.satisfaction;
          pm_frac p.accuracy;
          pm p.reconverge;
          pm_frac p.dip;
          Printf.sprintf "-%d +%d" p.reconciled_removed p.reconciled_installed;
          string_of_int p.invariant_violations;
        ])
    points

let run ~quick =
  let scenario = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  let seeds = if quick then [ 211; 499 ] else default_seeds in
  let rates = if quick then [ 0.0; 0.02; 0.05 ] else default_rates in
  Table.heading
    "Crash recovery: fail-over from checkpoint + journal vs controller crash rate (combined \
     workload, DREAM)";
  let points = sweep ~seeds ~rates scenario Experiment.dream_strategy in
  print_points points;
  let module S = Dream_obs.Bench_snapshot in
  List.concat_map
    (fun p ->
      [
        S.metric ~unit_:"pct" ~direction:S.Higher_better
          ~tolerance_pct:Experiment.gate_tolerance
          (Printf.sprintf "satisfaction@%.2f" p.crash_rate)
          p.satisfaction.mean;
        S.metric ~unit_:"count" ~direction:S.Lower_better ~tolerance_pct:0.0
          (Printf.sprintf "invariant_violations@%.2f" p.crash_rate)
          (float_of_int p.invariant_violations);
      ])
    points
