(** Degraded-mode sweep: how the control loop behaves under sustained
    adversity — control-channel partitions, straggler switches and tenant
    admission storms — with the degraded-mode machinery (per-switch circuit
    breakers, the deadline-aware fetch scheduler with load shedding) either
    on ("fast-degrade") or off ("stall-baseline").

    Each point runs one scenario under
    {!Dream_fault.Fault_model.adversity} at the given level and reports
    satisfaction next to the degradation-specific signals: epochs whose
    modelled fetch time overran the enforced deadline, the worst such
    fetch time, the largest bounded-staleness level any task reached, and
    the shed / breaker / partition counters. *)

type point = {
  level : float;  (** adversity level in \[0, 1\] *)
  mode : string;  (** ["degraded"] or ["baseline"] (and the partition pair's labels) *)
  summary : Dream_core.Metrics.summary;
  mean_accuracy : float;  (** mean per-task scored accuracy over admitted tasks, in \[0, 1\] *)
  deadline_ms : float;  (** the enforced per-epoch fetch deadline this run was judged against *)
  deadline_violations : int;  (** epochs whose modelled fetch time exceeded [deadline_ms] *)
  worst_fetch_ms : float;  (** largest per-epoch modelled fetch time observed *)
  max_staleness : int;  (** largest bounded-staleness level any task reached *)
  storm_submissions : int;  (** extra tasks submitted on behalf of admission storms *)
}

val default_levels : float list
(** [0; 0.25; 0.5; 1] *)

val run_point :
  ?telemetry:Dream_obs.Telemetry.t ->
  ?config:Dream_core.Config.t ->
  ?fault_seed:int ->
  ?degraded:Dream_core.Config.degraded option ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  float ->
  point
(** One run at one adversity level.  [degraded] defaults to
    [Some Config.default_degraded] (fast-degrade); pass [None] for the
    stall-baseline.  Baseline runs are judged against the default deadline
    so the violation counts are comparable. *)

val sweep :
  ?config:Dream_core.Config.t ->
  ?fault_seed:int ->
  ?levels:float list ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  point list
(** Degraded and baseline runs, paired per level. *)

val quarter_partition_spec : ?seed:int -> ?rate:float -> unit -> Dream_fault.Fault_model.spec
(** A fault spec whose partitions always take out exactly a quarter of the
    fleet: 4 partition groups, only group 0 eligible — with a switch count
    divisible by 4, switches congruent to 0 mod 4 partition together while
    the rest never do.  [rate] (default 0.12, windows of mean 8 epochs, a
    roughly 50% duty cycle) sets how often group 0's window reopens;
    [~rate:1.0] keeps it partitioned back-to-back. *)

type quarter = {
  q_baseline : point;  (** degraded mode on, no faults at all *)
  q_partition : point;  (** degraded mode on, 25% of the fleet partitioned (default duty cycle) *)
  q_stall : point;  (** degraded mode off under the same partition — the stall-baseline *)
  q_sustained : point;  (** degraded mode on, the partition held open back-to-back *)
}

val run_quarter :
  ?config:Dream_core.Config.t ->
  ?fault_seed:int ->
  Dream_workload.Scenario.t ->
  Dream_alloc.Allocator.strategy ->
  quarter
(** The acceptance pair: the controller must keep every epoch inside its
    deadline and hold mean satisfaction within 15% of [q_baseline]. *)

val print_points : point list -> unit

val run : quick:bool -> Dream_obs.Bench_snapshot.metric list
(** The full figure: the adversity sweep (degraded vs baseline per level)
    followed by the 25%-partition acceptance pair, whose numbers are
    returned as the [BENCH_degraded_mode.json] metrics (the figure runner
    writes the snapshot). *)
