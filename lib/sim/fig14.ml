module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics

let run ~quick =
  let base = if quick then Fig06.quick_scale Scenario.default else Scenario.default in
  let base = { base with Scenario.capacity = 1024 } in
  let arrivals = [ 16; 32; 64; 128 ] in
  Table.heading "Figure 14: arrival-rate sensitivity (capacity 1024, combined workload)";
  Table.row [ "arrivals"; "strategy"; "mean"; "p5"; "reject%"; "drop%" ];
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (fun strategy ->
            let scenario = { base with Scenario.num_tasks = n } in
            let r = Experiment.run scenario strategy in
            let s = r.Experiment.summary in
            Table.row
              [
                string_of_int n;
                r.Experiment.strategy;
                Table.pct s.Metrics.mean_satisfaction;
                Table.pct s.Metrics.p5_satisfaction;
                Table.pct s.Metrics.rejection_pct;
                Table.pct s.Metrics.drop_pct;
              ];
            r)
          Experiment.standard_strategies)
      arrivals
  in
  Experiment.grouped_summary_metrics cells
    ~group_of:(fun r -> r.Experiment.strategy)
    ~summary_of:(fun r -> r.Experiment.summary)
