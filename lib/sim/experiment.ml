module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Controller = Dream_core.Controller
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator

type result = {
  strategy : string;
  scenario : Scenario.t;
  summary : Metrics.summary;
  records : Metrics.record list;
  delay_samples : Controller.delay_sample list;
  rules_installed : int;
  rules_fetched : int;
  robustness : Metrics.robustness;
}

let dream_strategy = Allocator.Dream Dream_alloc.Dream_allocator.default_config

let standard_strategies = [ dream_strategy; Allocator.Equal; Allocator.Fixed 32 ]

let run ?(config = Config.default) (scenario : Scenario.t) strategy =
  let controller =
    Controller.create ~config ~strategy ~num_switches:scenario.Scenario.num_switches
      ~capacity:scenario.Scenario.capacity
  in
  let pending = ref (Arrival.schedule scenario) in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter
      (fun (s : Arrival.submission) ->
        ignore
          (Controller.submit controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
             ~source:(Dream_traffic.Source.of_generator s.Arrival.generator)
             ~duration:s.Arrival.duration))
      due;
    Controller.tick controller
  done;
  Controller.finalize controller;
  {
    strategy = Allocator.strategy_name strategy;
    scenario;
    summary = Controller.summary controller;
    records = Controller.records controller;
    delay_samples = Controller.delay_samples controller;
    rules_installed = Controller.total_rules_installed controller;
    rules_fetched = Controller.total_rules_fetched controller;
    robustness = Controller.robustness controller;
  }
