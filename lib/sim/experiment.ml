module Scenario = Dream_workload.Scenario
module Arrival = Dream_workload.Arrival
module Controller = Dream_core.Controller
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator
module Snapshot = Dream_obs.Bench_snapshot
module Aggregate = Dream_traffic.Aggregate

type result = {
  strategy : string;
  scenario : Scenario.t;
  summary : Metrics.summary;
  records : Metrics.record list;
  delay_samples : Controller.delay_sample list;
  rules_installed : int;
  rules_fetched : int;
  robustness : Metrics.robustness;
}

let dream_strategy = Allocator.Dream Dream_alloc.Dream_allocator.default_config

let standard_strategies = [ dream_strategy; Allocator.Equal; Allocator.Fixed 32 ]

let run ?config (scenario : Scenario.t) strategy =
  (* No explicit config: inherit the ambient store backend, so a figure run
     wrapped in [Aggregate.with_backend] really does exercise that backend
     end to end (Controller.create re-asserts [config.store_backend]). *)
  let config =
    match config with
    | Some c -> c
    | None -> { Config.default with Config.store_backend = Aggregate.current_backend () }
  in
  let controller =
    Controller.create ~config ~strategy ~num_switches:scenario.Scenario.num_switches
      ~capacity:scenario.Scenario.capacity
  in
  let pending = ref (Arrival.schedule scenario) in
  for epoch = 0 to scenario.Scenario.total_epochs - 1 do
    let due, rest =
      List.partition (fun (s : Arrival.submission) -> s.Arrival.arrival <= epoch) !pending
    in
    pending := rest;
    List.iter
      (fun (s : Arrival.submission) ->
        ignore
          (Controller.submit controller ~spec:s.Arrival.spec ~topology:s.Arrival.topology
             ~source:(Dream_traffic.Source.of_generator s.Arrival.generator)
             ~duration:s.Arrival.duration))
      due;
    Controller.tick controller
  done;
  Controller.finalize controller;
  {
    strategy = Allocator.strategy_name strategy;
    scenario;
    summary = Controller.summary controller;
    records = Controller.records controller;
    delay_samples = Controller.delay_samples controller;
    rules_installed = Controller.total_rules_installed controller;
    rules_fetched = Controller.total_rules_fetched controller;
    robustness = Controller.robustness controller;
  }

(* Runs are seed-deterministic, so the summary percentages reproduce
   exactly and can gate with a tight tolerance in the bench trajectory. *)
let gate_tolerance = 0.5

let summary_metrics ?(tolerance_pct = gate_tolerance) ~prefix (s : Metrics.summary) =
  let m name direction v = Snapshot.metric ~unit_:"pct" ~direction ~tolerance_pct (prefix ^ name) v in
  [
    m "mean_satisfaction" Snapshot.Higher_better s.Metrics.mean_satisfaction;
    m "p5_satisfaction" Snapshot.Higher_better s.Metrics.p5_satisfaction;
    m "rejection_pct" Snapshot.Lower_better s.Metrics.rejection_pct;
    m "drop_pct" Snapshot.Lower_better s.Metrics.drop_pct;
  ]

let grouped_summary_metrics ?(tolerance_pct = gate_tolerance) cells ~group_of ~summary_of =
  let groups = List.sort_uniq compare (List.map group_of cells) in
  List.concat_map
    (fun g ->
      let members = List.filter (fun c -> group_of c = g) cells in
      let mean f = Dream_util.Stats.mean (List.map (fun c -> f (summary_of c)) members) in
      let m name direction f =
        Snapshot.metric ~unit_:"pct" ~direction ~tolerance_pct
          (Printf.sprintf "%s:%s" g name) (mean f)
      in
      [
        m "mean_satisfaction" Snapshot.Higher_better (fun s -> s.Metrics.mean_satisfaction);
        m "p5_satisfaction" Snapshot.Higher_better (fun s -> s.Metrics.p5_satisfaction);
        m "rejection_pct" Snapshot.Lower_better (fun s -> s.Metrics.rejection_pct);
        m "drop_pct" Snapshot.Lower_better (fun s -> s.Metrics.drop_pct);
      ])
    groups
