(** The traffic one task filter produced in one measurement epoch, split by
    ingress switch.  [combined] is the network-wide view used for ground
    truth; switches only ever see their own entry of [per_switch]. *)

type t = {
  epoch : int;
  per_switch : Aggregate.t Switch_id.Map.t;
  combined : Aggregate.t;
}

val of_flows : epoch:int -> (Switch_id.t * Flow.t list) list -> t
(** Build both views from per-switch flow lists. *)

val switch_view : t -> Switch_id.t -> Aggregate.t
(** A switch's aggregate; empty if the switch saw nothing. *)

val active_switches : t -> Switch_id.Set.t
