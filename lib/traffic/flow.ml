module Prefix = Dream_prefix.Prefix

type t = { addr : Prefix.address; volume : float }

let make ~addr ~volume = { addr; volume }

let pp ppf t = Format.fprintf ppf "%a:%.2fMb" Prefix.pp (Prefix.of_address t.addr) t.volume

let total_volume flows = List.fold_left (fun acc f -> acc +. f.volume) 0.0 flows

let rec sorted_distinct = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a.addr < b.addr && sorted_distinct rest

let combine flows =
  let sorted = List.sort (fun a b -> Int.compare a.addr b.addr) flows in
  let rec merge = function
    | [] -> []
    | [ f ] -> [ f ]
    | a :: b :: rest ->
      if a.addr = b.addr then merge ({ addr = a.addr; volume = a.volume +. b.volume } :: rest)
      else a :: merge (b :: rest)
  in
  merge sorted
