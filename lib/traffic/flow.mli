(** A flow record: the traffic volume attributed to one source address in
    one measurement epoch.  Volumes are in megabits per epoch, matching the
    paper's 8 Mb default heavy-hitter threshold. *)

type t = { addr : Dream_prefix.Prefix.address; volume : float }

val make : addr:Dream_prefix.Prefix.address -> volume:float -> t

val pp : Format.formatter -> t -> unit

val total_volume : t list -> float

val sorted_distinct : t list -> bool
(** True when addresses are strictly ascending — {!combine} would return
    the list unchanged.  The aggregate build fast path keys off this. *)

val combine : t list -> t list
(** Sum volumes of duplicate addresses; output sorted by address. *)
