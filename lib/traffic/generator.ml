module Prefix = Dream_prefix.Prefix
module Rng = Dream_util.Rng

type kind = Heavy | Medium | Small

type source = { mutable addr : Prefix.address; mutable base : float; kind : kind }

type t = {
  rng : Rng.t;
  topology : Topology.t;
  profile : Profile.t;
  mutable epoch : int;
  mutable heavies : source list; (* active heavy sources; length varies with phases *)
  mediums : source array;
  smalls : source array;
  used : (Prefix.address, unit) Hashtbl.t; (* addresses in use, to keep sources distinct *)
  subs : (Prefix.t * Switch_id.t) array; (* topology subfilters, hoisted out of pick_address *)
  by_switch : (Switch_id.t, Flow.t list) Hashtbl.t; (* per-epoch staging, cleared not rebuilt *)
}

let pick_address t =
  (* Place the source in a sub-filter drawn with Zipf skew, then uniformly
     within it; retry on collision so every source has a distinct address. *)
  let subs = t.subs in
  let k = Array.length subs in
  let rec attempt tries =
    let rank =
      if t.profile.Profile.switch_skew <= 0.0 then 1 + Rng.int t.rng k
      else Rng.zipf t.rng ~n:k ~s:t.profile.Profile.switch_skew
    in
    let sub, _sw = subs.(rank - 1) in
    let span = Prefix.size sub in
    let addr = Prefix.first_address sub + Rng.int t.rng span in
    if Hashtbl.mem t.used addr && tries < 64 then attempt (tries + 1)
    else begin
      Hashtbl.replace t.used addr ();
      addr
    end
  in
  attempt 0

let base_volume t kind =
  let threshold = t.profile.Profile.threshold in
  match kind with
  | Heavy ->
    (* Above threshold with a Pareto tail: drill-downs find them, and their
       magnitude spread exercises "smaller heavy hitters need more
       resources". The 1.3 factor keeps jittered volumes above threshold. *)
    Rng.pareto t.rng ~alpha:t.profile.Profile.heavy_alpha ~xmin:(threshold *. 1.3)
  | Medium ->
    (* Capped at 0.725 * threshold so jitter cannot push a medium source
       across the threshold and flap the ground truth. *)
    threshold /. 8.0 +. Rng.float t.rng (threshold *. 0.6)
  | Small -> 0.01 +. Rng.float t.rng (threshold /. 8.0)

let fresh_source t kind =
  let s = { addr = 0; base = 0.0; kind } in
  s.addr <- pick_address t;
  s.base <- base_volume t kind;
  s

let create rng ~topology ~profile =
  begin
    match Profile.validate profile with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Generator.create: " ^ msg)
  end;
  let t =
    {
      rng;
      topology;
      profile;
      epoch = 0;
      heavies = [];
      mediums = [||];
      smalls = [||];
      used = Hashtbl.create 1024;
      subs = Array.of_list (Topology.subfilters topology);
      by_switch = Hashtbl.create 16;
    }
  in
  let heavies = List.init profile.Profile.heavy_count (fun _ -> fresh_source t Heavy) in
  let mediums = Array.init profile.Profile.medium_count (fun _ -> fresh_source t Medium) in
  let smalls = Array.init profile.Profile.small_count (fun _ -> fresh_source t Small) in
  { t with heavies; mediums; smalls }

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "generator";
  let s0, s1, s2, s3 = Rng.state t.rng in
  C.int64 w "rng0" s0;
  C.int64 w "rng1" s1;
  C.int64 w "rng2" s2;
  C.int64 w "rng3" s3;
  C.int w "epoch" t.epoch;
  Topology.emit w t.topology;
  Profile.emit w t.profile;
  let emit_source s =
    C.int w "addr" s.addr;
    C.float w "base" s.base;
    C.int w "kind" (match s.kind with Heavy -> 0 | Medium -> 1 | Small -> 2)
  in
  C.int w "heavies" (List.length t.heavies);
  List.iter emit_source t.heavies;
  C.int w "mediums" (Array.length t.mediums);
  Array.iter emit_source t.mediums;
  C.int w "smalls" (Array.length t.smalls);
  Array.iter emit_source t.smalls

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "generator";
  let s0 = C.int64_field r "rng0" in
  let s1 = C.int64_field r "rng1" in
  let s2 = C.int64_field r "rng2" in
  let s3 = C.int64_field r "rng3" in
  let rng = Rng.of_state (s0, s1, s2, s3) in
  let epoch = C.int_field r "epoch" in
  let topology = Topology.parse r in
  let profile = Profile.parse r in
  let parse_source () =
    let addr = C.int_field r "addr" in
    let base = C.float_field r "base" in
    let kind =
      match C.int_field r "kind" with
      | 0 -> Heavy
      | 1 -> Medium
      | 2 -> Small
      | k -> C.parse_error 0 (Printf.sprintf "unknown source kind %d" k)
    in
    { addr; base; kind }
  in
  let heavies = C.repeat (C.int_field r "heavies") parse_source in
  let mediums = C.repeat (C.int_field r "mediums") parse_source |> Array.of_list in
  let smalls = C.repeat (C.int_field r "smalls") parse_source |> Array.of_list in
  let used = Hashtbl.create 1024 in
  List.iter (fun s -> Hashtbl.replace used s.addr ()) heavies;
  Array.iter (fun s -> Hashtbl.replace used s.addr ()) mediums;
  Array.iter (fun s -> Hashtbl.replace used s.addr ()) smalls;
  {
    rng;
    topology;
    profile;
    epoch;
    heavies;
    mediums;
    smalls;
    used;
    subs = Array.of_list (Topology.subfilters topology);
    by_switch = Hashtbl.create 16;
  }

let topology t = t.topology

let profile t = t.profile

let current_epoch t = t.epoch

let heavy_target t =
  let scale =
    List.fold_left
      (fun acc (ph : Profile.phase) -> if ph.start_epoch <= t.epoch then ph.heavy_scale else acc)
      1.0 t.profile.Profile.phases
  in
  let target = Float.round (float_of_int t.profile.Profile.heavy_count *. scale) in
  max 0 (int_of_float target)

let retire t source = Hashtbl.remove t.used source.addr

let churn_source t s =
  if t.profile.Profile.churn > 0.0 && Rng.bernoulli t.rng t.profile.Profile.churn then begin
    retire t s;
    s.addr <- pick_address t;
    s.base <- base_volume t s.kind
  end

let advance_population t =
  (* Phase adjustment of the heavy population. *)
  let target = heavy_target t in
  let current = List.length t.heavies in
  if target > current then begin
    let extra = List.init (target - current) (fun _ -> fresh_source t Heavy) in
    t.heavies <- List.rev_append extra t.heavies
  end
  else if target < current then begin
    let rec drop n = function
      | rest when n = 0 -> rest
      | [] -> []
      | s :: rest ->
        retire t s;
        drop (n - 1) rest
    in
    t.heavies <- drop (current - target) t.heavies
  end;
  List.iter (churn_source t) t.heavies;
  Array.iter (churn_source t) t.mediums;
  Array.iter (churn_source t) t.smalls

let emit_volume t s =
  if t.profile.Profile.jitter <= 0.0 then s.base
  else s.base *. Rng.lognormal t.rng ~mu:0.0 ~sigma:t.profile.Profile.jitter

let next t =
  advance_population t;
  let by_switch = t.by_switch in
  Hashtbl.clear by_switch;
  let emit s =
    match Topology.switch_of_address t.topology s.addr with
    | None -> ()
    | Some sw ->
      let flow = Flow.make ~addr:s.addr ~volume:(emit_volume t s) in
      let existing = match Hashtbl.find_opt by_switch sw with Some l -> l | None -> [] in
      Hashtbl.replace by_switch sw (flow :: existing)
  in
  List.iter emit t.heavies;
  Array.iter emit t.mediums;
  Array.iter emit t.smalls;
  (* Sort each switch's flows by descending address — after every volume
     draw, so the RNG stream is untouched.  [Epoch_data.of_flows] reverses
     each group on ingest, handing [Aggregate.of_flows] a strictly
     ascending list that takes the sortedness fast path instead of
     re-sorting.  Addresses within a switch are distinct (pick_address
     retries on collision), so the order is total and the combined values
     are bit-identical to the unsorted path. *)
  let groups =
    Hashtbl.fold
      (fun sw flows acc ->
        (sw, List.sort (fun (a : Flow.t) (b : Flow.t) -> Int.compare b.addr a.addr) flows) :: acc)
      by_switch []
  in
  let data = Epoch_data.of_flows ~epoch:t.epoch groups in
  t.epoch <- t.epoch + 1;
  data

let skip t n =
  for _ = 1 to n do
    advance_population t;
    t.epoch <- t.epoch + 1
  done

let active_heavy_count t = List.length t.heavies
