type t = {
  epoch : int;
  per_switch : Aggregate.t Switch_id.Map.t;
  combined : Aggregate.t;
}

let of_flows ~epoch groups =
  let per_switch =
    List.fold_left
      (fun acc (sw, flows) ->
        let existing = match Switch_id.Map.find_opt sw acc with Some a -> a | None -> [] in
        Switch_id.Map.add sw (List.rev_append flows existing) acc)
      Switch_id.Map.empty groups
  in
  let per_switch = Switch_id.Map.map Aggregate.of_flows per_switch in
  let combined = Aggregate.merge_all (List.map snd (Switch_id.Map.bindings per_switch)) in
  { epoch; per_switch; combined }

let switch_view t sw =
  match Switch_id.Map.find_opt sw t.per_switch with
  | Some a -> a
  | None -> Aggregate.empty

let active_switches t =
  Switch_id.Map.fold (fun sw _ acc -> Switch_id.Set.add sw acc) t.per_switch Switch_id.Set.empty
