type kind = Synthetic of Generator.t | Replay of { epochs : Epoch_data.t array; cycle : bool }

type t = { kind : kind; mutable clock : int }

let of_generator generator = { kind = Synthetic generator; clock = 0 }

let replay ?(cycle = true) epochs =
  if Array.length epochs = 0 then invalid_arg "Source.replay: empty trace";
  { kind = Replay { epochs; cycle }; clock = 0 }

let next t =
  let data =
    match t.kind with
    | Synthetic generator -> Generator.next generator
    | Replay { epochs; cycle } ->
      let n = Array.length epochs in
      let index = if cycle then t.clock mod n else t.clock in
      if index < n then { epochs.(index) with Epoch_data.epoch = t.clock }
      else
        {
          Epoch_data.epoch = t.clock;
          per_switch = Switch_id.Map.empty;
          combined = Aggregate.empty;
        }
  in
  t.clock <- t.clock + 1;
  { data with Epoch_data.epoch = t.clock - 1 }

let current_epoch t = t.clock
