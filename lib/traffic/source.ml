type kind = Synthetic of Generator.t | Replay of { epochs : Epoch_data.t array; cycle : bool }

type t = { kind : kind; mutable clock : int }

let of_generator generator = { kind = Synthetic generator; clock = 0 }

let replay ?(cycle = true) epochs =
  if Array.length epochs = 0 then invalid_arg "Source.replay: empty trace";
  { kind = Replay { epochs; cycle }; clock = 0 }

let next t =
  let data =
    match t.kind with
    | Synthetic generator -> Generator.next generator
    | Replay { epochs; cycle } ->
      let n = Array.length epochs in
      let index = if cycle then t.clock mod n else t.clock in
      if index < n then { epochs.(index) with Epoch_data.epoch = t.clock }
      else
        {
          Epoch_data.epoch = t.clock;
          per_switch = Switch_id.Map.empty;
          combined = Aggregate.empty;
        }
  in
  t.clock <- t.clock + 1;
  { data with Epoch_data.epoch = t.clock - 1 }

let current_epoch t = t.clock

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "source";
  C.int w "clock" t.clock;
  match t.kind with
  | Synthetic generator ->
    C.string w "kind" "synthetic";
    Generator.emit w generator
  | Replay { epochs; cycle } ->
    C.string w "kind" "replay";
    C.bool w "cycle" cycle;
    C.int w "epochs" (Array.length epochs);
    Array.iter
      (fun (data : Epoch_data.t) ->
        C.section w "epoch_data";
        C.int w "epoch" data.Epoch_data.epoch;
        C.int w "switches" (Switch_id.Map.cardinal data.Epoch_data.per_switch);
        Switch_id.Map.iter
          (fun sw aggregate ->
            C.int w "sw" sw;
            let flows =
              Aggregate.fold aggregate ~init:[] ~f:(fun acc f -> f :: acc) |> List.rev
            in
            C.int w "flows" (List.length flows);
            List.iter
              (fun (f : Flow.t) ->
                C.int w "addr" f.Flow.addr;
                C.float w "volume" f.Flow.volume)
              flows)
          data.Epoch_data.per_switch)
      epochs

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "source";
  let clock = C.int_field r "clock" in
  let kind =
    match C.string_field r "kind" with
    | "synthetic" -> Synthetic (Generator.parse r)
    | "replay" ->
      let cycle = C.bool_field r "cycle" in
      let n = C.int_field r "epochs" in
      let epochs =
        C.repeat n (fun () ->
            C.expect_section r "epoch_data";
            let epoch = C.int_field r "epoch" in
            let switches = C.int_field r "switches" in
            let groups =
              C.repeat switches (fun () ->
                  let sw = C.int_field r "sw" in
                  let flows = C.int_field r "flows" in
                  let flows =
                    C.repeat flows (fun () ->
                        let addr = C.int_field r "addr" in
                        let volume = C.float_field r "volume" in
                        Flow.make ~addr ~volume)
                  in
                  (sw, flows))
            in
            Epoch_data.of_flows ~epoch groups)
        |> Array.of_list
      in
      Replay { epochs; cycle }
    | k -> C.parse_error 0 (Printf.sprintf "unknown source kind %S" k)
  in
  { kind; clock }
