(** Switch identifiers.

    Switches are numbered densely from 0; tasks and allocators refer to them
    through the set and map instantiations below. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
