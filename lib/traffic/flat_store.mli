(** Flat [Bigarray]-backed per-epoch counter store.

    The payload of the reference {!Aggregate} representation (sorted
    address array, volumes, cumulative sums) moved into unboxed off-heap
    [Bigarray]s: building one allocates a constant handful of words on the
    OCaml heap however many flows the epoch carries, which is what empties
    the [epoch_alloc_words] histogram.  Query semantics — and, bit for bit,
    query {e results} — are identical to the reference path; the qcheck
    differential suite and the seeded figure byte-identity test enforce
    that equivalence.

    This module is the flat backend behind {!Aggregate}; simulation code
    should keep going through [Aggregate] and select the backend with
    [Config.store_backend]. *)

type t

val of_sorted : Flow.t list -> t
(** Build from flows already in strictly ascending address order (the
    generator's sorted fast path, or the output of {!Flow.combine}).  The
    precondition is the caller's: {!Aggregate.of_flows} checks it and
    combines first when it does not hold. *)

val empty : t

val volume : t -> Dream_prefix.Prefix.t -> float

val count_addresses : t -> Dream_prefix.Prefix.t -> int

val total : t -> float

val num_addresses : t -> int

val range : t -> Dream_prefix.Prefix.t -> int * int
(** The half-open index interval of addresses the prefix covers. *)

val fold_in : t -> Dream_prefix.Prefix.t -> init:'a -> f:('a -> Flow.t -> 'a) -> 'a
(** Fold the flows under a prefix in ascending address order without
    materialising a list. *)

val flows_in : t -> Dream_prefix.Prefix.t -> Flow.t list

val fold : t -> init:'a -> f:('a -> Flow.t -> 'a) -> 'a

val to_flows : t -> Flow.t list
(** All flows, descending address order (matches the reference backend). *)

val read_prefixes : t -> Dream_prefix.Prefix.t list -> (Dream_prefix.Prefix.t * float) list
(** Batched {!volume}: one pass over a query batch, carrying the previous
    query's low index as a binary-search floor when the batch arrives in
    {!Dream_prefix.Prefix.compare} order (TCAM rule sets do).  Exact for
    unordered batches too. *)

val merge : t -> t -> t
(** Point-wise sum; equal addresses sum as [left +. right]. *)
