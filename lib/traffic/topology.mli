(** Prefix-to-ingress-switch mapping for one task filter.

    The paper's evaluation controls spatial multiplexing by assigning
    sub-prefixes of each task's flow filter to ingress switches, so that a
    task sees traffic from [switches_per_task] of the network's switches.
    The controller is assumed to know this mapping (Section 5.2: "we know
    the ingress switches for each prefix"); DREAM uses it to compute the
    switch sets S_j needed by divide-and-merge. *)

type t

val create :
  Dream_util.Rng.t ->
  filter:Dream_prefix.Prefix.t ->
  num_switches:int ->
  switches_per_task:int ->
  t
(** Split [filter] into [switches_per_task] equal sub-prefixes and map each
    to a distinct switch drawn from \[0, num_switches).
    @raise Invalid_argument unless [switches_per_task] is a power of two,
    at most [num_switches], and [filter] is long enough to split. *)

val filter : t -> Dream_prefix.Prefix.t

val num_switches : t -> int

val switches_per_task : t -> int

val subfilters : t -> (Dream_prefix.Prefix.t * Switch_id.t) list
(** The sub-prefix → switch assignment, in address order. *)

val switch_set : t -> Dream_prefix.Prefix.t -> Switch_id.Set.t
(** Switches that can see traffic for the given prefix: those assigned a
    sub-filter intersecting it.  Empty for prefixes outside the filter. *)

val switch_of_address : t -> Dream_prefix.Prefix.address -> Switch_id.t option
(** Ingress switch of an address, or [None] outside the filter. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the topology (including the realised sub-filter → switch
    assignment) to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch. *)
