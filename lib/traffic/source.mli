(** A per-task traffic source: either the synthetic generator or a recorded
    trace being replayed.  The controller pulls one epoch per tick from
    whichever kind it was given, so real traces (via {!Trace_io}) and
    synthetic ones are interchangeable. *)

type t

val of_generator : Generator.t -> t

val replay : ?cycle:bool -> Epoch_data.t array -> t
(** Replay recorded epochs in order.  With [cycle] (default true) the trace
    wraps around at the end; otherwise it continues with empty epochs.
    @raise Invalid_argument on an empty trace. *)

val next : t -> Epoch_data.t
(** The next epoch's traffic; epoch indices are renumbered consecutively
    from the source's own counter. *)

val current_epoch : t -> int

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the source state — synthetic generators serialize their full RNG
    and population, replay sources their recorded epochs — so a restored
    source resumes mid-trace at the same clock. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch. *)
