module Prefix = Dream_prefix.Prefix
module Rng = Dream_util.Rng

type t = {
  filter : Prefix.t;
  num_switches : int;
  switches_per_task : int;
  subfilters : (Prefix.t * Switch_id.t) array; (* in address order *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create rng ~filter ~num_switches ~switches_per_task =
  if not (is_power_of_two switches_per_task) then
    invalid_arg "Topology.create: switches_per_task must be a power of two";
  if switches_per_task > num_switches then
    invalid_arg "Topology.create: switches_per_task exceeds num_switches";
  let split_bits = log2 switches_per_task in
  if Prefix.wildcard_bits filter < split_bits then
    invalid_arg "Topology.create: filter too long to split";
  let all = Array.init num_switches Fun.id in
  Rng.shuffle rng all;
  let sub_len = Prefix.length filter + split_bits in
  let subfilters =
    Array.init switches_per_task (fun i ->
        (Prefix.nth_descendant filter ~length:sub_len i, all.(i)))
  in
  { filter; num_switches; switches_per_task; subfilters }

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "topology";
  C.string w "filter" (Prefix.to_string t.filter);
  C.int w "num_switches" t.num_switches;
  C.int w "switches_per_task" t.switches_per_task;
  C.int w "subfilters" (Array.length t.subfilters);
  Array.iter
    (fun (p, sw) ->
      C.string w "sub" (Prefix.to_string p);
      C.int w "sw" sw)
    t.subfilters

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "topology";
  let filter = Prefix.of_string (C.string_field r "filter") in
  let num_switches = C.int_field r "num_switches" in
  let switches_per_task = C.int_field r "switches_per_task" in
  let n = C.int_field r "subfilters" in
  let subfilters =
    C.repeat n (fun () ->
        let p = Prefix.of_string (C.string_field r "sub") in
        let sw = C.int_field r "sw" in
        (p, sw))
    |> Array.of_list
  in
  { filter; num_switches; switches_per_task; subfilters }

let filter t = t.filter

let num_switches t = t.num_switches

let switches_per_task t = t.switches_per_task

let subfilters t = Array.to_list t.subfilters

let switch_set t p =
  Array.fold_left
    (fun acc (sub, sw) ->
      if Prefix.covers sub p || Prefix.covers p sub then Switch_id.Set.add sw acc else acc)
    Switch_id.Set.empty t.subfilters

let switch_of_address t addr =
  if not (Prefix.contains t.filter addr) then None
  else begin
    let found = ref None in
    Array.iter
      (fun (sub, sw) -> if !found = None && Prefix.contains sub addr then found := Some sw)
      t.subfilters;
    !found
  end
