(** Parameters of the synthetic traffic substrate.

    This replaces the paper's CAIDA trace (see DESIGN.md, substitutions).
    A profile describes the flow population under one task filter: a
    Pareto-tailed set of heavy sources around the task threshold, a band of
    medium sources that create drill-down ambiguity, and a mass of small
    sources.  Phases rescale the heavy population over time (temporal
    multiplexing); churn and jitter create change-detection events and
    volume noise; switch skew creates spatial diversity. *)

type phase = { start_epoch : int; heavy_scale : float }
(** From [start_epoch] on, the active heavy population is
    [heavy_count *. heavy_scale] (rounded). *)

type t = {
  threshold : float;  (** task threshold in Mb used to calibrate volumes *)
  heavy_count : int;  (** nominal count of sources above the threshold *)
  medium_count : int;  (** sources in (threshold/8, threshold) *)
  small_count : int;  (** sources below threshold/8 *)
  heavy_alpha : float;  (** Pareto tail index of heavy base volumes *)
  churn : float;  (** per-source per-epoch replacement probability *)
  jitter : float;  (** lognormal sigma applied to volumes each epoch *)
  phases : phase list;  (** sorted by [start_epoch]; empty = constant *)
  switch_skew : float;  (** Zipf exponent over sub-filters for placement *)
}

val default : threshold:float -> t
(** A calibrated profile: ~8 heavy, 24 medium, 64 small sources, alpha
    1.25, 2% churn, 0.18 jitter, mild (0.6) switch skew, phases that halve
    then double the heavy population.  Sized so one task's resource target
    is a few hundred TCAM entries — the scale of the paper's Figure 2. *)

val steady : threshold:float -> heavy_count:int -> t
(** No phases, no churn, no jitter: deterministic volumes, for tests. *)

val validate : t -> (unit, string) result
(** Check ranges (counts non-negative, probabilities in \[0,1\], alpha > 1,
    phases sorted with non-negative scales). *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the profile to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch. *)
