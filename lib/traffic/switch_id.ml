type t = int

let equal = Int.equal
let compare = Int.compare
let pp ppf s = Format.fprintf ppf "sw%d" s

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list l = Set.of_list l

let pp_set ppf set =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
    (Set.elements set)
