module Prefix = Dream_prefix.Prefix

type backend = Reference | Flat

(* The backend is a process-wide switch, not a per-value property: every
   aggregate a run builds goes through the same representation, so a seeded
   run is a function of (seed, backend) and the differential tests can pin
   Flat to the Reference output bit for bit.  [Controller.create] sets it
   from [Config.store_backend]; Flat is the production default. *)
let backend = ref Flat

let set_backend b = backend := b

let current_backend () = !backend

let with_backend b f =
  let saved = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := saved) f

type build_stats = {
  sorted_fast_path : int;
  sort_fallbacks : int;
  flat_builds : int;
  reference_builds : int;
  flat_merges : int;
}

let sorted_fast_path = ref 0

let sort_fallbacks = ref 0

let flat_builds = ref 0

let reference_builds = ref 0

let flat_merges = ref 0

let stats () =
  {
    sorted_fast_path = !sorted_fast_path;
    sort_fallbacks = !sort_fallbacks;
    flat_builds = !flat_builds;
    reference_builds = !reference_builds;
    flat_merges = !flat_merges;
  }

let reset_stats () =
  sorted_fast_path := 0;
  sort_fallbacks := 0;
  flat_builds := 0;
  reference_builds := 0;
  flat_merges := 0

(* ---- reference backend: boxed OCaml arrays, the original layout ---- *)

type boxed = {
  addrs : int array; (* sorted, distinct *)
  volumes : float array; (* volume of addrs.(i) *)
  cumulative : float array; (* cumulative.(i) = sum volumes.(0..i-1); length n+1 *)
}

type t = Boxed of boxed | Flat_backed of Flat_store.t

(* [combined] must already be sorted-distinct (the fast path checked, or
   [Flow.combine] just ran).  Identical to the original build: volumes in
   ascending address order, cumulative summed left to right. *)
let boxed_of_sorted combined =
  let n = List.length combined in
  let addrs = Array.make n 0 in
  let volumes = Array.make n 0.0 in
  List.iteri
    (fun i (f : Flow.t) ->
      addrs.(i) <- f.addr;
      volumes.(i) <- f.volume)
    combined;
  let cumulative = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    cumulative.(i + 1) <- cumulative.(i) +. volumes.(i)
  done;
  { addrs; volumes; cumulative }

let of_flows flows =
  (* Sortedness fast path: the generator emits per-switch flows that
     arrive here already strictly ascending, so the combine sort would be
     a no-op — [Flow.combine] on sorted-distinct input returns an equal
     list.  Both backends take it; the counters are the proof hook the
     fast-path unit test and the Obs mirror read. *)
  let combined =
    if Flow.sorted_distinct flows then begin
      incr sorted_fast_path;
      flows
    end
    else begin
      incr sort_fallbacks;
      Flow.combine flows
    end
  in
  match !backend with
  | Reference ->
    incr reference_builds;
    Boxed (boxed_of_sorted combined)
  | Flat ->
    incr flat_builds;
    Flat_backed (Flat_store.of_sorted combined)

let empty = Boxed (boxed_of_sorted [])

(* Index of the first element >= key. *)
let lower_bound addrs key =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if addrs.(mid) < key then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length addrs)

let boxed_range b p =
  let lo = lower_bound b.addrs (Prefix.first_address p) in
  let hi = lower_bound b.addrs (Prefix.last_address p + 1) in
  (lo, hi)

let volume t p =
  match t with
  | Boxed b ->
    let lo, hi = boxed_range b p in
    b.cumulative.(hi) -. b.cumulative.(lo)
  | Flat_backed f -> Flat_store.volume f p

let count_addresses t p =
  match t with
  | Boxed b ->
    let lo, hi = boxed_range b p in
    hi - lo
  | Flat_backed f -> Flat_store.count_addresses f p

let total t =
  match t with
  | Boxed b -> b.cumulative.(Array.length b.addrs)
  | Flat_backed f -> Flat_store.total f

let num_addresses t =
  match t with Boxed b -> Array.length b.addrs | Flat_backed f -> Flat_store.num_addresses f

let flows_in t p =
  match t with
  | Boxed b ->
    let lo, hi = boxed_range b p in
    let rec collect i acc =
      if i < lo then acc
      else collect (i - 1) ({ Flow.addr = b.addrs.(i); volume = b.volumes.(i) } :: acc)
    in
    collect (hi - 1) []
  | Flat_backed f -> Flat_store.flows_in f p

let fold_in t p ~init ~f =
  match t with
  | Boxed b ->
    let lo, hi = boxed_range b p in
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := f !acc { Flow.addr = b.addrs.(i); volume = b.volumes.(i) }
    done;
    !acc
  | Flat_backed fs -> Flat_store.fold_in fs p ~init ~f

let fold t ~init ~f =
  match t with
  | Boxed b ->
    let acc = ref init in
    for i = 0 to Array.length b.addrs - 1 do
      acc := f !acc { Flow.addr = b.addrs.(i); volume = b.volumes.(i) }
    done;
    !acc
  | Flat_backed f' -> Flat_store.fold f' ~init ~f

let to_flows t = fold t ~init:[] ~f:(fun acc f -> f :: acc)

let read_prefixes t ps =
  match t with
  | Boxed _ -> List.map (fun p -> (p, volume t p)) ps
  | Flat_backed f -> Flat_store.read_prefixes f ps

let merge a b =
  match (a, b) with
  | Flat_backed fa, Flat_backed fb ->
    incr flat_merges;
    Flat_backed (Flat_store.merge fa fb)
  | _ ->
    (* Mixed or reference operands: rebuild through the combine path, the
       original semantics.  [Flow.combine]'s stable sort keeps equal
       addresses in concatenation order, so duplicates sum left operand
       first — the same order the flat merge uses. *)
    of_flows (List.rev_append (to_flows a) (to_flows b))

let merge_all ts =
  match !backend with
  | Reference -> of_flows (List.concat_map to_flows ts)
  | Flat -> (
    match ts with
    | [] -> of_flows []
    | hd :: tl ->
      (* Left fold of linear merges: equal addresses accumulate in list
         order, exactly as the concat-then-combine reference does. *)
      List.fold_left merge hd tl)
