module Prefix = Dream_prefix.Prefix

type t = {
  addrs : int array; (* sorted, distinct *)
  volumes : float array; (* volume of addrs.(i) *)
  cumulative : float array; (* cumulative.(i) = sum volumes.(0..i-1); length n+1 *)
}

let of_flows flows =
  let combined = Flow.combine flows in
  let n = List.length combined in
  let addrs = Array.make n 0 in
  let volumes = Array.make n 0.0 in
  List.iteri
    (fun i (f : Flow.t) ->
      addrs.(i) <- f.addr;
      volumes.(i) <- f.volume)
    combined;
  let cumulative = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    cumulative.(i + 1) <- cumulative.(i) +. volumes.(i)
  done;
  { addrs; volumes; cumulative }

let empty = of_flows []

(* Index of the first element >= key. *)
let lower_bound addrs key =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if addrs.(mid) < key then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length addrs)

let range t p =
  let lo = lower_bound t.addrs (Prefix.first_address p) in
  let hi = lower_bound t.addrs (Prefix.last_address p + 1) in
  (lo, hi)

let volume t p =
  let lo, hi = range t p in
  t.cumulative.(hi) -. t.cumulative.(lo)

let count_addresses t p =
  let lo, hi = range t p in
  hi - lo

let total t = t.cumulative.(Array.length t.addrs)

let num_addresses t = Array.length t.addrs

let flows_in t p =
  let lo, hi = range t p in
  let rec collect i acc =
    if i < lo then acc else collect (i - 1) ({ Flow.addr = t.addrs.(i); volume = t.volumes.(i) } :: acc)
  in
  collect (hi - 1) []

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length t.addrs - 1 do
    acc := f !acc { Flow.addr = t.addrs.(i); volume = t.volumes.(i) }
  done;
  !acc

let to_flows t = fold t ~init:[] ~f:(fun acc f -> f :: acc)

let merge a b = of_flows (List.rev_append (to_flows a) (to_flows b))

let merge_all ts = of_flows (List.concat_map to_flows ts)
