(** Streaming synthetic trace generator for one task filter.

    Each call to {!next} produces the next epoch's traffic under the
    generator's filter, already split by ingress switch.  The generator is
    deterministic given its RNG seed, so two runs with equal seeds replay
    the exact same trace (the property the paper gets from replaying the
    same CAIDA chunk). *)

type t

val create :
  Dream_util.Rng.t -> topology:Topology.t -> profile:Profile.t -> t
(** @raise Invalid_argument if the profile fails {!Profile.validate}. *)

val topology : t -> Topology.t

val profile : t -> Profile.t

val current_epoch : t -> int
(** Index the next {!next} call will produce, starting at 0. *)

val next : t -> Epoch_data.t
(** Generate one epoch and advance. *)

val skip : t -> int -> unit
(** [skip t n] advances the generator [n] epochs without materialising
    aggregates (population dynamics still evolve). *)

val active_heavy_count : t -> int
(** Number of currently active heavy sources (for tests/calibration). *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the full generator state — RNG words, epoch, topology, profile
    and every live source — so a restored generator replays the exact same
    suffix of the trace. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch. *)
