(** Plain-text trace files, so recorded or externally produced traffic can
    be replayed through the controller in place of the synthetic generator.

    Format: one flow per line, [epoch switch address volume], addresses in
    dotted-quad form, '#' comments and blank lines ignored; epochs must be
    non-decreasing.  Example:

    {v
    # dream trace
    0 0 10.16.3.9 12.5
    0 1 10.17.0.2 3.0
    1 0 10.16.3.9 11.9
    v} *)

val write : out_channel -> Epoch_data.t list -> unit

val read : in_channel -> (Epoch_data.t list, string) result
(** Errors carry the offending line number and reason. *)

val save_file : string -> Epoch_data.t list -> unit

val load_file : string -> (Epoch_data.t list, string) result

val record :
  Generator.t -> epochs:int -> Epoch_data.t list
(** Materialise a synthetic trace (e.g. to save it for replay). *)
