type phase = { start_epoch : int; heavy_scale : float }

type t = {
  threshold : float;
  heavy_count : int;
  medium_count : int;
  small_count : int;
  heavy_alpha : float;
  churn : float;
  jitter : float;
  phases : phase list;
  switch_skew : float;
}

let default ~threshold =
  {
    threshold;
    heavy_count = 16;
    medium_count = 24;
    small_count = 64;
    heavy_alpha = 1.25;
    churn = 0.005;
    jitter = 0.1;
    phases =
      [
        { start_epoch = 0; heavy_scale = 1.0 };
        { start_epoch = 100; heavy_scale = 0.5 };
        { start_epoch = 200; heavy_scale = 2.0 };
        { start_epoch = 300; heavy_scale = 1.0 };
      ];
    switch_skew = 0.6;
  }

let steady ~threshold ~heavy_count =
  {
    threshold;
    heavy_count;
    medium_count = 0;
    small_count = 0;
    heavy_alpha = 1.25;
    churn = 0.0;
    jitter = 0.0;
    phases = [];
    switch_skew = 0.0;
  }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) r f = Result.bind r f in
  let* () = check (t.threshold > 0.0) "threshold must be positive" in
  let* () =
    check (t.heavy_count >= 0 && t.medium_count >= 0 && t.small_count >= 0)
      "source counts must be non-negative"
  in
  let* () = check (t.heavy_alpha > 1.0) "heavy_alpha must exceed 1" in
  let* () = check (t.churn >= 0.0 && t.churn <= 1.0) "churn must be a probability" in
  let* () = check (t.jitter >= 0.0) "jitter must be non-negative" in
  let* () = check (t.switch_skew >= 0.0) "switch_skew must be non-negative" in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.start_epoch <= b.start_epoch && sorted rest
  in
  let* () = check (sorted t.phases) "phases must be sorted by start_epoch" in
  check (List.for_all (fun p -> p.heavy_scale >= 0.0) t.phases) "phase scales must be non-negative"
