type phase = { start_epoch : int; heavy_scale : float }

type t = {
  threshold : float;
  heavy_count : int;
  medium_count : int;
  small_count : int;
  heavy_alpha : float;
  churn : float;
  jitter : float;
  phases : phase list;
  switch_skew : float;
}

let default ~threshold =
  {
    threshold;
    heavy_count = 16;
    medium_count = 24;
    small_count = 64;
    heavy_alpha = 1.25;
    churn = 0.005;
    jitter = 0.1;
    phases =
      [
        { start_epoch = 0; heavy_scale = 1.0 };
        { start_epoch = 100; heavy_scale = 0.5 };
        { start_epoch = 200; heavy_scale = 2.0 };
        { start_epoch = 300; heavy_scale = 1.0 };
      ];
    switch_skew = 0.6;
  }

let steady ~threshold ~heavy_count =
  {
    threshold;
    heavy_count;
    medium_count = 0;
    small_count = 0;
    heavy_alpha = 1.25;
    churn = 0.0;
    jitter = 0.0;
    phases = [];
    switch_skew = 0.0;
  }

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "profile";
  C.float w "threshold" t.threshold;
  C.int w "heavy_count" t.heavy_count;
  C.int w "medium_count" t.medium_count;
  C.int w "small_count" t.small_count;
  C.float w "heavy_alpha" t.heavy_alpha;
  C.float w "churn" t.churn;
  C.float w "jitter" t.jitter;
  C.float w "switch_skew" t.switch_skew;
  C.int w "phases" (List.length t.phases);
  List.iter
    (fun p ->
      C.int w "start_epoch" p.start_epoch;
      C.float w "heavy_scale" p.heavy_scale)
    t.phases

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "profile";
  let threshold = C.float_field r "threshold" in
  let heavy_count = C.int_field r "heavy_count" in
  let medium_count = C.int_field r "medium_count" in
  let small_count = C.int_field r "small_count" in
  let heavy_alpha = C.float_field r "heavy_alpha" in
  let churn = C.float_field r "churn" in
  let jitter = C.float_field r "jitter" in
  let switch_skew = C.float_field r "switch_skew" in
  let n = C.int_field r "phases" in
  let phases =
    C.repeat n (fun () ->
        let start_epoch = C.int_field r "start_epoch" in
        let heavy_scale = C.float_field r "heavy_scale" in
        { start_epoch; heavy_scale })
  in
  {
    threshold;
    heavy_count;
    medium_count;
    small_count;
    heavy_alpha;
    churn;
    jitter;
    phases;
    switch_skew;
  }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) r f = Result.bind r f in
  let* () = check (t.threshold > 0.0) "threshold must be positive" in
  let* () =
    check (t.heavy_count >= 0 && t.medium_count >= 0 && t.small_count >= 0)
      "source counts must be non-negative"
  in
  let* () = check (t.heavy_alpha > 1.0) "heavy_alpha must exceed 1" in
  let* () = check (t.churn >= 0.0 && t.churn <= 1.0) "churn must be a probability" in
  let* () = check (t.jitter >= 0.0) "jitter must be non-negative" in
  let* () = check (t.switch_skew >= 0.0) "switch_skew must be non-negative" in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.start_epoch <= b.start_epoch && sorted rest
  in
  let* () = check (sorted t.phases) "phases must be sorted by start_epoch" in
  check (List.for_all (fun p -> p.heavy_scale >= 0.0) t.phases) "phase scales must be non-negative"
