(** Per-epoch traffic index with O(log n) prefix-volume queries.

    An aggregate freezes the flows a switch saw during one epoch into a
    sorted address array with cumulative volume sums, so that reading a TCAM
    counter for any prefix is a pair of binary searches.  This is the
    simulator's stand-in for the switch data plane counting packets against
    installed rules. *)

type t

val of_flows : Flow.t list -> t
(** Build an index; duplicate addresses are combined. *)

val empty : t

val volume : t -> Dream_prefix.Prefix.t -> float
(** Total volume of addresses covered by the prefix. *)

val count_addresses : t -> Dream_prefix.Prefix.t -> int
(** Number of distinct active addresses under the prefix. *)

val total : t -> float
(** Volume of all flows. *)

val num_addresses : t -> int

val flows_in : t -> Dream_prefix.Prefix.t -> Flow.t list
(** Flows under a prefix, in address order. *)

val fold : t -> init:'a -> f:('a -> Flow.t -> 'a) -> 'a

val merge : t -> t -> t
(** Point-wise sum of two aggregates (used to combine per-switch views into
    the network-wide view). *)

val merge_all : t list -> t
