(** Per-epoch traffic index with O(log n) prefix-volume queries.

    An aggregate freezes the flows a switch saw during one epoch into a
    sorted address array with cumulative volume sums, so that reading a TCAM
    counter for any prefix is a pair of binary searches.  This is the
    simulator's stand-in for the switch data plane counting packets against
    installed rules.

    Two interchangeable backends build that index: the boxed OCaml-array
    [Reference] layout (the original implementation, kept alive as the
    differential oracle) and the off-heap {!Flat_store} [Flat] layout that
    the zero-alloc hot path uses.  Both produce bit-identical query results
    for any input — the qcheck differential suite and the seeded figure
    byte-identity test enforce it — so the backend is a pure
    representation choice selected globally via [Config.store_backend]. *)

type t

type backend = Reference | Flat

val set_backend : backend -> unit
(** Select the representation used by every subsequent build.  Existing
    aggregates are unaffected (queries dispatch on their own
    representation).  [Controller.create] calls this with
    [Config.store_backend]; the initial value is [Flat]. *)

val current_backend : unit -> backend

val with_backend : backend -> (unit -> 'a) -> 'a
(** Run a thunk under a backend, restoring the previous choice on exit
    (including by exception) — the hook the differential tests use. *)

val of_flows : Flow.t list -> t
(** Build an index; duplicate addresses are combined.  Flows already in
    strictly ascending address order skip the combine sort (the
    sortedness fast path; {!stats} counts the hits). *)

val empty : t

val volume : t -> Dream_prefix.Prefix.t -> float
(** Total volume of addresses covered by the prefix. *)

val count_addresses : t -> Dream_prefix.Prefix.t -> int
(** Number of distinct active addresses under the prefix. *)

val total : t -> float
(** Volume of all flows. *)

val num_addresses : t -> int

val flows_in : t -> Dream_prefix.Prefix.t -> Flow.t list
(** Flows under a prefix, in address order. *)

val fold_in : t -> Dream_prefix.Prefix.t -> init:'a -> f:('a -> Flow.t -> 'a) -> 'a
(** Fold over the flows under a prefix in ascending address order without
    building the intermediate list {!flows_in} would. *)

val fold : t -> init:'a -> f:('a -> Flow.t -> 'a) -> 'a

val read_prefixes : t -> Dream_prefix.Prefix.t list -> (Dream_prefix.Prefix.t * float) list
(** Batched {!volume} over a query list, returned in query order: the
    answer list is element-wise identical to mapping [volume], but the
    flat backend answers a sorted batch (TCAM rule sets arrive in
    {!Dream_prefix.Prefix.compare} order) in one narrowing pass. *)

val merge : t -> t -> t
(** Point-wise sum of two aggregates (used to combine per-switch views into
    the network-wide view). *)

val merge_all : t list -> t

type build_stats = {
  sorted_fast_path : int;  (** builds whose input was already sorted-distinct *)
  sort_fallbacks : int;  (** builds that had to run {!Flow.combine} *)
  flat_builds : int;
  reference_builds : int;
  flat_merges : int;  (** linear merges taken instead of concat-and-resort *)
}

val stats : unit -> build_stats
(** Process-wide build counters since start (or {!reset_stats}).  The
    controller mirrors them into the Obs registry when telemetry is
    attached; they never influence simulation state. *)

val reset_stats : unit -> unit
