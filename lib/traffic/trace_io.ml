module Prefix = Dream_prefix.Prefix

let write out epochs =
  output_string out "# dream trace v1: epoch switch address volume\n";
  List.iter
    (fun (data : Epoch_data.t) ->
      Switch_id.Map.iter
        (fun sw aggregate ->
          Aggregate.fold aggregate ~init:() ~f:(fun () (f : Flow.t) ->
              Printf.fprintf out "%d %d %s %.6f\n" data.Epoch_data.epoch sw
                (Prefix.to_string (Prefix.of_address f.Flow.addr) |> fun s ->
                 (* strip the /32 suffix *)
                 String.sub s 0 (String.length s - 3))
                f.Flow.volume))
        data.Epoch_data.per_switch)
    epochs

let parse_address s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
      Some ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
    | _, _, _, _ -> None
  end
  | _ -> None

let read input =
  let line_number = ref 0 in
  let error reason = Error (Printf.sprintf "line %d: %s" !line_number reason) in
  (* Accumulate flows per (epoch, switch), preserving epoch order. *)
  let current_epoch = ref (-1) in
  let finished = ref [] (* completed epochs, newest first *) in
  let pending = ref [] (* (switch, flow) of the current epoch *) in
  let flush_epoch () =
    if !current_epoch >= 0 then begin
      let grouped = List.map (fun (sw, f) -> (sw, [ f ])) !pending in
      finished := Epoch_data.of_flows ~epoch:!current_epoch grouped :: !finished;
      pending := []
    end
  in
  let rec loop () =
    match input_line input with
    | exception End_of_file ->
      flush_epoch ();
      Ok (List.rev !finished)
    | line ->
      incr line_number;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop ()
      else begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ epoch; sw; addr; volume ] -> begin
          match
            (int_of_string_opt epoch, int_of_string_opt sw, parse_address addr,
             float_of_string_opt volume)
          with
          | Some epoch, Some sw, Some addr, Some volume ->
            if not (Float.is_finite volume) || volume < 0.0 then
              error "volume must be a non-negative finite number"
            else if sw < 0 then error "negative switch id"
            else if epoch < !current_epoch then error "epochs must be non-decreasing"
            else begin
              if epoch > !current_epoch then begin
                flush_epoch ();
                current_epoch := epoch
              end;
              pending := (sw, Flow.make ~addr ~volume) :: !pending;
              loop ()
            end
          | _, _, _, _ -> error "expected: epoch switch address volume"
        end
        | _ -> error "expected four fields: epoch switch address volume"
      end
  in
  loop ()

let save_file path epochs =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> write out epochs)

let load_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | input -> Fun.protect ~finally:(fun () -> close_in input) (fun () -> read input)

let record generator ~epochs = List.init epochs (fun _ -> Generator.next generator)
