module Prefix = Dream_prefix.Prefix

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  addrs : ints; (* sorted, distinct; length n *)
  volumes : floats; (* volume of addrs.{i}; length n *)
  cumulative : floats; (* cumulative.{i} = sum volumes.{0..i-1}; length n+1 *)
}

let make_ints n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make_floats n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(* The float sums here must stay bit-identical to the boxed reference path
   in {!Aggregate}: volumes land in ascending address order and the
   cumulative sum runs left to right, exactly as the reference arrays are
   filled.  The differential suite in test/test_flat_store.ml holds this to
   bitwise equality. *)
let of_sorted flows =
  let n = List.length flows in
  let addrs = make_ints n in
  let volumes = make_floats n in
  let cumulative = make_floats (n + 1) in
  cumulative.{0} <- 0.0;
  let i = ref 0 in
  List.iter
    (fun (f : Flow.t) ->
      let k = !i in
      addrs.{k} <- f.addr;
      volumes.{k} <- f.volume;
      cumulative.{k + 1} <- cumulative.{k} +. f.volume;
      incr i)
    flows;
  { n; addrs; volumes; cumulative }

let empty = of_sorted []

(* Index of the first element >= key; [from] narrows the search when the
   caller already knows a valid lower bound (batched reads). *)
let lower_bound_from t ~from key =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.addrs.{mid} < key then go (mid + 1) hi else go lo mid
    end
  in
  go from t.n

let range t p =
  let lo = lower_bound_from t ~from:0 (Prefix.first_address p) in
  let hi = lower_bound_from t ~from:lo (Prefix.last_address p + 1) in
  (lo, hi)

let volume t p =
  let lo, hi = range t p in
  t.cumulative.{hi} -. t.cumulative.{lo}

let count_addresses t p =
  let lo, hi = range t p in
  hi - lo

let total t = t.cumulative.{t.n}

let num_addresses t = t.n

let fold_in t p ~init ~f =
  let lo, hi = range t p in
  let acc = ref init in
  for i = lo to hi - 1 do
    acc := f !acc { Flow.addr = t.addrs.{i}; volume = t.volumes.{i} }
  done;
  !acc

let flows_in t p =
  let lo, hi = range t p in
  let rec collect i acc =
    if i < lo then acc
    else collect (i - 1) ({ Flow.addr = t.addrs.{i}; volume = t.volumes.{i} } :: acc)
  in
  collect (hi - 1) []

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f !acc { Flow.addr = t.addrs.{i}; volume = t.volumes.{i} }
  done;
  !acc

let to_flows t = fold t ~init:[] ~f:(fun acc f -> f :: acc)

(* Answer a batch of prefix queries in one pass.  TCAM rule sets arrive in
   {!Prefix.compare} order, whose first component is the first covered
   address, so the running low bound [lo] below is a valid search floor for
   every later query; if a caller ever passes an unordered batch the floor
   resets and the answer is still exact, just not faster.  Each query
   computes the same (lo, hi) index pair — hence the same float — as
   {!volume} would. *)
let[@hot] read_prefixes t ps =
  let prev_first = ref min_int in
  let prev_lo = ref 0 in
  List.map
    (fun p ->
      let first = Prefix.first_address p in
      let from = if first >= !prev_first then !prev_lo else 0 in
      let lo = lower_bound_from t ~from first in
      let hi = lower_bound_from t ~from:lo (Prefix.last_address p + 1) in
      prev_first := first;
      prev_lo := lo;
      (p, t.cumulative.{hi} -. t.cumulative.{lo}))
    ps

(* Point-wise sum, two linear passes: count the distinct addresses of the
   union, then fill.  Equal addresses sum left operand first ([va +. vb]),
   matching the left-to-right duplicate fold of [Flow.combine] on the
   concatenated flow lists the reference backend merges with. *)
let[@hot] merge a b =
  if a.n = 0 then b
  else if b.n = 0 then a
  else begin
    let count = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < a.n && !j < b.n do
      let ai = a.addrs.{!i} and bj = b.addrs.{!j} in
      if ai < bj then incr i
      else if ai > bj then incr j
      else begin
        incr i;
        incr j
      end;
      incr count
    done;
    count := !count + (a.n - !i) + (b.n - !j);
    let n = !count in
    let addrs = make_ints n in
    let volumes = make_floats n in
    let cumulative = make_floats (n + 1) in
    cumulative.{0} <- 0.0;
    let k = ref 0 in
    let put addr v =
      let k0 = !k in
      addrs.{k0} <- addr;
      volumes.{k0} <- v;
      cumulative.{k0 + 1} <- cumulative.{k0} +. v;
      incr k
    in
    i := 0;
    j := 0;
    while !i < a.n && !j < b.n do
      let ai = a.addrs.{!i} and bj = b.addrs.{!j} in
      if ai < bj then begin
        put ai a.volumes.{!i};
        incr i
      end
      else if ai > bj then begin
        put bj b.volumes.{!j};
        incr j
      end
      else begin
        put ai (a.volumes.{!i} +. b.volumes.{!j});
        incr i;
        incr j
      end
    done;
    while !i < a.n do
      put a.addrs.{!i} a.volumes.{!i};
      incr i
    done;
    while !j < b.n do
      put b.addrs.{!j} b.volumes.{!j};
      incr j
    done;
    { n; addrs; volumes; cumulative }
  end
