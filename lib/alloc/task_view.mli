(** What an allocator is allowed to see of a task: its identity, the
    switches it needs counters on, its accuracy bound, its drop priority,
    and the smoothed overall accuracy per switch (Section 4).  Allocators
    never see reports, counters or traffic — that separation is what makes
    DREAM's allocation local and task-type-independent. *)

type t = {
  id : int;
  switches : Dream_traffic.Switch_id.Set.t;
  bound : float;  (** target accuracy bound in \[0, 1\] *)
  drop_priority : int;  (** higher = dropped first *)
  overall : Dream_traffic.Switch_id.t -> float;
      (** smoothed [max (global, local)] accuracy on a switch *)
  used : Dream_traffic.Switch_id.t -> int;
      (** TCAM entries the task's configuration actually occupies on a
          switch — lets the allocator distinguish a poor task that is
          counter-starved (used = allocated) from one whose accuracy
          problem more counters cannot fix, and reclaim unused
          allocation *)
}

val pp : Format.formatter -> t -> unit
