module Switch_id = Dream_traffic.Switch_id

type config = {
  headroom_fraction : float;
  hysteresis : float;
  policy : Step_policy.t;
  params : Step_policy.params;
  initial_step : int;
  min_allocation : int;
}

let default_config =
  {
    headroom_fraction = 0.05;
    hysteresis = 0.1;
    policy = Step_policy.MM;
    params = { Step_policy.default_params with Step_policy.max_step = 128 };
    initial_step = 4;
    min_allocation = 1;
  }


type status = Rich | Poor | Neutral

type slot = {
  task_id : int;
  mutable alloc : int;
  mutable step : int;
  mutable last_status : status option;
  mutable changed : bool; (* resources moved in the previous round *)
  mutable just_flipped : bool; (* status flipped last round: pause growth once *)
}

(* Accuracy reacts to a resource change only after the task re-drills its
   prefixes (several epochs).  Unbounded multiplicative steps compound
   against that feedback lag into violent oscillation, so per-round change
   is additionally enveloped relative to the current allocation: grow at
   most 2x (+8), shrink at most 1/8 (+4) per round. *)
let max_grow slot = max 8 slot.alloc

let max_shrink slot = max 4 (slot.alloc / 8)

type sw_state = {
  switch : Switch_id.t;
  capacity : int;
  target : int; (* headroom target *)
  mutable phantom : int;
  slots : (int, slot) Hashtbl.t; (* task id -> slot *)
  mutable congested : bool;
  mutable last_sp : int;
  mutable last_sr : int;
}

type t = { config : config; states : sw_state Switch_id.Map.t }

let create config ~capacities =
  let states =
    List.fold_left
      (fun acc (sw, capacity) ->
        if capacity <= 0 then invalid_arg "Dream_allocator.create: capacity must be positive";
        let target =
          int_of_float (Float.round (config.headroom_fraction *. float_of_int capacity))
        in
        Switch_id.Map.add sw
          {
            switch = sw;
            capacity;
            target;
            phantom = capacity;
            slots = Hashtbl.create 64;
            congested = false;
            last_sp = 0;
            last_sr = 0;
          }
          acc)
      Switch_id.Map.empty capacities
  in
  { config; states }

let state t sw =
  match Switch_id.Map.find_opt sw t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Dream_allocator: unknown switch %d" sw)

let capacity t sw = (state t sw).capacity

let phantom t sw = (state t sw).phantom

let effective_headroom t sw =
  let s = state t sw in
  s.phantom + s.last_sr - s.last_sp

let congested t sw = (state t sw).congested

let try_admit t (view : Task_view.t) =
  let ok =
    Switch_id.Set.for_all
      (fun sw ->
        let s = state t sw in
        effective_headroom t sw >= s.target && s.phantom >= t.config.min_allocation)
      view.Task_view.switches
  in
  if ok then begin
    Switch_id.Set.iter
      (fun sw ->
        let s = state t sw in
        s.phantom <- s.phantom - t.config.min_allocation;
        Hashtbl.replace s.slots view.Task_view.id
          {
            task_id = view.Task_view.id;
            alloc = t.config.min_allocation;
            step = t.config.initial_step;
            last_status = None;
            changed = false;
            just_flipped = false;
          })
      view.Task_view.switches
  end;
  ok

(* Journal replay: re-apply an admission whose outcome is already decided.
   The original decision depended on transient headroom state (last_sp /
   last_sr) that checkpoints do not carry, so replay must not re-run
   [try_admit] — it applies the recorded outcome unconditionally. *)
let force_admit t (view : Task_view.t) =
  Switch_id.Set.iter
    (fun sw ->
      let s = state t sw in
      s.phantom <- s.phantom - t.config.min_allocation;
      Hashtbl.replace s.slots view.Task_view.id
        {
          task_id = view.Task_view.id;
          alloc = t.config.min_allocation;
          step = t.config.initial_step;
          last_status = None;
          changed = false;
          just_flipped = false;
        })
    view.Task_view.switches

let release t ~task_id =
  Switch_id.Map.iter
    (fun _ s ->
      match Hashtbl.find_opt s.slots task_id with
      | Some slot ->
        s.phantom <- s.phantom + slot.alloc;
        Hashtbl.remove s.slots task_id
      | None -> ())
    t.states

let allocation_of t ~task_id =
  Switch_id.Map.fold
    (fun sw s acc ->
      match Hashtbl.find_opt s.slots task_id with
      | Some slot -> Switch_id.Map.add sw slot.alloc acc
      | None -> acc)
    t.states Switch_id.Map.empty

(* Largest-remainder proportional split of [total] across positive
   [weights]; returns the integer shares (summing to [total]). *)
let distribute total weights =
  let sum = List.fold_left ( + ) 0 weights in
  if sum = 0 || total = 0 then List.map (fun _ -> 0) weights
  else begin
    let exact = List.map (fun w -> float_of_int (total * w) /. float_of_int sum) weights in
    let floors = List.map (fun x -> int_of_float (Float.floor x)) exact in
    let given = List.fold_left ( + ) 0 floors in
    let remainders =
      List.mapi (fun i x -> (i, x -. Float.floor x)) exact
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    in
    let extra = total - given in
    let bumped = Array.of_list floors in
    List.iteri (fun rank (i, _) -> if rank < extra then bumped.(i) <- bumped.(i) + 1) remainders;
    Array.to_list bumped
  end

let classify config (view : Task_view.t) overall =
  if overall > view.Task_view.bound +. config.hysteresis then Rich
  else if overall < view.Task_view.bound then Poor
  else Neutral

let adapt_step config slot status =
  if slot.changed then begin
    match slot.last_status with
    | Some previous when previous = status ->
      (* Growth pauses for one round right after a flip; this damps the
         oscillation around the (hidden) resource target. *)
      if slot.just_flipped then slot.just_flipped <- false
      else slot.step <- Step_policy.grow config.policy config.params slot.step
    | Some _ ->
      slot.step <- Step_policy.shrink config.policy config.params slot.step;
      slot.just_flipped <- true
    | None -> ()
  end;
  slot.last_status <- Some status;
  slot.changed <- false

let reallocate_switch t s views =
  let config = t.config in
  (* Pair every slot with its task view; classify and adapt steps. *)
  let classified =
    List.filter_map
      (fun (view : Task_view.t) ->
        match Hashtbl.find_opt s.slots view.Task_view.id with
        | Some slot ->
          let status = classify config view (view.Task_view.overall s.switch) in
          adapt_step config slot status;
          Some (slot, view, status)
        | None -> None)
      views
  in
  (* Reclaim allocation a task is not even installing rules against (plus
     a 25% expansion margin): it cannot be converted into accuracy there,
     and holding it starves headroom and other tasks. *)
  List.iter
    (fun (slot, (view : Task_view.t), _) ->
      let used = view.Task_view.used s.switch in
      let keep = max config.min_allocation (used + max 4 (used / 4)) in
      let surplus = slot.alloc - keep in
      if surplus > 0 then begin
        let reclaim = min surplus (max_shrink slot) in
        slot.alloc <- slot.alloc - reclaim;
        s.phantom <- s.phantom + reclaim
      end)
    classified;
  (* A poor task only demands counters on switches where it has used its
     whole allocation; elsewhere more counters cannot raise its accuracy. *)
  let demanding (slot, (view : Task_view.t), _) =
    view.Task_view.used s.switch + 1 >= slot.alloc
  in
  let poor = List.filter (fun ((_, _, st) as e) -> st = Poor && demanding e) classified in
  let rich = List.filter (fun (_, _, st) -> st = Rich) classified in
  let sp = List.fold_left (fun acc (slot, _, _) -> acc + slot.step) 0 poor in
  let sr = List.fold_left (fun acc (slot, _, _) -> acc + slot.step) 0 rich in
  s.last_sp <- sp;
  s.last_sr <- sr;
  (* Poor demand is served from idle capacity (phantom above its target)
     first: when the switch has spare entries there is no reason to disturb
     rich tasks' configurations. *)
  let pool = ref 0 in
  let phantom_surplus = max 0 (s.phantom - s.target) in
  let from_surplus = min phantom_surplus sp in
  if from_surplus > 0 then begin
    s.phantom <- s.phantom - from_surplus;
    pool := from_surplus
  end;
  (* Rich tasks then cede resources to cover the remaining demand plus the
     phantom's deficit, never more than their step and never below the
     floor.  The phantom thus refills continuously from rich tasks even
     under contention, which is what keeps admission control alive. *)
  let phantom_deficit = max 0 (s.target - s.phantom) in
  let demand = (sp - !pool) + phantom_deficit in
  if demand > 0 && sr > 0 then begin
    let givable (slot, _, _) =
      min (min slot.step (max_shrink slot)) (max 0 (slot.alloc - config.min_allocation))
    in
    let caps = List.map givable rich in
    let collectable = min demand (List.fold_left ( + ) 0 caps) in
    let shares = distribute collectable caps in
    List.iter2
      (fun ((slot, _, _) as entry) share ->
        let share = min share (givable entry) in
        if share > 0 then begin
          slot.alloc <- slot.alloc - share;
          slot.changed <- true;
          pool := !pool + share
        end)
      rich shares
  end;
  if sp = 0 then begin
    s.congested <- false;
    (* Everything collected goes to headroom. *)
    s.phantom <- s.phantom + !pool
  end
  else begin
    (* Poor tasks may drain the phantom below its target (they steal from
       the lowest-drop-priority task); the phantom keeps only what rich
       supply already replaced. *)
    if !pool < sp then begin
      let borrow = min s.phantom (sp - !pool) in
      s.phantom <- s.phantom - borrow;
      pool := !pool + borrow
    end;
    s.congested <- !pool < sp;
    if !pool >= sp then begin
      (* Serve every poor task its full (enveloped) step; the surplus
         refills the phantom. *)
      List.iter
        (fun (slot, _, _) ->
          let grant = min slot.step (max_grow slot) in
          slot.alloc <- slot.alloc + grant;
          slot.changed <- grant > 0;
          pool := !pool - grant)
        poor;
      s.phantom <- s.phantom + !pool
    end
    else begin
      (* Shortage: serve poor tasks in drop-priority order (lowest value =
         dropped last = served first), full steps while the pool lasts. *)
      let by_priority =
        List.sort
          (fun (_, (a : Task_view.t), _) (_, (b : Task_view.t), _) ->
            let c = Int.compare a.Task_view.drop_priority b.Task_view.drop_priority in
            if c <> 0 then c else Int.compare a.Task_view.id b.Task_view.id)
          poor
      in
      List.iter
        (fun (slot, _, _) ->
          let grant = min (min slot.step (max_grow slot)) !pool in
          if grant > 0 then begin
            slot.alloc <- slot.alloc + grant;
            slot.changed <- true;
            pool := !pool - grant
          end)
        by_priority;
      (* Whatever the growth envelopes kept the poor tasks from absorbing
         goes back to headroom. *)
      s.phantom <- s.phantom + !pool
    end
  end

(* "DREAM does not literally maintain a pool of unused TCAM counters as
   headroom.  Rather, it always allocates enough TCAM counters to all tasks
   to maximize accuracy" (Section 4): whatever the phantom holds beyond its
   target flows to tasks that are actually using their whole allocation —
   rich ones included — so accuracy rides well above the bound whenever the
   switch has idle capacity. *)
let distribute_surplus s views =
  let surplus = s.phantom - s.target in
  if surplus > 0 then begin
    let takers =
      List.filter_map
        (fun (view : Task_view.t) ->
          match Hashtbl.find_opt s.slots view.Task_view.id with
          | Some slot when view.Task_view.used s.switch + 1 >= slot.alloc -> Some slot
          | Some _ | None -> None)
        views
    in
    if takers <> [] then begin
      let caps = List.map max_grow takers in
      let total = min surplus (List.fold_left ( + ) 0 caps) in
      let shares = distribute total caps in
      List.iter2
        (fun slot share ->
          if share > 0 then begin
            slot.alloc <- slot.alloc + share;
            s.phantom <- s.phantom - share
          end)
        takers shares
    end
  end

let reallocate t views =
  Switch_id.Map.iter
    (fun _ s ->
      reallocate_switch t s views;
      distribute_surplus s views)
    t.states

let check_invariants t =
  Switch_id.Map.fold
    (fun sw s acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let total = Hashtbl.fold (fun _ slot sum -> sum + slot.alloc) s.slots 0 in
        if Hashtbl.fold (fun _ slot bad -> bad || slot.alloc < 0) s.slots false then
          Error (Printf.sprintf "switch %d: negative allocation" sw)
        else if s.phantom < 0 then Error (Printf.sprintf "switch %d: negative phantom" sw)
        else if total + s.phantom <> s.capacity then
          Error
            (Printf.sprintf "switch %d: allocations (%d) + phantom (%d) <> capacity (%d)" sw total
               s.phantom s.capacity)
        else Ok ())
    t.states (Ok ())

let config t = t.config

(* Journal replay: pin a task's allocation on one switch to a recorded
   value.  The delta is settled against the phantom so the conservation
   invariant (allocations + phantom = capacity) survives replay; step /
   status state is freshly initialised — the fine-grained adaptation state
   between checkpoint and crash is the part recovery legitimately loses. *)
let force_allocation t ~task_id ~switch ~alloc =
  if alloc < 0 then invalid_arg "Dream_allocator.force_allocation: negative allocation";
  let s = state t switch in
  let slot =
    match Hashtbl.find_opt s.slots task_id with
    | Some slot -> slot
    | None ->
      let slot =
        {
          task_id;
          alloc = 0;
          step = t.config.initial_step;
          last_status = None;
          changed = false;
          just_flipped = false;
        }
      in
      Hashtbl.replace s.slots task_id slot;
      slot
  in
  s.phantom <- s.phantom + slot.alloc - alloc;
  slot.alloc <- alloc

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "dream_allocator";
  C.float w "headroom_fraction" t.config.headroom_fraction;
  C.float w "hysteresis" t.config.hysteresis;
  C.string w "policy" (Step_policy.to_string t.config.policy);
  C.float w "factor" t.config.params.Step_policy.factor;
  C.int w "addend" t.config.params.Step_policy.addend;
  C.int w "min_step" t.config.params.Step_policy.min_step;
  C.int w "max_step" t.config.params.Step_policy.max_step;
  C.int w "initial_step" t.config.initial_step;
  C.int w "min_allocation" t.config.min_allocation;
  C.int w "states" (Switch_id.Map.cardinal t.states);
  Switch_id.Map.iter
    (fun sw s ->
      C.int w "switch" sw;
      C.int w "capacity" s.capacity;
      C.int w "target" s.target;
      C.int w "phantom" s.phantom;
      C.bool w "congested" s.congested;
      C.int w "last_sp" s.last_sp;
      C.int w "last_sr" s.last_sr;
      let slots =
        Hashtbl.fold (fun _ slot acc -> slot :: acc) s.slots []
        |> List.sort (fun a b -> Int.compare a.task_id b.task_id)
      in
      C.int w "slots" (List.length slots);
      List.iter
        (fun slot ->
          C.int w "task_id" slot.task_id;
          C.int w "alloc" slot.alloc;
          C.int w "step" slot.step;
          C.int w "last_status"
            (match slot.last_status with
            | None -> 0
            | Some Rich -> 1
            | Some Poor -> 2
            | Some Neutral -> 3);
          C.bool w "changed" slot.changed;
          C.bool w "just_flipped" slot.just_flipped)
        slots)
    t.states

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "dream_allocator";
  let headroom_fraction = C.float_field r "headroom_fraction" in
  let hysteresis = C.float_field r "hysteresis" in
  let policy =
    let s = C.string_field r "policy" in
    match Step_policy.of_string s with
    | Some p -> p
    | None -> C.parse_error 0 (Printf.sprintf "unknown step policy %S" s)
  in
  let factor = C.float_field r "factor" in
  let addend = C.int_field r "addend" in
  let min_step = C.int_field r "min_step" in
  let max_step = C.int_field r "max_step" in
  let initial_step = C.int_field r "initial_step" in
  let min_allocation = C.int_field r "min_allocation" in
  let config =
    {
      headroom_fraction;
      hysteresis;
      policy;
      params = { Step_policy.factor; addend; min_step; max_step };
      initial_step;
      min_allocation;
    }
  in
  let n = C.int_field r "states" in
  let states =
    C.repeat n (fun () ->
        let sw = C.int_field r "switch" in
        let capacity = C.int_field r "capacity" in
        let target = C.int_field r "target" in
        let phantom = C.int_field r "phantom" in
        let congested = C.bool_field r "congested" in
        let last_sp = C.int_field r "last_sp" in
        let last_sr = C.int_field r "last_sr" in
        let slots = Hashtbl.create 64 in
        let k = C.int_field r "slots" in
        ignore
          (C.repeat k (fun () ->
               let task_id = C.int_field r "task_id" in
               let alloc = C.int_field r "alloc" in
               let step = C.int_field r "step" in
               let last_status =
                 match C.int_field r "last_status" with
                 | 0 -> None
                 | 1 -> Some Rich
                 | 2 -> Some Poor
                 | 3 -> Some Neutral
                 | v -> C.parse_error 0 (Printf.sprintf "unknown slot status %d" v)
               in
               let changed = C.bool_field r "changed" in
               let just_flipped = C.bool_field r "just_flipped" in
               Hashtbl.replace slots task_id
                 { task_id; alloc; step; last_status; changed; just_flipped }));
        (sw, { switch = sw; capacity; target; phantom; slots; congested; last_sp; last_sr }))
    |> List.fold_left (fun acc (sw, s) -> Switch_id.Map.add sw s acc) Switch_id.Map.empty
  in
  { config; states }
