module Switch_id = Dream_traffic.Switch_id

module Int_set = Set.Make (Int)

type sw_state = { capacity : int; share : int; mutable tasks : Int_set.t }

type t = { states : sw_state Switch_id.Map.t }

let create ~fraction_denominator ~capacities =
  if fraction_denominator <= 0 then
    invalid_arg "Fixed_allocator.create: fraction denominator must be positive";
  let states =
    List.fold_left
      (fun acc (sw, capacity) ->
        if capacity <= 0 then invalid_arg "Fixed_allocator.create: capacity must be positive";
        let share = max 1 (capacity / fraction_denominator) in
        Switch_id.Map.add sw { capacity; share; tasks = Int_set.empty } acc)
      Switch_id.Map.empty capacities
  in
  { states }

let state t sw =
  match Switch_id.Map.find_opt sw t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Fixed_allocator: unknown switch %d" sw)

let share t sw = (state t sw).share

let reserved t sw =
  let s = state t sw in
  Int_set.cardinal s.tasks * s.share

let try_admit t (view : Task_view.t) =
  let fits sw =
    let s = state t sw in
    reserved t sw + s.share <= s.capacity
  in
  if Switch_id.Set.for_all fits view.Task_view.switches then begin
    Switch_id.Set.iter
      (fun sw ->
        let s = state t sw in
        s.tasks <- Int_set.add view.Task_view.id s.tasks)
      view.Task_view.switches;
    true
  end
  else false

(* Journal replay: re-apply a recorded admission without the fits check. *)
let force_admit t (view : Task_view.t) =
  Switch_id.Set.iter
    (fun sw ->
      let s = state t sw in
      s.tasks <- Int_set.add view.Task_view.id s.tasks)
    view.Task_view.switches

let release t ~task_id =
  Switch_id.Map.iter (fun _ s -> s.tasks <- Int_set.remove task_id s.tasks) t.states

let allocation_of t ~task_id =
  Switch_id.Map.fold
    (fun sw s acc ->
      if Int_set.mem task_id s.tasks then Switch_id.Map.add sw s.share acc else acc)
    t.states Switch_id.Map.empty

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "fixed_allocator";
  C.int w "states" (Switch_id.Map.cardinal t.states);
  Switch_id.Map.iter
    (fun sw s ->
      C.int w "switch" sw;
      C.int w "capacity" s.capacity;
      C.int w "share" s.share;
      C.int w "tasks" (Int_set.cardinal s.tasks);
      Int_set.iter (fun id -> C.int w "task" id) s.tasks)
    t.states

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "fixed_allocator";
  let n = C.int_field r "states" in
  let states =
    C.repeat n (fun () ->
        let sw = C.int_field r "switch" in
        let capacity = C.int_field r "capacity" in
        let share = C.int_field r "share" in
        let k = C.int_field r "tasks" in
        let tasks = C.repeat k (fun () -> C.int_field r "task") |> Int_set.of_list in
        (sw, { capacity; share; tasks }))
    |> List.fold_left (fun acc (sw, s) -> Switch_id.Map.add sw s acc) Switch_id.Map.empty
  in
  { states }
