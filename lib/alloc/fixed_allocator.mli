(** The Fixed_k baseline (Section 6.1, Figure 16): every task reserves
    capacity/k entries on each switch it has traffic on, and is rejected
    when any of those switches cannot supply the reservation.  Larger
    reservations satisfy fewer tasks and reject more; Fixed never drops. *)

type t

val create : fraction_denominator:int -> capacities:(Dream_traffic.Switch_id.t * int) list -> t
(** [fraction_denominator] is k: each task reserves capacity / k.
    @raise Invalid_argument if [k <= 0]. *)

val share : t -> Dream_traffic.Switch_id.t -> int
(** The per-task reservation on a switch (at least 1). *)

val try_admit : t -> Task_view.t -> bool

val force_admit : t -> Task_view.t -> unit
(** Journal replay: apply a recorded admission without re-deciding it. *)

val release : t -> task_id:int -> unit

val allocation_of : t -> task_id:int -> int Dream_traffic.Switch_id.Map.t

val reserved : t -> Dream_traffic.Switch_id.t -> int
(** Entries currently reserved on a switch. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append per-switch task membership to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
