module Switch_id = Dream_traffic.Switch_id

module Int_set = Set.Make (Int)

type sw_state = { capacity : int; mutable tasks : Int_set.t }

type t = { states : sw_state Switch_id.Map.t }

let create ~capacities =
  let states =
    List.fold_left
      (fun acc (sw, capacity) ->
        if capacity <= 0 then invalid_arg "Equal_allocator.create: capacity must be positive";
        Switch_id.Map.add sw { capacity; tasks = Int_set.empty } acc)
      Switch_id.Map.empty capacities
  in
  { states }

let state t sw =
  match Switch_id.Map.find_opt sw t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Equal_allocator: unknown switch %d" sw)

let admit t (view : Task_view.t) =
  Switch_id.Set.iter
    (fun sw ->
      let s = state t sw in
      s.tasks <- Int_set.add view.Task_view.id s.tasks)
    view.Task_view.switches

let release t ~task_id =
  Switch_id.Map.iter (fun _ s -> s.tasks <- Int_set.remove task_id s.tasks) t.states

let share s task_id =
  let n = Int_set.cardinal s.tasks in
  if n = 0 || not (Int_set.mem task_id s.tasks) then 0
  else begin
    let base = s.capacity / n in
    let remainder = s.capacity mod n in
    (* Index of the task in id order decides who receives the remainder. *)
    let index =
      let i = ref 0 and found = ref 0 in
      Int_set.iter
        (fun id ->
          if id = task_id then found := !i;
          incr i)
        s.tasks;
      !found
    in
    base + (if index < remainder then 1 else 0)
  end

let allocation_of t ~task_id =
  Switch_id.Map.fold
    (fun sw s acc ->
      if Int_set.mem task_id s.tasks then Switch_id.Map.add sw (share s task_id) acc else acc)
    t.states Switch_id.Map.empty

let tasks_on t sw = Int_set.cardinal (state t sw).tasks

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "equal_allocator";
  C.int w "states" (Switch_id.Map.cardinal t.states);
  Switch_id.Map.iter
    (fun sw s ->
      C.int w "switch" sw;
      C.int w "capacity" s.capacity;
      C.int w "tasks" (Int_set.cardinal s.tasks);
      Int_set.iter (fun id -> C.int w "task" id) s.tasks)
    t.states

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "equal_allocator";
  let n = C.int_field r "states" in
  let states =
    C.repeat n (fun () ->
        let sw = C.int_field r "switch" in
        let capacity = C.int_field r "capacity" in
        let k = C.int_field r "tasks" in
        let tasks = C.repeat k (fun () -> C.int_field r "task") |> Int_set.of_list in
        (sw, { capacity; tasks }))
    |> List.fold_left (fun acc (sw, s) -> Switch_id.Map.add sw s acc) Switch_id.Map.empty
  in
  { states }
