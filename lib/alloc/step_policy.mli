(** Step-size update policies (Section 4, Figure 4).

    The per-switch allocator moves a task's allocation by its current step.
    When a resource change leaves the task's rich/poor status unchanged the
    step grows (the task is far from its resource target); when the status
    flips the step shrinks (the target was just crossed).  The paper
    compares multiplicative (factor 2) and additive (4 counters) updates in
    both directions and adopts MM. *)

type t = MM | AM | AA | MA
(** First letter: growth policy; second: shrink policy.
    M = multiplicative, A = additive. *)

val to_string : t -> string

val of_string : string -> t option

val all : t list

type params = { factor : float; addend : int; min_step : int; max_step : int }

val default_params : params
(** factor 2.0, addend 4, steps clamped to \[1, 1024\]. *)

val grow : t -> params -> int -> int
(** Step update after a change that kept the status. *)

val shrink : t -> params -> int -> int
(** Step update after a change that flipped the status. *)
