(** The Equal baseline (Section 6.1): every task on a switch gets an equal
    share of its capacity, recomputed as tasks join and leave.  Equal never
    rejects and never drops; under overload shares shrink until tasks
    starve — the pathology DREAM's admission control avoids. *)

type t

val create : capacities:(Dream_traffic.Switch_id.t * int) list -> t

val admit : t -> Task_view.t -> unit

val release : t -> task_id:int -> unit

val allocation_of : t -> task_id:int -> int Dream_traffic.Switch_id.Map.t
(** capacity / n per switch (remainders to the lowest task ids; when there
    are more tasks than entries, the excess tasks get zero). *)

val tasks_on : t -> Dream_traffic.Switch_id.t -> int

val emit : Dream_util.Codec.writer -> t -> unit
(** Append per-switch task membership to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
