(** Uniform front-end over the three allocation strategies the paper
    evaluates (DREAM, Equal, Fixed_k), so the controller and the
    experiment harness can swap them with a single parameter. *)

type strategy =
  | Dream of Dream_allocator.config
  | Equal
  | Fixed of int  (** the k of Fixed_k: each task reserves capacity / k *)

val strategy_name : strategy -> string

type t

val create : strategy -> capacities:(Dream_traffic.Switch_id.t * int) list -> t

val strategy : t -> strategy

val try_admit : t -> Task_view.t -> bool
(** DREAM: headroom-based admission control.  Equal: always admits.
    Fixed: admits while the reservation fits everywhere. *)

val force_admit : t -> Task_view.t -> unit
(** Journal replay: apply a recorded admission outcome without re-running
    the admission decision (whose inputs included transient headroom state
    that checkpoints do not carry). *)

val release : t -> task_id:int -> unit

val reallocate : t -> Task_view.t list -> unit
(** Run one allocation round (a no-op for Equal and Fixed, whose
    allocations are purely membership-derived). *)

val allocation_of : t -> task_id:int -> int Dream_traffic.Switch_id.Map.t

val congested : t -> Dream_traffic.Switch_id.t -> bool
(** Only DREAM reports congestion; the baselines never drop. *)

val supports_drop : t -> bool

val dream : t -> Dream_allocator.t option
(** Access to DREAM-specific observability (phantom, headroom) in tests
    and benchmarks. *)

val force_allocation :
  t -> task_id:int -> switch:Dream_traffic.Switch_id.t -> alloc:int -> unit
(** Journal replay hook; a no-op for membership-based strategies whose
    allocations are implied by admissions. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the strategy tag and the underlying allocator's state to a
    checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
