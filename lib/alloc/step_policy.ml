type t = MM | AM | AA | MA

let to_string = function MM -> "MM" | AM -> "AM" | AA -> "AA" | MA -> "MA"

let of_string = function
  | "MM" | "mm" -> Some MM
  | "AM" | "am" -> Some AM
  | "AA" | "aa" -> Some AA
  | "MA" | "ma" -> Some MA
  | _ -> None

let all = [ MM; AM; AA; MA ]

type params = { factor : float; addend : int; min_step : int; max_step : int }

let default_params = { factor = 2.0; addend = 4; min_step = 1; max_step = 1024 }

let clamp params step = max params.min_step (min params.max_step step)

let multiplicative_grow params step = clamp params (int_of_float (float_of_int step *. params.factor))

let multiplicative_shrink params step =
  clamp params (int_of_float (Float.round (float_of_int step /. params.factor)))

let additive_grow params step = clamp params (step + params.addend)

let additive_shrink params step = clamp params (step - params.addend)

let grow policy params step =
  match policy with
  | MM | MA -> multiplicative_grow params step
  | AM | AA -> additive_grow params step

let shrink policy params step =
  match policy with
  | MM | AM -> multiplicative_shrink params step
  | AA | MA -> additive_shrink params step
