(** The DREAM per-switch resource allocator (Section 4).

    Each switch keeps, per admitted task, an allocation and an adaptive
    step size.  Every allocation epoch, tasks are classified rich (overall
    accuracy above bound + hysteresis), poor (below bound) or neutral;
    rich tasks surrender their step, poor tasks receive the pooled
    resources in proportion to their steps (full steps first for tasks
    with the lowest drop priority when the pool falls short).  Step sizes
    grow when a change leaves the status unchanged and shrink when the
    status flips (Figure 4; MM by default).

    Headroom is a phantom task per switch holding all unallocated entries:
    admission requires its effective headroom (phantom + rich steps - poor
    steps) to reach the headroom target on every switch the task touches;
    poor tasks may drain the phantom below target, and rich tasks refill
    it when no task is poor. *)

type config = {
  headroom_fraction : float;  (** headroom target as a fraction of capacity (paper: 0.05) *)
  hysteresis : float;  (** the rich-classification margin delta *)
  policy : Step_policy.t;
  params : Step_policy.params;
  initial_step : int;  (** step size granted at admission *)
  min_allocation : int;  (** floor per (task, switch); >= 1 so tasks never go blind *)
}

val default_config : config
(** 5% headroom, delta 0.05, MM with default params, initial step 2,
    floor 1. *)

type t

val create : config -> capacities:(Dream_traffic.Switch_id.t * int) list -> t

val capacity : t -> Dream_traffic.Switch_id.t -> int

val try_admit : t -> Task_view.t -> bool
(** Admit if effective headroom meets the target on every switch the task
    touches; on success the task gets [min_allocation] entries per switch,
    taken from the phantom. *)

val force_admit : t -> Task_view.t -> unit
(** Journal replay: apply a recorded admission without re-deciding it (the
    original verdict depended on transient headroom state that checkpoints
    do not carry). *)

val release : t -> task_id:int -> unit
(** Return all of a task's entries to the phantom (task finished or
    dropped). *)

val reallocate : t -> Task_view.t list -> unit
(** One allocation round over every switch.  The list must contain exactly
    the currently admitted tasks. *)

val allocation_of : t -> task_id:int -> int Dream_traffic.Switch_id.Map.t

val phantom : t -> Dream_traffic.Switch_id.t -> int
(** Current phantom (unallocated) entries on a switch. *)

val effective_headroom : t -> Dream_traffic.Switch_id.t -> int
(** phantom + sum of rich steps - sum of poor steps, from the last round. *)

val congested : t -> Dream_traffic.Switch_id.t -> bool
(** Whether the last round's poor demand outstripped rich supply plus
    phantom on this switch — the signal the controller combines with poor
    streaks to pick drop victims. *)

val check_invariants : t -> (unit, string) result
(** Test hook: allocations positive, and allocations + phantom = capacity
    on every switch. *)

val config : t -> config

val force_allocation :
  t -> task_id:int -> switch:Dream_traffic.Switch_id.t -> alloc:int -> unit
(** Journal replay hook: pin one task's allocation on one switch to a
    recorded value, settling the delta against the phantom so
    conservation holds.  @raise Invalid_argument on a negative value or
    unknown switch. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the allocator's full state — config, per-switch phantom /
    congestion and every slot's allocation, step and status memory — to a
    checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}: a restored allocator makes bit-identical decisions
    from the next round on.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
