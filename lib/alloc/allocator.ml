type strategy = Dream of Dream_allocator.config | Equal | Fixed of int

let strategy_name = function
  | Dream _ -> "DREAM"
  | Equal -> "Equal"
  | Fixed k -> Printf.sprintf "Fixed_%d" k

type impl =
  | Dream_impl of Dream_allocator.t
  | Equal_impl of Equal_allocator.t
  | Fixed_impl of Fixed_allocator.t

type t = { strategy : strategy; impl : impl }

let create strategy ~capacities =
  let impl =
    match strategy with
    | Dream config -> Dream_impl (Dream_allocator.create config ~capacities)
    | Equal -> Equal_impl (Equal_allocator.create ~capacities)
    | Fixed k -> Fixed_impl (Fixed_allocator.create ~fraction_denominator:k ~capacities)
  in
  { strategy; impl }

let strategy t = t.strategy

let try_admit t view =
  match t.impl with
  | Dream_impl a -> Dream_allocator.try_admit a view
  | Equal_impl a ->
    Equal_allocator.admit a view;
    true
  | Fixed_impl a -> Fixed_allocator.try_admit a view

let force_admit t view =
  match t.impl with
  | Dream_impl a -> Dream_allocator.force_admit a view
  | Equal_impl a -> Equal_allocator.admit a view
  | Fixed_impl a -> Fixed_allocator.force_admit a view

let release t ~task_id =
  match t.impl with
  | Dream_impl a -> Dream_allocator.release a ~task_id
  | Equal_impl a -> Equal_allocator.release a ~task_id
  | Fixed_impl a -> Fixed_allocator.release a ~task_id

let reallocate t views =
  match t.impl with
  | Dream_impl a -> Dream_allocator.reallocate a views
  | Equal_impl _ | Fixed_impl _ -> ()

let allocation_of t ~task_id =
  match t.impl with
  | Dream_impl a -> Dream_allocator.allocation_of a ~task_id
  | Equal_impl a -> Equal_allocator.allocation_of a ~task_id
  | Fixed_impl a -> Fixed_allocator.allocation_of a ~task_id

let congested t sw =
  match t.impl with
  | Dream_impl a -> Dream_allocator.congested a sw
  | Equal_impl _ | Fixed_impl _ -> false

let supports_drop t = match t.impl with Dream_impl _ -> true | Equal_impl _ | Fixed_impl _ -> false

let dream t = match t.impl with Dream_impl a -> Some a | Equal_impl _ | Fixed_impl _ -> None

let force_allocation t ~task_id ~switch ~alloc =
  match t.impl with
  | Dream_impl a -> Dream_allocator.force_allocation a ~task_id ~switch ~alloc
  | Equal_impl _ | Fixed_impl _ ->
    (* Membership allocators derive allocations from admissions, which the
       journal replays separately. *)
    ()

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "allocator";
  match t.impl with
  | Dream_impl a ->
    C.string w "strategy" "dream";
    Dream_allocator.emit w a
  | Equal_impl a ->
    C.string w "strategy" "equal";
    Equal_allocator.emit w a
  | Fixed_impl a ->
    C.string w "strategy" "fixed";
    C.int w "denominator" (match t.strategy with Fixed k -> k | Dream _ | Equal -> 0);
    Fixed_allocator.emit w a

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "allocator";
  match C.string_field r "strategy" with
  | "dream" ->
    let a = Dream_allocator.parse r in
    { strategy = Dream (Dream_allocator.config a); impl = Dream_impl a }
  | "equal" -> { strategy = Equal; impl = Equal_impl (Equal_allocator.parse r) }
  | "fixed" ->
    let k = C.int_field r "denominator" in
    { strategy = Fixed k; impl = Fixed_impl (Fixed_allocator.parse r) }
  | s -> C.parse_error 0 (Printf.sprintf "unknown allocator strategy %S" s)
