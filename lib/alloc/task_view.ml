module Switch_id = Dream_traffic.Switch_id

type t = {
  id : int;
  switches : Switch_id.Set.t;
  bound : float;
  drop_priority : int;
  overall : Switch_id.t -> float;
  used : Switch_id.t -> int;
}

let pp ppf t =
  Format.fprintf ppf "task%d bound=%.2f prio=%d on %a" t.id t.bound t.drop_priority
    Switch_id.pp_set t.switches
