(** System-wide DREAM parameters (Section 6.1 defaults).

    Time is virtual: a measurement epoch is one controller tick (the paper
    uses 1 s), and allocation runs every [allocation_interval] ticks (the
    paper uses 2 s). *)

type degraded = {
  breaker : Dream_switch.Breaker.config;
      (** per-switch circuit breaker over the control channel *)
  deadline_fraction : float;
      (** the enforced fetch deadline, as a fraction of [epoch_ms]: the
          deadline-aware scheduler sheds work rather than let modelled
          fetch time exceed it *)
  shed_max_staleness : int;
      (** bounded staleness: a task whose counters are this many epochs
          stale is never shed again — its fetch runs even if the estimate
          overshoots the remaining budget *)
}

val default_degraded : degraded
(** Breaker threshold 3 / cooldown 4, deadline 80% of the epoch, staleness
    bound 4. *)

type t = {
  allocation_interval : int;  (** measurement epochs per allocation epoch *)
  drop_threshold : int;  (** consecutive poor allocation rounds before a drop *)
  accuracy_history : float;  (** EWMA history weight for accuracy smoothing *)
  epoch_ms : float;  (** wall-clock length one epoch models, for the delay model *)
  control_delay : Dream_switch.Delay_model.costs option;
      (** when set, freshly installed rules miss the fraction of the epoch
          the rule update takes — the prototype behaviour of Figs 8/9 *)
  score_satisfaction_with : [ `Real_accuracy | `Estimated_accuracy ];
      (** simulation scores with ground truth; the prototype could only
          use its own estimates (Section 6.1) *)
  accuracy_mode : Dream_tasks.Task.accuracy_mode;
      (** what drives per-switch allocation: the paper's max(global,
          local), or global alone (an ablation) *)
  install_budget : int option;
      (** rule updates (installs + deletes) a switch can apply per epoch.
          [None] models a software switch (the paper's evaluation
          platform); a few hundred models the hardware switch whose slow
          rule installation made the paper abandon it (Section 6.1: the
          Pica8 3290 took 1 s for 256 rules) *)
  faults : Dream_fault.Fault_model.spec option;
      (** when set, the controller drives its switches through a seeded
          fault-injection layer (crashes, fetch timeouts, counter loss,
          install failures) and runs its failure-tolerance machinery:
          retries, stale-counter fallback, quarantine and reinstall.
          [None] (the default) is the paper's perfectly reliable control
          channel and leaves runs bit-identical to the fault-free code. *)
  degraded : degraded option;
      (** when set (and [faults] is set), the controller runs its
          degraded-mode machinery: per-switch circuit breakers, the
          deadline-aware fetch scheduler ordered by staleness-urgency, and
          load shedding with bounded staleness.  [None] keeps the plain
          retry loop.  With a zero-rate fault spec the degraded path is
          byte-identical to running without it: breakers never trip and
          the deadline is never hit. *)
  check_invariants : bool;
      (** run {!Dream_recovery.Invariant.check_all} at the end of every
          epoch and tally violations in the robustness metrics.  Off by
          default: the checks walk every task's rule sets each epoch. *)
  store_backend : Dream_traffic.Aggregate.backend;
      (** which {!Dream_traffic.Aggregate} representation the run's epoch
          data uses: [Flat] (the default) backs counter stores with flat
          off-heap arrays and batched prefix reads; [Reference] keeps the
          original boxed structures.  Both are byte-identical by
          construction — the differential suite and the chaos oracle prove
          it — so the flag exists for those oracles and for allocation
          A/B runs, not for behaviour. *)
  telemetry : Dream_obs.Telemetry.t option;
      (** when set, the controller times every control-loop phase against
          the bundle's clock, records spans/events in its trace and
          per-task/per-switch rows, and tallies all counters in its
          registry.  [None] (the default) records nothing and leaves runs
          bit-identical: telemetry never touches simulation state.  The
          field lives only in memory — checkpoints neither save nor
          restore it. *)
}

val default : t
(** interval 2, drop threshold 6, history 0.4, 1000 ms epochs, no control
    delay, real-accuracy scoring. *)

val hardware : installs_per_epoch:int -> t
(** The prototype configuration further constrained by a hardware
    switch's rule-update rate; deferred updates degrade accuracy, which is
    why the paper's control loop needs fast rule installation. *)

val prototype : t
(** Like {!default} but with the control-delay model enabled and
    estimated-accuracy scoring — the configuration that mimics the paper's
    prototype for the Figs 8/9 validation. *)
