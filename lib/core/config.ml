type degraded = {
  breaker : Dream_switch.Breaker.config;
  deadline_fraction : float;
  shed_max_staleness : int;
}

let default_degraded =
  { breaker = Dream_switch.Breaker.default_config; deadline_fraction = 0.8; shed_max_staleness = 4 }

type t = {
  allocation_interval : int;
  drop_threshold : int;
  accuracy_history : float;
  epoch_ms : float;
  control_delay : Dream_switch.Delay_model.costs option;
  score_satisfaction_with : [ `Real_accuracy | `Estimated_accuracy ];
  accuracy_mode : Dream_tasks.Task.accuracy_mode;
  install_budget : int option;
  faults : Dream_fault.Fault_model.spec option;
  degraded : degraded option;
  check_invariants : bool;
  store_backend : Dream_traffic.Aggregate.backend;
  telemetry : Dream_obs.Telemetry.t option;
}

let default =
  {
    allocation_interval = 2;
    drop_threshold = 6;
    accuracy_history = 0.4;
    epoch_ms = 1000.0;
    control_delay = None;
    score_satisfaction_with = `Real_accuracy;
    accuracy_mode = Dream_tasks.Task.Overall;
    install_budget = None;
    faults = None;
    degraded = None;
    check_invariants = false;
    store_backend = Dream_traffic.Aggregate.Flat;
    telemetry = None;
  }

let prototype =
  {
    default with
    control_delay = Some Dream_switch.Delay_model.default;
    score_satisfaction_with = `Estimated_accuracy;
  }

let hardware ~installs_per_epoch = { prototype with install_budget = Some installs_per_epoch }
