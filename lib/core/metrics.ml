module Stats = Dream_util.Stats

type outcome = Completed | Dropped | Rejected

type record = {
  task_id : int;
  kind : Dream_tasks.Task_spec.kind;
  outcome : outcome;
  arrived_at : int;
  ended_at : int;
  active_epochs : int;
  satisfaction : float;
  mean_accuracy : float;
}

type summary = {
  submitted : int;
  admitted : int;
  rejected : int;
  dropped : int;
  completed : int;
  mean_satisfaction : float;
  p5_satisfaction : float;
  rejection_pct : float;
  drop_pct : float;
}

let satisfaction_values records =
  List.filter_map
    (fun r -> match r.outcome with Rejected -> None | Completed | Dropped -> Some (r.satisfaction *. 100.0))
    records

let summarize records =
  let submitted = List.length records in
  let count p = List.length (List.filter p records) in
  let rejected = count (fun r -> r.outcome = Rejected) in
  let dropped = count (fun r -> r.outcome = Dropped) in
  let completed = count (fun r -> r.outcome = Completed) in
  let sats = satisfaction_values records in
  let pct n = if submitted = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int submitted in
  {
    submitted;
    admitted = submitted - rejected;
    rejected;
    dropped;
    completed;
    mean_satisfaction = Stats.mean sats;
    p5_satisfaction = (match sats with [] -> 0.0 | _ :: _ -> Stats.percentile 5.0 sats);
    rejection_pct = pct rejected;
    drop_pct = pct dropped;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "submitted=%d admitted=%d satisfaction(mean=%.1f%% p5=%.1f%%) reject=%.1f%% drop=%.1f%%"
    s.submitted s.admitted s.mean_satisfaction s.p5_satisfaction s.rejection_pct s.drop_pct
