module Stats = Dream_util.Stats

type outcome = Completed | Dropped | Rejected

type record = {
  task_id : int;
  kind : Dream_tasks.Task_spec.kind;
  outcome : outcome;
  arrived_at : int;
  ended_at : int;
  active_epochs : int;
  satisfaction : float;
  mean_accuracy : float;
}

type robustness = {
  crashes : int;
  recoveries : int;
  switch_down_epochs : int;
  fetch_timeouts : int;
  fetch_retries : int;
  fetch_failures : int;
  stale_epochs : int;
  counters_lost : int;
  install_failures : int;
  recovery_reinstalls : int;
  controller_crashes : int;
  reconcile_removed : int;
  reconcile_installed : int;
  invariant_violations : int;
  partitions : int;
  partition_epochs : int;
  breaker_opens : int;
  breaker_probes : int;
  breaker_skips : int;
  sheds : int;
}

let no_faults =
  {
    crashes = 0;
    recoveries = 0;
    switch_down_epochs = 0;
    fetch_timeouts = 0;
    fetch_retries = 0;
    fetch_failures = 0;
    stale_epochs = 0;
    counters_lost = 0;
    install_failures = 0;
    recovery_reinstalls = 0;
    controller_crashes = 0;
    reconcile_removed = 0;
    reconcile_installed = 0;
    invariant_violations = 0;
    partitions = 0;
    partition_epochs = 0;
    breaker_opens = 0;
    breaker_probes = 0;
    breaker_skips = 0;
    sheds = 0;
  }

type summary = {
  submitted : int;
  admitted : int;
  rejected : int;
  dropped : int;
  completed : int;
  mean_satisfaction : float;
  p5_satisfaction : float;
  rejection_pct : float;
  drop_pct : float;
  robustness : robustness;
}

let satisfaction_values records =
  List.filter_map
    (fun r -> match r.outcome with Rejected -> None | Completed | Dropped -> Some (r.satisfaction *. 100.0))
    records

let summarize ?(robustness = no_faults) records =
  let submitted = List.length records in
  let count p = List.length (List.filter p records) in
  let rejected = count (fun r -> r.outcome = Rejected) in
  let dropped = count (fun r -> r.outcome = Dropped) in
  let completed = count (fun r -> r.outcome = Completed) in
  let sats = satisfaction_values records in
  let pct n = if submitted = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int submitted in
  {
    submitted;
    admitted = submitted - rejected;
    rejected;
    dropped;
    completed;
    mean_satisfaction = Stats.mean sats;
    p5_satisfaction = (match sats with [] -> 0.0 | _ :: _ -> Stats.percentile 5.0 sats);
    rejection_pct = pct rejected;
    drop_pct = pct dropped;
    robustness;
  }

let pp_robustness ppf r =
  Format.fprintf ppf
    "crashes=%d recoveries=%d down-epochs=%d timeouts=%d retries=%d fetch-failures=%d \
     stale-epochs=%d counters-lost=%d install-failures=%d reinstalls=%d"
    r.crashes r.recoveries r.switch_down_epochs r.fetch_timeouts r.fetch_retries r.fetch_failures
    r.stale_epochs r.counters_lost r.install_failures r.recovery_reinstalls;
  if r.controller_crashes > 0 || r.reconcile_removed > 0 || r.reconcile_installed > 0 then
    Format.fprintf ppf " controller-crashes=%d reconciled(-%d +%d)" r.controller_crashes
      r.reconcile_removed r.reconcile_installed;
  if r.partitions > 0 || r.partition_epochs > 0 then
    Format.fprintf ppf " partitions=%d partition-epochs=%d" r.partitions r.partition_epochs;
  if r.breaker_opens > 0 || r.breaker_probes > 0 || r.breaker_skips > 0 then
    Format.fprintf ppf " breaker(opens=%d probes=%d skips=%d)" r.breaker_opens r.breaker_probes
      r.breaker_skips;
  if r.sheds > 0 then Format.fprintf ppf " sheds=%d" r.sheds;
  if r.invariant_violations > 0 then
    Format.fprintf ppf " INVARIANT-VIOLATIONS=%d" r.invariant_violations

let pp_summary ppf s =
  Format.fprintf ppf
    "submitted=%d admitted=%d satisfaction(mean=%.1f%% p5=%.1f%%) reject=%.1f%% drop=%.1f%%"
    s.submitted s.admitted s.mean_satisfaction s.p5_satisfaction s.rejection_pct s.drop_pct;
  if s.robustness <> no_faults then Format.fprintf ppf " [%a]" pp_robustness s.robustness
