module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Epoch_data = Dream_traffic.Epoch_data
module Source = Dream_traffic.Source
module Topology = Dream_traffic.Topology
module Fault_model = Dream_fault.Fault_model
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Data_plane = Dream_switch.Data_plane
module Delay_model = Dream_switch.Delay_model
module Task = Dream_tasks.Task
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth
module Allocator = Dream_alloc.Allocator
module Task_view = Dream_alloc.Task_view
module Journal = Dream_recovery.Journal
module Invariant = Dream_recovery.Invariant
module C = Dream_util.Codec

let log_src = Logs.Src.create "dream.controller" ~doc:"DREAM controller events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type runtime = {
  task : Task.t;
  source : Source.t;
  ground_truth : Ground_truth.t;
  duration : int;
  arrived_at : int;
  drop_priority : int;
  mutable active_epochs : int;
  mutable satisfied_epochs : int;
  mutable accuracy_sum : float;
  mutable poor_streak : int;
  mutable last_alloc_total : int;
  mutable last_report : Report.t option;
  mutable fresh_rules : Prefix.Set.t Switch_id.Map.t; (* installed by the last sync *)
  mutable last_install_counts : int Switch_id.Map.t;
  mutable stale_counters : (Prefix.t * float) list Switch_id.Map.t;
      (* last successfully fetched readings per switch, the fallback when a
         switch is down or a fetch is abandoned (fault injection only) *)
}

type delay_sample = {
  epoch : int;
  fetch_ms : float;
  save_ms : float;
  report_ms : float;
  allocate_ms : float;
  configure_ms : float;
}

(* Robustness counters, kept mutable here and exported as the immutable
   {!Metrics.robustness}. *)
type rob = {
  mutable crashes : int;
  mutable recoveries : int;
  mutable switch_down_epochs : int;
  mutable fetch_timeouts : int;
  mutable fetch_retries : int;
  mutable fetch_failures : int;
  mutable stale_epochs : int;
  mutable counters_lost : int;
  mutable install_failures : int;
  mutable recovery_reinstalls : int;
  mutable controller_crashes : int;
  mutable reconcile_removed : int;
  mutable reconcile_installed : int;
  mutable invariant_violations : int;
}

type t = {
  config : Config.t;
  allocator : Allocator.t;
  switches : Switch.t array;
  planes : Data_plane.t array;
  faults : Fault_model.t option;
  active : (int, runtime) Hashtbl.t;
  mutable epoch : int;
  mutable next_id : int;
  mutable records : Metrics.record list;
  mutable delays : delay_sample list; (* newest first *)
  mutable rules_installed : int;
  mutable rules_fetched : int;
  rob : rob;
  mutable recovered_now : Switch_id.Set.t; (* switches back up as of this tick *)
  mutable journal : Journal.sink option;
  mutable crash_pending : bool;
      (* the fault model declared a controller crash this epoch; the driver
         decides whether to fail over (see {!recover}) *)
}

let create ~config ~strategy ~num_switches ~capacity =
  if num_switches <= 0 then
    invalid_arg
      (Printf.sprintf "Controller.create: num_switches must be positive, got %d" num_switches);
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Controller.create: capacity must be positive, got %d" capacity);
  let switches = Switch.network ~num_switches ~capacity in
  let faults =
    Option.map (fun spec -> Fault_model.create spec ~num_switches) config.Config.faults
  in
  let planes = Array.map (fun sw -> Data_plane.create ?faults sw) switches in
  let capacities = Array.to_list (Array.map (fun sw -> (Switch.id sw, capacity)) switches) in
  {
    config;
    allocator = Allocator.create strategy ~capacities;
    switches;
    planes;
    faults;
    active = Hashtbl.create 64;
    epoch = 0;
    next_id = 0;
    records = [];
    delays = [];
    rules_installed = 0;
    rules_fetched = 0;
    rob =
      {
        crashes = 0;
        recoveries = 0;
        switch_down_epochs = 0;
        fetch_timeouts = 0;
        fetch_retries = 0;
        fetch_failures = 0;
        stale_epochs = 0;
        counters_lost = 0;
        install_failures = 0;
        recovery_reinstalls = 0;
        controller_crashes = 0;
        reconcile_removed = 0;
        reconcile_installed = 0;
        invariant_violations = 0;
      };
    recovered_now = Switch_id.Set.empty;
    journal = None;
    crash_pending = false;
  }

let epoch t = t.epoch

let num_switches t = Array.length t.switches

let switches t = t.switches

let allocator t = t.allocator

let faults t = t.faults

let robustness t =
  {
    Metrics.crashes = t.rob.crashes;
    recoveries = t.rob.recoveries;
    switch_down_epochs = t.rob.switch_down_epochs;
    fetch_timeouts = t.rob.fetch_timeouts;
    fetch_retries = t.rob.fetch_retries;
    fetch_failures = t.rob.fetch_failures;
    stale_epochs = t.rob.stale_epochs;
    counters_lost = t.rob.counters_lost;
    install_failures = t.rob.install_failures;
    recovery_reinstalls = t.rob.recovery_reinstalls;
    controller_crashes = t.rob.controller_crashes;
    reconcile_removed = t.rob.reconcile_removed;
    reconcile_installed = t.rob.reconcile_installed;
    invariant_violations = t.rob.invariant_violations;
  }

let active_tasks t = Hashtbl.length t.active

let active_task_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.active [])

let last_report t ~task_id =
  match Hashtbl.find_opt t.active task_id with Some r -> r.last_report | None -> None

let smoothed_accuracy t ~task_id =
  match Hashtbl.find_opt t.active task_id with
  | Some r -> Some (Task.smoothed_global r.task)
  | None -> None

let view_of_runtime r =
  {
    Task_view.id = Task.id r.task;
    switches = Task.switches r.task;
    bound = (Task.spec r.task).Task_spec.accuracy_bound;
    drop_priority = r.drop_priority;
    overall = (fun sw -> Task.overall_accuracy r.task sw);
    used = (fun sw -> Task.counters_used r.task sw);
  }

(* ---- write-ahead journal ---- *)

let set_journal t sink = t.journal <- sink

let journal t = t.journal

let journaling t = t.journal <> None

let jot t entry = match t.journal with None -> () | Some sink -> Journal.append sink entry

let controller_crash_pending t = t.crash_pending

let submit t ~spec ~topology ~source ~duration =
  let id = t.next_id in
  t.next_id <- id + 1;
  let task =
    Task.create ~id ~spec ~topology ~accuracy_history:t.config.Config.accuracy_history
      ~accuracy_mode:t.config.Config.accuracy_mode ()
  in
  (* Default drop priority: most recently arrived tasks drop first; an
     explicit spec priority takes precedence. *)
  let drop_priority =
    if spec.Task_spec.drop_priority <> 0 then spec.Task_spec.drop_priority else id
  in
  let runtime =
    {
      task;
      source;
      ground_truth = Ground_truth.create spec;
      duration;
      arrived_at = t.epoch;
      drop_priority;
      active_epochs = 0;
      satisfied_epochs = 0;
      accuracy_sum = 0.0;
      poor_streak = 0;
      last_alloc_total = 0;
      last_report = None;
      fresh_rules = Switch_id.Map.empty;
      last_install_counts = Switch_id.Map.empty;
      stale_counters = Switch_id.Map.empty;
    }
  in
  let view = view_of_runtime runtime in
  if Allocator.try_admit t.allocator view then begin
    (* Journal the admission outcome before the task takes effect.  The
       entry carries everything replay needs to re-apply it verbatim —
       including the traffic source serialized at this instant, which replay
       fast-forwards to the recovery epoch. *)
    if journaling t then begin
      let w = C.writer () in
      Source.emit w source;
      jot t
        (Journal.Admit
           {
             epoch = t.epoch;
             task_id = id;
             spec;
             topology;
             duration;
             drop_priority;
             accuracy_history = t.config.Config.accuracy_history;
             global_only = t.config.Config.accuracy_mode = Task.Global_only;
             source = C.contents w;
           })
    end;
    Hashtbl.replace t.active id runtime;
    Log.info (fun m ->
        m "epoch %d: admitted task %d (%a, %d epochs)" t.epoch id Task_spec.pp spec duration);
    `Admitted id
  end
  else begin
    jot t (Journal.Reject { epoch = t.epoch; task_id = id; kind = spec.Task_spec.kind });
    t.records <-
      {
        Metrics.task_id = id;
        kind = spec.Task_spec.kind;
        outcome = Metrics.Rejected;
        arrived_at = t.epoch;
        ended_at = t.epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    Log.info (fun m -> m "epoch %d: rejected task %d (%a)" t.epoch id Task_spec.pp spec);
    `Rejected
  end

let finish_record r ~outcome ~ended_at =
  let spec = Task.spec r.task in
  let active = r.active_epochs in
  {
    Metrics.task_id = Task.id r.task;
    kind = spec.Task_spec.kind;
    outcome;
    arrived_at = r.arrived_at;
    ended_at;
    active_epochs = active;
    satisfaction =
      (if active = 0 then 0.0 else float_of_int r.satisfied_epochs /. float_of_int active);
    mean_accuracy = (if active = 0 then 0.0 else r.accuracy_sum /. float_of_int active);
  }

let remove_task t r ~outcome =
  let id = Task.id r.task in
  Log.info (fun m ->
      m "epoch %d: task %d %s after %d active epochs" t.epoch id
        (match outcome with
        | Metrics.Completed -> "completed"
        | Metrics.Dropped -> "DROPPED"
        | Metrics.Rejected -> "rejected")
        r.active_epochs);
  let record = finish_record r ~outcome ~ended_at:t.epoch in
  (* Journal the end (with its final record fields) and the rule purge
     before either takes effect: if the controller dies in between, replay
     still retires the task and the audit removes its now-unowned rules. *)
  if journaling t then begin
    let cause =
      match outcome with
      | Metrics.Dropped -> Journal.Dropped
      | Metrics.Completed | Metrics.Rejected -> Journal.Completed
    in
    jot t
      (Journal.Task_end
         {
           epoch = t.epoch;
           task_id = id;
           kind = record.Metrics.kind;
           cause;
           arrived_at = record.Metrics.arrived_at;
           active_epochs = record.Metrics.active_epochs;
           satisfaction = record.Metrics.satisfaction;
           mean_accuracy = record.Metrics.mean_accuracy;
         });
    jot t (Journal.Purge { epoch = t.epoch; task_id = id })
  end;
  Allocator.release t.allocator ~task_id:id;
  Array.iter (fun sw -> ignore (Tcam.remove_owner (Switch.tcam sw) ~owner:id)) t.switches;
  Hashtbl.remove t.active id;
  t.records <- record :: t.records

let delay_costs t =
  match t.config.Config.control_delay with Some c -> c | None -> Delay_model.default

(* Fraction of the epoch a freshly installed rule missed while its update
   was in flight (Figs 8/9's prototype-vs-simulator gap). *)
let install_miss t r sw_id =
  match t.config.Config.control_delay with
  | None -> 0.0
  | Some costs ->
    let installs =
      match Switch_id.Map.find_opt sw_id r.last_install_counts with Some n -> n | None -> 0
    in
    Delay_model.install_miss_fraction costs ~epoch_ms:t.config.Config.epoch_ms ~installs
      ~switches:1

let degrade_fresh t r sw_id pairs =
  let miss = install_miss t r sw_id in
  let fresh =
    match Switch_id.Map.find_opt sw_id r.fresh_rules with
    | Some set -> set
    | None -> Prefix.Set.empty
  in
  List.map
    (fun (p, v) ->
      if miss > 0.0 && Prefix.Set.mem p fresh then (p, v *. (1.0 -. miss)) else (p, v))
    pairs

(* Counter fetch over a perfectly reliable control channel — the paper's
   assumption, and the behaviour when no fault spec is configured. *)
let read_counters_reliable t r =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let readings =
    Array.to_list t.switches
    |> List.filter_map (fun sw ->
           let sw_id = Switch.id sw in
           let rules = Tcam.rules_of (Switch.tcam sw) ~owner:id in
           if rules = [] then None
           else begin
             let aggregate = Epoch_data.switch_view data sw_id in
             let pairs = Tcam.read (Switch.tcam sw) ~owner:id aggregate in
             Some (sw_id, degrade_fresh t r sw_id pairs)
           end)
  in
  (data, readings)

(* Fault-aware fetch: timed-out batches are retried with exponential
   backoff while the epoch's retry budget lasts (retries cost control-loop
   time exactly like slow installs do); a down switch, or a fetch
   abandoned after retries, falls back to the previous epoch's readings.
   Returns the switches the task could not hear from, so the caller can
   decay the task's estimated accuracy after this epoch's estimate. *)
let read_counters_faulty t r ~retry_budget ~fault_ms =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let costs = delay_costs t in
  let task_switches = Task.switches r.task in
  let readings = ref [] in
  let degraded = ref [] in
  let use_stale sw_id =
    match Switch_id.Map.find_opt sw_id r.stale_counters with
    | Some ((_ :: _) as pairs) ->
      readings := (sw_id, pairs) :: !readings;
      t.rob.stale_epochs <- t.rob.stale_epochs + 1
    | Some [] | None -> ()
  in
  Array.iter
    (fun dp ->
      let sw_id = Data_plane.id dp in
      if Data_plane.down dp then begin
        if Switch_id.Set.mem sw_id task_switches then begin
          use_stale sw_id;
          degraded := sw_id :: !degraded
        end
      end
      else begin
        let rules = Data_plane.rules_of dp ~owner:id in
        if rules <> [] then begin
          let aggregate = Epoch_data.switch_view data sw_id in
          let rec attempt k =
            match Data_plane.read dp ~owner:id aggregate with
            | Ok pairs -> Some pairs
            | Error `Down -> None
            | Error `Timeout ->
              t.rob.fetch_timeouts <- t.rob.fetch_timeouts + 1;
              let backoff = costs.Delay_model.rtt_ms *. (2.0 ** float_of_int k) in
              if !retry_budget >= backoff then begin
                retry_budget := !retry_budget -. backoff;
                fault_ms := !fault_ms +. backoff;
                t.rob.fetch_retries <- t.rob.fetch_retries + 1;
                attempt (k + 1)
              end
              else begin
                t.rob.fetch_failures <- t.rob.fetch_failures + 1;
                None
              end
          in
          match attempt 0 with
          | Some pairs ->
            let lost = List.length rules - List.length pairs in
            if lost > 0 then t.rob.counters_lost <- t.rob.counters_lost + lost;
            let pairs = degrade_fresh t r sw_id pairs in
            r.stale_counters <- Switch_id.Map.add sw_id pairs r.stale_counters;
            readings := (sw_id, pairs) :: !readings
          | None ->
            use_stale sw_id;
            degraded := sw_id :: !degraded
        end
      end)
    t.planes;
  (data, List.rev !readings, List.rev !degraded)

let read_counters t r ~retry_budget ~fault_ms =
  match t.faults with
  | None ->
    let data, readings = read_counters_reliable t r in
    (data, readings, [])
  | Some _ -> read_counters_faulty t r ~retry_budget ~fault_ms

(* Advance the fault model one epoch: crashed switches lose their TCAM
   contents before anything is fetched; recovered switches are remembered
   so this tick's rule sync can reinstall (and attribute) their rules. *)
let advance_faults t =
  t.crash_pending <- false;
  match t.faults with
  | None -> ()
  | Some fm ->
    let events = Fault_model.begin_epoch fm in
    List.iter
      (fun sw_id ->
        jot t (Journal.Switch_down { epoch = t.epoch; switch = sw_id });
        Data_plane.crash t.planes.(sw_id);
        t.rob.crashes <- t.rob.crashes + 1;
        Log.info (fun m -> m "epoch %d: switch %d CRASHED (TCAM lost)" t.epoch sw_id))
      events.Fault_model.crashed;
    List.iter
      (fun sw_id ->
        jot t (Journal.Switch_up { epoch = t.epoch; switch = sw_id });
        Log.info (fun m -> m "epoch %d: switch %d recovered" t.epoch sw_id))
      events.Fault_model.recovered;
    t.recovered_now <- Switch_id.set_of_list events.Fault_model.recovered;
    t.rob.recoveries <- t.rob.recoveries + List.length events.Fault_model.recovered;
    t.rob.switch_down_epochs <- t.rob.switch_down_epochs + Fault_model.down_count fm;
    if events.Fault_model.controller_crashed then begin
      t.crash_pending <- true;
      Log.info (fun m -> m "epoch %d: CONTROLLER crash scheduled" t.epoch)
    end

(* Quarantine: a down switch contributes nothing, so divide-and-merge must
   reconfigure the task's counters onto the healthy switches.  Zeroing the
   allocation is exactly that signal — {!Task.configure} deactivates the
   switch and merges its counters away. *)
let quarantine_allocations t allocations =
  match t.faults with
  | None -> allocations
  | Some fm ->
    Switch_id.Map.mapi (fun sw v -> if Fault_model.is_down fm sw then 0 else v) allocations

let ms_of_cpu seconds = seconds *. 1000.0

let tick t =
  let config = t.config in
  advance_faults t;
  let runtimes =
    List.sort
      (fun a b -> Int.compare (Task.id a.task) (Task.id b.task))
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.active [])
  in
  (* Reset per-epoch switch stats so the delay model prices this epoch. *)
  Array.iter (fun sw -> Tcam.reset_stats (Switch.tcam sw)) t.switches;
  (* Fetch + report + estimate, per task. *)
  let report_clock = ref 0.0 in
  let retry_budget =
    ref
      (match t.faults with
      | Some fm -> (Fault_model.spec fm).Fault_model.retry_budget_fraction *. config.Config.epoch_ms
      | None -> 0.0)
  in
  let fault_ms = ref 0.0 in
  List.iter
    (fun r ->
      let data, readings, degraded = read_counters t r ~retry_budget ~fault_ms in
      Task.ingest_counters r.task readings;
      let t0 = Sys.time () in
      let report = Task.make_report r.task ~epoch:t.epoch in
      r.last_report <- Some report;
      let estimate = Task.estimate_accuracy r.task in
      report_clock := !report_clock +. (Sys.time () -. t0);
      (* Degraded visibility: the estimators only saw stale (or no)
         counters for these switches, so the estimate is optimistic — decay
         the smoothed accuracies the allocator reads. *)
      (match t.faults with
      | Some fm when degraded <> [] ->
        let factor = (Fault_model.spec fm).Fault_model.stale_decay in
        List.iter (fun sw -> Task.decay_accuracy r.task ~switch:sw ~factor ()) degraded
      | Some _ | None -> ());
      let truth = Ground_truth.evaluate r.ground_truth data report in
      let spec = Task.spec r.task in
      let scored =
        match config.Config.score_satisfaction_with with
        | `Real_accuracy -> truth.Ground_truth.real_accuracy
        | `Estimated_accuracy -> estimate.Dream_tasks.Accuracy.global
      in
      r.active_epochs <- r.active_epochs + 1;
      r.accuracy_sum <- r.accuracy_sum +. scored;
      if scored >= spec.Task_spec.accuracy_bound then
        r.satisfied_epochs <- r.satisfied_epochs + 1)
    runtimes;
  (* Allocation epoch: redistribute and decide drops. *)
  let allocate_clock = ref 0.0 in
  if t.epoch mod config.Config.allocation_interval = 0 then begin
    let t0 = Sys.time () in
    let views = List.map view_of_runtime runtimes in
    Allocator.reallocate t.allocator views;
    allocate_clock := Sys.time () -. t0;
    (* Journal the round's outcome — every task's full allocation map, not
       just deltas, so replay restores the allocator by forcing values
       rather than re-running the (state-dependent) adaptation logic. *)
    if journaling t then
      List.iter
        (fun r ->
          let id = Task.id r.task in
          Switch_id.Map.iter
            (fun switch alloc -> jot t (Journal.Alloc { epoch = t.epoch; task_id = id; switch; alloc }))
            (Allocator.allocation_of t.allocator ~task_id:id))
        runtimes;
    if Allocator.supports_drop t.allocator then begin
      (* Track poor streaks and pick at most one drop victim per round:
         the poorest-priority task that stayed poor through the drop
         threshold while one of its switches was congested. *)
      let candidates =
        List.filter_map
          (fun r ->
            let spec = Task.spec r.task in
            let poor = Task.smoothed_global r.task < spec.Task_spec.accuracy_bound in
            let alloc_total =
              Switch_id.Map.fold
                (fun _ v acc -> acc + v)
                (Allocator.allocation_of t.allocator ~task_id:(Task.id r.task))
                0
            in
            (* A task still gaining resources is converging, not starved:
               only a poor task whose allocation has stopped growing
               accumulates a streak (paper: dropped tasks are those that
               "get fewer and fewer resources ... and remain poor"). *)
            let growing = alloc_total > r.last_alloc_total in
            r.last_alloc_total <- alloc_total;
            if poor && not growing then r.poor_streak <- r.poor_streak + 1
            else r.poor_streak <- 0;
            let congested_somewhere =
              Switch_id.Set.exists
                (fun sw -> Allocator.congested t.allocator sw)
                (Task.switches r.task)
            in
            if r.poor_streak >= config.Config.drop_threshold && congested_somewhere then Some r
            else None)
          runtimes
      in
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some best -> if r.drop_priority > best.drop_priority then Some r else acc)
          None candidates
      in
      match victim with
      | Some r -> remove_task t r ~outcome:Metrics.Dropped
      | None -> ()
    end
  end;
  (* Reconfigure counters, then sync rules incrementally in two passes:
     all removals across tasks first, then installs — so one task's growth
     never transiently collides with space another task is vacating. *)
  let configure_clock = ref 0.0 in
  let survivors = List.filter (fun r -> Hashtbl.mem t.active (Task.id r.task)) runtimes in
  let desired_of =
    List.map
      (fun r ->
        let id = Task.id r.task in
        let allocations = Allocator.allocation_of t.allocator ~task_id:id in
        let allocations = quarantine_allocations t allocations in
        let t0 = Sys.time () in
        Task.configure r.task ~allocations;
        configure_clock := !configure_clock +. (Sys.time () -. t0);
        let per_switch =
          Array.map
            (fun sw -> Prefix.Set.of_list (Task.desired_rules r.task (Switch.id sw)))
            t.switches
        in
        (r, per_switch))
      survivors
  in
  (* Per-switch rule-update budgets: a software switch applies everything,
     a hardware switch only [install_budget] updates per epoch (deferred
     ones are retried next epoch and the affected counters read nothing
     meanwhile — the cost that made the paper abandon hardware switches). *)
  let budgets =
    Array.map
      (fun _ ->
        ref (match config.Config.install_budget with Some b -> b | None -> max_int))
      t.switches
  in
  (* Pass 1: removals. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      Array.iteri
        (fun i dp ->
          let budget = budgets.(i) in
          List.iter
            (fun p ->
              if (not (Prefix.Set.mem p per_switch.(i))) && !budget > 0 then begin
                jot t
                  (Journal.Delete { epoch = t.epoch; task_id = id; switch = Data_plane.id dp; prefix = p });
                match Data_plane.remove dp ~owner:id p with
                | Ok _ -> decr budget
                | Error `Down -> ()
              end)
            (Data_plane.rules_of dp ~owner:id))
        t.planes)
    desired_of;
  (* Pass 2: installs, newest rules skipped once a switch's budget runs
     out or its table is full.  Installs onto a switch that recovered this
     epoch are the full rule-set reinstall its crash demands. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      let fresh = ref Switch_id.Map.empty in
      let installs = ref Switch_id.Map.empty in
      Array.iteri
        (fun i dp ->
          let sw_id = Data_plane.id dp in
          let budget = budgets.(i) in
          let installed = Prefix.Set.of_list (Data_plane.rules_of dp ~owner:id) in
          let added = ref Prefix.Set.empty in
          Prefix.Set.iter
            (fun p ->
              if (not (Prefix.Set.mem p installed)) && !budget > 0 then begin
                jot t (Journal.Install { epoch = t.epoch; task_id = id; switch = sw_id; prefix = p });
                match Data_plane.install dp ~owner:id p with
                | Ok () ->
                  decr budget;
                  added := Prefix.Set.add p !added;
                  if Switch_id.Set.mem sw_id t.recovered_now then
                    t.rob.recovery_reinstalls <- t.rob.recovery_reinstalls + 1
                | Error `Failed ->
                  (* The attempt consumed an update slot; the rule stays
                     desired and is retried next epoch. *)
                  decr budget;
                  t.rob.install_failures <- t.rob.install_failures + 1
                | Error (`Capacity | `Duplicate | `Down) -> ()
              end)
            per_switch.(i);
          if not (Prefix.Set.is_empty !added) then begin
            fresh := Switch_id.Map.add sw_id !added !fresh;
            installs := Switch_id.Map.add sw_id (Prefix.Set.cardinal !added) !installs
          end)
        t.planes;
      r.fresh_rules <- !fresh;
      r.last_install_counts <- !installs)
    desired_of;
  (* Price the epoch's switch interactions for Fig 17. *)
  let fetch_total, install_total, remove_total, touched =
    Array.fold_left
      (fun (f, i, rm, sw_count) sw ->
        let stats = Tcam.stats (Switch.tcam sw) in
        let touched = if stats.Tcam.fetches > 0 || stats.Tcam.installs > 0 then 1 else 0 in
        (f + stats.Tcam.fetches, i + stats.Tcam.installs, rm + stats.Tcam.removals, sw_count + touched))
      (0, 0, 0, 0) t.switches
  in
  let costs = delay_costs t in
  let sample =
    {
      epoch = t.epoch;
      fetch_ms = Delay_model.fetch_ms costs ~rules:fetch_total ~switches:touched +. !fault_ms;
      save_ms = Delay_model.save_ms costs ~installs:install_total ~removals:remove_total ~switches:touched;
      report_ms = ms_of_cpu !report_clock;
      allocate_ms = ms_of_cpu !allocate_clock;
      configure_ms = ms_of_cpu !configure_clock;
    }
  in
  t.delays <- sample :: t.delays;
  t.rules_installed <- t.rules_installed + install_total;
  t.rules_fetched <- t.rules_fetched + fetch_total;
  t.recovered_now <- Switch_id.Set.empty;
  (* Retire tasks that reached their duration. *)
  List.iter
    (fun r ->
      if Hashtbl.mem t.active (Task.id r.task) && r.active_epochs >= r.duration then
        remove_task t r ~outcome:Metrics.Completed)
    survivors;
  if config.Config.check_invariants then begin
    let tasks =
      List.sort
        (fun a b -> Int.compare (Task.id a) (Task.id b))
        (Hashtbl.fold (fun _ r acc -> r.task :: acc) t.active [])
    in
    let up sw = not (Data_plane.down t.planes.(sw)) in
    let violations =
      Invariant.check_all ~allocator:t.allocator ~switches:t.switches ~up ~tasks
    in
    t.rob.invariant_violations <- t.rob.invariant_violations + List.length violations;
    List.iter
      (fun v ->
        Log.warn (fun m -> m "epoch %d: invariant violated — %s" t.epoch (Invariant.to_string v)))
      violations
  end;
  t.epoch <- t.epoch + 1

let run t ~epochs =
  for _ = 1 to epochs do
    tick t
  done

let finalize t =
  let runtimes = Hashtbl.fold (fun _ r acc -> r :: acc) t.active [] in
  List.iter (fun r -> remove_task t r ~outcome:Metrics.Completed) runtimes

let records t = List.rev t.records

let summary t = Metrics.summarize ~robustness:(robustness t) (records t)

let delay_samples t = List.rev t.delays

let total_rules_installed t = t.rules_installed

let total_rules_fetched t = t.rules_fetched

(* ---- checkpoints ---- *)

let snapshot_magic = "dream-checkpoint v1"

let emit_config w (config : Config.t) =
  C.section w "config";
  C.int w "allocation_interval" config.Config.allocation_interval;
  C.int w "drop_threshold" config.Config.drop_threshold;
  C.float w "accuracy_history" config.Config.accuracy_history;
  C.float w "epoch_ms" config.Config.epoch_ms;
  C.bool w "has_control_delay" (config.Config.control_delay <> None);
  (match config.Config.control_delay with
  | Some c ->
    C.float w "fetch_per_rule_ms" c.Delay_model.fetch_per_rule_ms;
    C.float w "save_per_rule_ms" c.Delay_model.save_per_rule_ms;
    C.float w "delete_per_rule_ms" c.Delay_model.delete_per_rule_ms;
    C.float w "rtt_ms" c.Delay_model.rtt_ms
  | None -> ());
  C.bool w "score_real" (config.Config.score_satisfaction_with = `Real_accuracy);
  C.bool w "accuracy_overall" (config.Config.accuracy_mode = Task.Overall);
  C.bool w "has_install_budget" (config.Config.install_budget <> None);
  (match config.Config.install_budget with Some b -> C.int w "install_budget" b | None -> ());
  C.bool w "check_invariants" config.Config.check_invariants

(* The fault spec is not part of this section: the live fault model (RNG
   streams and all) is serialized separately, and the restored config gets
   its spec from there. *)
let parse_config r : Config.t =
  C.expect_section r "config";
  let allocation_interval = C.int_field r "allocation_interval" in
  let drop_threshold = C.int_field r "drop_threshold" in
  let accuracy_history = C.float_field r "accuracy_history" in
  let epoch_ms = C.float_field r "epoch_ms" in
  let control_delay =
    if C.bool_field r "has_control_delay" then begin
      let fetch_per_rule_ms = C.float_field r "fetch_per_rule_ms" in
      let save_per_rule_ms = C.float_field r "save_per_rule_ms" in
      let delete_per_rule_ms = C.float_field r "delete_per_rule_ms" in
      let rtt_ms = C.float_field r "rtt_ms" in
      Some { Delay_model.fetch_per_rule_ms; save_per_rule_ms; delete_per_rule_ms; rtt_ms }
    end
    else None
  in
  let score_satisfaction_with =
    if C.bool_field r "score_real" then `Real_accuracy else `Estimated_accuracy
  in
  let accuracy_mode = if C.bool_field r "accuracy_overall" then Task.Overall else Task.Global_only in
  let install_budget =
    if C.bool_field r "has_install_budget" then Some (C.int_field r "install_budget") else None
  in
  let check_invariants = C.bool_field r "check_invariants" in
  {
    Config.allocation_interval;
    drop_threshold;
    accuracy_history;
    epoch_ms;
    control_delay;
    score_satisfaction_with;
    accuracy_mode;
    install_budget;
    faults = None;
    check_invariants;
  }

let emit_prefix_list w key prefixes =
  C.int w key (List.length prefixes);
  List.iter (fun p -> C.string w "p" (Prefix.to_string p)) prefixes

let parse_prefix_list r key =
  let n = C.int_field r key in
  C.repeat n (fun () ->
      let s = C.string_field r "p" in
      match Prefix.of_string s with
      | p -> p
      | exception Invalid_argument _ ->
        C.parse_error 0 (Printf.sprintf "invalid prefix %S" s))

let emit_runtime w r =
  C.section w "runtime";
  C.int w "duration" r.duration;
  C.int w "arrived_at" r.arrived_at;
  C.int w "drop_priority" r.drop_priority;
  C.int w "active_epochs" r.active_epochs;
  C.int w "satisfied_epochs" r.satisfied_epochs;
  C.float w "accuracy_sum" r.accuracy_sum;
  C.int w "poor_streak" r.poor_streak;
  C.int w "last_alloc_total" r.last_alloc_total;
  C.int w "fresh_rules" (Switch_id.Map.cardinal r.fresh_rules);
  Switch_id.Map.iter
    (fun sw set ->
      C.int w "sw" sw;
      emit_prefix_list w "rules" (Prefix.Set.elements set))
    r.fresh_rules;
  C.int w "last_install_counts" (Switch_id.Map.cardinal r.last_install_counts);
  Switch_id.Map.iter
    (fun sw n ->
      C.int w "sw" sw;
      C.int w "installs" n)
    r.last_install_counts;
  C.int w "stale_counters" (Switch_id.Map.cardinal r.stale_counters);
  Switch_id.Map.iter
    (fun sw pairs ->
      C.int w "sw" sw;
      C.int w "pairs" (List.length pairs);
      List.iter
        (fun (p, v) ->
          C.string w "p" (Prefix.to_string p);
          C.float w "v" v)
        pairs)
    r.stale_counters;
  Task.emit w r.task;
  Source.emit w r.source;
  Ground_truth.emit w r.ground_truth

(* [last_report] is deliberately not serialized: it is a UI convenience the
   control loop never reads, and a restored controller reports afresh on
   its first tick. *)
let parse_runtime r =
  C.expect_section r "runtime";
  let duration = C.int_field r "duration" in
  let arrived_at = C.int_field r "arrived_at" in
  let drop_priority = C.int_field r "drop_priority" in
  let active_epochs = C.int_field r "active_epochs" in
  let satisfied_epochs = C.int_field r "satisfied_epochs" in
  let accuracy_sum = C.float_field r "accuracy_sum" in
  let poor_streak = C.int_field r "poor_streak" in
  let last_alloc_total = C.int_field r "last_alloc_total" in
  let fresh_rules =
    let n = C.int_field r "fresh_rules" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        (sw, Prefix.Set.of_list (parse_prefix_list r "rules")))
    |> List.fold_left (fun acc (sw, set) -> Switch_id.Map.add sw set acc) Switch_id.Map.empty
  in
  let last_install_counts =
    let n = C.int_field r "last_install_counts" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        (sw, C.int_field r "installs"))
    |> List.fold_left (fun acc (sw, n) -> Switch_id.Map.add sw n acc) Switch_id.Map.empty
  in
  let stale_counters =
    let n = C.int_field r "stale_counters" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        let pairs =
          C.repeat (C.int_field r "pairs") (fun () ->
              let s = C.string_field r "p" in
              let p =
                match Prefix.of_string s with
                | p -> p
                | exception Invalid_argument _ ->
                  C.parse_error 0 (Printf.sprintf "invalid prefix %S" s)
              in
              (p, C.float_field r "v"))
        in
        (sw, pairs))
    |> List.fold_left (fun acc (sw, pairs) -> Switch_id.Map.add sw pairs acc) Switch_id.Map.empty
  in
  let task = Task.parse r in
  let source = Source.parse r in
  let ground_truth = Ground_truth.parse r ~spec:(Task.spec task) in
  {
    task;
    source;
    ground_truth;
    duration;
    arrived_at;
    drop_priority;
    active_epochs;
    satisfied_epochs;
    accuracy_sum;
    poor_streak;
    last_alloc_total;
    last_report = None;
    fresh_rules;
    last_install_counts;
    stale_counters;
  }

let outcome_to_string = function
  | Metrics.Completed -> "completed"
  | Metrics.Dropped -> "dropped"
  | Metrics.Rejected -> "rejected"

let outcome_of_string = function
  | "completed" -> Some Metrics.Completed
  | "dropped" -> Some Metrics.Dropped
  | "rejected" -> Some Metrics.Rejected
  | _ -> None

let emit_records w records =
  C.int w "records" (List.length records);
  List.iter
    (fun (rec_ : Metrics.record) ->
      C.section w "record";
      C.int w "task_id" rec_.Metrics.task_id;
      C.string w "kind" (Task_spec.kind_to_string rec_.Metrics.kind);
      C.string w "outcome" (outcome_to_string rec_.Metrics.outcome);
      C.int w "arrived_at" rec_.Metrics.arrived_at;
      C.int w "ended_at" rec_.Metrics.ended_at;
      C.int w "active_epochs" rec_.Metrics.active_epochs;
      C.float w "satisfaction" rec_.Metrics.satisfaction;
      C.float w "mean_accuracy" rec_.Metrics.mean_accuracy)
    records

let parse_records r =
  let n = C.int_field r "records" in
  C.repeat n (fun () ->
      C.expect_section r "record";
      let task_id = C.int_field r "task_id" in
      let kind =
        let s = C.string_field r "kind" in
        match Task_spec.kind_of_string s with
        | Some k -> k
        | None -> C.parse_error 0 (Printf.sprintf "unknown task kind %S" s)
      in
      let outcome =
        let s = C.string_field r "outcome" in
        match outcome_of_string s with
        | Some o -> o
        | None -> C.parse_error 0 (Printf.sprintf "unknown outcome %S" s)
      in
      let arrived_at = C.int_field r "arrived_at" in
      let ended_at = C.int_field r "ended_at" in
      let active_epochs = C.int_field r "active_epochs" in
      let satisfaction = C.float_field r "satisfaction" in
      let mean_accuracy = C.float_field r "mean_accuracy" in
      { Metrics.task_id; kind; outcome; arrived_at; ended_at; active_epochs; satisfaction;
        mean_accuracy })

let emit_rob w (rob : rob) =
  C.section w "robustness";
  C.int w "crashes" rob.crashes;
  C.int w "recoveries" rob.recoveries;
  C.int w "switch_down_epochs" rob.switch_down_epochs;
  C.int w "fetch_timeouts" rob.fetch_timeouts;
  C.int w "fetch_retries" rob.fetch_retries;
  C.int w "fetch_failures" rob.fetch_failures;
  C.int w "stale_epochs" rob.stale_epochs;
  C.int w "counters_lost" rob.counters_lost;
  C.int w "install_failures" rob.install_failures;
  C.int w "recovery_reinstalls" rob.recovery_reinstalls;
  C.int w "controller_crashes" rob.controller_crashes;
  C.int w "reconcile_removed" rob.reconcile_removed;
  C.int w "reconcile_installed" rob.reconcile_installed;
  C.int w "invariant_violations" rob.invariant_violations

let parse_rob r : rob =
  C.expect_section r "robustness";
  let crashes = C.int_field r "crashes" in
  let recoveries = C.int_field r "recoveries" in
  let switch_down_epochs = C.int_field r "switch_down_epochs" in
  let fetch_timeouts = C.int_field r "fetch_timeouts" in
  let fetch_retries = C.int_field r "fetch_retries" in
  let fetch_failures = C.int_field r "fetch_failures" in
  let stale_epochs = C.int_field r "stale_epochs" in
  let counters_lost = C.int_field r "counters_lost" in
  let install_failures = C.int_field r "install_failures" in
  let recovery_reinstalls = C.int_field r "recovery_reinstalls" in
  let controller_crashes = C.int_field r "controller_crashes" in
  let reconcile_removed = C.int_field r "reconcile_removed" in
  let reconcile_installed = C.int_field r "reconcile_installed" in
  let invariant_violations = C.int_field r "invariant_violations" in
  { crashes; recoveries; switch_down_epochs; fetch_timeouts; fetch_retries; fetch_failures;
    stale_epochs; counters_lost; install_failures; recovery_reinstalls; controller_crashes;
    reconcile_removed; reconcile_installed; invariant_violations }

let snapshot t =
  let w = C.writer () in
  C.section w "controller";
  C.int w "epoch" t.epoch;
  C.int w "next_id" t.next_id;
  C.int w "rules_installed" t.rules_installed;
  C.int w "rules_fetched" t.rules_fetched;
  emit_config w t.config;
  C.bool w "has_faults" (t.faults <> None);
  (match t.faults with Some fm -> Fault_model.emit w fm | None -> ());
  C.int w "num_switches" (Array.length t.switches);
  Array.iter
    (fun sw ->
      C.section w "switch";
      C.int w "id" (Switch.id sw);
      C.int w "capacity" (Switch.capacity sw);
      let dump = Tcam.dump (Switch.tcam sw) in
      C.int w "owners" (List.length dump);
      List.iter
        (fun (owner, rules) ->
          C.int w "owner" owner;
          emit_prefix_list w "rules" rules)
        dump)
    t.switches;
  Allocator.emit w t.allocator;
  emit_rob w t.rob;
  emit_records w t.records;
  let runtimes =
    List.sort
      (fun a b -> Int.compare (Task.id a.task) (Task.id b.task))
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.active [])
  in
  C.int w "runtimes" (List.length runtimes);
  List.iter (emit_runtime w) runtimes;
  C.seal ~magic:snapshot_magic (C.contents w)

let checkpoint t =
  let s = snapshot t in
  (* Everything the journal held is now folded into the snapshot; recovery
     only ever needs the suffix after the last checkpoint. *)
  (match t.journal with Some sink -> Journal.truncate sink | None -> ());
  s

type parsed_snapshot = {
  p_epoch : int;
  p_next_id : int;
  p_rules_installed : int;
  p_rules_fetched : int;
  p_config : Config.t; (* faults spec filled in by the caller *)
  p_faults : Fault_model.t option;
  p_switches : (int * int * (int * Prefix.t list) list) list; (* id, capacity, dump *)
  p_allocator : Allocator.t;
  p_rob : rob;
  p_records : Metrics.record list; (* newest first *)
  p_runtimes : runtime list; (* task-id order *)
}

let parse_snapshot r =
  C.expect_section r "controller";
  let p_epoch = C.int_field r "epoch" in
  let p_next_id = C.int_field r "next_id" in
  let p_rules_installed = C.int_field r "rules_installed" in
  let p_rules_fetched = C.int_field r "rules_fetched" in
  let p_config = parse_config r in
  let p_faults = if C.bool_field r "has_faults" then Some (Fault_model.parse r) else None in
  let num_switches = C.int_field r "num_switches" in
  let p_switches =
    C.repeat num_switches (fun () ->
        C.expect_section r "switch";
        let id = C.int_field r "id" in
        let capacity = C.int_field r "capacity" in
        let owners = C.int_field r "owners" in
        let dump =
          C.repeat owners (fun () ->
              let owner = C.int_field r "owner" in
              (owner, parse_prefix_list r "rules"))
        in
        (id, capacity, dump))
  in
  let p_allocator = Allocator.parse r in
  let p_rob = parse_rob r in
  let p_records = parse_records r in
  let p_runtimes = C.repeat (C.int_field r "runtimes") (fun () -> parse_runtime r) in
  { p_epoch; p_next_id; p_rules_installed; p_rules_fetched; p_config; p_faults; p_switches;
    p_allocator; p_rob; p_records; p_runtimes }

let controller_of_parsed d ~switches ~planes ~faults =
  let active = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace active (Task.id r.task) r) d.p_runtimes;
  {
    config = { d.p_config with Config.faults = Option.map Fault_model.spec faults };
    allocator = d.p_allocator;
    switches;
    planes;
    faults;
    active;
    epoch = d.p_epoch;
    next_id = d.p_next_id;
    records = d.p_records;
    delays = [];
    rules_installed = d.p_rules_installed;
    rules_fetched = d.p_rules_fetched;
    rob = d.p_rob;
    recovered_now = Switch_id.Set.empty;
    journal = None;
    crash_pending = false;
  }

let restore s =
  match C.unseal ~magic:snapshot_magic s with
  | Error e -> Error e
  | Ok body -> begin
    match
      let d = parse_snapshot (C.reader_of_string body) in
      let switches =
        Array.of_list
          (List.mapi
             (fun i (id, capacity, dump) ->
               if id <> i then
                 C.parse_error 0 (Printf.sprintf "switch ids not consecutive (%d at %d)" id i);
               let sw = Switch.create ~id ~capacity in
               List.iter
                 (fun (owner, rules) ->
                   List.iter
                     (fun p ->
                       match Tcam.install (Switch.tcam sw) ~owner p with
                       | Ok () -> ()
                       | Error (`Capacity | `Duplicate) ->
                         C.parse_error 0
                           (Printf.sprintf "snapshot rules overflow switch %d" id))
                     rules)
                 dump;
               Tcam.reset_stats (Switch.tcam sw);
               sw)
             d.p_switches)
      in
      let faults = d.p_faults in
      let planes = Array.map (fun sw -> Data_plane.create ?faults sw) switches in
      controller_of_parsed d ~switches ~planes ~faults
    with
    | t -> Ok t
    | exception C.Parse_error err -> Error (C.error_to_string err)
  end

(* ---- failover recovery ---- *)

type env = {
  env_switches : Switch.t array;
  env_planes : Data_plane.t array;
  env_faults : Fault_model.t option;
}

let environment t = { env_switches = t.switches; env_planes = t.planes; env_faults = t.faults }

let replay_entry t state_epochs entry =
  match entry with
  | Journal.Admit
      { epoch; task_id; spec; topology; duration; drop_priority; accuracy_history; global_only;
        source } ->
    let task =
      Task.create ~id:task_id ~spec ~topology ~accuracy_history
        ~accuracy_mode:(if global_only then Task.Global_only else Task.Overall)
        ()
    in
    let source = Source.parse (C.reader_of_string source) in
    let runtime =
      {
        task;
        source;
        ground_truth = Ground_truth.create spec;
        duration;
        arrived_at = epoch;
        drop_priority;
        active_epochs = 0;
        satisfied_epochs = 0;
        accuracy_sum = 0.0;
        poor_streak = 0;
        last_alloc_total = 0;
        last_report = None;
        fresh_rules = Switch_id.Map.empty;
        last_install_counts = Switch_id.Map.empty;
        stale_counters = Switch_id.Map.empty;
      }
    in
    Allocator.force_admit t.allocator (view_of_runtime runtime);
    Hashtbl.replace t.active task_id runtime;
    Hashtbl.replace state_epochs task_id epoch;
    t.next_id <- max t.next_id (task_id + 1)
  | Journal.Reject { epoch; task_id; kind } ->
    t.records <-
      {
        Metrics.task_id;
        kind;
        outcome = Metrics.Rejected;
        arrived_at = epoch;
        ended_at = epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    t.next_id <- max t.next_id (task_id + 1)
  | Journal.Alloc { task_id; switch; alloc; _ } ->
    Allocator.force_allocation t.allocator ~task_id ~switch ~alloc
  | Journal.Install _ | Journal.Delete _ | Journal.Purge _ ->
    (* Rule-level entries document what the dead controller did to the
       switches; reconciliation derives its expectations from the restored
       task state instead, so replay has nothing to apply here. *)
    ()
  | Journal.Switch_down _ -> t.rob.crashes <- t.rob.crashes + 1
  | Journal.Switch_up _ -> t.rob.recoveries <- t.rob.recoveries + 1
  | Journal.Task_end
      { epoch; task_id; kind; cause; arrived_at; active_epochs; satisfaction; mean_accuracy } ->
    if Hashtbl.mem t.active task_id then begin
      Allocator.release t.allocator ~task_id;
      Hashtbl.remove t.active task_id;
      Hashtbl.remove state_epochs task_id
    end;
    let outcome =
      match cause with Journal.Completed -> Metrics.Completed | Journal.Dropped -> Metrics.Dropped
    in
    t.records <-
      { Metrics.task_id; kind; outcome; arrived_at; ended_at = epoch; active_epochs;
        satisfaction; mean_accuracy }
      :: t.records

let recover ~env ~snapshot ~journal ~at_epoch =
  match C.unseal ~magic:snapshot_magic snapshot with
  | Error e -> Error e
  | Ok body -> begin
    match
      let d = parse_snapshot (C.reader_of_string body) in
      if List.length d.p_switches <> Array.length env.env_switches then
        C.parse_error 0 "snapshot switch count does not match the live network";
      if at_epoch < d.p_epoch then C.parse_error 0 "recovery epoch precedes the checkpoint";
      (* The network outlives the controller: switches, data planes and the
         fault model keep their live state, and the snapshot's copies (taken
         at checkpoint time) are discarded after parsing. *)
      let t =
        controller_of_parsed d ~switches:env.env_switches ~planes:env.env_planes
          ~faults:env.env_faults
      in
      (* Tasks restored from the snapshot carry state as of the checkpoint
         epoch; tasks replayed from the journal carry state as of their
         admission.  Either way the journal suffix brings membership,
         records and allocations current. *)
      let state_epochs = Hashtbl.create 16 in
      Hashtbl.iter (fun id _ -> Hashtbl.replace state_epochs id d.p_epoch) t.active;
      List.iter (fun e -> replay_entry t state_epochs e) journal;
      (* Traffic kept flowing while the controller was down: fast-forward
         each survivor's source by the epochs it missed.  Discarded epochs
         consume exactly the RNG draws the live run would have, so the
         traffic stream itself is unperturbed by the failover. *)
      Hashtbl.iter
        (fun id r ->
          let from = match Hashtbl.find_opt state_epochs id with Some e -> e | None -> at_epoch in
          for _ = from to at_epoch - 1 do
            ignore (Source.next r.source)
          done)
        t.active;
      (* Reconcile every reachable switch against the restored state: rules
         no restored task wants are strays, rules a restored task wants but
         the switch lost are missing.  A switch that is down now is wiped
         anyway and gets its rules back through the normal recovered-switch
         reinstall path. *)
      let runtimes =
        List.sort
          (fun a b -> Int.compare (Task.id a.task) (Task.id b.task))
          (Hashtbl.fold (fun _ r acc -> r :: acc) t.active [])
      in
      Array.iter
        (fun dp ->
          let sw_id = Data_plane.id dp in
          let expected =
            List.filter_map
              (fun r ->
                match Task.desired_rules r.task sw_id with
                | [] -> None
                | rules -> Some (Task.id r.task, rules))
              runtimes
          in
          match Data_plane.audit dp ~expected with
          | Ok { Data_plane.strays_removed; missing_installed } ->
            t.rob.reconcile_removed <- t.rob.reconcile_removed + strays_removed;
            t.rob.reconcile_installed <- t.rob.reconcile_installed + missing_installed
          | Error `Down -> ())
        env.env_planes;
      t.rob.controller_crashes <- t.rob.controller_crashes + 1;
      t.epoch <- at_epoch;
      Log.info (fun m ->
          m "epoch %d: controller recovered from checkpoint at epoch %d (+%d journal entries)"
            at_epoch d.p_epoch (List.length journal));
      t
    with
    | t -> Ok t
    | exception C.Parse_error err -> Error (C.error_to_string err)
  end
