module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Epoch_data = Dream_traffic.Epoch_data
module Source = Dream_traffic.Source
module Topology = Dream_traffic.Topology
module Fault_model = Dream_fault.Fault_model
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Data_plane = Dream_switch.Data_plane
module Delay_model = Dream_switch.Delay_model
module Task = Dream_tasks.Task
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth
module Allocator = Dream_alloc.Allocator
module Task_view = Dream_alloc.Task_view

let log_src = Logs.Src.create "dream.controller" ~doc:"DREAM controller events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type runtime = {
  task : Task.t;
  source : Source.t;
  ground_truth : Ground_truth.t;
  duration : int;
  arrived_at : int;
  drop_priority : int;
  mutable active_epochs : int;
  mutable satisfied_epochs : int;
  mutable accuracy_sum : float;
  mutable poor_streak : int;
  mutable last_alloc_total : int;
  mutable last_report : Report.t option;
  mutable fresh_rules : Prefix.Set.t Switch_id.Map.t; (* installed by the last sync *)
  mutable last_install_counts : int Switch_id.Map.t;
  mutable stale_counters : (Prefix.t * float) list Switch_id.Map.t;
      (* last successfully fetched readings per switch, the fallback when a
         switch is down or a fetch is abandoned (fault injection only) *)
}

type delay_sample = {
  epoch : int;
  fetch_ms : float;
  save_ms : float;
  report_ms : float;
  allocate_ms : float;
  configure_ms : float;
}

(* Robustness counters, kept mutable here and exported as the immutable
   {!Metrics.robustness}. *)
type rob = {
  mutable crashes : int;
  mutable recoveries : int;
  mutable switch_down_epochs : int;
  mutable fetch_timeouts : int;
  mutable fetch_retries : int;
  mutable fetch_failures : int;
  mutable stale_epochs : int;
  mutable counters_lost : int;
  mutable install_failures : int;
  mutable recovery_reinstalls : int;
}

type t = {
  config : Config.t;
  allocator : Allocator.t;
  switches : Switch.t array;
  planes : Data_plane.t array;
  faults : Fault_model.t option;
  active : (int, runtime) Hashtbl.t;
  mutable epoch : int;
  mutable next_id : int;
  mutable records : Metrics.record list;
  mutable delays : delay_sample list; (* newest first *)
  mutable rules_installed : int;
  mutable rules_fetched : int;
  rob : rob;
  mutable recovered_now : Switch_id.Set.t; (* switches back up as of this tick *)
}

let create ~config ~strategy ~num_switches ~capacity =
  if num_switches <= 0 then
    invalid_arg
      (Printf.sprintf "Controller.create: num_switches must be positive, got %d" num_switches);
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Controller.create: capacity must be positive, got %d" capacity);
  let switches = Switch.network ~num_switches ~capacity in
  let faults =
    Option.map (fun spec -> Fault_model.create spec ~num_switches) config.Config.faults
  in
  let planes = Array.map (fun sw -> Data_plane.create ?faults sw) switches in
  let capacities = Array.to_list (Array.map (fun sw -> (Switch.id sw, capacity)) switches) in
  {
    config;
    allocator = Allocator.create strategy ~capacities;
    switches;
    planes;
    faults;
    active = Hashtbl.create 64;
    epoch = 0;
    next_id = 0;
    records = [];
    delays = [];
    rules_installed = 0;
    rules_fetched = 0;
    rob =
      {
        crashes = 0;
        recoveries = 0;
        switch_down_epochs = 0;
        fetch_timeouts = 0;
        fetch_retries = 0;
        fetch_failures = 0;
        stale_epochs = 0;
        counters_lost = 0;
        install_failures = 0;
        recovery_reinstalls = 0;
      };
    recovered_now = Switch_id.Set.empty;
  }

let epoch t = t.epoch

let num_switches t = Array.length t.switches

let switches t = t.switches

let allocator t = t.allocator

let faults t = t.faults

let robustness t =
  {
    Metrics.crashes = t.rob.crashes;
    recoveries = t.rob.recoveries;
    switch_down_epochs = t.rob.switch_down_epochs;
    fetch_timeouts = t.rob.fetch_timeouts;
    fetch_retries = t.rob.fetch_retries;
    fetch_failures = t.rob.fetch_failures;
    stale_epochs = t.rob.stale_epochs;
    counters_lost = t.rob.counters_lost;
    install_failures = t.rob.install_failures;
    recovery_reinstalls = t.rob.recovery_reinstalls;
  }

let active_tasks t = Hashtbl.length t.active

let active_task_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.active [])

let last_report t ~task_id =
  match Hashtbl.find_opt t.active task_id with Some r -> r.last_report | None -> None

let smoothed_accuracy t ~task_id =
  match Hashtbl.find_opt t.active task_id with
  | Some r -> Some (Task.smoothed_global r.task)
  | None -> None

let view_of_runtime r =
  {
    Task_view.id = Task.id r.task;
    switches = Task.switches r.task;
    bound = (Task.spec r.task).Task_spec.accuracy_bound;
    drop_priority = r.drop_priority;
    overall = (fun sw -> Task.overall_accuracy r.task sw);
    used = (fun sw -> Task.counters_used r.task sw);
  }

let submit t ~spec ~topology ~source ~duration =
  let id = t.next_id in
  t.next_id <- id + 1;
  let task =
    Task.create ~id ~spec ~topology ~accuracy_history:t.config.Config.accuracy_history
      ~accuracy_mode:t.config.Config.accuracy_mode ()
  in
  (* Default drop priority: most recently arrived tasks drop first; an
     explicit spec priority takes precedence. *)
  let drop_priority =
    if spec.Task_spec.drop_priority <> 0 then spec.Task_spec.drop_priority else id
  in
  let runtime =
    {
      task;
      source;
      ground_truth = Ground_truth.create spec;
      duration;
      arrived_at = t.epoch;
      drop_priority;
      active_epochs = 0;
      satisfied_epochs = 0;
      accuracy_sum = 0.0;
      poor_streak = 0;
      last_alloc_total = 0;
      last_report = None;
      fresh_rules = Switch_id.Map.empty;
      last_install_counts = Switch_id.Map.empty;
      stale_counters = Switch_id.Map.empty;
    }
  in
  let view = view_of_runtime runtime in
  if Allocator.try_admit t.allocator view then begin
    Hashtbl.replace t.active id runtime;
    Log.info (fun m ->
        m "epoch %d: admitted task %d (%a, %d epochs)" t.epoch id Task_spec.pp spec duration);
    `Admitted id
  end
  else begin
    t.records <-
      {
        Metrics.task_id = id;
        kind = spec.Task_spec.kind;
        outcome = Metrics.Rejected;
        arrived_at = t.epoch;
        ended_at = t.epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    Log.info (fun m -> m "epoch %d: rejected task %d (%a)" t.epoch id Task_spec.pp spec);
    `Rejected
  end

let finish_record r ~outcome ~ended_at =
  let spec = Task.spec r.task in
  let active = r.active_epochs in
  {
    Metrics.task_id = Task.id r.task;
    kind = spec.Task_spec.kind;
    outcome;
    arrived_at = r.arrived_at;
    ended_at;
    active_epochs = active;
    satisfaction =
      (if active = 0 then 0.0 else float_of_int r.satisfied_epochs /. float_of_int active);
    mean_accuracy = (if active = 0 then 0.0 else r.accuracy_sum /. float_of_int active);
  }

let remove_task t r ~outcome =
  let id = Task.id r.task in
  Log.info (fun m ->
      m "epoch %d: task %d %s after %d active epochs" t.epoch id
        (match outcome with
        | Metrics.Completed -> "completed"
        | Metrics.Dropped -> "DROPPED"
        | Metrics.Rejected -> "rejected")
        r.active_epochs);
  Allocator.release t.allocator ~task_id:id;
  Array.iter (fun sw -> ignore (Tcam.remove_owner (Switch.tcam sw) ~owner:id)) t.switches;
  Hashtbl.remove t.active id;
  t.records <- finish_record r ~outcome ~ended_at:t.epoch :: t.records

let delay_costs t =
  match t.config.Config.control_delay with Some c -> c | None -> Delay_model.default

(* Fraction of the epoch a freshly installed rule missed while its update
   was in flight (Figs 8/9's prototype-vs-simulator gap). *)
let install_miss t r sw_id =
  match t.config.Config.control_delay with
  | None -> 0.0
  | Some costs ->
    let installs =
      match Switch_id.Map.find_opt sw_id r.last_install_counts with Some n -> n | None -> 0
    in
    Delay_model.install_miss_fraction costs ~epoch_ms:t.config.Config.epoch_ms ~installs
      ~switches:1

let degrade_fresh t r sw_id pairs =
  let miss = install_miss t r sw_id in
  let fresh =
    match Switch_id.Map.find_opt sw_id r.fresh_rules with
    | Some set -> set
    | None -> Prefix.Set.empty
  in
  List.map
    (fun (p, v) ->
      if miss > 0.0 && Prefix.Set.mem p fresh then (p, v *. (1.0 -. miss)) else (p, v))
    pairs

(* Counter fetch over a perfectly reliable control channel — the paper's
   assumption, and the behaviour when no fault spec is configured. *)
let read_counters_reliable t r =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let readings =
    Array.to_list t.switches
    |> List.filter_map (fun sw ->
           let sw_id = Switch.id sw in
           let rules = Tcam.rules_of (Switch.tcam sw) ~owner:id in
           if rules = [] then None
           else begin
             let aggregate = Epoch_data.switch_view data sw_id in
             let pairs = Tcam.read (Switch.tcam sw) ~owner:id aggregate in
             Some (sw_id, degrade_fresh t r sw_id pairs)
           end)
  in
  (data, readings)

(* Fault-aware fetch: timed-out batches are retried with exponential
   backoff while the epoch's retry budget lasts (retries cost control-loop
   time exactly like slow installs do); a down switch, or a fetch
   abandoned after retries, falls back to the previous epoch's readings.
   Returns the switches the task could not hear from, so the caller can
   decay the task's estimated accuracy after this epoch's estimate. *)
let read_counters_faulty t r ~retry_budget ~fault_ms =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let costs = delay_costs t in
  let task_switches = Task.switches r.task in
  let readings = ref [] in
  let degraded = ref [] in
  let use_stale sw_id =
    match Switch_id.Map.find_opt sw_id r.stale_counters with
    | Some ((_ :: _) as pairs) ->
      readings := (sw_id, pairs) :: !readings;
      t.rob.stale_epochs <- t.rob.stale_epochs + 1
    | Some [] | None -> ()
  in
  Array.iter
    (fun dp ->
      let sw_id = Data_plane.id dp in
      if Data_plane.down dp then begin
        if Switch_id.Set.mem sw_id task_switches then begin
          use_stale sw_id;
          degraded := sw_id :: !degraded
        end
      end
      else begin
        let rules = Data_plane.rules_of dp ~owner:id in
        if rules <> [] then begin
          let aggregate = Epoch_data.switch_view data sw_id in
          let rec attempt k =
            match Data_plane.read dp ~owner:id aggregate with
            | Ok pairs -> Some pairs
            | Error `Down -> None
            | Error `Timeout ->
              t.rob.fetch_timeouts <- t.rob.fetch_timeouts + 1;
              let backoff = costs.Delay_model.rtt_ms *. (2.0 ** float_of_int k) in
              if !retry_budget >= backoff then begin
                retry_budget := !retry_budget -. backoff;
                fault_ms := !fault_ms +. backoff;
                t.rob.fetch_retries <- t.rob.fetch_retries + 1;
                attempt (k + 1)
              end
              else begin
                t.rob.fetch_failures <- t.rob.fetch_failures + 1;
                None
              end
          in
          match attempt 0 with
          | Some pairs ->
            let lost = List.length rules - List.length pairs in
            if lost > 0 then t.rob.counters_lost <- t.rob.counters_lost + lost;
            let pairs = degrade_fresh t r sw_id pairs in
            r.stale_counters <- Switch_id.Map.add sw_id pairs r.stale_counters;
            readings := (sw_id, pairs) :: !readings
          | None ->
            use_stale sw_id;
            degraded := sw_id :: !degraded
        end
      end)
    t.planes;
  (data, List.rev !readings, List.rev !degraded)

let read_counters t r ~retry_budget ~fault_ms =
  match t.faults with
  | None ->
    let data, readings = read_counters_reliable t r in
    (data, readings, [])
  | Some _ -> read_counters_faulty t r ~retry_budget ~fault_ms

(* Advance the fault model one epoch: crashed switches lose their TCAM
   contents before anything is fetched; recovered switches are remembered
   so this tick's rule sync can reinstall (and attribute) their rules. *)
let advance_faults t =
  match t.faults with
  | None -> ()
  | Some fm ->
    let events = Fault_model.begin_epoch fm in
    List.iter
      (fun sw_id ->
        Data_plane.crash t.planes.(sw_id);
        t.rob.crashes <- t.rob.crashes + 1;
        Log.info (fun m -> m "epoch %d: switch %d CRASHED (TCAM lost)" t.epoch sw_id))
      events.Fault_model.crashed;
    List.iter
      (fun sw_id -> Log.info (fun m -> m "epoch %d: switch %d recovered" t.epoch sw_id))
      events.Fault_model.recovered;
    t.recovered_now <- Switch_id.set_of_list events.Fault_model.recovered;
    t.rob.recoveries <- t.rob.recoveries + List.length events.Fault_model.recovered;
    t.rob.switch_down_epochs <- t.rob.switch_down_epochs + Fault_model.down_count fm

(* Quarantine: a down switch contributes nothing, so divide-and-merge must
   reconfigure the task's counters onto the healthy switches.  Zeroing the
   allocation is exactly that signal — {!Task.configure} deactivates the
   switch and merges its counters away. *)
let quarantine_allocations t allocations =
  match t.faults with
  | None -> allocations
  | Some fm ->
    Switch_id.Map.mapi (fun sw v -> if Fault_model.is_down fm sw then 0 else v) allocations

let ms_of_cpu seconds = seconds *. 1000.0

let tick t =
  let config = t.config in
  advance_faults t;
  let runtimes =
    List.sort
      (fun a b -> Int.compare (Task.id a.task) (Task.id b.task))
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.active [])
  in
  (* Reset per-epoch switch stats so the delay model prices this epoch. *)
  Array.iter (fun sw -> Tcam.reset_stats (Switch.tcam sw)) t.switches;
  (* Fetch + report + estimate, per task. *)
  let report_clock = ref 0.0 in
  let retry_budget =
    ref
      (match t.faults with
      | Some fm -> (Fault_model.spec fm).Fault_model.retry_budget_fraction *. config.Config.epoch_ms
      | None -> 0.0)
  in
  let fault_ms = ref 0.0 in
  List.iter
    (fun r ->
      let data, readings, degraded = read_counters t r ~retry_budget ~fault_ms in
      Task.ingest_counters r.task readings;
      let t0 = Sys.time () in
      let report = Task.make_report r.task ~epoch:t.epoch in
      r.last_report <- Some report;
      let estimate = Task.estimate_accuracy r.task in
      report_clock := !report_clock +. (Sys.time () -. t0);
      (* Degraded visibility: the estimators only saw stale (or no)
         counters for these switches, so the estimate is optimistic — decay
         the smoothed accuracies the allocator reads. *)
      (match t.faults with
      | Some fm when degraded <> [] ->
        let factor = (Fault_model.spec fm).Fault_model.stale_decay in
        List.iter (fun sw -> Task.decay_accuracy r.task ~switch:sw ~factor ()) degraded
      | Some _ | None -> ());
      let truth = Ground_truth.evaluate r.ground_truth data report in
      let spec = Task.spec r.task in
      let scored =
        match config.Config.score_satisfaction_with with
        | `Real_accuracy -> truth.Ground_truth.real_accuracy
        | `Estimated_accuracy -> estimate.Dream_tasks.Accuracy.global
      in
      r.active_epochs <- r.active_epochs + 1;
      r.accuracy_sum <- r.accuracy_sum +. scored;
      if scored >= spec.Task_spec.accuracy_bound then
        r.satisfied_epochs <- r.satisfied_epochs + 1)
    runtimes;
  (* Allocation epoch: redistribute and decide drops. *)
  let allocate_clock = ref 0.0 in
  if t.epoch mod config.Config.allocation_interval = 0 then begin
    let t0 = Sys.time () in
    let views = List.map view_of_runtime runtimes in
    Allocator.reallocate t.allocator views;
    allocate_clock := Sys.time () -. t0;
    if Allocator.supports_drop t.allocator then begin
      (* Track poor streaks and pick at most one drop victim per round:
         the poorest-priority task that stayed poor through the drop
         threshold while one of its switches was congested. *)
      let candidates =
        List.filter_map
          (fun r ->
            let spec = Task.spec r.task in
            let poor = Task.smoothed_global r.task < spec.Task_spec.accuracy_bound in
            let alloc_total =
              Switch_id.Map.fold
                (fun _ v acc -> acc + v)
                (Allocator.allocation_of t.allocator ~task_id:(Task.id r.task))
                0
            in
            (* A task still gaining resources is converging, not starved:
               only a poor task whose allocation has stopped growing
               accumulates a streak (paper: dropped tasks are those that
               "get fewer and fewer resources ... and remain poor"). *)
            let growing = alloc_total > r.last_alloc_total in
            r.last_alloc_total <- alloc_total;
            if poor && not growing then r.poor_streak <- r.poor_streak + 1
            else r.poor_streak <- 0;
            let congested_somewhere =
              Switch_id.Set.exists
                (fun sw -> Allocator.congested t.allocator sw)
                (Task.switches r.task)
            in
            if r.poor_streak >= config.Config.drop_threshold && congested_somewhere then Some r
            else None)
          runtimes
      in
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some best -> if r.drop_priority > best.drop_priority then Some r else acc)
          None candidates
      in
      match victim with
      | Some r -> remove_task t r ~outcome:Metrics.Dropped
      | None -> ()
    end
  end;
  (* Reconfigure counters, then sync rules incrementally in two passes:
     all removals across tasks first, then installs — so one task's growth
     never transiently collides with space another task is vacating. *)
  let configure_clock = ref 0.0 in
  let survivors = List.filter (fun r -> Hashtbl.mem t.active (Task.id r.task)) runtimes in
  let desired_of =
    List.map
      (fun r ->
        let id = Task.id r.task in
        let allocations = Allocator.allocation_of t.allocator ~task_id:id in
        let allocations = quarantine_allocations t allocations in
        let t0 = Sys.time () in
        Task.configure r.task ~allocations;
        configure_clock := !configure_clock +. (Sys.time () -. t0);
        let per_switch =
          Array.map
            (fun sw -> Prefix.Set.of_list (Task.desired_rules r.task (Switch.id sw)))
            t.switches
        in
        (r, per_switch))
      survivors
  in
  (* Per-switch rule-update budgets: a software switch applies everything,
     a hardware switch only [install_budget] updates per epoch (deferred
     ones are retried next epoch and the affected counters read nothing
     meanwhile — the cost that made the paper abandon hardware switches). *)
  let budgets =
    Array.map
      (fun _ ->
        ref (match config.Config.install_budget with Some b -> b | None -> max_int))
      t.switches
  in
  (* Pass 1: removals. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      Array.iteri
        (fun i dp ->
          let budget = budgets.(i) in
          List.iter
            (fun p ->
              if (not (Prefix.Set.mem p per_switch.(i))) && !budget > 0 then begin
                match Data_plane.remove dp ~owner:id p with
                | Ok _ -> decr budget
                | Error `Down -> ()
              end)
            (Data_plane.rules_of dp ~owner:id))
        t.planes)
    desired_of;
  (* Pass 2: installs, newest rules skipped once a switch's budget runs
     out or its table is full.  Installs onto a switch that recovered this
     epoch are the full rule-set reinstall its crash demands. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      let fresh = ref Switch_id.Map.empty in
      let installs = ref Switch_id.Map.empty in
      Array.iteri
        (fun i dp ->
          let sw_id = Data_plane.id dp in
          let budget = budgets.(i) in
          let installed = Prefix.Set.of_list (Data_plane.rules_of dp ~owner:id) in
          let added = ref Prefix.Set.empty in
          Prefix.Set.iter
            (fun p ->
              if (not (Prefix.Set.mem p installed)) && !budget > 0 then begin
                match Data_plane.install dp ~owner:id p with
                | Ok () ->
                  decr budget;
                  added := Prefix.Set.add p !added;
                  if Switch_id.Set.mem sw_id t.recovered_now then
                    t.rob.recovery_reinstalls <- t.rob.recovery_reinstalls + 1
                | Error `Failed ->
                  (* The attempt consumed an update slot; the rule stays
                     desired and is retried next epoch. *)
                  decr budget;
                  t.rob.install_failures <- t.rob.install_failures + 1
                | Error (`Capacity | `Duplicate | `Down) -> ()
              end)
            per_switch.(i);
          if not (Prefix.Set.is_empty !added) then begin
            fresh := Switch_id.Map.add sw_id !added !fresh;
            installs := Switch_id.Map.add sw_id (Prefix.Set.cardinal !added) !installs
          end)
        t.planes;
      r.fresh_rules <- !fresh;
      r.last_install_counts <- !installs)
    desired_of;
  (* Price the epoch's switch interactions for Fig 17. *)
  let fetch_total, install_total, remove_total, touched =
    Array.fold_left
      (fun (f, i, rm, sw_count) sw ->
        let stats = Tcam.stats (Switch.tcam sw) in
        let touched = if stats.Tcam.fetches > 0 || stats.Tcam.installs > 0 then 1 else 0 in
        (f + stats.Tcam.fetches, i + stats.Tcam.installs, rm + stats.Tcam.removals, sw_count + touched))
      (0, 0, 0, 0) t.switches
  in
  let costs = delay_costs t in
  let sample =
    {
      epoch = t.epoch;
      fetch_ms = Delay_model.fetch_ms costs ~rules:fetch_total ~switches:touched +. !fault_ms;
      save_ms = Delay_model.save_ms costs ~installs:install_total ~removals:remove_total ~switches:touched;
      report_ms = ms_of_cpu !report_clock;
      allocate_ms = ms_of_cpu !allocate_clock;
      configure_ms = ms_of_cpu !configure_clock;
    }
  in
  t.delays <- sample :: t.delays;
  t.rules_installed <- t.rules_installed + install_total;
  t.rules_fetched <- t.rules_fetched + fetch_total;
  t.recovered_now <- Switch_id.Set.empty;
  (* Retire tasks that reached their duration. *)
  List.iter
    (fun r ->
      if Hashtbl.mem t.active (Task.id r.task) && r.active_epochs >= r.duration then
        remove_task t r ~outcome:Metrics.Completed)
    survivors;
  t.epoch <- t.epoch + 1

let run t ~epochs =
  for _ = 1 to epochs do
    tick t
  done

let finalize t =
  let runtimes = Hashtbl.fold (fun _ r acc -> r :: acc) t.active [] in
  List.iter (fun r -> remove_task t r ~outcome:Metrics.Completed) runtimes

let records t = List.rev t.records

let summary t = Metrics.summarize ~robustness:(robustness t) (records t)

let delay_samples t = List.rev t.delays

let total_rules_installed t = t.rules_installed

let total_rules_fetched t = t.rules_fetched
