module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Epoch_data = Dream_traffic.Epoch_data
module Aggregate = Dream_traffic.Aggregate
module Arena = Dream_util.Arena
module Source = Dream_traffic.Source
module Fault_model = Dream_fault.Fault_model
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Data_plane = Dream_switch.Data_plane
module Delay_model = Dream_switch.Delay_model
module Breaker = Dream_switch.Breaker
module Task = Dream_tasks.Task
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth
module Allocator = Dream_alloc.Allocator
module Task_view = Dream_alloc.Task_view
module Journal = Dream_recovery.Journal
module Invariant = Dream_recovery.Invariant
module C = Dream_util.Codec
module Obs = Dream_obs
module Ctr = Dream_obs.Registry.Counter
module Tr = Dream_obs.Trace

let log_src = Logs.Src.create "dream.controller" ~doc:"DREAM controller events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type runtime = {
  task : Task.t;
  source : Source.t;
  ground_truth : Ground_truth.t;
  duration : int;
  arrived_at : int;
  drop_priority : int;
  mutable active_epochs : int;
  mutable satisfied_epochs : int;
  mutable accuracy_sum : float;
  mutable poor_streak : int;
  mutable last_alloc_total : int;
  mutable last_report : Report.t option;
  mutable fresh_rules : Prefix.Set.t Switch_id.Map.t; (* installed by the last sync *)
  mutable last_install_counts : int Switch_id.Map.t;
  mutable stale_counters : (Prefix.t * float) list Switch_id.Map.t;
      (* last successfully fetched readings per switch, the fallback when a
         switch is down or a fetch is abandoned (fault injection only) *)
  mutable staleness : int;
      (* consecutive epochs this task reported with at least one stale or
         missing switch (degraded mode only; 0 when fully fresh) *)
}

(* Hoisted out of [tick] (and the other per-epoch walks over [t.active])
   so sorting runtimes builds no comparator closure per epoch. *)
let runtime_order (a : runtime) (b : runtime) = Int.compare (Task.id a.task) (Task.id b.task)
let cons_runtime _ (r : runtime) acc = r :: acc

type delay_sample = {
  epoch : int;
  fetch_ms : float;
  save_ms : float;
  report_ms : float;
  allocate_ms : float;
  configure_ms : float;
}

(* Robustness counters.  These live in the metrics registry (the
   telemetry bundle's when one is attached, a private one otherwise), so
   the exporters and {!Metrics.robustness} read the same cells — there is
   exactly one copy of each tally. *)
type rob = {
  crashes : Ctr.t;
  recoveries : Ctr.t;
  switch_down_epochs : Ctr.t;
  fetch_timeouts : Ctr.t;
  fetch_retries : Ctr.t;
  fetch_failures : Ctr.t;
  stale_epochs : Ctr.t;
  counters_lost : Ctr.t;
  install_failures : Ctr.t;
  recovery_reinstalls : Ctr.t;
  controller_crashes : Ctr.t;
  reconcile_removed : Ctr.t;
  reconcile_installed : Ctr.t;
  invariant_violations : Ctr.t;
  partitions : Ctr.t;
  partition_epochs : Ctr.t;
  breaker_opens : Ctr.t;
  breaker_probes : Ctr.t;
  breaker_skips : Ctr.t;
  sheds : Ctr.t;
}

let rob_of_registry reg =
  let c name = Obs.Registry.counter reg name in
  {
    crashes = c "crashes";
    recoveries = c "recoveries";
    switch_down_epochs = c "switch_down_epochs";
    fetch_timeouts = c "fetch_timeouts";
    fetch_retries = c "fetch_retries";
    fetch_failures = c "fetch_failures";
    stale_epochs = c "stale_epochs";
    counters_lost = c "counters_lost";
    install_failures = c "install_failures";
    recovery_reinstalls = c "recovery_reinstalls";
    controller_crashes = c "controller_crashes";
    reconcile_removed = c "reconcile_removed";
    reconcile_installed = c "reconcile_installed";
    invariant_violations = c "invariant_violations";
    partitions = c "partitions";
    partition_epochs = c "partition_epochs";
    breaker_opens = c "breaker_opens";
    breaker_probes = c "breaker_probes";
    breaker_skips = c "breaker_skips";
    sheds = c "sheds";
  }

let set_robustness rob (v : Metrics.robustness) =
  Ctr.set rob.crashes v.Metrics.crashes;
  Ctr.set rob.recoveries v.Metrics.recoveries;
  Ctr.set rob.switch_down_epochs v.Metrics.switch_down_epochs;
  Ctr.set rob.fetch_timeouts v.Metrics.fetch_timeouts;
  Ctr.set rob.fetch_retries v.Metrics.fetch_retries;
  Ctr.set rob.fetch_failures v.Metrics.fetch_failures;
  Ctr.set rob.stale_epochs v.Metrics.stale_epochs;
  Ctr.set rob.counters_lost v.Metrics.counters_lost;
  Ctr.set rob.install_failures v.Metrics.install_failures;
  Ctr.set rob.recovery_reinstalls v.Metrics.recovery_reinstalls;
  Ctr.set rob.controller_crashes v.Metrics.controller_crashes;
  Ctr.set rob.reconcile_removed v.Metrics.reconcile_removed;
  Ctr.set rob.reconcile_installed v.Metrics.reconcile_installed;
  Ctr.set rob.invariant_violations v.Metrics.invariant_violations;
  Ctr.set rob.partitions v.Metrics.partitions;
  Ctr.set rob.partition_epochs v.Metrics.partition_epochs;
  Ctr.set rob.breaker_opens v.Metrics.breaker_opens;
  Ctr.set rob.breaker_probes v.Metrics.breaker_probes;
  Ctr.set rob.breaker_skips v.Metrics.breaker_skips;
  Ctr.set rob.sheds v.Metrics.sheds

type t = {
  config : Config.t;
  allocator : Allocator.t;
  switches : Switch.t array;
  planes : Data_plane.t array;
  faults : Fault_model.t option;
  tel : Obs.Telemetry.t option;
  registry : Obs.Registry.t; (* the bundle's, or a private one when [tel = None] *)
  clock : Obs.Clock.t;
  active : (int, runtime) Hashtbl.t;
  mutable epoch : int;
  mutable next_id : int;
  mutable records : Metrics.record list;
  mutable delays : delay_sample list; (* newest first *)
  rules_installed : Ctr.t;
  rules_fetched : Ctr.t;
  rob : rob;
  mutable recovered_now : Switch_id.Set.t; (* switches back up as of this tick *)
  mutable journal : Journal.sink option;
  mutable crash_pending : bool;
      (* the fault model declared a controller crash this epoch; the driver
         decides whether to fail over (see {!recover}) *)
  breakers : Breaker.t array;
      (* per-switch circuit breakers; empty unless [config.degraded] and
         [config.faults] are both set *)
  mutable storm_pending : int;
      (* extra submissions the fault model's admission storm asks the
         driver to inject; read via {!storm_tasks_pending}, reset each tick *)
  arena : Arena.t;
      (* per-tick numeric scratch (rule-sync budgets and the like): reset at
         the top of every tick, never reallocated once slots hit their
         high-water marks *)
}

let create ~config ~strategy ~num_switches ~capacity =
  if num_switches <= 0 then
    invalid_arg
      (Printf.sprintf "Controller.create: num_switches must be positive, got %d" num_switches);
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Controller.create: capacity must be positive, got %d" capacity);
  (* Same positive-form checks as Fault_model.validate: NaN fails every
     comparison, so [not (x > 0.0 && x <= 1.0)] rejects it where
     [x <= 0.0 || x > 1.0] would wave it through. *)
  (match config.Config.degraded with
  | Some d ->
    if not (d.Config.deadline_fraction > 0.0 && d.Config.deadline_fraction <= 1.0) then
      invalid_arg
        (Printf.sprintf "Controller.create: degraded.deadline_fraction must be in (0, 1], got %g"
           d.Config.deadline_fraction);
    if d.Config.shed_max_staleness < 1 then
      invalid_arg
        (Printf.sprintf "Controller.create: degraded.shed_max_staleness must be >= 1, got %d"
           d.Config.shed_max_staleness)
  | None -> ());
  (* The store backend is process-global: epoch data built by switches and
     generators must agree with the controller's choice, and a run is a
     pure function of (seed, backend). *)
  Aggregate.set_backend config.Config.store_backend;
  let switches = Switch.network ~num_switches ~capacity in
  let faults =
    Option.map (fun spec -> Fault_model.create spec ~num_switches) config.Config.faults
  in
  let planes = Array.map (fun sw -> Data_plane.create ?faults sw) switches in
  let capacities = Array.to_list (Array.map (fun sw -> (Switch.id sw, capacity)) switches) in
  let tel = config.Config.telemetry in
  (* Breakers exist only when both the fault layer and the degraded-mode
     policy are on; an empty array keeps every other path untouched. *)
  let breakers =
    match (config.Config.degraded, faults) with
    | Some d, Some _ -> Array.init num_switches (fun _ -> Breaker.create d.Config.breaker)
    | _ -> [||]
  in
  let registry =
    match tel with Some b -> Obs.Telemetry.registry b | None -> Obs.Registry.create ()
  in
  let clock = match tel with Some b -> Obs.Telemetry.clock b | None -> Obs.Clock.cpu in
  (* Self-describing trace: record the fault schedule the bundle ran under. *)
  (match (tel, config.Config.faults) with
  | Some b, Some spec ->
    Tr.event (Obs.Telemetry.trace b) ~epoch:0 ~name:"fault_spec"
      [ ("spec", Tr.Str (Format.asprintf "%a" Fault_model.pp_spec spec)) ]
  | _ -> ());
  {
    config;
    allocator = Allocator.create strategy ~capacities;
    switches;
    planes;
    faults;
    tel;
    registry;
    clock;
    active = Hashtbl.create 64;
    epoch = 0;
    next_id = 0;
    records = [];
    delays = [];
    rules_installed = Obs.Registry.counter registry "rules_installed";
    rules_fetched = Obs.Registry.counter registry "rules_fetched";
    rob = rob_of_registry registry;
    recovered_now = Switch_id.Set.empty;
    journal = None;
    crash_pending = false;
    breakers;
    storm_pending = 0;
    arena = Arena.create ();
  }

let epoch t = t.epoch

let num_switches t = Array.length t.switches

let switches t = t.switches

let allocator t = t.allocator

let faults t = t.faults

let telemetry t = t.tel

(* Emit a trace event iff a telemetry bundle is attached.  Tracing never
   touches simulation state, so runs with and without a bundle stay
   bit-identical. *)
let trace_event t ~name fields =
  match t.tel with
  | None -> ()
  | Some b -> Tr.event (Obs.Telemetry.trace b) ~epoch:t.epoch ~name fields

let robustness t =
  {
    Metrics.crashes = Ctr.value t.rob.crashes;
    recoveries = Ctr.value t.rob.recoveries;
    switch_down_epochs = Ctr.value t.rob.switch_down_epochs;
    fetch_timeouts = Ctr.value t.rob.fetch_timeouts;
    fetch_retries = Ctr.value t.rob.fetch_retries;
    fetch_failures = Ctr.value t.rob.fetch_failures;
    stale_epochs = Ctr.value t.rob.stale_epochs;
    counters_lost = Ctr.value t.rob.counters_lost;
    install_failures = Ctr.value t.rob.install_failures;
    recovery_reinstalls = Ctr.value t.rob.recovery_reinstalls;
    controller_crashes = Ctr.value t.rob.controller_crashes;
    reconcile_removed = Ctr.value t.rob.reconcile_removed;
    reconcile_installed = Ctr.value t.rob.reconcile_installed;
    invariant_violations = Ctr.value t.rob.invariant_violations;
    partitions = Ctr.value t.rob.partitions;
    partition_epochs = Ctr.value t.rob.partition_epochs;
    breaker_opens = Ctr.value t.rob.breaker_opens;
    breaker_probes = Ctr.value t.rob.breaker_probes;
    breaker_skips = Ctr.value t.rob.breaker_skips;
    sheds = Ctr.value t.rob.sheds;
  }

let active_tasks t = Hashtbl.length t.active

let active_task_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.active [])

let last_report t ~task_id =
  match Hashtbl.find_opt t.active task_id with Some r -> r.last_report | None -> None

let smoothed_accuracy t ~task_id =
  match Hashtbl.find_opt t.active task_id with
  | Some r -> Some (Task.smoothed_global r.task)
  | None -> None

let view_of_runtime r =
  {
    Task_view.id = Task.id r.task;
    switches = Task.switches r.task;
    bound = (Task.spec r.task).Task_spec.accuracy_bound;
    drop_priority = r.drop_priority;
    overall = (fun sw -> Task.overall_accuracy r.task sw);
    used = (fun sw -> Task.counters_used r.task sw);
  }

(* ---- write-ahead journal ---- *)

let set_journal t sink = t.journal <- sink

let journal t = t.journal

let journaling t = t.journal <> None

let jot t entry = match t.journal with None -> () | Some sink -> Journal.append sink entry

let controller_crash_pending t = t.crash_pending

let storm_tasks_pending t = t.storm_pending

let degraded_mode t = t.breakers <> [||]

let breaker_states t = Array.map Breaker.state t.breakers

let staleness_of t ~task_id =
  match Hashtbl.find_opt t.active task_id with Some r -> Some r.staleness | None -> None

let task_switches t ~task_id =
  match Hashtbl.find_opt t.active task_id with
  | Some r -> Some (Task.switches r.task)
  | None -> None

(* One definition of "the invariants hold right now", shared by the
   in-tick tally (config.check_invariants) and external oracles (the chaos
   harness), so they can never drift apart. *)
let check_invariants_now t =
  let tasks =
    List.sort
      (fun a b -> Int.compare (Task.id a) (Task.id b))
      (Hashtbl.fold (fun _ r acc -> r.task :: acc) t.active [])
  in
  (* "Up" for auditing means the controller could actually converge the
     switch this epoch: alive, reachable, not skipped by an open breaker.
     A partitioned or breaker-skipped switch holds deferred rule updates
     by design and is reconciled once it becomes reachable again, exactly
     like a down switch. *)
  let up sw =
    (not (Data_plane.down t.planes.(sw)))
    && (not (Data_plane.partitioned t.planes.(sw)))
    &&
    match t.breakers with
    | [||] -> true
    | breakers -> begin
      match Breaker.state breakers.(sw) with
      | Breaker.Closed -> true
      | Breaker.Open | Breaker.Half_open -> false
    end
  in
  Invariant.check_all ~allocator:t.allocator ~switches:t.switches ~up ~tasks

let staleness_levels t =
  Hashtbl.fold (fun _ r acc -> r.staleness :: acc) t.active [] |> List.sort compare

let max_staleness t = Hashtbl.fold (fun _ r acc -> max acc r.staleness) t.active 0

let submit t ~spec ~topology ~source ~duration =
  let id = t.next_id in
  t.next_id <- id + 1;
  let task =
    Task.create ~id ~spec ~topology ~accuracy_history:t.config.Config.accuracy_history
      ~accuracy_mode:t.config.Config.accuracy_mode ()
  in
  (* Default drop priority: most recently arrived tasks drop first; an
     explicit spec priority takes precedence. *)
  let drop_priority =
    if spec.Task_spec.drop_priority <> 0 then spec.Task_spec.drop_priority else id
  in
  let runtime =
    {
      task;
      source;
      ground_truth = Ground_truth.create spec;
      duration;
      arrived_at = t.epoch;
      drop_priority;
      active_epochs = 0;
      satisfied_epochs = 0;
      accuracy_sum = 0.0;
      poor_streak = 0;
      last_alloc_total = 0;
      last_report = None;
      fresh_rules = Switch_id.Map.empty;
      last_install_counts = Switch_id.Map.empty;
      stale_counters = Switch_id.Map.empty;
      staleness = 0;
    }
  in
  let view = view_of_runtime runtime in
  if Allocator.try_admit t.allocator view then begin
    (* Journal the admission outcome before the task takes effect.  The
       entry carries everything replay needs to re-apply it verbatim —
       including the traffic source serialized at this instant, which replay
       fast-forwards to the recovery epoch. *)
    if journaling t then begin
      let w = C.writer () in
      Source.emit w source;
      jot t
        (Journal.Admit
           {
             epoch = t.epoch;
             task_id = id;
             spec;
             topology;
             duration;
             drop_priority;
             accuracy_history = t.config.Config.accuracy_history;
             global_only = t.config.Config.accuracy_mode = Task.Global_only;
             source = C.contents w;
           })
    end;
    Hashtbl.replace t.active id runtime;
    Ctr.incr (Obs.Registry.counter t.registry "tasks_admitted");
    trace_event t ~name:"task_admit"
      [ ("task", Tr.Int id); ("kind", Tr.Str (Task_spec.kind_to_string spec.Task_spec.kind)) ];
    Log.info (fun m ->
        m "epoch %d: admitted task %d (%a, %d epochs)" t.epoch id Task_spec.pp spec duration);
    `Admitted id
  end
  else begin
    jot t (Journal.Reject { epoch = t.epoch; task_id = id; kind = spec.Task_spec.kind });
    t.records <-
      {
        Metrics.task_id = id;
        kind = spec.Task_spec.kind;
        outcome = Metrics.Rejected;
        arrived_at = t.epoch;
        ended_at = t.epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    Ctr.incr (Obs.Registry.counter t.registry "tasks_rejected");
    trace_event t ~name:"task_reject"
      [ ("task", Tr.Int id); ("kind", Tr.Str (Task_spec.kind_to_string spec.Task_spec.kind)) ];
    Log.info (fun m -> m "epoch %d: rejected task %d (%a)" t.epoch id Task_spec.pp spec);
    `Rejected
  end

let finish_record r ~outcome ~ended_at =
  let spec = Task.spec r.task in
  let active = r.active_epochs in
  {
    Metrics.task_id = Task.id r.task;
    kind = spec.Task_spec.kind;
    outcome;
    arrived_at = r.arrived_at;
    ended_at;
    active_epochs = active;
    satisfaction =
      (if active = 0 then 0.0 else float_of_int r.satisfied_epochs /. float_of_int active);
    mean_accuracy = (if active = 0 then 0.0 else r.accuracy_sum /. float_of_int active);
  }

let remove_task t r ~outcome =
  let id = Task.id r.task in
  Log.info (fun m ->
      m "epoch %d: task %d %s after %d active epochs" t.epoch id
        (match outcome with
        | Metrics.Completed -> "completed"
        | Metrics.Dropped -> "DROPPED"
        | Metrics.Rejected -> "rejected")
        r.active_epochs);
  let record = finish_record r ~outcome ~ended_at:t.epoch in
  (* Journal the end (with its final record fields) and the rule purge
     before either takes effect: if the controller dies in between, replay
     still retires the task and the audit removes its now-unowned rules. *)
  if journaling t then begin
    let cause =
      match outcome with
      | Metrics.Dropped -> Journal.Dropped
      | Metrics.Completed | Metrics.Rejected -> Journal.Completed
    in
    jot t
      (Journal.Task_end
         {
           epoch = t.epoch;
           task_id = id;
           kind = record.Metrics.kind;
           cause;
           arrived_at = record.Metrics.arrived_at;
           active_epochs = record.Metrics.active_epochs;
           satisfaction = record.Metrics.satisfaction;
           mean_accuracy = record.Metrics.mean_accuracy;
         });
    jot t (Journal.Purge { epoch = t.epoch; task_id = id })
  end;
  Allocator.release t.allocator ~task_id:id;
  Array.iter (fun sw -> ignore (Tcam.remove_owner (Switch.tcam sw) ~owner:id)) t.switches;
  Hashtbl.remove t.active id;
  t.records <- record :: t.records;
  let kind = Task_spec.kind_to_string record.Metrics.kind in
  match outcome with
  | Metrics.Dropped ->
    Ctr.incr (Obs.Registry.counter t.registry "tasks_dropped");
    trace_event t ~name:"task_drop"
      [ ("task", Tr.Int id); ("kind", Tr.Str kind);
        ("active_epochs", Tr.Int record.Metrics.active_epochs) ]
  | Metrics.Completed ->
    Ctr.incr (Obs.Registry.counter t.registry "tasks_completed");
    trace_event t ~name:"task_complete"
      [ ("task", Tr.Int id); ("kind", Tr.Str kind);
        ("satisfaction", Tr.Float record.Metrics.satisfaction) ]
  | Metrics.Rejected -> ()

let delay_costs t =
  match t.config.Config.control_delay with Some c -> c | None -> Delay_model.default

(* Fraction of the epoch a freshly installed rule missed while its update
   was in flight (Figs 8/9's prototype-vs-simulator gap). *)
let install_miss t r sw_id =
  match t.config.Config.control_delay with
  | None -> 0.0
  | Some costs ->
    let installs =
      match Switch_id.Map.find_opt sw_id r.last_install_counts with Some n -> n | None -> 0
    in
    Delay_model.install_miss_fraction costs ~epoch_ms:t.config.Config.epoch_ms ~installs
      ~switches:1

let degrade_fresh t r sw_id pairs =
  let miss = install_miss t r sw_id in
  let fresh =
    match Switch_id.Map.find_opt sw_id r.fresh_rules with
    | Some set -> set
    | None -> Prefix.Set.empty
  in
  List.map
    (fun (p, v) ->
      if miss > 0.0 && Prefix.Set.mem p fresh then (p, v *. (1.0 -. miss)) else (p, v))
    pairs

(* Counter fetch over a perfectly reliable control channel — the paper's
   assumption, and the behaviour when no fault spec is configured. *)
let read_counters_reliable t r =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let readings =
    Array.to_list t.switches
    |> List.filter_map (fun sw ->
           let sw_id = Switch.id sw in
           let rules = Tcam.rules_of (Switch.tcam sw) ~owner:id in
           if rules = [] then None
           else begin
             let aggregate = Epoch_data.switch_view data sw_id in
             let pairs = Tcam.read (Switch.tcam sw) ~owner:id aggregate in
             Some (sw_id, degrade_fresh t r sw_id pairs)
           end)
  in
  (data, readings)

(* ---- circuit breakers (degraded mode only; [t.breakers] is empty
   otherwise and every breaker hook below is a no-op) ---- *)

let breaker_for t sw_id = if t.breakers = [||] then None else Some t.breakers.(sw_id)

let record_breaker_failure t sw_id br =
  let was_open = match Breaker.state br with Breaker.Open -> true | _ -> false in
  Breaker.record_failure br;
  match Breaker.state br with
  | Breaker.Open when not was_open ->
    Ctr.incr t.rob.breaker_opens;
    trace_event t ~name:"breaker_open" [ ("switch", Tr.Int sw_id) ];
    Log.info (fun m -> m "epoch %d: breaker OPEN for switch %d" t.epoch sw_id)
  | _ -> ()

let record_breaker_success t sw_id br =
  let was_half_open = match Breaker.state br with Breaker.Half_open -> true | _ -> false in
  Breaker.record_success br;
  if was_half_open then begin
    trace_event t ~name:"breaker_close" [ ("switch", Tr.Int sw_id) ];
    Log.info (fun m -> m "epoch %d: breaker closed for switch %d (probe ok)" t.epoch sw_id)
  end

(* Modelled cost the deadline scheduler expects this task's fetch round to
   incur: one batch per switch holding its rules, inflated by straggler
   latency.  Partitioned switches cost their (failed) probe round trip;
   open-breaker switches cost nothing — they are skipped outright. *)
let estimate_fetch_cost t r =
  let id = Task.id r.task in
  let costs = delay_costs t in
  Array.fold_left
    (fun acc dp ->
      let sw_id = Data_plane.id dp in
      if Data_plane.down dp then acc
      else begin
        match breaker_for t sw_id with
        | Some br when not (Breaker.allow br) -> acc
        | _ -> begin
          match Data_plane.rules_of dp ~owner:id with
          | [] -> acc
          | rules ->
            let factor = Data_plane.latency_factor dp in
            if Data_plane.partitioned dp then acc +. (costs.Delay_model.rtt_ms *. factor)
            else
              acc
              +. ((costs.Delay_model.fetch_per_rule_ms *. float_of_int (List.length rules)
                  +. costs.Delay_model.rtt_ms)
                 *. factor)
        end
      end)
    0.0 t.planes

(* Fault-aware fetch: timed-out batches are retried with exponential
   backoff while the epoch's retry budget (and, in degraded mode, the
   epoch deadline) lasts; a down, unreachable or breaker-skipped switch,
   or a fetch abandoned after retries, falls back to the previous epoch's
   readings.  [shed] short-circuits the whole round onto stale counters —
   the deadline scheduler's decision, taken before any wire cost is paid.
   Returns the switches the task could not hear from, so the caller can
   decay the task's estimated accuracy after this epoch's estimate. *)
let read_counters_faulty t r ~retry_budget ~fault_ms ~deadline ~shed =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let costs = delay_costs t in
  let task_switches = Task.switches r.task in
  let readings = ref [] in
  let degraded = ref [] in
  let use_stale sw_id =
    match Switch_id.Map.find_opt sw_id r.stale_counters with
    | Some ((_ :: _) as pairs) ->
      readings := (sw_id, pairs) :: !readings;
      Ctr.incr t.rob.stale_epochs
    | Some [] | None -> ()
  in
  if shed then
    (* Traffic still flowed (the source draw above); the task just reports
       from whatever it last heard. *)
    Switch_id.Set.iter
      (fun sw_id ->
        use_stale sw_id;
        degraded := sw_id :: !degraded)
      task_switches
  else
    Array.iter
      (fun dp ->
        let sw_id = Data_plane.id dp in
        if Data_plane.down dp then begin
          if Switch_id.Set.mem sw_id task_switches then begin
            use_stale sw_id;
            degraded := sw_id :: !degraded
          end
        end
        else begin
          let rules = Data_plane.rules_of dp ~owner:id in
          if rules <> [] then begin
            match breaker_for t sw_id with
            | Some br when not (Breaker.allow br) ->
              Ctr.incr t.rob.breaker_skips;
              use_stale sw_id;
              degraded := sw_id :: !degraded
            | br_opt ->
              let aggregate = Epoch_data.switch_view data sw_id in
              let factor = Data_plane.latency_factor dp in
              let base =
                (costs.Delay_model.fetch_per_rule_ms *. float_of_int (List.length rules))
                +. costs.Delay_model.rtt_ms
              in
              (* The aggregate TCAM stats already price [base] per issued
                 batch; stragglers owe the inflation on top, and the epoch
                 deadline owes the whole inflated batch. *)
              let charge_batch () =
                fault_ms := !fault_ms +. (base *. (factor -. 1.0));
                deadline := !deadline -. (base *. factor)
              in
              let rec attempt k =
                match Data_plane.read dp ~owner:id aggregate with
                | Ok pairs ->
                  charge_batch ();
                  `Fetched pairs
                | Error `Down -> `Gone
                | Error `Unreachable ->
                  (* No route: nothing was priced in the TCAM stats, but
                     the probe still costs the control loop a round trip. *)
                  let probe = costs.Delay_model.rtt_ms *. factor in
                  fault_ms := !fault_ms +. probe;
                  deadline := !deadline -. probe;
                  `Unreachable
                | Error `Timeout ->
                  charge_batch ();
                  Ctr.incr t.rob.fetch_timeouts;
                  let backoff = costs.Delay_model.rtt_ms *. (2.0 ** float_of_int k) in
                  if !retry_budget >= backoff && !deadline >= backoff then begin
                    retry_budget := !retry_budget -. backoff;
                    fault_ms := !fault_ms +. backoff;
                    deadline := !deadline -. backoff;
                    Ctr.incr t.rob.fetch_retries;
                    attempt (k + 1)
                  end
                  else begin
                    Ctr.incr t.rob.fetch_failures;
                    `Abandoned
                  end
              in
              (match attempt 0 with
              | `Fetched pairs ->
                (match br_opt with Some br -> record_breaker_success t sw_id br | None -> ());
                let lost = List.length rules - List.length pairs in
                if lost > 0 then Ctr.add t.rob.counters_lost lost;
                let pairs = degrade_fresh t r sw_id pairs in
                r.stale_counters <- Switch_id.Map.add sw_id pairs r.stale_counters;
                readings := (sw_id, pairs) :: !readings
              | `Gone ->
                use_stale sw_id;
                degraded := sw_id :: !degraded
              | `Unreachable | `Abandoned ->
                (match br_opt with Some br -> record_breaker_failure t sw_id br | None -> ());
                use_stale sw_id;
                degraded := sw_id :: !degraded)
          end
        end)
      t.planes;
  (data, List.rev !readings, List.rev !degraded)

let read_counters t r ~retry_budget ~fault_ms ~deadline ~shed =
  match t.faults with
  | None ->
    let data, readings = read_counters_reliable t r in
    (data, readings, [])
  | Some _ -> read_counters_faulty t r ~retry_budget ~fault_ms ~deadline ~shed

(* Advance the fault model one epoch: crashed switches lose their TCAM
   contents before anything is fetched; recovered switches are remembered
   so this tick's rule sync can reinstall (and attribute) their rules. *)
let advance_faults t =
  t.crash_pending <- false;
  t.storm_pending <- 0;
  match t.faults with
  | None -> ()
  | Some fm ->
    let events = Fault_model.begin_epoch fm in
    List.iter
      (fun sw_id ->
        jot t (Journal.Switch_down { epoch = t.epoch; switch = sw_id });
        Data_plane.crash t.planes.(sw_id);
        Ctr.incr t.rob.crashes;
        trace_event t ~name:"switch_crash" [ ("switch", Tr.Int sw_id) ];
        Log.info (fun m -> m "epoch %d: switch %d CRASHED (TCAM lost)" t.epoch sw_id))
      events.Fault_model.crashed;
    List.iter
      (fun sw_id ->
        jot t (Journal.Switch_up { epoch = t.epoch; switch = sw_id });
        trace_event t ~name:"switch_recover" [ ("switch", Tr.Int sw_id) ];
        Log.info (fun m -> m "epoch %d: switch %d recovered" t.epoch sw_id))
      events.Fault_model.recovered;
    t.recovered_now <- Switch_id.set_of_list events.Fault_model.recovered;
    Ctr.add t.rob.recoveries (List.length events.Fault_model.recovered);
    Ctr.add t.rob.switch_down_epochs (Fault_model.down_count fm);
    if events.Fault_model.controller_crashed then begin
      t.crash_pending <- true;
      trace_event t ~name:"controller_crash_scheduled" [];
      Log.info (fun m -> m "epoch %d: CONTROLLER crash scheduled" t.epoch)
    end;
    (* Sustained adversity: partition windows, admission storms, breakers. *)
    List.iter
      (fun g ->
        trace_event t ~name:"partition" [ ("group", Tr.Int g) ];
        Log.info (fun m -> m "epoch %d: switch group %d PARTITIONED" t.epoch g))
      events.Fault_model.partitioned;
    List.iter
      (fun g ->
        trace_event t ~name:"partition_heal" [ ("group", Tr.Int g) ];
        (* A heal is a strong recovery signal: open breakers in the group
           forfeit their cooldown and probe at this epoch's boundary
           instead of blindly waiting it out. *)
        Array.iteri
          (fun sw br -> if Fault_model.group_of fm sw = g then Breaker.hint_probe br)
          t.breakers;
        Log.info (fun m -> m "epoch %d: switch group %d partition healed" t.epoch g))
      events.Fault_model.healed;
    Ctr.add t.rob.partitions (List.length events.Fault_model.partitioned);
    Ctr.add t.rob.partition_epochs (Fault_model.partitioned_count fm);
    if events.Fault_model.storm_tasks > 0 then begin
      t.storm_pending <- events.Fault_model.storm_tasks;
      trace_event t ~name:"admission_storm" [ ("tasks", Tr.Int events.Fault_model.storm_tasks) ]
    end;
    Array.iteri
      (fun sw br ->
        let was_open = match Breaker.state br with Breaker.Open -> true | _ -> false in
        Breaker.begin_epoch br;
        (match (was_open, Breaker.state br) with
        | true, Breaker.Half_open ->
          Ctr.incr t.rob.breaker_probes;
          trace_event t ~name:"breaker_probe" [ ("switch", Tr.Int sw) ]
        | _ -> ());
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge t.registry
             ~labels:[ ("switch", string_of_int sw) ]
             "breaker_state")
          (float_of_int (Breaker.state_code (Breaker.state br))))
      t.breakers

(* Quarantine: a down switch contributes nothing, so divide-and-merge must
   reconfigure the task's counters onto the healthy switches.  Zeroing the
   allocation is exactly that signal — {!Task.configure} deactivates the
   switch and merges its counters away. *)
let quarantine_allocations t allocations =
  match t.faults with
  | None -> allocations
  | Some fm ->
    Switch_id.Map.mapi (fun sw v -> if Fault_model.is_down fm sw then 0 else v) allocations

let[@hot] tick t =
  let config = t.config in
  let now () = Obs.Clock.now_ms t.clock in
  let tick_t0 = now () in
  let tracing = t.tel <> None in
  (* GC profiling is strictly opt-in: with no profile attached [gc_now]
     never touches the runtime (it returns the zero reading), so a
     profiling-off run performs no GC read and stays byte-identical. *)
  let profile = match t.tel with Some tel -> Obs.Telemetry.profile tel | None -> None in
  let gc_now () =
    match profile with Some p -> Obs.Profile.reading p | None -> Obs.Gc_stats.zero
  in
  let tick_gc0 = gc_now () in
  Arena.reset t.arena;
  advance_faults t;
  let runtimes =
    List.sort runtime_order (Hashtbl.fold cons_runtime t.active [])
  in
  (* Reset per-epoch switch stats so the delay model prices this epoch. *)
  Array.iter (fun sw -> Tcam.reset_stats (Switch.tcam sw)) t.switches;
  (* Fetch + report + estimate, per task. *)
  let report_clock = ref 0.0 in
  let report_gc = ref Obs.Gc_stats.zero in
  let retry_budget =
    ref
      (match t.faults with
      | Some fm -> (Fault_model.spec fm).Fault_model.retry_budget_fraction *. config.Config.epoch_ms
      | None -> 0.0)
  in
  let fault_ms = ref 0.0 in
  let task_scores = ref [] in
  (* (id, kind, scored, satisfied) per task, for tasks.csv; tracing only *)
  let dcfg = if t.breakers = [||] then None else t.config.Config.degraded in
  let deadline =
    ref
      (match dcfg with
      | Some d -> d.Config.deadline_fraction *. config.Config.epoch_ms
      | None -> infinity)
  in
  (* Staleness-urgency order: the longest-starved tasks fetch first, so
     when the deadline budget runs out it is the freshest tasks that shed.
     With all-zero staleness the stable sort leaves task-id order intact —
     the zero-adversity zero-diff guarantee. *)
  let fetch_order =
    match dcfg with
    | None -> runtimes
    | Some _ ->
      List.stable_sort
        (fun a b ->
          match Int.compare b.staleness a.staleness with
          | 0 -> Int.compare (Task.id a.task) (Task.id b.task)
          | c -> c)
        runtimes
  in
  List.iter
    (fun r ->
      (* Shed before paying any wire cost: if the task's expected fetch
         round does not fit the remaining deadline budget, serve it stale —
         unless bounded staleness forces the fetch through regardless. *)
      let shed =
        match dcfg with
        | Some d when r.staleness < d.Config.shed_max_staleness ->
          let est = estimate_fetch_cost t r in
          est > 0.0 && est > !deadline
        | _ -> false
      in
      if shed then begin
        Ctr.incr t.rob.sheds;
        trace_event t ~name:"shed"
          [ ("task", Tr.Int (Task.id r.task)); ("staleness", Tr.Int r.staleness) ]
      end;
      let data, readings, degraded = read_counters t r ~retry_budget ~fault_ms ~deadline ~shed in
      Task.ingest_counters r.task readings;
      let t0 = now () in
      let gc0 = gc_now () in
      let report = Task.make_report r.task ~epoch:t.epoch in
      r.last_report <- Some report;
      let estimate = Task.estimate_accuracy r.task in
      report_clock := !report_clock +. (now () -. t0);
      report_gc := Obs.Gc_stats.add !report_gc (Obs.Gc_stats.sub (gc_now ()) gc0);
      (* Degraded visibility: the estimators only saw stale (or no)
         counters for these switches, so the estimate is optimistic — decay
         the smoothed accuracies the allocator reads. *)
      (match t.faults with
      | Some fm when degraded <> [] ->
        (* Bounded staleness caps the assumed uncertainty: under sustained
           adversity (a partition that never heals) an unbounded decay
           drives estimates to zero and the allocator into mass drops.  In
           degraded mode the decay stops once the task has been stale for
           [shed_max_staleness] epochs — the estimate is already discounted
           by [stale_decay^bound] and holds there. *)
        let apply =
          match dcfg with
          | Some d -> r.staleness < d.Config.shed_max_staleness
          | None -> true
        in
        if apply then begin
          let factor = (Fault_model.spec fm).Fault_model.stale_decay in
          List.iter (fun sw -> Task.decay_accuracy r.task ~switch:sw ~factor ()) degraded
        end
      | Some _ | None -> ());
      (* Bounded-staleness bookkeeping: one level per consecutive epoch
         with any stale or missing switch; a fully fresh round resets.
         Feeds the staleness-urgency sort and the accuracy-decay fallback
         above, and the task_staleness histogram exporters read. *)
      (match dcfg with
      | Some _ ->
        r.staleness <- (if degraded = [] then 0 else r.staleness + 1);
        Obs.Registry.Histogram.observe
          (Obs.Registry.histogram t.registry "task_staleness")
          (float_of_int r.staleness)
      | None -> ());
      let truth = Ground_truth.evaluate r.ground_truth data report in
      let spec = Task.spec r.task in
      let scored =
        match config.Config.score_satisfaction_with with
        | `Real_accuracy -> truth.Ground_truth.real_accuracy
        | `Estimated_accuracy -> estimate.Dream_tasks.Accuracy.global
      in
      r.active_epochs <- r.active_epochs + 1;
      r.accuracy_sum <- r.accuracy_sum +. scored;
      let satisfied = scored >= spec.Task_spec.accuracy_bound in
      if satisfied then r.satisfied_epochs <- r.satisfied_epochs + 1;
      if tracing then
        task_scores :=
          (Task.id r.task, Task_spec.kind_to_string spec.Task_spec.kind, scored, satisfied)
          :: !task_scores)
    fetch_order;
  (* Allocation epoch: redistribute and decide drops. *)
  let allocate_clock = ref 0.0 in
  let allocate_gc = ref Obs.Gc_stats.zero in
  if t.epoch mod config.Config.allocation_interval = 0 then begin
    (* Snapshot allocations before the round so tracing can price churn;
       taken outside the timed region. *)
    let alloc_before =
      if not tracing then []
      else
        List.map
          (fun r ->
            let id = Task.id r.task in
            (id, Allocator.allocation_of t.allocator ~task_id:id))
          runtimes
    in
    let t0 = now () in
    let gc0 = gc_now () in
    let views = List.map view_of_runtime runtimes in
    Allocator.reallocate t.allocator views;
    allocate_clock := now () -. t0;
    allocate_gc := Obs.Gc_stats.sub (gc_now ()) gc0;
    if tracing then begin
      let changes =
        List.fold_left
          (fun acc (id, old_map) ->
            let new_map = Allocator.allocation_of t.allocator ~task_id:id in
            let grown_or_moved =
              Switch_id.Map.fold
                (fun sw v acc ->
                  let old_v =
                    match Switch_id.Map.find_opt sw old_map with Some v -> v | None -> 0
                  in
                  if old_v <> v then acc + 1 else acc)
                new_map 0
            in
            let vacated =
              Switch_id.Map.fold
                (fun sw v acc ->
                  if v <> 0 && not (Switch_id.Map.mem sw new_map) then acc + 1 else acc)
                old_map 0
            in
            acc + grown_or_moved + vacated)
          0 alloc_before
      in
      if changes > 0 then begin
        Ctr.add (Obs.Registry.counter t.registry "allocation_changes") changes;
        trace_event t ~name:"reallocate" [ ("changes", Tr.Int changes) ]
      end
    end;
    (* Journal the round's outcome — every task's full allocation map, not
       just deltas, so replay restores the allocator by forcing values
       rather than re-running the (state-dependent) adaptation logic. *)
    if journaling t then
      List.iter
        (fun r ->
          let id = Task.id r.task in
          Switch_id.Map.iter
            (fun switch alloc -> jot t (Journal.Alloc { epoch = t.epoch; task_id = id; switch; alloc }))
            (Allocator.allocation_of t.allocator ~task_id:id))
        runtimes;
    if Allocator.supports_drop t.allocator then begin
      (* Track poor streaks and pick at most one drop victim per round:
         the poorest-priority task that stayed poor through the drop
         threshold while one of its switches was congested. *)
      let candidates =
        List.filter_map
          (fun r ->
            let spec = Task.spec r.task in
            let poor = Task.smoothed_global r.task < spec.Task_spec.accuracy_bound in
            let alloc_total =
              Switch_id.Map.fold
                (fun _ v acc -> acc + v)
                (Allocator.allocation_of t.allocator ~task_id:(Task.id r.task))
                0
            in
            (* A task still gaining resources is converging, not starved:
               only a poor task whose allocation has stopped growing
               accumulates a streak (paper: dropped tasks are those that
               "get fewer and fewer resources ... and remain poor"). *)
            let growing = alloc_total > r.last_alloc_total in
            r.last_alloc_total <- alloc_total;
            if poor && not growing then r.poor_streak <- r.poor_streak + 1
            else r.poor_streak <- 0;
            let congested_somewhere =
              Switch_id.Set.exists
                (fun sw -> Allocator.congested t.allocator sw)
                (Task.switches r.task)
            in
            if r.poor_streak >= config.Config.drop_threshold && congested_somewhere then Some r
            else None)
          runtimes
      in
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some best -> if r.drop_priority > best.drop_priority then Some r else acc)
          None candidates
      in
      match victim with
      | Some r -> remove_task t r ~outcome:Metrics.Dropped
      | None -> ()
    end
  end;
  (* Reconfigure counters, then sync rules incrementally in two passes:
     all removals across tasks first, then installs — so one task's growth
     never transiently collides with space another task is vacating. *)
  let configure_clock = ref 0.0 in
  let configure_gc = ref Obs.Gc_stats.zero in
  let survivors = List.filter (fun r -> Hashtbl.mem t.active (Task.id r.task)) runtimes in
  let desired_of =
    List.map
      (fun r ->
        let id = Task.id r.task in
        let allocations = Allocator.allocation_of t.allocator ~task_id:id in
        let allocations = quarantine_allocations t allocations in
        let t0 = now () in
        let gc0 = gc_now () in
        Task.configure r.task ~allocations;
        configure_clock := !configure_clock +. (now () -. t0);
        configure_gc := Obs.Gc_stats.add !configure_gc (Obs.Gc_stats.sub (gc_now ()) gc0);
        let per_switch =
          Array.map
            (fun sw -> Prefix.Set.of_list (Task.desired_rules r.task (Switch.id sw)))
            t.switches
        in
        (r, per_switch))
      survivors
  in
  (* Per-switch rule-update budgets: a software switch applies everything,
     a hardware switch only [install_budget] updates per epoch (deferred
     ones are retried next epoch and the affected counters read nothing
     meanwhile — the cost that made the paper abandon hardware switches). *)
  let budgets = Arena.ints t.arena ~slot:0 ~len:(Array.length t.switches) in
  let initial_budget = match config.Config.install_budget with Some b -> b | None -> max_int in
  for i = 0 to Array.length t.switches - 1 do
    budgets.{i} <- initial_budget
  done;
  (* Pass 1: removals. *)
  let removals_by_task = Hashtbl.create 16 in
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      let removed = ref 0 in
      Array.iteri
        (fun i dp ->
          List.iter
            (fun p ->
              if (not (Prefix.Set.mem p per_switch.(i))) && budgets.{i} > 0 then begin
                jot t
                  (Journal.Delete { epoch = t.epoch; task_id = id; switch = Data_plane.id dp; prefix = p });
                match Data_plane.remove dp ~owner:id p with
                | Ok _ ->
                  budgets.{i} <- budgets.{i} - 1;
                  incr removed
                | Error (`Down | `Unreachable) -> ()
              end)
            (Data_plane.rules_of dp ~owner:id))
        t.planes;
      if tracing && !removed > 0 then Hashtbl.replace removals_by_task id !removed)
    desired_of;
  (* Pass 2: installs, newest rules skipped once a switch's budget runs
     out or its table is full.  Installs onto a switch that recovered this
     epoch are the full rule-set reinstall its crash demands. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      let fresh = ref Switch_id.Map.empty in
      let installs = ref Switch_id.Map.empty in
      Array.iteri
        (fun i dp ->
          let sw_id = Data_plane.id dp in
          let installed = Prefix.Set.of_list (Data_plane.rules_of dp ~owner:id) in
          let added = ref Prefix.Set.empty in
          Prefix.Set.iter
            (fun p ->
              if (not (Prefix.Set.mem p installed)) && budgets.{i} > 0 then begin
                jot t (Journal.Install { epoch = t.epoch; task_id = id; switch = sw_id; prefix = p });
                match Data_plane.install dp ~owner:id p with
                | Ok () ->
                  budgets.{i} <- budgets.{i} - 1;
                  added := Prefix.Set.add p !added;
                  if Switch_id.Set.mem sw_id t.recovered_now then
                    Ctr.incr t.rob.recovery_reinstalls
                | Error `Failed ->
                  (* The attempt consumed an update slot; the rule stays
                     desired and is retried next epoch. *)
                  budgets.{i} <- budgets.{i} - 1;
                  Ctr.incr t.rob.install_failures
                | Error (`Capacity | `Duplicate | `Down | `Unreachable) -> ()
              end)
            per_switch.(i);
          if not (Prefix.Set.is_empty !added) then begin
            fresh := Switch_id.Map.add sw_id !added !fresh;
            installs := Switch_id.Map.add sw_id (Prefix.Set.cardinal !added) !installs
          end)
        t.planes;
      r.fresh_rules <- !fresh;
      r.last_install_counts <- !installs;
      if tracing then begin
        let installed = Switch_id.Map.fold (fun _ n acc -> acc + n) !installs 0 in
        let removed =
          match Hashtbl.find_opt removals_by_task id with Some n -> n | None -> 0
        in
        (* Rule churn is divide-and-merge made visible: installs are
           drill-downs (or reinstalls), removals are merges and retreats. *)
        if installed + removed > 0 then
          trace_event t ~name:"rule_sync"
            [ ("task", Tr.Int id); ("installs", Tr.Int installed); ("removals", Tr.Int removed) ]
      end)
    desired_of;
  (* Price the epoch's switch interactions for Fig 17. *)
  let fetch_total, install_total, remove_total, touched =
    Array.fold_left
      (fun (f, i, rm, sw_count) sw ->
        let stats = Tcam.stats (Switch.tcam sw) in
        let touched = if stats.Tcam.fetches > 0 || stats.Tcam.installs > 0 then 1 else 0 in
        (f + stats.Tcam.fetches, i + stats.Tcam.installs, rm + stats.Tcam.removals, sw_count + touched))
      (0, 0, 0, 0) t.switches
  in
  let costs = delay_costs t in
  let sample =
    {
      epoch = t.epoch;
      fetch_ms = Delay_model.fetch_ms costs ~rules:fetch_total ~switches:touched +. !fault_ms;
      save_ms = Delay_model.save_ms costs ~installs:install_total ~removals:remove_total ~switches:touched;
      report_ms = !report_clock;
      allocate_ms = !allocate_clock;
      configure_ms = !configure_clock;
    }
  in
  t.delays <- sample :: t.delays;
  Ctr.add t.rules_installed install_total;
  Ctr.add t.rules_fetched fetch_total;
  t.recovered_now <- Switch_id.Set.empty;
  let tail_t0 = now () in
  (* Retire tasks that reached their duration. *)
  List.iter
    (fun r ->
      if Hashtbl.mem t.active (Task.id r.task) && r.active_epochs >= r.duration then
        remove_task t r ~outcome:Metrics.Completed)
    survivors;
  if config.Config.check_invariants then begin
    let violations = check_invariants_now t in
    Ctr.add t.rob.invariant_violations (List.length violations);
    if violations <> [] then
      trace_event t ~name:"invariant_violation" [ ("count", Tr.Int (List.length violations)) ];
    List.iter
      (fun v ->
        Log.warn (fun m -> m "epoch %d: invariant violated — %s" t.epoch (Invariant.to_string v)))
      violations
  end;
  (match t.tel with
  | None -> ()
  | Some tel ->
    let tr = Obs.Telemetry.trace tel in
    let epoch = t.epoch in
    (* Phase spans: fetch and the configure tail are modelled switch time,
       estimate/allocate/configure bodies are measured controller time, and
       report is the record-keeping tail just timed above. *)
    let report_ms = now () -. tail_t0 in
    let phases =
      [ ("fetch", sample.fetch_ms); ("estimate", sample.report_ms);
        ("allocate", sample.allocate_ms); ("configure", sample.configure_ms +. sample.save_ms);
        ("report", report_ms); ("epoch", now () -. tick_t0) ]
    in
    List.iter
      (fun (phase, ms) ->
        Tr.span tr ~epoch ~phase ~ms;
        Obs.Registry.Histogram.observe
          (Obs.Registry.histogram t.registry ~labels:[ ("phase", phase) ] "phase_ms")
          ms)
      phases;
    (* Profile spans mirror the measured (not modelled) phases: estimate,
       allocate and configure bodies carry the GC deltas read around their
       timed regions; the epoch span carries the whole tick.  fetch/save
       are modelled switch time — no controller cost to attribute. *)
    (match profile with
    | None -> ()
    | Some p ->
      let epoch_wall = now () -. tick_t0 in
      let epoch_gc = Obs.Gc_stats.sub (gc_now ()) tick_gc0 in
      Obs.Profile.record p ~path:"epoch" ~wall_ms:epoch_wall ~gc:epoch_gc;
      Obs.Profile.record p ~path:"epoch/estimate" ~wall_ms:sample.report_ms ~gc:!report_gc;
      Obs.Profile.record p ~path:"epoch/allocate" ~wall_ms:sample.allocate_ms ~gc:!allocate_gc;
      Obs.Profile.record p ~path:"epoch/configure" ~wall_ms:sample.configure_ms
        ~gc:!configure_gc;
      Obs.Profile.observe_epoch p t.registry ~wall_ms:epoch_wall ~gc:epoch_gc);
    (* Mirror the store's process-global build counters into the registry,
       then zero them so the next tick's delta is self-contained.  Pure
       observability: the counters never feed back into simulation state,
       so runs with and without telemetry stay byte-identical. *)
    let store_stats = Aggregate.stats () in
    Ctr.add
      (Obs.Registry.counter t.registry "aggregate_sorted_fast_path")
      store_stats.Aggregate.sorted_fast_path;
    Ctr.add
      (Obs.Registry.counter t.registry "aggregate_sort_fallbacks")
      store_stats.Aggregate.sort_fallbacks;
    Ctr.add (Obs.Registry.counter t.registry "aggregate_flat_builds") store_stats.Aggregate.flat_builds;
    Ctr.add
      (Obs.Registry.counter t.registry "aggregate_reference_builds")
      store_stats.Aggregate.reference_builds;
    Ctr.add (Obs.Registry.counter t.registry "aggregate_flat_merges") store_stats.Aggregate.flat_merges;
    Aggregate.reset_stats ();
    List.iter
      (fun (id, kind, accuracy, satisfied) ->
        let alloc =
          Switch_id.Map.fold
            (fun _ v acc -> acc + v)
            (Allocator.allocation_of t.allocator ~task_id:id)
            0
        in
        Obs.Telemetry.record_task tel
          { Obs.Telemetry.epoch; task = id; kind; accuracy; satisfied; alloc })
      (* task-id order regardless of the fetch schedule, so tasks.csv rows
         are stable across degraded-mode reorderings *)
      (List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) !task_scores);
    Array.iter
      (fun sw ->
        let stats = Tcam.stats (Switch.tcam sw) in
        Obs.Telemetry.record_switch tel
          {
            Obs.Telemetry.epoch;
            switch = Switch.id sw;
            rules = Tcam.used (Switch.tcam sw);
            fetches = stats.Tcam.fetches;
            installs = stats.Tcam.installs;
            removals = stats.Tcam.removals;
          })
      t.switches);
  t.epoch <- t.epoch + 1

let run t ~epochs =
  for _ = 1 to epochs do
    tick t
  done

let finalize t =
  let runtimes = Hashtbl.fold (fun _ r acc -> r :: acc) t.active [] in
  List.iter (fun r -> remove_task t r ~outcome:Metrics.Completed) runtimes

let records t = List.rev t.records

let summary t = Metrics.summarize ~robustness:(robustness t) (records t)

let delay_samples t = List.rev t.delays

let total_rules_installed t = Ctr.value t.rules_installed

let total_rules_fetched t = Ctr.value t.rules_fetched

(* ---- checkpoints ---- *)

let snapshot_magic = "dream-checkpoint v3"

let emit_config w (config : Config.t) =
  C.section w "config";
  C.int w "allocation_interval" config.Config.allocation_interval;
  C.int w "drop_threshold" config.Config.drop_threshold;
  C.float w "accuracy_history" config.Config.accuracy_history;
  C.float w "epoch_ms" config.Config.epoch_ms;
  C.bool w "has_control_delay" (config.Config.control_delay <> None);
  (match config.Config.control_delay with
  | Some c ->
    C.float w "fetch_per_rule_ms" c.Delay_model.fetch_per_rule_ms;
    C.float w "save_per_rule_ms" c.Delay_model.save_per_rule_ms;
    C.float w "delete_per_rule_ms" c.Delay_model.delete_per_rule_ms;
    C.float w "rtt_ms" c.Delay_model.rtt_ms
  | None -> ());
  C.bool w "score_real" (config.Config.score_satisfaction_with = `Real_accuracy);
  C.bool w "accuracy_overall" (config.Config.accuracy_mode = Task.Overall);
  C.bool w "has_install_budget" (config.Config.install_budget <> None);
  (match config.Config.install_budget with Some b -> C.int w "install_budget" b | None -> ());
  C.bool w "check_invariants" config.Config.check_invariants;
  C.bool w "store_flat"
    (match config.Config.store_backend with Aggregate.Flat -> true | Aggregate.Reference -> false);
  C.bool w "has_degraded" (config.Config.degraded <> None);
  match config.Config.degraded with
  | Some d ->
    C.int w "breaker_threshold" d.Config.breaker.Breaker.failure_threshold;
    C.int w "breaker_cooldown" d.Config.breaker.Breaker.cooldown_epochs;
    C.float w "deadline_fraction" d.Config.deadline_fraction;
    C.int w "shed_max_staleness" d.Config.shed_max_staleness
  | None -> ()

(* The fault spec is not part of this section: the live fault model (RNG
   streams and all) is serialized separately, and the restored config gets
   its spec from there. *)
let parse_config r : Config.t =
  C.expect_section r "config";
  let allocation_interval = C.int_field r "allocation_interval" in
  let drop_threshold = C.int_field r "drop_threshold" in
  let accuracy_history = C.float_field r "accuracy_history" in
  let epoch_ms = C.float_field r "epoch_ms" in
  let control_delay =
    if C.bool_field r "has_control_delay" then begin
      let fetch_per_rule_ms = C.float_field r "fetch_per_rule_ms" in
      let save_per_rule_ms = C.float_field r "save_per_rule_ms" in
      let delete_per_rule_ms = C.float_field r "delete_per_rule_ms" in
      let rtt_ms = C.float_field r "rtt_ms" in
      Some { Delay_model.fetch_per_rule_ms; save_per_rule_ms; delete_per_rule_ms; rtt_ms }
    end
    else None
  in
  let score_satisfaction_with =
    if C.bool_field r "score_real" then `Real_accuracy else `Estimated_accuracy
  in
  let accuracy_mode = if C.bool_field r "accuracy_overall" then Task.Overall else Task.Global_only in
  let install_budget =
    if C.bool_field r "has_install_budget" then Some (C.int_field r "install_budget") else None
  in
  let check_invariants = C.bool_field r "check_invariants" in
  let store_backend =
    if C.bool_field r "store_flat" then Aggregate.Flat else Aggregate.Reference
  in
  let degraded =
    if C.bool_field r "has_degraded" then begin
      let failure_threshold = C.int_field r "breaker_threshold" in
      let cooldown_epochs = C.int_field r "breaker_cooldown" in
      let deadline_fraction = C.float_field r "deadline_fraction" in
      let shed_max_staleness = C.int_field r "shed_max_staleness" in
      Some
        {
          Config.breaker = { Breaker.failure_threshold; cooldown_epochs };
          deadline_fraction;
          shed_max_staleness;
        }
    end
    else None
  in
  {
    Config.allocation_interval;
    drop_threshold;
    accuracy_history;
    epoch_ms;
    control_delay;
    score_satisfaction_with;
    accuracy_mode;
    install_budget;
    faults = None;
    degraded;
    check_invariants;
    store_backend;
    telemetry = None;
  }

let emit_prefix_list w key prefixes =
  C.int w key (List.length prefixes);
  List.iter (fun p -> C.string w "p" (Prefix.to_string p)) prefixes

let parse_prefix_list r key =
  let n = C.int_field r key in
  C.repeat n (fun () ->
      let s = C.string_field r "p" in
      match Prefix.of_string s with
      | p -> p
      | exception Invalid_argument _ ->
        C.parse_error 0 (Printf.sprintf "invalid prefix %S" s))

let emit_runtime w r =
  C.section w "runtime";
  C.int w "duration" r.duration;
  C.int w "arrived_at" r.arrived_at;
  C.int w "drop_priority" r.drop_priority;
  C.int w "active_epochs" r.active_epochs;
  C.int w "satisfied_epochs" r.satisfied_epochs;
  C.float w "accuracy_sum" r.accuracy_sum;
  C.int w "poor_streak" r.poor_streak;
  C.int w "last_alloc_total" r.last_alloc_total;
  C.int w "staleness" r.staleness;
  C.int w "fresh_rules" (Switch_id.Map.cardinal r.fresh_rules);
  Switch_id.Map.iter
    (fun sw set ->
      C.int w "sw" sw;
      emit_prefix_list w "rules" (Prefix.Set.elements set))
    r.fresh_rules;
  C.int w "last_install_counts" (Switch_id.Map.cardinal r.last_install_counts);
  Switch_id.Map.iter
    (fun sw n ->
      C.int w "sw" sw;
      C.int w "installs" n)
    r.last_install_counts;
  C.int w "stale_counters" (Switch_id.Map.cardinal r.stale_counters);
  Switch_id.Map.iter
    (fun sw pairs ->
      C.int w "sw" sw;
      C.int w "pairs" (List.length pairs);
      List.iter
        (fun (p, v) ->
          C.string w "p" (Prefix.to_string p);
          C.float w "v" v)
        pairs)
    r.stale_counters;
  Task.emit w r.task;
  Source.emit w r.source;
  Ground_truth.emit w r.ground_truth

(* [last_report] is deliberately not serialized: it is a UI convenience the
   control loop never reads, and a restored controller reports afresh on
   its first tick. *)
let parse_runtime r =
  C.expect_section r "runtime";
  let duration = C.int_field r "duration" in
  let arrived_at = C.int_field r "arrived_at" in
  let drop_priority = C.int_field r "drop_priority" in
  let active_epochs = C.int_field r "active_epochs" in
  let satisfied_epochs = C.int_field r "satisfied_epochs" in
  let accuracy_sum = C.float_field r "accuracy_sum" in
  let poor_streak = C.int_field r "poor_streak" in
  let last_alloc_total = C.int_field r "last_alloc_total" in
  let staleness = C.int_field r "staleness" in
  let fresh_rules =
    let n = C.int_field r "fresh_rules" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        (sw, Prefix.Set.of_list (parse_prefix_list r "rules")))
    |> List.fold_left (fun acc (sw, set) -> Switch_id.Map.add sw set acc) Switch_id.Map.empty
  in
  let last_install_counts =
    let n = C.int_field r "last_install_counts" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        (sw, C.int_field r "installs"))
    |> List.fold_left (fun acc (sw, n) -> Switch_id.Map.add sw n acc) Switch_id.Map.empty
  in
  let stale_counters =
    let n = C.int_field r "stale_counters" in
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        let pairs =
          C.repeat (C.int_field r "pairs") (fun () ->
              let s = C.string_field r "p" in
              let p =
                match Prefix.of_string s with
                | p -> p
                | exception Invalid_argument _ ->
                  C.parse_error 0 (Printf.sprintf "invalid prefix %S" s)
              in
              (p, C.float_field r "v"))
        in
        (sw, pairs))
    |> List.fold_left (fun acc (sw, pairs) -> Switch_id.Map.add sw pairs acc) Switch_id.Map.empty
  in
  let task = Task.parse r in
  let source = Source.parse r in
  let ground_truth = Ground_truth.parse r ~spec:(Task.spec task) in
  {
    task;
    source;
    ground_truth;
    duration;
    arrived_at;
    drop_priority;
    active_epochs;
    satisfied_epochs;
    accuracy_sum;
    poor_streak;
    last_alloc_total;
    last_report = None;
    fresh_rules;
    last_install_counts;
    stale_counters;
    staleness;
  }

let outcome_to_string = function
  | Metrics.Completed -> "completed"
  | Metrics.Dropped -> "dropped"
  | Metrics.Rejected -> "rejected"

let outcome_of_string = function
  | "completed" -> Some Metrics.Completed
  | "dropped" -> Some Metrics.Dropped
  | "rejected" -> Some Metrics.Rejected
  | _ -> None

let emit_records w records =
  C.int w "records" (List.length records);
  List.iter
    (fun (rec_ : Metrics.record) ->
      C.section w "record";
      C.int w "task_id" rec_.Metrics.task_id;
      C.string w "kind" (Task_spec.kind_to_string rec_.Metrics.kind);
      C.string w "outcome" (outcome_to_string rec_.Metrics.outcome);
      C.int w "arrived_at" rec_.Metrics.arrived_at;
      C.int w "ended_at" rec_.Metrics.ended_at;
      C.int w "active_epochs" rec_.Metrics.active_epochs;
      C.float w "satisfaction" rec_.Metrics.satisfaction;
      C.float w "mean_accuracy" rec_.Metrics.mean_accuracy)
    records

let parse_records r =
  let n = C.int_field r "records" in
  C.repeat n (fun () ->
      C.expect_section r "record";
      let task_id = C.int_field r "task_id" in
      let kind =
        let s = C.string_field r "kind" in
        match Task_spec.kind_of_string s with
        | Some k -> k
        | None -> C.parse_error 0 (Printf.sprintf "unknown task kind %S" s)
      in
      let outcome =
        let s = C.string_field r "outcome" in
        match outcome_of_string s with
        | Some o -> o
        | None -> C.parse_error 0 (Printf.sprintf "unknown outcome %S" s)
      in
      let arrived_at = C.int_field r "arrived_at" in
      let ended_at = C.int_field r "ended_at" in
      let active_epochs = C.int_field r "active_epochs" in
      let satisfaction = C.float_field r "satisfaction" in
      let mean_accuracy = C.float_field r "mean_accuracy" in
      { Metrics.task_id; kind; outcome; arrived_at; ended_at; active_epochs; satisfaction;
        mean_accuracy })

let emit_rob w (rob : Metrics.robustness) =
  C.section w "robustness";
  C.int w "crashes" rob.Metrics.crashes;
  C.int w "recoveries" rob.Metrics.recoveries;
  C.int w "switch_down_epochs" rob.Metrics.switch_down_epochs;
  C.int w "fetch_timeouts" rob.Metrics.fetch_timeouts;
  C.int w "fetch_retries" rob.Metrics.fetch_retries;
  C.int w "fetch_failures" rob.Metrics.fetch_failures;
  C.int w "stale_epochs" rob.Metrics.stale_epochs;
  C.int w "counters_lost" rob.Metrics.counters_lost;
  C.int w "install_failures" rob.Metrics.install_failures;
  C.int w "recovery_reinstalls" rob.Metrics.recovery_reinstalls;
  C.int w "controller_crashes" rob.Metrics.controller_crashes;
  C.int w "reconcile_removed" rob.Metrics.reconcile_removed;
  C.int w "reconcile_installed" rob.Metrics.reconcile_installed;
  C.int w "invariant_violations" rob.Metrics.invariant_violations;
  C.int w "partitions" rob.Metrics.partitions;
  C.int w "partition_epochs" rob.Metrics.partition_epochs;
  C.int w "breaker_opens" rob.Metrics.breaker_opens;
  C.int w "breaker_probes" rob.Metrics.breaker_probes;
  C.int w "breaker_skips" rob.Metrics.breaker_skips;
  C.int w "sheds" rob.Metrics.sheds

let parse_rob r : Metrics.robustness =
  C.expect_section r "robustness";
  let crashes = C.int_field r "crashes" in
  let recoveries = C.int_field r "recoveries" in
  let switch_down_epochs = C.int_field r "switch_down_epochs" in
  let fetch_timeouts = C.int_field r "fetch_timeouts" in
  let fetch_retries = C.int_field r "fetch_retries" in
  let fetch_failures = C.int_field r "fetch_failures" in
  let stale_epochs = C.int_field r "stale_epochs" in
  let counters_lost = C.int_field r "counters_lost" in
  let install_failures = C.int_field r "install_failures" in
  let recovery_reinstalls = C.int_field r "recovery_reinstalls" in
  let controller_crashes = C.int_field r "controller_crashes" in
  let reconcile_removed = C.int_field r "reconcile_removed" in
  let reconcile_installed = C.int_field r "reconcile_installed" in
  let invariant_violations = C.int_field r "invariant_violations" in
  let partitions = C.int_field r "partitions" in
  let partition_epochs = C.int_field r "partition_epochs" in
  let breaker_opens = C.int_field r "breaker_opens" in
  let breaker_probes = C.int_field r "breaker_probes" in
  let breaker_skips = C.int_field r "breaker_skips" in
  let sheds = C.int_field r "sheds" in
  { Metrics.crashes; recoveries; switch_down_epochs; fetch_timeouts; fetch_retries;
    fetch_failures; stale_epochs; counters_lost; install_failures; recovery_reinstalls;
    controller_crashes; reconcile_removed; reconcile_installed; invariant_violations;
    partitions; partition_epochs; breaker_opens; breaker_probes; breaker_skips; sheds }

let snapshot t =
  let w = C.writer () in
  C.section w "controller";
  C.int w "epoch" t.epoch;
  C.int w "next_id" t.next_id;
  C.int w "rules_installed" (Ctr.value t.rules_installed);
  C.int w "rules_fetched" (Ctr.value t.rules_fetched);
  emit_config w t.config;
  C.bool w "has_faults" (t.faults <> None);
  (match t.faults with Some fm -> Fault_model.emit w fm | None -> ());
  (* Breakers are live control-loop state: a failed-over controller must
     not re-probe switches the dead one had already tripped on. *)
  C.int w "breakers" (Array.length t.breakers);
  Array.iter (fun br -> Breaker.emit w br) t.breakers;
  C.int w "num_switches" (Array.length t.switches);
  Array.iter
    (fun sw ->
      C.section w "switch";
      C.int w "id" (Switch.id sw);
      C.int w "capacity" (Switch.capacity sw);
      let dump = Tcam.dump (Switch.tcam sw) in
      C.int w "owners" (List.length dump);
      List.iter
        (fun (owner, rules) ->
          C.int w "owner" owner;
          emit_prefix_list w "rules" rules)
        dump)
    t.switches;
  Allocator.emit w t.allocator;
  emit_rob w (robustness t);
  emit_records w t.records;
  let runtimes =
    List.sort runtime_order (Hashtbl.fold cons_runtime t.active [])
  in
  C.int w "runtimes" (List.length runtimes);
  List.iter (emit_runtime w) runtimes;
  C.seal ~magic:snapshot_magic (C.contents w)

let checkpoint t =
  let s = snapshot t in
  (* Everything the journal held is now folded into the snapshot; recovery
     only ever needs the suffix after the last checkpoint.  Flush first so
     a file-backed journal is never behind the sealed snapshot on disk,
     then drop the prefix. *)
  (match t.journal with
  | Some sink ->
    Journal.flush sink;
    Journal.truncate sink
  | None -> ());
  s

type parsed_snapshot = {
  p_epoch : int;
  p_next_id : int;
  p_rules_installed : int;
  p_rules_fetched : int;
  p_config : Config.t; (* faults spec filled in by the caller *)
  p_faults : Fault_model.t option;
  p_breakers : Breaker.t list;
  p_switches : (int * int * (int * Prefix.t list) list) list; (* id, capacity, dump *)
  p_allocator : Allocator.t;
  p_rob : Metrics.robustness;
  p_records : Metrics.record list; (* newest first *)
  p_runtimes : runtime list; (* task-id order *)
}

let parse_snapshot r =
  C.expect_section r "controller";
  let p_epoch = C.int_field r "epoch" in
  let p_next_id = C.int_field r "next_id" in
  let p_rules_installed = C.int_field r "rules_installed" in
  let p_rules_fetched = C.int_field r "rules_fetched" in
  let p_config = parse_config r in
  let p_faults = if C.bool_field r "has_faults" then Some (Fault_model.parse r) else None in
  let p_breakers = C.repeat (C.int_field r "breakers") (fun () -> Breaker.parse r) in
  let num_switches = C.int_field r "num_switches" in
  let p_switches =
    C.repeat num_switches (fun () ->
        C.expect_section r "switch";
        let id = C.int_field r "id" in
        let capacity = C.int_field r "capacity" in
        let owners = C.int_field r "owners" in
        let dump =
          C.repeat owners (fun () ->
              let owner = C.int_field r "owner" in
              (owner, parse_prefix_list r "rules"))
        in
        (id, capacity, dump))
  in
  let p_allocator = Allocator.parse r in
  let p_rob = parse_rob r in
  let p_records = parse_records r in
  let p_runtimes = C.repeat (C.int_field r "runtimes") (fun () -> parse_runtime r) in
  { p_epoch; p_next_id; p_rules_installed; p_rules_fetched; p_config; p_faults; p_breakers;
    p_switches; p_allocator; p_rob; p_records; p_runtimes }

let controller_of_parsed d ~switches ~planes ~faults ~tel =
  (* Restore under the checkpoint's backend: replayed merges and reads must
     take the same representation paths the original run took. *)
  Aggregate.set_backend d.p_config.Config.store_backend;
  let active = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace active (Task.id r.task) r) d.p_runtimes;
  let registry =
    match tel with Some b -> Obs.Telemetry.registry b | None -> Obs.Registry.create ()
  in
  let clock = match tel with Some b -> Obs.Telemetry.clock b | None -> Obs.Clock.cpu in
  let rob = rob_of_registry registry in
  set_robustness rob d.p_rob;
  let rules_installed = Obs.Registry.counter registry "rules_installed" in
  Ctr.set rules_installed d.p_rules_installed;
  let rules_fetched = Obs.Registry.counter registry "rules_fetched" in
  Ctr.set rules_fetched d.p_rules_fetched;
  {
    config =
      { d.p_config with Config.faults = Option.map Fault_model.spec faults; telemetry = tel };
    allocator = d.p_allocator;
    switches;
    planes;
    faults;
    tel;
    registry;
    clock;
    active;
    epoch = d.p_epoch;
    next_id = d.p_next_id;
    records = d.p_records;
    delays = [];
    rules_installed;
    rules_fetched;
    rob;
    recovered_now = Switch_id.Set.empty;
    journal = None;
    crash_pending = false;
    breakers = Array.of_list d.p_breakers;
    storm_pending = 0;
    arena = Arena.create ();
  }

let restore s =
  match C.unseal ~magic:snapshot_magic s with
  | Error e -> Error e
  | Ok body -> begin
    match
      let d = parse_snapshot (C.reader_of_string body) in
      let switches =
        Array.of_list
          (List.mapi
             (fun i (id, capacity, dump) ->
               if id <> i then
                 C.parse_error 0 (Printf.sprintf "switch ids not consecutive (%d at %d)" id i);
               let sw = Switch.create ~id ~capacity in
               List.iter
                 (fun (owner, rules) ->
                   List.iter
                     (fun p ->
                       match Tcam.install (Switch.tcam sw) ~owner p with
                       | Ok () -> ()
                       | Error (`Capacity | `Duplicate) ->
                         C.parse_error 0
                           (Printf.sprintf "snapshot rules overflow switch %d" id))
                     rules)
                 dump;
               Tcam.reset_stats (Switch.tcam sw);
               sw)
             d.p_switches)
      in
      let faults = d.p_faults in
      let planes = Array.map (fun sw -> Data_plane.create ?faults sw) switches in
      controller_of_parsed d ~switches ~planes ~faults ~tel:None
    with
    | t -> Ok t
    | exception C.Parse_error err -> Error (C.error_to_string err)
  end

(* ---- failover recovery ---- *)

type env = {
  env_switches : Switch.t array;
  env_planes : Data_plane.t array;
  env_faults : Fault_model.t option;
  env_tel : Obs.Telemetry.t option;
      (* the telemetry bundle outlives the controller too, so a failed-over
         run keeps appending to the same trace and counters *)
}

let environment t =
  { env_switches = t.switches; env_planes = t.planes; env_faults = t.faults; env_tel = t.tel }

let replay_entry t state_epochs entry =
  match entry with
  | Journal.Admit
      { epoch; task_id; spec; topology; duration; drop_priority; accuracy_history; global_only;
        source } ->
    let task =
      Task.create ~id:task_id ~spec ~topology ~accuracy_history
        ~accuracy_mode:(if global_only then Task.Global_only else Task.Overall)
        ()
    in
    let source = Source.parse (C.reader_of_string source) in
    let runtime =
      {
        task;
        source;
        ground_truth = Ground_truth.create spec;
        duration;
        arrived_at = epoch;
        drop_priority;
        active_epochs = 0;
        satisfied_epochs = 0;
        accuracy_sum = 0.0;
        poor_streak = 0;
        last_alloc_total = 0;
        last_report = None;
        fresh_rules = Switch_id.Map.empty;
        last_install_counts = Switch_id.Map.empty;
        stale_counters = Switch_id.Map.empty;
        staleness = 0;
      }
    in
    Allocator.force_admit t.allocator (view_of_runtime runtime);
    Hashtbl.replace t.active task_id runtime;
    Hashtbl.replace state_epochs task_id epoch;
    t.next_id <- max t.next_id (task_id + 1)
  | Journal.Reject { epoch; task_id; kind } ->
    t.records <-
      {
        Metrics.task_id;
        kind;
        outcome = Metrics.Rejected;
        arrived_at = epoch;
        ended_at = epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    t.next_id <- max t.next_id (task_id + 1)
  | Journal.Alloc { task_id; switch; alloc; _ } ->
    Allocator.force_allocation t.allocator ~task_id ~switch ~alloc
  | Journal.Install _ | Journal.Delete _ | Journal.Purge _ ->
    (* Rule-level entries document what the dead controller did to the
       switches; reconciliation derives its expectations from the restored
       task state instead, so replay has nothing to apply here. *)
    ()
  | Journal.Switch_down _ -> Ctr.incr t.rob.crashes
  | Journal.Switch_up _ -> Ctr.incr t.rob.recoveries
  | Journal.Task_end
      { epoch; task_id; kind; cause; arrived_at; active_epochs; satisfaction; mean_accuracy } ->
    if Hashtbl.mem t.active task_id then begin
      Allocator.release t.allocator ~task_id;
      Hashtbl.remove t.active task_id;
      Hashtbl.remove state_epochs task_id
    end;
    let outcome =
      match cause with Journal.Completed -> Metrics.Completed | Journal.Dropped -> Metrics.Dropped
    in
    t.records <-
      { Metrics.task_id; kind; outcome; arrived_at; ended_at = epoch; active_epochs;
        satisfaction; mean_accuracy }
      :: t.records

let recover ~env ~snapshot ~journal ~at_epoch =
  match C.unseal ~magic:snapshot_magic snapshot with
  | Error e -> Error e
  | Ok body -> begin
    match
      let d = parse_snapshot (C.reader_of_string body) in
      if List.length d.p_switches <> Array.length env.env_switches then
        C.parse_error 0 "snapshot switch count does not match the live network";
      if at_epoch < d.p_epoch then C.parse_error 0 "recovery epoch precedes the checkpoint";
      (* The network outlives the controller: switches, data planes and the
         fault model keep their live state, and the snapshot's copies (taken
         at checkpoint time) are discarded after parsing. *)
      let t =
        controller_of_parsed d ~switches:env.env_switches ~planes:env.env_planes
          ~faults:env.env_faults ~tel:env.env_tel
      in
      (* Tasks restored from the snapshot carry state as of the checkpoint
         epoch; tasks replayed from the journal carry state as of their
         admission.  Either way the journal suffix brings membership,
         records and allocations current. *)
      let state_epochs = Hashtbl.create 16 in
      Hashtbl.iter (fun id _ -> Hashtbl.replace state_epochs id d.p_epoch) t.active;
      List.iter (fun e -> replay_entry t state_epochs e) journal;
      (* Traffic kept flowing while the controller was down: fast-forward
         each survivor's source by the epochs it missed.  Discarded epochs
         consume exactly the RNG draws the live run would have, so the
         traffic stream itself is unperturbed by the failover. *)
      Hashtbl.iter
        (fun id r ->
          let from = match Hashtbl.find_opt state_epochs id with Some e -> e | None -> at_epoch in
          for _ = from to at_epoch - 1 do
            ignore (Source.next r.source)
          done)
        t.active;
      (* Reconcile every reachable switch against the restored state: rules
         no restored task wants are strays, rules a restored task wants but
         the switch lost are missing.  A switch that is down now is wiped
         anyway and gets its rules back through the normal recovered-switch
         reinstall path. *)
      let runtimes =
        List.sort runtime_order (Hashtbl.fold cons_runtime t.active [])
      in
      t.epoch <- at_epoch;
      Array.iter
        (fun dp ->
          let sw_id = Data_plane.id dp in
          let expected =
            List.filter_map
              (fun r ->
                match Task.desired_rules r.task sw_id with
                | [] -> None
                | rules -> Some (Task.id r.task, rules))
              runtimes
          in
          match Data_plane.audit dp ~expected with
          | Ok { Data_plane.strays_removed; missing_installed } ->
            Ctr.add t.rob.reconcile_removed strays_removed;
            Ctr.add t.rob.reconcile_installed missing_installed;
            if strays_removed + missing_installed > 0 then
              trace_event t ~name:"reconcile"
                [ ("switch", Tr.Int sw_id); ("removed", Tr.Int strays_removed);
                  ("installed", Tr.Int missing_installed) ]
            (* A partitioned switch cannot be audited now; like a down
               switch it is reconciled when it becomes reachable again. *)
          | Error (`Down | `Unreachable) -> ())
        env.env_planes;
      Ctr.incr t.rob.controller_crashes;
      (* Break the replayed suffix down by entry kind, so the trace shows
         what the journal actually had to carry across the crash. *)
      let by_kind = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let k = Journal.entry_name e in
          Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
        journal;
      let breakdown =
        Hashtbl.fold (fun k n acc -> (k, Tr.Int n) :: acc) by_kind []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      trace_event t ~name:"failover"
        ([ ("checkpoint_epoch", Tr.Int d.p_epoch);
           ("journal_entries", Tr.Int (List.length journal)) ]
        @ breakdown);
      Log.info (fun m ->
          m "epoch %d: controller recovered from checkpoint at epoch %d (+%d journal entries)"
            at_epoch d.p_epoch (List.length journal));
      t
    with
    | t -> Ok t
    | exception C.Parse_error err -> Error (C.error_to_string err)
  end
