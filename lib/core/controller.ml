module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Epoch_data = Dream_traffic.Epoch_data
module Source = Dream_traffic.Source
module Topology = Dream_traffic.Topology
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Delay_model = Dream_switch.Delay_model
module Task = Dream_tasks.Task
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth
module Allocator = Dream_alloc.Allocator
module Task_view = Dream_alloc.Task_view

let log_src = Logs.Src.create "dream.controller" ~doc:"DREAM controller events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type runtime = {
  task : Task.t;
  source : Source.t;
  ground_truth : Ground_truth.t;
  duration : int;
  arrived_at : int;
  drop_priority : int;
  mutable active_epochs : int;
  mutable satisfied_epochs : int;
  mutable accuracy_sum : float;
  mutable poor_streak : int;
  mutable last_alloc_total : int;
  mutable last_report : Report.t option;
  mutable fresh_rules : Prefix.Set.t Switch_id.Map.t; (* installed by the last sync *)
  mutable last_install_counts : int Switch_id.Map.t;
}

type delay_sample = {
  epoch : int;
  fetch_ms : float;
  save_ms : float;
  report_ms : float;
  allocate_ms : float;
  configure_ms : float;
}

type t = {
  config : Config.t;
  allocator : Allocator.t;
  switches : Switch.t array;
  active : (int, runtime) Hashtbl.t;
  mutable epoch : int;
  mutable next_id : int;
  mutable records : Metrics.record list;
  mutable delays : delay_sample list; (* newest first *)
  mutable rules_installed : int;
  mutable rules_fetched : int;
}

let create ~config ~strategy ~num_switches ~capacity =
  let switches = Switch.network ~num_switches ~capacity in
  let capacities = Array.to_list (Array.map (fun sw -> (Switch.id sw, capacity)) switches) in
  {
    config;
    allocator = Allocator.create strategy ~capacities;
    switches;
    active = Hashtbl.create 64;
    epoch = 0;
    next_id = 0;
    records = [];
    delays = [];
    rules_installed = 0;
    rules_fetched = 0;
  }

let epoch t = t.epoch

let num_switches t = Array.length t.switches

let switches t = t.switches

let allocator t = t.allocator

let active_tasks t = Hashtbl.length t.active

let active_task_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.active [])

let last_report t ~task_id =
  match Hashtbl.find_opt t.active task_id with Some r -> r.last_report | None -> None

let smoothed_accuracy t ~task_id =
  match Hashtbl.find_opt t.active task_id with
  | Some r -> Some (Task.smoothed_global r.task)
  | None -> None

let view_of_runtime r =
  {
    Task_view.id = Task.id r.task;
    switches = Task.switches r.task;
    bound = (Task.spec r.task).Task_spec.accuracy_bound;
    drop_priority = r.drop_priority;
    overall = (fun sw -> Task.overall_accuracy r.task sw);
    used = (fun sw -> Task.counters_used r.task sw);
  }

let submit t ~spec ~topology ~source ~duration =
  let id = t.next_id in
  t.next_id <- id + 1;
  let task =
    Task.create ~id ~spec ~topology ~accuracy_history:t.config.Config.accuracy_history
      ~accuracy_mode:t.config.Config.accuracy_mode ()
  in
  (* Default drop priority: most recently arrived tasks drop first; an
     explicit spec priority takes precedence. *)
  let drop_priority =
    if spec.Task_spec.drop_priority <> 0 then spec.Task_spec.drop_priority else id
  in
  let runtime =
    {
      task;
      source;
      ground_truth = Ground_truth.create spec;
      duration;
      arrived_at = t.epoch;
      drop_priority;
      active_epochs = 0;
      satisfied_epochs = 0;
      accuracy_sum = 0.0;
      poor_streak = 0;
      last_alloc_total = 0;
      last_report = None;
      fresh_rules = Switch_id.Map.empty;
      last_install_counts = Switch_id.Map.empty;
    }
  in
  let view = view_of_runtime runtime in
  if Allocator.try_admit t.allocator view then begin
    Hashtbl.replace t.active id runtime;
    Log.info (fun m ->
        m "epoch %d: admitted task %d (%a, %d epochs)" t.epoch id Task_spec.pp spec duration);
    `Admitted id
  end
  else begin
    t.records <-
      {
        Metrics.task_id = id;
        kind = spec.Task_spec.kind;
        outcome = Metrics.Rejected;
        arrived_at = t.epoch;
        ended_at = t.epoch;
        active_epochs = 0;
        satisfaction = 0.0;
        mean_accuracy = 0.0;
      }
      :: t.records;
    Log.info (fun m -> m "epoch %d: rejected task %d (%a)" t.epoch id Task_spec.pp spec);
    `Rejected
  end

let finish_record r ~outcome ~ended_at =
  let spec = Task.spec r.task in
  let active = r.active_epochs in
  {
    Metrics.task_id = Task.id r.task;
    kind = spec.Task_spec.kind;
    outcome;
    arrived_at = r.arrived_at;
    ended_at;
    active_epochs = active;
    satisfaction =
      (if active = 0 then 0.0 else float_of_int r.satisfied_epochs /. float_of_int active);
    mean_accuracy = (if active = 0 then 0.0 else r.accuracy_sum /. float_of_int active);
  }

let remove_task t r ~outcome =
  let id = Task.id r.task in
  Log.info (fun m ->
      m "epoch %d: task %d %s after %d active epochs" t.epoch id
        (match outcome with
        | Metrics.Completed -> "completed"
        | Metrics.Dropped -> "DROPPED"
        | Metrics.Rejected -> "rejected")
        r.active_epochs);
  Allocator.release t.allocator ~task_id:id;
  Array.iter (fun sw -> ignore (Tcam.remove_owner (Switch.tcam sw) ~owner:id)) t.switches;
  Hashtbl.remove t.active id;
  t.records <- finish_record r ~outcome ~ended_at:t.epoch :: t.records

(* Counter fetch with optional control-loop degradation: rules installed by
   the previous sync miss the head of the epoch while the update is in
   flight (Figs 8/9's prototype-vs-simulator gap). *)
let read_counters t r =
  let id = Task.id r.task in
  let data = Source.next r.source in
  let miss_for sw_id =
    match t.config.Config.control_delay with
    | None -> 0.0
    | Some costs ->
      let installs =
        match Switch_id.Map.find_opt sw_id r.last_install_counts with Some n -> n | None -> 0
      in
      Delay_model.install_miss_fraction costs ~epoch_ms:t.config.Config.epoch_ms ~installs
        ~switches:1
  in
  let readings =
    Array.to_list t.switches
    |> List.filter_map (fun sw ->
           let sw_id = Switch.id sw in
           let rules = Tcam.rules_of (Switch.tcam sw) ~owner:id in
           if rules = [] then None
           else begin
             let aggregate = Epoch_data.switch_view data sw_id in
             let pairs = Tcam.read (Switch.tcam sw) ~owner:id aggregate in
             let miss = miss_for sw_id in
             let fresh =
               match Switch_id.Map.find_opt sw_id r.fresh_rules with
               | Some set -> set
               | None -> Prefix.Set.empty
             in
             let degraded =
               List.map
                 (fun (p, v) ->
                   if miss > 0.0 && Prefix.Set.mem p fresh then (p, v *. (1.0 -. miss)) else (p, v))
                 pairs
             in
             Some (sw_id, degraded)
           end)
  in
  (data, readings)

let ms_of_cpu seconds = seconds *. 1000.0

let tick t =
  let config = t.config in
  let runtimes =
    List.sort
      (fun a b -> Int.compare (Task.id a.task) (Task.id b.task))
      (Hashtbl.fold (fun _ r acc -> r :: acc) t.active [])
  in
  (* Reset per-epoch switch stats so the delay model prices this epoch. *)
  Array.iter (fun sw -> Tcam.reset_stats (Switch.tcam sw)) t.switches;
  (* Fetch + report + estimate, per task. *)
  let report_clock = ref 0.0 in
  List.iter
    (fun r ->
      let data, readings = read_counters t r in
      Task.ingest_counters r.task readings;
      let t0 = Sys.time () in
      let report = Task.make_report r.task ~epoch:t.epoch in
      r.last_report <- Some report;
      let estimate = Task.estimate_accuracy r.task in
      report_clock := !report_clock +. (Sys.time () -. t0);
      let truth = Ground_truth.evaluate r.ground_truth data report in
      let spec = Task.spec r.task in
      let scored =
        match config.Config.score_satisfaction_with with
        | `Real_accuracy -> truth.Ground_truth.real_accuracy
        | `Estimated_accuracy -> estimate.Dream_tasks.Accuracy.global
      in
      r.active_epochs <- r.active_epochs + 1;
      r.accuracy_sum <- r.accuracy_sum +. scored;
      if scored >= spec.Task_spec.accuracy_bound then
        r.satisfied_epochs <- r.satisfied_epochs + 1)
    runtimes;
  (* Allocation epoch: redistribute and decide drops. *)
  let allocate_clock = ref 0.0 in
  if t.epoch mod config.Config.allocation_interval = 0 then begin
    let t0 = Sys.time () in
    let views = List.map view_of_runtime runtimes in
    Allocator.reallocate t.allocator views;
    allocate_clock := Sys.time () -. t0;
    if Allocator.supports_drop t.allocator then begin
      (* Track poor streaks and pick at most one drop victim per round:
         the poorest-priority task that stayed poor through the drop
         threshold while one of its switches was congested. *)
      let candidates =
        List.filter_map
          (fun r ->
            let spec = Task.spec r.task in
            let poor = Task.smoothed_global r.task < spec.Task_spec.accuracy_bound in
            let alloc_total =
              Switch_id.Map.fold
                (fun _ v acc -> acc + v)
                (Allocator.allocation_of t.allocator ~task_id:(Task.id r.task))
                0
            in
            (* A task still gaining resources is converging, not starved:
               only a poor task whose allocation has stopped growing
               accumulates a streak (paper: dropped tasks are those that
               "get fewer and fewer resources ... and remain poor"). *)
            let growing = alloc_total > r.last_alloc_total in
            r.last_alloc_total <- alloc_total;
            if poor && not growing then r.poor_streak <- r.poor_streak + 1
            else r.poor_streak <- 0;
            let congested_somewhere =
              Switch_id.Set.exists
                (fun sw -> Allocator.congested t.allocator sw)
                (Task.switches r.task)
            in
            if r.poor_streak >= config.Config.drop_threshold && congested_somewhere then Some r
            else None)
          runtimes
      in
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some best -> if r.drop_priority > best.drop_priority then Some r else acc)
          None candidates
      in
      match victim with
      | Some r -> remove_task t r ~outcome:Metrics.Dropped
      | None -> ()
    end
  end;
  (* Reconfigure counters, then sync rules incrementally in two passes:
     all removals across tasks first, then installs — so one task's growth
     never transiently collides with space another task is vacating. *)
  let configure_clock = ref 0.0 in
  let survivors = List.filter (fun r -> Hashtbl.mem t.active (Task.id r.task)) runtimes in
  let desired_of =
    List.map
      (fun r ->
        let id = Task.id r.task in
        let allocations = Allocator.allocation_of t.allocator ~task_id:id in
        let t0 = Sys.time () in
        Task.configure r.task ~allocations;
        configure_clock := !configure_clock +. (Sys.time () -. t0);
        let per_switch =
          Array.map
            (fun sw -> Prefix.Set.of_list (Task.desired_rules r.task (Switch.id sw)))
            t.switches
        in
        (r, per_switch))
      survivors
  in
  (* Per-switch rule-update budgets: a software switch applies everything,
     a hardware switch only [install_budget] updates per epoch (deferred
     ones are retried next epoch and the affected counters read nothing
     meanwhile — the cost that made the paper abandon hardware switches). *)
  let budgets =
    Array.map
      (fun _ ->
        ref (match config.Config.install_budget with Some b -> b | None -> max_int))
      t.switches
  in
  (* Pass 1: removals. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      Array.iteri
        (fun i sw ->
          let tcam = Switch.tcam sw in
          let budget = budgets.(i) in
          List.iter
            (fun p ->
              if (not (Prefix.Set.mem p per_switch.(i))) && !budget > 0 then begin
                ignore (Tcam.remove tcam ~owner:id p);
                decr budget
              end)
            (Tcam.rules_of tcam ~owner:id))
        t.switches)
    desired_of;
  (* Pass 2: installs, newest rules skipped once a switch's budget runs
     out or its table is full. *)
  List.iter
    (fun (r, per_switch) ->
      let id = Task.id r.task in
      let fresh = ref Switch_id.Map.empty in
      let installs = ref Switch_id.Map.empty in
      Array.iteri
        (fun i sw ->
          let sw_id = Switch.id sw in
          let tcam = Switch.tcam sw in
          let budget = budgets.(i) in
          let installed = Prefix.Set.of_list (Tcam.rules_of tcam ~owner:id) in
          let added = ref Prefix.Set.empty in
          Prefix.Set.iter
            (fun p ->
              if (not (Prefix.Set.mem p installed)) && !budget > 0 then begin
                match Tcam.install tcam ~owner:id p with
                | Ok () ->
                  decr budget;
                  added := Prefix.Set.add p !added
                | Error (`Capacity | `Duplicate) -> ()
              end)
            per_switch.(i);
          if not (Prefix.Set.is_empty !added) then begin
            fresh := Switch_id.Map.add sw_id !added !fresh;
            installs := Switch_id.Map.add sw_id (Prefix.Set.cardinal !added) !installs
          end)
        t.switches;
      r.fresh_rules <- !fresh;
      r.last_install_counts <- !installs)
    desired_of;
  (* Price the epoch's switch interactions for Fig 17. *)
  let fetch_total, install_total, remove_total, touched =
    Array.fold_left
      (fun (f, i, rm, sw_count) sw ->
        let stats = Tcam.stats (Switch.tcam sw) in
        let touched = if stats.Tcam.fetches > 0 || stats.Tcam.installs > 0 then 1 else 0 in
        (f + stats.Tcam.fetches, i + stats.Tcam.installs, rm + stats.Tcam.removals, sw_count + touched))
      (0, 0, 0, 0) t.switches
  in
  let costs =
    match config.Config.control_delay with Some c -> c | None -> Delay_model.default
  in
  let sample =
    {
      epoch = t.epoch;
      fetch_ms = Delay_model.fetch_ms costs ~rules:fetch_total ~switches:touched;
      save_ms = Delay_model.save_ms costs ~installs:install_total ~removals:remove_total ~switches:touched;
      report_ms = ms_of_cpu !report_clock;
      allocate_ms = ms_of_cpu !allocate_clock;
      configure_ms = ms_of_cpu !configure_clock;
    }
  in
  t.delays <- sample :: t.delays;
  t.rules_installed <- t.rules_installed + install_total;
  t.rules_fetched <- t.rules_fetched + fetch_total;
  (* Retire tasks that reached their duration. *)
  List.iter
    (fun r ->
      if Hashtbl.mem t.active (Task.id r.task) && r.active_epochs >= r.duration then
        remove_task t r ~outcome:Metrics.Completed)
    survivors;
  t.epoch <- t.epoch + 1

let run t ~epochs =
  for _ = 1 to epochs do
    tick t
  done

let finalize t =
  let runtimes = Hashtbl.fold (fun _ r acc -> r :: acc) t.active [] in
  List.iter (fun r -> remove_task t r ~outcome:Metrics.Completed) runtimes

let records t = List.rev t.records

let summary t = Metrics.summarize (records t)

let delay_samples t = List.rev t.delays

let total_rules_installed t = t.rules_installed

let total_rules_fetched t = t.rules_fetched
