(** The DREAM controller (Figure 3, Algorithm 1).

    Owns the switch network, the allocator and the admitted task objects,
    and advances virtual time one measurement epoch per {!tick}: per task,
    it pulls the epoch's traffic from the task's trace generator, reads the
    task's TCAM counters on every switch, lets the task object report and
    estimate accuracy, runs an allocation round on allocation epochs
    (including drop decisions), reconfigures counters, and incrementally
    syncs rules to switches.

    Real accuracy against ground truth is computed per epoch for
    evaluation; DREAM's own decisions only ever use estimated accuracy.

    When {!Config.t.faults} is set, the controller drives its switches
    through the fault-injection layer and tolerates the failures it
    injects: timed-out counter fetches are retried with exponential
    backoff while a per-epoch time budget (a fraction of [epoch_ms])
    lasts; a switch that stays unreachable serves the previous epoch's
    readings while the task's estimated accuracy is decayed so the
    allocator reacts; crashed switches are quarantined (their allocations
    zeroed, which makes divide-and-merge reconfigure counters onto the
    healthy switches); and a recovered switch gets its full rule set
    reinstalled.  Everything is tallied in {!robustness}. *)

type t

val create :
  config:Config.t ->
  strategy:Dream_alloc.Allocator.strategy ->
  num_switches:int ->
  capacity:int ->
  t
(** @raise Invalid_argument if [num_switches <= 0] or [capacity <= 0]. *)

val epoch : t -> int
(** Next epoch to be simulated (0 before the first {!tick}). *)

val num_switches : t -> int

val switches : t -> Dream_switch.Switch.t array

val allocator : t -> Dream_alloc.Allocator.t

val submit :
  t ->
  spec:Dream_tasks.Task_spec.t ->
  topology:Dream_traffic.Topology.t ->
  source:Dream_traffic.Source.t ->
  duration:int ->
  [ `Admitted of int | `Rejected ]
(** Offer a task: admission control decides (step 2 of the workflow).
    [source] supplies the task's traffic (synthetic or a replayed trace);
    [duration] is the task's lifetime in epochs. *)

val tick : t -> unit
(** Simulate one measurement epoch for all active tasks. *)

val run : t -> epochs:int -> unit
(** [tick] repeatedly. *)

val active_tasks : t -> int

val active_task_ids : t -> int list

val last_report : t -> task_id:int -> Dream_tasks.Report.t option
(** Most recent report of an active task (step 5 of the workflow). *)

val smoothed_accuracy : t -> task_id:int -> float option
(** Current smoothed estimated global accuracy of an active task. *)

val finalize : t -> unit
(** Close out still-active tasks (end of experiment), recording their
    partial lifetimes; the controller must not be ticked afterwards. *)

val records : t -> Metrics.record list
(** All finished (or finalized) and rejected task records. *)

val summary : t -> Metrics.summary
(** Includes the {!robustness} counters. *)

val faults : t -> Dream_fault.Fault_model.t option
(** The live fault model, when the config enabled injection. *)

val telemetry : t -> Dream_obs.Telemetry.t option
(** The telemetry bundle the config attached, if any.  The controller
    only ever appends to it; exporting is the owner's job
    ({!Dream_obs.Telemetry.write_dir}). *)

val robustness : t -> Metrics.robustness
(** Cumulative fault/recovery counters ({!Metrics.no_faults} when no fault
    spec is configured). *)

type delay_sample = {
  epoch : int;
  fetch_ms : float;  (** modelled counter-fetch time *)
  save_ms : float;  (** modelled incremental rule-update time *)
  report_ms : float;  (** measured controller time: reports + estimators *)
  allocate_ms : float;  (** measured controller time: allocation round *)
  configure_ms : float;  (** measured controller time: divide-and-merge *)
}

val delay_samples : t -> delay_sample list
(** One sample per simulated epoch, oldest first (Fig 17). *)

val total_rules_installed : t -> int
val total_rules_fetched : t -> int
(** Cumulative switch-side rule churn, for the incremental-update stats. *)

(** {2 Crash consistency}

    The controller can persist its full state between ticks: {!snapshot}
    serializes a sealed, deterministic checkpoint document, and an attached
    write-ahead {!Dream_recovery.Journal} records every control-plane
    action (admissions, rejections, allocation changes, rule installs and
    deletes, task endings, switch crash/recovery observations) before its
    effects are applied.

    Two restart paths consume them.  {!restore} rebuilds a standalone
    controller — network and all — from a snapshot alone: a restored run
    produces bit-identical per-epoch behaviour to the run that wrote the
    checkpoint.  {!recover} is fail-over: the switches, data planes and
    fault model {e survive} the controller crash, so the new controller
    re-attaches to the live network, replays the journal suffix to bring
    task membership, records and allocations current, fast-forwards each
    task's traffic source to the recovery epoch, and audits every reachable
    switch against the restored rule state — strays removed, missing rules
    reinstalled, both tallied in {!robustness}.  Task measurement state
    between the checkpoint and the crash (counter readings, smoothed
    accuracies) is legitimately lost; the crash-recovery experiment
    measures exactly that accuracy dip and its reconvergence time. *)

val set_journal : t -> Dream_recovery.Journal.sink option -> unit
(** Attach (or detach) a write-ahead journal.  [None] by default: without
    a sink, runs journal nothing and behave bit-identically to builds
    before crash consistency existed. *)

val journal : t -> Dream_recovery.Journal.sink option

val controller_crash_pending : t -> bool
(** Whether the fault model declared a controller crash during the last
    {!tick}.  The driver owning the controller decides what to do — in the
    crash-recovery experiment it builds a successor with {!recover}. *)

val storm_tasks_pending : t -> int
(** Extra task submissions the fault model's tenant admission storm asked
    for during the last {!tick} (0 outside storms).  The driver owning
    the workload decides what to submit; the controller's admission
    control treats storm tasks like any others. *)

val degraded_mode : t -> bool
(** Whether the degraded-mode machinery (breakers, deadline scheduler) is
    active — i.e. both [config.degraded] and [config.faults] were set. *)

val breaker_states : t -> Dream_switch.Breaker.state array
(** Current per-switch circuit-breaker states; empty array outside
    degraded mode. *)

val staleness_of : t -> task_id:int -> int option
(** The task's bounded-staleness level: consecutive epochs it reported
    with at least one stale or missing switch.  [None] if not active. *)

val task_switches : t -> task_id:int -> Dream_traffic.Switch_id.Set.t option
(** Switches the task needs counters on; [None] if not active.  The chaos
    oracle uses this to decide whether a staleness level above the shed
    cap is explained by an unreachable switch. *)

val staleness_levels : t -> int list
(** Staleness levels of all active tasks, ascending. *)

val check_invariants_now : t -> Dream_recovery.Invariant.violation list
(** Run the runtime invariant checker against the controller's current
    state, exactly as the in-tick check ([config.check_invariants]) does —
    same task ordering, same reachability predicate.  Read-only; external
    oracles (the chaos harness) call it between ticks. *)

val max_staleness : t -> int
(** Largest staleness level among active tasks (0 when none). *)

val snapshot : t -> string
(** Serialize the full controller state — config, fault model, allocator,
    every switch's installed rules, all records and robustness counters,
    and every active task's complete runtime state (spec, topology,
    counters, EWMA estimators, traffic source RNG) — as a sealed text
    document.  Call between ticks. *)

val checkpoint : t -> string
(** {!snapshot}, then truncate the attached journal: the snapshot now
    subsumes everything the journal held. *)

val restore : string -> (t, string) result
(** Rebuild a standalone controller from a {!snapshot} document,
    reconstructing the switch network and fault model from the checkpoint.
    [Error] on a bad checksum, wrong magic, or malformed body. *)

type env
(** The part of the simulation that outlives a controller crash: switches
    (with their TCAM contents), data planes and the fault model. *)

val environment : t -> env
(** Capture the live network before tearing a controller down. *)

val recover :
  env:env ->
  snapshot:string ->
  journal:Dream_recovery.Journal.entry list ->
  at_epoch:int ->
  (t, string) result
(** Fail over onto the live [env]: restore controller-private state from
    [snapshot], replay the [journal] suffix, fast-forward traffic sources
    to [at_epoch], reconcile every reachable switch, and resume at
    [at_epoch].  The successor has no journal attached; re-attach one with
    {!set_journal}. *)
