(** Evaluation metrics (Section 6.1): per-task satisfaction — the fraction
    of its active lifetime a task's accuracy met its bound — summarised by
    mean and 5th percentile, plus rejection and drop ratios over all
    submitted tasks. *)

type outcome = Completed | Dropped | Rejected

type record = {
  task_id : int;
  kind : Dream_tasks.Task_spec.kind;
  outcome : outcome;
  arrived_at : int;
  ended_at : int;  (** epoch the task finished, was dropped, or was rejected *)
  active_epochs : int;
  satisfaction : float;  (** satisfied epochs / active epochs; 0 if never active *)
  mean_accuracy : float;  (** average scored accuracy while active *)
}

type summary = {
  submitted : int;
  admitted : int;
  rejected : int;
  dropped : int;
  completed : int;
  mean_satisfaction : float;  (** over admitted tasks, in \[0, 100\] *)
  p5_satisfaction : float;
  rejection_pct : float;  (** rejected / submitted * 100 *)
  drop_pct : float;  (** dropped / submitted * 100 *)
}

val summarize : record list -> summary

val pp_summary : Format.formatter -> summary -> unit

val satisfaction_values : record list -> float list
(** Satisfaction (as a percentage) of every admitted task. *)
