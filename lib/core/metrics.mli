(** Evaluation metrics (Section 6.1): per-task satisfaction — the fraction
    of its active lifetime a task's accuracy met its bound — summarised by
    mean and 5th percentile, plus rejection and drop ratios over all
    submitted tasks. *)

type outcome = Completed | Dropped | Rejected

type record = {
  task_id : int;
  kind : Dream_tasks.Task_spec.kind;
  outcome : outcome;
  arrived_at : int;
  ended_at : int;  (** epoch the task finished, was dropped, or was rejected *)
  active_epochs : int;
  satisfaction : float;  (** satisfied epochs / active epochs; 0 if never active *)
  mean_accuracy : float;  (** average scored accuracy while active *)
}

type robustness = {
  crashes : int;  (** switch crash events *)
  recoveries : int;  (** switches that came back up *)
  switch_down_epochs : int;  (** sum over epochs of down-switch count *)
  fetch_timeouts : int;  (** counter-fetch batches that timed out *)
  fetch_retries : int;  (** retry attempts issued after timeouts *)
  fetch_failures : int;  (** fetches abandoned after the retry budget ran out *)
  stale_epochs : int;  (** task-switch epochs served from the previous epoch's counters *)
  counters_lost : int;  (** individual counters dropped from otherwise-successful batches *)
  install_failures : int;  (** rule installs that did not land *)
  recovery_reinstalls : int;  (** rules reinstalled on freshly recovered switches *)
  controller_crashes : int;  (** controller fail-overs survived *)
  reconcile_removed : int;  (** stray rules deleted by the post-crash switch audit *)
  reconcile_installed : int;  (** missing rules reinstalled by the post-crash switch audit *)
  invariant_violations : int;  (** violations flagged by the runtime invariant checker *)
  partitions : int;  (** control-channel partition windows that opened *)
  partition_epochs : int;  (** sum over epochs of unreachable-switch count *)
  breaker_opens : int;  (** circuit-breaker trips (including probe-failure re-opens) *)
  breaker_probes : int;  (** half-open probes issued by open breakers *)
  breaker_skips : int;  (** fetches skipped outright because a breaker was open *)
  sheds : int;  (** task fetches shed by the epoch-deadline scheduler *)
}

val no_faults : robustness
(** All counters zero — what a run without fault injection reports. *)

type summary = {
  submitted : int;
  admitted : int;
  rejected : int;
  dropped : int;
  completed : int;
  mean_satisfaction : float;  (** over admitted tasks, in \[0, 100\] *)
  p5_satisfaction : float;
  rejection_pct : float;  (** rejected / submitted * 100 *)
  drop_pct : float;  (** dropped / submitted * 100 *)
  robustness : robustness;  (** {!no_faults} unless fault injection ran *)
}

val summarize : ?robustness:robustness -> record list -> summary

val pp_summary : Format.formatter -> summary -> unit

val pp_robustness : Format.formatter -> robustness -> unit

val satisfaction_values : record list -> float list
(** Satisfaction (as a percentage) of every admitted task. *)
