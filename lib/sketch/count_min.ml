type t = {
  width : int;
  depth : int;
  seed : int;
  rows : float array array; (* depth x width *)
  mutable total : float;
}

let create ~width ~depth ~seed =
  if width <= 0 then invalid_arg "Count_min.create: width must be positive";
  if depth <= 0 then invalid_arg "Count_min.create: depth must be positive";
  { width; depth; seed; rows = Array.init depth (fun _ -> Array.make width 0.0); total = 0.0 }

let width t = t.width

let depth t = t.depth

let cells t = t.width * t.depth

(* splitmix64 finalizer over (key, row, seed): cheap, deterministic, and
   well-mixed across rows. *)
let bucket t ~key row =
  let open Int64 in
  let z = of_int (key lxor (row * 0x9E3779B9) lxor (t.seed * 0x85EBCA6B)) in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (rem (logand z max_int) (of_int t.width))

let update t ~key volume =
  if volume < 0.0 then invalid_arg "Count_min.update: negative volume";
  for row = 0 to t.depth - 1 do
    let b = bucket t ~key row in
    t.rows.(row).(b) <- t.rows.(row).(b) +. volume
  done;
  t.total <- t.total +. volume

let estimate t ~key =
  let best = ref infinity in
  for row = 0 to t.depth - 1 do
    let v = t.rows.(row).(bucket t ~key row) in
    if v < !best then best := v
  done;
  if !best = infinity then 0.0 else !best

let total t = t.total

let epsilon t = Float.exp 1.0 /. float_of_int t.width

let failure_probability t = Float.exp (-.float_of_int t.depth)

let error_bound t = epsilon t *. t.total

let merge a b =
  if a.width <> b.width || a.depth <> b.depth then
    invalid_arg "Count_min.merge: dimension mismatch";
  if a.seed <> b.seed then invalid_arg "Count_min.merge: seed mismatch";
  let merged = create ~width:a.width ~depth:a.depth ~seed:a.seed in
  for row = 0 to a.depth - 1 do
    for col = 0 to a.width - 1 do
      merged.rows.(row).(col) <- a.rows.(row).(col) +. b.rows.(row).(col)
    done
  done;
  merged.total <- a.total +. b.total;
  merged

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) t.rows;
  t.total <- 0.0
