(** NetFlow-style sampled heavy-hitter detection — the third point in the
    design space the paper's related work contrasts with TCAMs and
    sketches (sampling-based systems like CSAMP and Volley).

    Each epoch the detector keeps at most [budget] sampled flow records
    (uniform flow sampling); a key is reported when its sampled volume,
    scaled by the inverse sampling rate, exceeds the threshold.  Both
    false negatives (unlucky heavy flows) and false positives (lucky
    medium flows) occur, unlike the one-sided errors of TCAMs (recall
    loss only) and sketches (precision loss only) — which is exactly the
    trade-off the ablation bench plots. *)

type t

val create :
  spec:Dream_tasks.Task_spec.t -> budget:int -> seed:int -> unit -> t
(** [budget] is the resource count: flow records retained per epoch.
    @raise Invalid_argument if [budget <= 0]. *)

val budget : t -> int

val observe_epoch : t -> Dream_traffic.Aggregate.t -> unit
(** Sample one epoch's flows under the task filter. *)

val report : t -> epoch:int -> Dream_tasks.Report.t
(** Keys whose scaled sampled volume exceeds the threshold. *)

val real_accuracy : t -> Dream_traffic.Aggregate.t -> precision:bool -> float
(** Ground-truth precision / recall of the current report. *)
