module Switch_id = Dream_traffic.Switch_id
module Ewma = Dream_util.Ewma
module Dream_allocator = Dream_alloc.Dream_allocator
module Task_view = Dream_alloc.Task_view

(* The pool is a single pseudo-switch. *)
let pool_switch = 0

type entry = { task : Sketch_hh.t; smoothed : Ewma.t }

type t = {
  allocator : Dream_allocator.t;
  entries : (int, entry) Hashtbl.t;
}

let create ?(config = Dream_allocator.default_config) ~capacity () =
  {
    allocator = Dream_allocator.create config ~capacities:[ (pool_switch, capacity) ];
    entries = Hashtbl.create 16;
  }

let capacity t = Dream_allocator.capacity t.allocator pool_switch

let allocation t ~id =
  match Switch_id.Map.find_opt pool_switch (Dream_allocator.allocation_of t.allocator ~task_id:id) with
  | Some v -> v
  | None -> 0

let view ~id (entry : entry) =
  {
    Task_view.id;
    switches = Switch_id.Set.singleton pool_switch;
    bound = (Sketch_hh.spec entry.task).Dream_tasks.Task_spec.accuracy_bound;
    drop_priority = id;
    overall = (fun _ -> Ewma.value_or entry.smoothed 1.0);
    (* A sketch always exercises every cell it holds. *)
    used = (fun _ -> Sketch_hh.cells entry.task);
  }

let try_admit t ~id task =
  let entry = { task; smoothed = Ewma.create ~history:0.4 } in
  if Dream_allocator.try_admit t.allocator (view ~id entry) then begin
    Hashtbl.replace t.entries id entry;
    Sketch_hh.resize task ~cells:(max 4 (allocation t ~id));
    true
  end
  else false

let release t ~id =
  Dream_allocator.release t.allocator ~task_id:id;
  Hashtbl.remove t.entries id

let active t = Hashtbl.length t.entries

let observe_epoch t aggregate =
  (* Every task sketches the epoch and refreshes its precision estimate. *)
  Hashtbl.iter
    (fun _ entry ->
      Sketch_hh.observe_epoch entry.task aggregate;
      ignore (Ewma.update entry.smoothed (Sketch_hh.estimate_precision entry.task)))
    t.entries;
  (* One DREAM allocation round over the pool, then resize. *)
  let views = Hashtbl.fold (fun id entry acc -> view ~id entry :: acc) t.entries [] in
  Dream_allocator.reallocate t.allocator views;
  Hashtbl.iter
    (fun id entry ->
      let cells = max 4 (allocation t ~id) in
      Sketch_hh.resize entry.task ~cells)
    t.entries

let reports t ~epoch =
  Hashtbl.fold (fun id entry acc -> (id, Sketch_hh.report entry.task ~epoch) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let smoothed_precision t ~id =
  match Hashtbl.find_opt t.entries id with
  | Some entry -> Ewma.value entry.smoothed
  | None -> None
