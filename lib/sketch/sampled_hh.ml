module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Aggregate = Dream_traffic.Aggregate
module Flow = Dream_traffic.Flow
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth

type t = {
  spec : Task_spec.t;
  budget : int;
  rng : Rng.t;
  mutable sampled : (int * float) list; (* (leaf key, sampled volume) *)
  mutable rate : float; (* sampling rate used this epoch *)
}

let create ~spec ~budget ~seed () =
  if budget <= 0 then invalid_arg "Sampled_hh.create: budget must be positive";
  { spec; budget; rng = Rng.create seed; sampled = []; rate = 1.0 }

let budget t = t.budget

let key_of t addr =
  Prefix.bits (Prefix.ancestor_at (Prefix.of_address addr) t.spec.Task_spec.leaf_length)

let observe_epoch t aggregate =
  let flows = Aggregate.flows_in aggregate t.spec.Task_spec.filter in
  let total = List.length flows in
  (* Uniform flow sampling at the rate that fits the record budget. *)
  let rate = if total <= t.budget then 1.0 else float_of_int t.budget /. float_of_int total in
  t.rate <- rate;
  let table = Hashtbl.create 256 in
  List.iter
    (fun (f : Flow.t) ->
      if rate >= 1.0 || Rng.bernoulli t.rng rate then begin
        let key = key_of t f.Flow.addr in
        let existing = match Hashtbl.find_opt table key with Some v -> v | None -> 0.0 in
        Hashtbl.replace table key (existing +. f.Flow.volume)
      end)
    flows;
  t.sampled <- Hashtbl.fold (fun key v acc -> (key, v) :: acc) table []

let detections t =
  let threshold = t.spec.Task_spec.threshold in
  List.filter_map
    (fun (key, sampled_volume) ->
      let scaled = sampled_volume /. t.rate in
      if scaled > threshold then Some (key, scaled) else None)
    t.sampled
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let report t ~epoch =
  let leaf_length = t.spec.Task_spec.leaf_length in
  let items =
    List.map
      (fun (key, scaled) ->
        { Report.prefix = Prefix.make ~bits:key ~length:leaf_length; magnitude = scaled })
      (detections t)
  in
  { Report.kind = t.spec.Task_spec.kind; epoch; items }

let real_accuracy t aggregate ~precision =
  let truth = Ground_truth.true_heavy_hitters t.spec aggregate in
  let reported =
    Prefix.Set.of_list
      (List.map
         (fun (key, _) -> Prefix.make ~bits:key ~length:t.spec.Task_spec.leaf_length)
         (detections t))
  in
  let hits = Prefix.Set.cardinal (Prefix.Set.inter reported truth) in
  let denominator =
    if precision then Prefix.Set.cardinal reported else Prefix.Set.cardinal truth
  in
  if denominator = 0 then 1.0 else float_of_int hits /. float_of_int denominator
