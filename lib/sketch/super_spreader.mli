(** Super-spreader detection: sources contacting more than [k] distinct
    destinations in an epoch (port scans, worm propagation, DDoS sources).

    The paper singles this out as a task TCAM counters cannot express but
    sketches can (Section 3: sketches "can cover a wider range of
    measurement tasks than TCAMs (volume and connection-based tasks such
    as Super-Spreader detection)").  The structure is a Count-Min-style
    array whose cells are distinct-counting bitmaps: each (src, dst) pair
    ors one destination bit into one cell per row; a source's fan-out
    estimate is the minimum over its rows, so collisions only ever inflate
    it (perfect recall, estimated precision — the same accuracy shape as
    {!Sketch_hh}). *)

type t

val create :
  ?depth:int -> ?cell_bits:int -> cells:int -> threshold:int -> seed:int -> unit -> t
(** [cells] is the total resource budget in bitmap cells (each [cell_bits]
    = 64 bits by default, [depth] = 4 rows); [threshold] is the fan-out k.
    @raise Invalid_argument if [cells < depth]. *)

val cells : t -> int

val threshold : t -> int

val observe : t -> src:int -> dst:int -> unit
(** Record one connection. *)

val begin_epoch : t -> unit
(** Clear the sketch and the candidate set for a new epoch. *)

val fanout : t -> src:int -> float
(** Estimated distinct destinations contacted by [src] this epoch. *)

val detected : t -> (int * float) list
(** Sources whose estimated fan-out exceeds the threshold, with their
    estimates, sorted by source. *)

val estimate_precision : t -> float
(** 1 for detections clearing the threshold by the estimated collision
    inflation, 0.5 inside the uncertainty band; averaged (1 if none). *)
