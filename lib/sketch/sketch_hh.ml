module Prefix = Dream_prefix.Prefix
module Aggregate = Dream_traffic.Aggregate
module Flow = Dream_traffic.Flow
module Task_spec = Dream_tasks.Task_spec
module Report = Dream_tasks.Report
module Ground_truth = Dream_tasks.Ground_truth

type t = {
  spec : Task_spec.t;
  depth : int;
  seed : int;
  mutable sketch : Count_min.t;
  candidates : (int, unit) Hashtbl.t; (* keys seen this epoch *)
}

let dims ~cells ~depth =
  if cells < depth then invalid_arg "Sketch_hh.create: fewer cells than rows";
  max 1 (cells / depth)

let create ~spec ~cells ?(depth = 4) ~seed () =
  let width = dims ~cells ~depth in
  {
    spec;
    depth;
    seed;
    sketch = Count_min.create ~width ~depth ~seed;
    candidates = Hashtbl.create 256;
  }

let spec t = t.spec

let cells t = Count_min.cells t.sketch

let resize t ~cells =
  let width = dims ~cells ~depth:t.depth in
  if width <> Count_min.width t.sketch then
    t.sketch <- Count_min.create ~width ~depth:t.depth ~seed:t.seed

let key_of t addr =
  Prefix.bits (Prefix.ancestor_at (Prefix.of_address addr) t.spec.Task_spec.leaf_length)

let observe_epoch t aggregate =
  Count_min.reset t.sketch;
  Hashtbl.reset t.candidates;
  let filter = t.spec.Task_spec.filter in
  List.iter
    (fun (f : Flow.t) ->
      let key = key_of t f.Flow.addr in
      Count_min.update t.sketch ~key f.Flow.volume;
      Hashtbl.replace t.candidates key ())
    (Aggregate.flows_in aggregate filter)

let detections t =
  let threshold = t.spec.Task_spec.threshold in
  Hashtbl.fold
    (fun key () acc ->
      let estimate = Count_min.estimate t.sketch ~key in
      if estimate > threshold then (key, estimate) :: acc else acc)
    t.candidates []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let report t ~epoch =
  let leaf_length = t.spec.Task_spec.leaf_length in
  let items =
    List.map
      (fun (key, estimate) ->
        { Report.prefix = Prefix.make ~bits:key ~length:leaf_length; magnitude = estimate })
      (detections t)
  in
  { Report.kind = t.spec.Task_spec.kind; epoch; items }

let estimate_precision t =
  let threshold = t.spec.Task_spec.threshold in
  let bound = Count_min.error_bound t.sketch in
  match detections t with
  | [] -> 1.0
  | ds ->
    let value (_, estimate) =
      (* The estimate never under-counts, so [estimate - bound] is a
         w.h.p. lower bound on the true volume: clearing the threshold by
         the bound confirms the detection. *)
      if estimate -. bound > threshold then 1.0 else 0.5
    in
    List.fold_left (fun acc d -> acc +. value d) 0.0 ds /. float_of_int (List.length ds)

let real_accuracy t aggregate ~precision =
  let truth = Ground_truth.true_heavy_hitters t.spec aggregate in
  let reported =
    Prefix.Set.of_list
      (List.map
         (fun (key, _) -> Prefix.make ~bits:key ~length:t.spec.Task_spec.leaf_length)
         (detections t))
  in
  let hits = Prefix.Set.cardinal (Prefix.Set.inter reported truth) in
  let denominator =
    if precision then Prefix.Set.cardinal reported else Prefix.Set.cardinal truth
  in
  if denominator = 0 then 1.0 else float_of_int hits /. float_of_int denominator
