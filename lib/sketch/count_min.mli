(** Count-Min sketch (Cormode & Muthukrishnan [16]).

    The measurement primitive DREAM's paper names as its natural extension
    beyond TCAMs (Section 3): a [depth] x [width] array of counters where
    each update increments one counter per row (chosen by a per-row hash),
    and a point query returns the minimum over the rows.  Estimates never
    under-count; with probability at least [1 - e^-depth] the over-count is
    below [(e / width) * total].  The sketch's resource footprint is its
    cell count — the analogue of a task's TCAM entries. *)

type t

val create : width:int -> depth:int -> seed:int -> t
(** @raise Invalid_argument unless [width > 0] and [depth > 0].  Sketches
    must share a seed (and dimensions) to be mergeable. *)

val width : t -> int
val depth : t -> int
val cells : t -> int
(** [width * depth]: the resource cost. *)

val update : t -> key:int -> float -> unit
(** Add volume to a key.  @raise Invalid_argument on negative volume. *)

val estimate : t -> key:int -> float
(** Point query: an upper bound on the key's true volume. *)

val total : t -> float
(** Total volume inserted. *)

val epsilon : t -> float
(** e / width. *)

val failure_probability : t -> float
(** e^-depth: probability a query exceeds the error bound. *)

val error_bound : t -> float
(** [epsilon * total]: the with-high-probability cap on over-counting. *)

val merge : t -> t -> t
(** Cell-wise sum; the merge of two streams.
    @raise Invalid_argument when dimensions or seeds differ. *)

val reset : t -> unit
(** Zero all cells (start a new epoch). *)
