type t = {
  depth : int;
  width : int;
  threshold : int;
  seed : int;
  rows : Distinct.t array array; (* depth x width *)
  candidates : (int, unit) Hashtbl.t; (* sources seen this epoch *)
  mutable pairs : int; (* connections observed this epoch *)
}

let create ?(depth = 4) ?(cell_bits = 64) ~cells ~threshold ~seed () =
  if cells < depth then invalid_arg "Super_spreader.create: fewer cells than rows";
  if threshold <= 0 then invalid_arg "Super_spreader.create: threshold must be positive";
  let width = max 1 (cells / depth) in
  {
    depth;
    width;
    threshold;
    seed;
    rows =
      Array.init depth (fun row ->
          Array.init width (fun col -> Distinct.create ~bits:cell_bits ~seed:(seed + (row * 8191) + col)));
    candidates = Hashtbl.create 256;
    pairs = 0;
  }

let cells t = t.depth * t.width

let threshold t = t.threshold

let bucket t ~src row =
  let open Int64 in
  let z = of_int (src lxor (row * 0x85EBCA6B) lxor (t.seed * 0xC2B2AE35)) in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 31) in
  to_int (rem (logand z max_int) (of_int t.width))

let observe t ~src ~dst =
  for row = 0 to t.depth - 1 do
    Distinct.add t.rows.(row).(bucket t ~src row) dst
  done;
  Hashtbl.replace t.candidates src ();
  t.pairs <- t.pairs + 1

let begin_epoch t =
  Array.iter (fun row -> Array.iter Distinct.reset row) t.rows;
  Hashtbl.reset t.candidates;
  t.pairs <- 0

let fanout t ~src =
  let best = ref infinity in
  for row = 0 to t.depth - 1 do
    let v = Distinct.estimate t.rows.(row).(bucket t ~src row) in
    if v < !best then best := v
  done;
  if !best = infinity then 0.0 else !best

let detected t =
  Hashtbl.fold
    (fun src () acc ->
      let estimate = fanout t ~src in
      if estimate > float_of_int t.threshold then (src, estimate) :: acc else acc)
    t.candidates []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let estimate_precision t =
  match detected t with
  | [] -> 1.0
  | ds ->
    (* Expected collision inflation per cell: other sources' destinations
       landing in the same bucket — on average pairs / width of them. *)
    let inflation = float_of_int t.pairs /. float_of_int t.width in
    let value (_, estimate) =
      if estimate -. inflation > float_of_int t.threshold then 1.0 else 0.5
    in
    List.fold_left (fun acc d -> acc +. value d) 0.0 ds /. float_of_int (List.length ds)
