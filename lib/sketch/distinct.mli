(** Approximate distinct counting with linear (bitmap) counting.

    A [b]-bit bitmap; each element sets one hashed bit; the distinct-count
    estimate is [-b * ln(zeros / b)] (Whang et al.), accurate while the
    load factor stays moderate.  Used per-cell by {!Super_spreader} to
    count distinct destinations per source — the connection-based
    measurement the paper names as sketch-only territory (Section 3). *)

type t

val create : bits:int -> seed:int -> t
(** @raise Invalid_argument if [bits <= 0]. *)

val bits : t -> int

val add : t -> int -> unit
(** Record one element (by integer identity). *)

val estimate : t -> float
(** Estimated number of distinct elements added.  Saturates at
    [b * ln b] when every bit is set. *)

val saturated : t -> bool
(** All bits set: the estimate is only a lower bound now. *)

val merge_into : t -> t -> unit
(** [merge_into dst src]: bitwise-or [src] into [dst].
    @raise Invalid_argument on size or seed mismatch. *)

val reset : t -> unit
