(** DREAM-style adaptive allocation over a shared sketch-memory pool.

    This realises the paper's claimed generality (Section 3): the same
    machinery that moves TCAM entries between tasks — accuracy-driven
    rich/poor classification, adaptive step sizes, phantom headroom and
    admission control — reallocates Count-Min cells between sketch tasks,
    using each task's estimated precision in place of the TCAM estimators.
    The pool is modelled as a single-switch {!Dream_alloc.Dream_allocator}. *)

type t

val create : ?config:Dream_alloc.Dream_allocator.config -> capacity:int -> unit -> t
(** A pool of [capacity] sketch cells. *)

val capacity : t -> int

val try_admit : t -> id:int -> Sketch_hh.t -> bool
(** Admission control: headroom-gated, as for TCAM tasks.  On success the
    task is immediately resized to its initial allocation. *)

val release : t -> id:int -> unit

val active : t -> int

val allocation : t -> id:int -> int
(** Current cell allocation of a task (0 if not admitted). *)

val observe_epoch : t -> Dream_traffic.Aggregate.t -> unit
(** Feed one epoch's traffic to every admitted task, refresh their
    smoothed precision estimates, run one allocation round, and resize the
    sketches to their new allocations. *)

val reports : t -> epoch:int -> (int * Dream_tasks.Report.t) list
(** Per-task reports for the epoch just observed. *)

val smoothed_precision : t -> id:int -> float option
