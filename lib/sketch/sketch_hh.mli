(** Sketch-based heavy-hitter detection — the measurement primitive DREAM's
    paper sketches as future work (Section 3: "We can augment DREAM to use
    sketches, since sketch accuracy depends on traffic properties and it is
    possible to estimate this accuracy").

    Unlike the TCAM path, a sketch sees every flow immediately (no
    drill-down latency) but over-counts under hash collisions, so the
    failure mode flips: recall is perfect, precision is not.  The accuracy
    estimator exploits the Count-Min error bound: a detection whose
    estimate clears the threshold by more than the bound is certainly
    true (value 1); one inside the error band may be a collision artefact
    (value 0.5).  The average of the values estimates precision, playing
    the role the paper's TCAM estimators play for allocation. *)

type t

val create : spec:Dream_tasks.Task_spec.t -> cells:int -> ?depth:int -> seed:int -> unit -> t
(** A sketch task with a [cells] resource budget, split into [depth] rows
    (default 4) of [cells / depth] counters.
    @raise Invalid_argument if [cells < depth]. *)

val spec : t -> Dream_tasks.Task_spec.t

val cells : t -> int

val resize : t -> cells:int -> unit
(** Apply a new resource allocation (takes effect immediately; the next
    {!observe_epoch} uses the new dimensions). *)

val observe_epoch : t -> Dream_traffic.Aggregate.t -> unit
(** Feed one epoch's traffic (keys are leaf prefixes under the task's
    filter, as for the TCAM tasks). *)

val report : t -> epoch:int -> Dream_tasks.Report.t
(** Keys whose estimate exceeds the threshold, with estimates as
    magnitudes. *)

val estimate_precision : t -> float
(** Estimated precision of the current report, in \[0, 1\] (1 when nothing
    is detected). *)

val real_accuracy : t -> Dream_traffic.Aggregate.t -> precision:bool -> float
(** Ground-truth precision (or recall with [~precision:false]) of the
    current report against the epoch's traffic — evaluation only. *)
