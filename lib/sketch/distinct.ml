type t = { bits : int; seed : int; words : Bytes.t; mutable set_bits : int }

let create ~bits ~seed =
  if bits <= 0 then invalid_arg "Distinct.create: bits must be positive";
  { bits; seed; words = Bytes.make ((bits + 7) / 8) '\000'; set_bits = 0 }

let bits t = t.bits

let mix t x =
  let open Int64 in
  let z = of_int (x lxor (t.seed * 0x9E3779B9)) in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  to_int (rem (logand z max_int) (of_int t.bits))

let add t x =
  let bit = mix t x in
  let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
  let current = Char.code (Bytes.get t.words byte) in
  if current land mask = 0 then begin
    Bytes.set t.words byte (Char.chr (current lor mask));
    t.set_bits <- t.set_bits + 1
  end

let estimate t =
  let zeros = t.bits - t.set_bits in
  let b = float_of_int t.bits in
  if zeros = 0 then b *. Float.log b
  else -.b *. Float.log (float_of_int zeros /. b)

let saturated t = t.set_bits = t.bits

let merge_into dst src =
  if dst.bits <> src.bits then invalid_arg "Distinct.merge_into: size mismatch";
  if dst.seed <> src.seed then invalid_arg "Distinct.merge_into: seed mismatch";
  let set_bits = ref 0 in
  for i = 0 to Bytes.length dst.words - 1 do
    let merged = Char.code (Bytes.get dst.words i) lor Char.code (Bytes.get src.words i) in
    Bytes.set dst.words i (Char.chr merged);
    (* popcount per byte *)
    let rec count n acc = if n = 0 then acc else count (n lsr 1) (acc + (n land 1)) in
    set_bits := !set_bits + count merged 0
  done;
  dst.set_bits <- !set_bits

let reset t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.set_bits <- 0
