(** Monotonic time source for the telemetry layer.

    The controller used to call [Sys.time] directly whenever it wanted to
    price its own computation; every such clock read now goes through a
    {!t}, so tests can substitute a {!manual} clock and get bit-for-bit
    deterministic spans and delay samples. *)

type t

val now_ms : t -> float
(** Current reading in milliseconds.  Monotone non-decreasing. *)

val cpu : t
(** Process CPU time ([Sys.time]), scaled to milliseconds — the default,
    and exactly the clock the controller used before telemetry existed. *)

type manual

val manual : ?start:float -> unit -> t * manual
(** A clock that only moves when told to: [now_ms] returns the last value
    set through {!advance}.  Deterministic by construction. *)

val advance : manual -> float -> unit
(** Move the manual clock forward by [ms].
    @raise Invalid_argument on a negative step (the clock is monotonic). *)
