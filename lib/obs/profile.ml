type stat = { path : string; count : int; wall_ms : float; gc : Gc_stats.reading }

(* Aggregation cell: one per distinct path, mutated in place so a span on
   the hot path costs a hashtable hit and a few field writes. *)
type cell = {
  mutable c_count : int;
  mutable c_wall_ms : float;
  mutable c_gc : Gc_stats.reading;
}

type t = {
  clock : Clock.t;
  gc : Gc_stats.t;
  tbl : (string, cell) Hashtbl.t;
  mutable open_spans : string list;  (** innermost first *)
}

let create ?(clock = Clock.cpu) ?(gc = Gc_stats.real) () =
  { clock; gc; tbl = Hashtbl.create 16; open_spans = [] }

let clock t = t.clock

let gc_source t = t.gc

let reading t = Gc_stats.read t.gc

let record t ~path ~wall_ms ~gc =
  match Hashtbl.find_opt t.tbl path with
  | Some c ->
    c.c_count <- c.c_count + 1;
    c.c_wall_ms <- c.c_wall_ms +. wall_ms;
    c.c_gc <- Gc_stats.add c.c_gc gc
  | None -> Hashtbl.replace t.tbl path { c_count = 1; c_wall_ms = wall_ms; c_gc = gc }

let span t name f =
  let path =
    match t.open_spans with [] -> name | inner :: _ -> inner ^ "/" ^ name
  in
  t.open_spans <- path :: t.open_spans;
  let t0 = Clock.now_ms t.clock in
  let g0 = Gc_stats.read t.gc in
  Fun.protect
    ~finally:(fun () ->
      let wall_ms = Clock.now_ms t.clock -. t0 in
      let gc = Gc_stats.sub (Gc_stats.read t.gc) g0 in
      (match t.open_spans with
      | p :: rest when String.equal p path -> t.open_spans <- rest
      | _ -> ());
      record t ~path ~wall_ms ~gc)
    f

let stats t =
  Hashtbl.fold
    (fun path c acc ->
      { path; count = c.c_count; wall_ms = c.c_wall_ms; gc = c.c_gc } :: acc)
    t.tbl []
  |> List.sort (fun a b -> String.compare a.path b.path)

let find t path =
  match Hashtbl.find_opt t.tbl path with
  | Some c -> Some { path; count = c.c_count; wall_ms = c.c_wall_ms; gc = c.c_gc }
  | None -> None

let reset t =
  Hashtbl.reset t.tbl;
  t.open_spans <- []

(* Allocated words this delta covers: minor allocations plus direct major
   allocations; promoted words would otherwise be counted twice. *)
let alloc_words (gc : Gc_stats.reading) =
  gc.Gc_stats.minor_words +. gc.Gc_stats.major_words -. gc.Gc_stats.promoted_words

let observe_epoch _t registry ~wall_ms ~gc =
  let words = alloc_words gc in
  Registry.Histogram.observe (Registry.histogram registry "epoch_alloc_words") words;
  if wall_ms > 0.0 then
    Registry.Gauge.set (Registry.gauge registry "alloc_rate_words_per_ms") (words /. wall_ms);
  Registry.Counter.add
    (Registry.counter registry "gc_minor_collections")
    gc.Gc_stats.minor_collections;
  Registry.Counter.add
    (Registry.counter registry "gc_major_collections")
    gc.Gc_stats.major_collections;
  Registry.Counter.add (Registry.counter registry "gc_compactions") gc.Gc_stats.compactions;
  if gc.Gc_stats.major_collections > 0 then
    Registry.Histogram.observe (Registry.histogram registry "gc_major_epoch_ms") wall_ms

(* ---- snapshot codec ---- *)

let stat_to_json s =
  Json.Obj
    [
      ("path", Json.Str s.path);
      ("count", Json.Int s.count);
      ("wall_ms", Json.Float s.wall_ms);
      ("minor_words", Json.Float s.gc.Gc_stats.minor_words);
      ("promoted_words", Json.Float s.gc.Gc_stats.promoted_words);
      ("major_words", Json.Float s.gc.Gc_stats.major_words);
      ("minor_collections", Json.Int s.gc.Gc_stats.minor_collections);
      ("major_collections", Json.Int s.gc.Gc_stats.major_collections);
      ("compactions", Json.Int s.gc.Gc_stats.compactions);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "profile stat: field %S has the wrong type" name))
  | None -> Error (Printf.sprintf "profile stat: missing field %S" name)

let stat_of_json j =
  let* path = field "path" Json.to_str j in
  let* count = field "count" Json.to_int j in
  let* wall_ms = field "wall_ms" Json.to_float j in
  let* minor_words = field "minor_words" Json.to_float j in
  let* promoted_words = field "promoted_words" Json.to_float j in
  let* major_words = field "major_words" Json.to_float j in
  let* minor_collections = field "minor_collections" Json.to_int j in
  let* major_collections = field "major_collections" Json.to_int j in
  let* compactions = field "compactions" Json.to_int j in
  Ok
    {
      path;
      count;
      wall_ms;
      gc =
        {
          Gc_stats.minor_words;
          promoted_words;
          major_words;
          minor_collections;
          major_collections;
          compactions;
        };
    }

let stats_to_json stats = Json.List (List.map stat_to_json stats)

let stats_of_json = function
  | Json.List items ->
    List.fold_left
      (fun acc item ->
        let* rev = acc in
        let* s = stat_of_json item in
        Ok (s :: rev))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "profile: expected a JSON list of stats"
