type task_row = {
  epoch : int;
  task : int;
  kind : string;
  accuracy : float;
  satisfied : bool;
  alloc : int;
}

type switch_row = {
  epoch : int;
  switch : int;
  rules : int;
  fetches : int;
  installs : int;
  removals : int;
}

type t = {
  clock : Clock.t;
  registry : Registry.t;
  trace : Trace.t;
  profile : Profile.t option;
  mutable rev_task_rows : task_row list;
  mutable rev_switch_rows : switch_row list;
}

let create ?(clock = Clock.cpu) ?registry ?profile () =
  let registry = match registry with Some r -> r | None -> Registry.create () in
  { clock; registry; trace = Trace.create (); profile; rev_task_rows = [];
    rev_switch_rows = [] }

let clock t = t.clock
let registry t = t.registry
let trace t = t.trace
let profile t = t.profile

let record_task t row = t.rev_task_rows <- row :: t.rev_task_rows

let record_switch t row = t.rev_switch_rows <- row :: t.rev_switch_rows

let task_rows t = List.rev t.rev_task_rows

let switch_rows t = List.rev t.rev_switch_rows

let tasks_csv_header = "epoch,task,kind,accuracy,satisfied,alloc"

let switches_csv_header = "epoch,switch,rules,fetches,installs,removals"

let with_out path f =
  match open_out path with
  | oc ->
    let r =
      match f oc with
      | () -> Ok ()
      | exception Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)
    in
    close_out oc;
    r
  | exception Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)

let ( let* ) = Result.bind

let write_dir t ~dir =
  let path name = Filename.concat dir name in
  let* () =
    with_out (path "trace.jsonl") (fun oc ->
        List.iter
          (fun item ->
            output_string oc (Json.to_string (Trace.item_to_json item));
            output_char oc '\n')
          (Trace.items t.trace))
  in
  let* () =
    with_out (path "metrics.prom") (fun oc -> output_string oc (Registry.to_prometheus t.registry))
  in
  let* () =
    match t.profile with
    | None -> Ok ()
    | Some p ->
      with_out (path "profile.json") (fun oc ->
          output_string oc (Json.to_string (Profile.stats_to_json (Profile.stats p)));
          output_char oc '\n')
  in
  let* () =
    with_out (path "tasks.csv") (fun oc ->
        output_string oc tasks_csv_header;
        output_char oc '\n';
        List.iter
          (fun (r : task_row) ->
            Printf.fprintf oc "%d,%d,%s,%.6f,%d,%d\n" r.epoch r.task r.kind r.accuracy
              (if r.satisfied then 1 else 0)
              r.alloc)
          (task_rows t))
  in
  with_out (path "switches.csv") (fun oc ->
      output_string oc switches_csv_header;
      output_char oc '\n';
      List.iter
        (fun r ->
          Printf.fprintf oc "%d,%d,%d,%d,%d,%d\n" r.epoch r.switch r.rules r.fetches r.installs
            r.removals)
        (switch_rows t))
