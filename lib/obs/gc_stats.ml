type reading = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
  }

let sub a b =
  {
    minor_words = a.minor_words -. b.minor_words;
    promoted_words = a.promoted_words -. b.promoted_words;
    major_words = a.major_words -. b.major_words;
    minor_collections = a.minor_collections - b.minor_collections;
    major_collections = a.major_collections - b.major_collections;
    compactions = a.compactions - b.compactions;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
  }

type t = { read : unit -> reading }

let read t = t.read ()

(* The one blessed GC read: everything else obtains counters through a
   [t], so substituting [manual] makes a profile deterministic. *)
let real =
  {
    read =
      (fun () ->
        let s = Gc.quick_stat () in
        {
          minor_words = s.Gc.minor_words;
          promoted_words = s.Gc.promoted_words;
          major_words = s.Gc.major_words;
          minor_collections = s.Gc.minor_collections;
          major_collections = s.Gc.major_collections;
          compactions = s.Gc.compactions;
        });
  }
[@@lint.allow "determinism-gc"]

type manual = { mutable at : reading }

let manual ?(start = zero) () =
  let m = { at = start } in
  ({ read = (fun () -> m.at) }, m)

let advance m delta = m.at <- add m.at delta
