(** Versioned, machine-readable benchmark snapshot: the [BENCH_<figure>.json]
    artifact every figure harness and micro-benchmark emits, and the unit
    the trajectory tooling ([dream_bench diff]/[trend], the CI perf gate)
    compares.

    A snapshot carries the figure id, the scale it ran at, the seed set,
    a list of named scalar metrics — each with a unit, a gating
    direction, and an optional per-metric tolerance — and the profile
    phases (wall + GC deltas) measured around the run.  Wall-clock
    metrics are normally emitted with {!Info} direction so a noisy
    machine can never fail the gate on them, while deterministic outputs
    (satisfaction percentages, counters, allocation words) gate with
    tight tolerances.

    [of_string] is the exact inverse of [to_string] for every value
    {!validate} accepts; non-finite numbers have no JSON spelling, so a
    NaN snapshot neither writes nor parses — the comparator's bad-input
    exit (124) leans on this. *)

type direction =
  | Lower_better  (** increases beyond tolerance are regressions *)
  | Higher_better  (** decreases beyond tolerance are regressions *)
  | Info  (** tracked in diffs and trends, never gates *)

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;  (** "ms", "words", "pct", "count", … *)
  m_direction : direction;
  m_tolerance_pct : float option;
      (** per-metric override of the comparator's default tolerance *)
}

type t = {
  figure : string;  (** figure id, e.g. ["fig6"], ["degraded-mode"], ["micro"] *)
  quick : bool;  (** quick scale vs [--full]; never compared across scales *)
  seeds : int list;
  metrics : metric list;
  phases : Profile.stat list;
}

val version : int
(** Current schema version, embedded in every document and checked on
    parse. *)

val metric :
  ?unit_:string -> ?direction:direction -> ?tolerance_pct:float -> string -> float -> metric
(** Defaults: unit [""], direction {!Info}, no tolerance override. *)

val direction_to_string : direction -> string
(** ["lower"], ["higher"] or ["info"] — the JSON spelling. *)

val direction_of_string : string -> (direction, string) result

val make :
  figure:string ->
  quick:bool ->
  ?seeds:int list ->
  ?metrics:metric list ->
  ?phases:Profile.stat list ->
  unit ->
  t

val filename : string -> string
(** [filename figure] is ["BENCH_<figure>.json"] with every character
    outside [[A-Za-z0-9_]] mapped to ['_'] (so figure id
    ["degraded-mode"] keeps its historical [BENCH_degraded_mode.json]
    name). *)

val validate : t -> (unit, string) result
(** Every metric and phase value is finite, metric names are unique, and
    tolerances are non-negative. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : t -> string

val of_string : string -> (t, string) result

val write : t -> dir:string -> (string, string) result
(** Validate, then write the one-line JSON document as
    [dir/filename t.figure], creating [dir] (and parents) if needed;
    returns the path written. *)

val read : string -> (t, string) result
(** Load and validate a snapshot file; the error names the path. *)
