type status = Unchanged | Improved | Regressed | Missing | Added

type row = {
  r_name : string;
  r_base : float option;
  r_current : float option;
  r_delta_pct : float;
  r_tolerance_pct : float;
  r_direction : Bench_snapshot.direction;
  r_status : status;
}

type report = { d_figure : string; d_rows : row list; d_regressions : int }

(* Relative change with a defined zero-baseline story: off-zero moves
   have no relative scale, so they read as an infinite-percent change —
   which always exceeds any tolerance and therefore gates. *)
let delta_pct ~base ~current =
  let moved = Float.abs (current -. base) in
  if Float.abs base > 0.0 then (current -. base) /. Float.abs base *. 100.0
  else if moved > 0.0 then begin
    if current > base then Float.infinity else Float.neg_infinity
  end
  else 0.0

let status_of direction ~tol ~delta =
  match direction with
  | Bench_snapshot.Info -> Unchanged
  | Bench_snapshot.Lower_better ->
    if delta > tol then Regressed else if delta < -.tol then Improved else Unchanged
  | Bench_snapshot.Higher_better ->
    if delta < -.tol then Regressed else if delta > tol then Improved else Unchanged

let default_tolerance = 10.0

let alloc_words (gc : Gc_stats.reading) =
  gc.Gc_stats.minor_words +. gc.Gc_stats.major_words -. gc.Gc_stats.promoted_words

(* Phases become informational rows so wall/GC movement is visible in
   every diff without ever gating (machine noise must not fail CI). *)
let phase_rows (base : Profile.stat list) (current : Profile.stat list) =
  let find path stats =
    List.find_opt (fun (s : Profile.stat) -> String.equal s.Profile.path path) stats
  in
  let paths =
    List.sort_uniq String.compare
      (List.map (fun (s : Profile.stat) -> s.Profile.path) (base @ current))
  in
  List.concat_map
    (fun path ->
      let pick proj stats = Option.map proj (find path stats) in
      let info name proj =
        let b = pick proj base and c = pick proj current in
        let delta =
          match (b, c) with
          | Some b, Some c -> delta_pct ~base:b ~current:c
          | Some _, None | None, Some _ | None, None -> 0.0
        in
        {
          r_name = Printf.sprintf "phase:%s %s" path name;
          r_base = b;
          r_current = c;
          r_delta_pct = delta;
          r_tolerance_pct = 0.0;
          r_direction = Bench_snapshot.Info;
          r_status = Unchanged;
        }
      in
      [
        info "wall_ms" (fun s -> s.Profile.wall_ms);
        info "alloc_words" (fun s -> alloc_words s.Profile.gc);
      ])
    paths

let diff ?(tolerance_pct = default_tolerance) ~(base : Bench_snapshot.t)
    (current : Bench_snapshot.t) =
  if not (Float.is_finite tolerance_pct) || tolerance_pct < 0.0 then
    Error (Printf.sprintf "tolerance must be finite and non-negative (got %g)" tolerance_pct)
  else if not (String.equal base.Bench_snapshot.figure current.Bench_snapshot.figure) then
    Error
      (Printf.sprintf "figure mismatch: base is %S, new is %S" base.Bench_snapshot.figure
         current.Bench_snapshot.figure)
  else if base.Bench_snapshot.quick <> current.Bench_snapshot.quick then
    Error "scale mismatch: one snapshot is quick, the other full"
  else begin
    let find name (metrics : Bench_snapshot.metric list) =
      List.find_opt (fun (m : Bench_snapshot.metric) -> String.equal m.Bench_snapshot.m_name name)
        metrics
    in
    let base_rows =
      List.map
        (fun (bm : Bench_snapshot.metric) ->
          let tol =
            match bm.Bench_snapshot.m_tolerance_pct with
            | Some t -> t
            | None -> tolerance_pct
          in
          match find bm.Bench_snapshot.m_name current.Bench_snapshot.metrics with
          | Some cm ->
            let delta =
              delta_pct ~base:bm.Bench_snapshot.m_value ~current:cm.Bench_snapshot.m_value
            in
            {
              r_name = bm.Bench_snapshot.m_name;
              r_base = Some bm.Bench_snapshot.m_value;
              r_current = Some cm.Bench_snapshot.m_value;
              r_delta_pct = delta;
              r_tolerance_pct = tol;
              r_direction = bm.Bench_snapshot.m_direction;
              r_status = status_of bm.Bench_snapshot.m_direction ~tol ~delta;
            }
          | None ->
            {
              r_name = bm.Bench_snapshot.m_name;
              r_base = Some bm.Bench_snapshot.m_value;
              r_current = None;
              r_delta_pct = 0.0;
              r_tolerance_pct = tol;
              r_direction = bm.Bench_snapshot.m_direction;
              r_status = Missing;
            })
        base.Bench_snapshot.metrics
    in
    let added =
      List.filter_map
        (fun (cm : Bench_snapshot.metric) ->
          match find cm.Bench_snapshot.m_name base.Bench_snapshot.metrics with
          | Some _ -> None
          | None ->
            Some
              {
                r_name = cm.Bench_snapshot.m_name;
                r_base = None;
                r_current = Some cm.Bench_snapshot.m_value;
                r_delta_pct = 0.0;
                r_tolerance_pct = tolerance_pct;
                r_direction = cm.Bench_snapshot.m_direction;
                r_status = Added;
              })
        current.Bench_snapshot.metrics
    in
    let rows =
      base_rows @ added @ phase_rows base.Bench_snapshot.phases current.Bench_snapshot.phases
    in
    let regressions =
      List.length
        (List.filter (fun r -> match r.r_status with Regressed | Missing -> true
                                                   | Unchanged | Improved | Added -> false)
           rows)
    in
    Ok { d_figure = base.Bench_snapshot.figure; d_rows = rows; d_regressions = regressions }
  end

let regressions reports = List.fold_left (fun n r -> n + r.d_regressions) 0 reports

(* ---- rendering ---- *)

let status_name = function
  | Unchanged -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"
  | Added -> "added"

let opt_value = function Some v -> Printf.sprintf "%.6g" v | None -> "-"

let pp_report fmt r =
  Format.fprintf fmt "figure %s: %d regression(s)@." r.d_figure r.d_regressions;
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-9s %-42s %12s -> %-12s %+.2f%% (tol %.4g%%)@."
        (status_name row.r_status) row.r_name (opt_value row.r_base) (opt_value row.r_current)
        row.r_delta_pct row.r_tolerance_pct)
    r.d_rows

let row_to_json row =
  let opt = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [
      ("name", Json.Str row.r_name);
      ("base", opt row.r_base);
      ("current", opt row.r_current);
      ("delta_pct",
       if Float.is_finite row.r_delta_pct then Json.Float row.r_delta_pct
       else Json.Str (if row.r_delta_pct > 0.0 then "inf" else "-inf"));
      ("tolerance_pct", Json.Float row.r_tolerance_pct);
      ("direction", Json.Str (Bench_snapshot.direction_to_string row.r_direction));
      ("status", Json.Str (status_name row.r_status));
    ]

let report_to_json r =
  Json.Obj
    [
      ("figure", Json.Str r.d_figure);
      ("regressions", Json.Int r.d_regressions);
      ("rows", Json.List (List.map row_to_json r.d_rows));
    ]

(* ---- trend ---- *)

type trend_row = {
  t_figure : string;
  t_name : string;
  t_unit : string;
  t_points : (string * float) list;
  t_min : float;
  t_max : float;
  t_delta_pct : float;
}

let trend series =
  (* (figure, metric) -> points, preserving first-seen order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (label, (snap : Bench_snapshot.t)) ->
      let push name unit_ value =
        let key = (snap.Bench_snapshot.figure, name) in
        match Hashtbl.find_opt tbl key with
        | Some (u, rev_points) -> Hashtbl.replace tbl key (u, (label, value) :: rev_points)
        | None ->
          order := key :: !order;
          Hashtbl.replace tbl key (unit_, [ (label, value) ])
      in
      List.iter
        (fun (m : Bench_snapshot.metric) ->
          push m.Bench_snapshot.m_name m.Bench_snapshot.m_unit m.Bench_snapshot.m_value)
        snap.Bench_snapshot.metrics;
      List.iter
        (fun (p : Profile.stat) ->
          push (Printf.sprintf "phase:%s wall_ms" p.Profile.path) "ms" p.Profile.wall_ms;
          push
            (Printf.sprintf "phase:%s alloc_words" p.Profile.path)
            "words" (alloc_words p.Profile.gc))
        snap.Bench_snapshot.phases)
    series;
  List.rev_map
    (fun ((figure, name) as key) ->
      match Hashtbl.find_opt tbl key with
      | None -> assert false
      | Some (unit_, rev_points) ->
        let points = List.rev rev_points in
        let values = List.map snd points in
        let vmin = List.fold_left Float.min Float.infinity values in
        let vmax = List.fold_left Float.max Float.neg_infinity values in
        let delta =
          match (points, List.rev points) with
          | (_, first) :: _, (_, last) :: _ -> delta_pct ~base:first ~current:last
          | [], _ | _, [] -> 0.0
        in
        {
          t_figure = figure;
          t_name = name;
          t_unit = unit_;
          t_points = points;
          t_min = vmin;
          t_max = vmax;
          t_delta_pct = delta;
        })
    !order

let pp_trend fmt rows =
  let last_figure = ref "" in
  List.iter
    (fun row ->
      if not (String.equal !last_figure row.t_figure) then begin
        last_figure := row.t_figure;
        Format.fprintf fmt "figure %s:@." row.t_figure
      end;
      let values = String.concat " " (List.map (fun (_, v) -> Printf.sprintf "%.6g" v) row.t_points) in
      Format.fprintf fmt "  %-42s %-6s n=%-3d min %.6g  max %.6g  last/first %+.2f%%  [%s]@."
        row.t_name row.t_unit (List.length row.t_points) row.t_min row.t_max row.t_delta_pct
        values)
    rows
