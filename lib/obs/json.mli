(** Minimal JSON values, enough for the telemetry exporters and their
    readers.  Emission and parsing live together so every byte the
    subsystem writes can be read back by the same code (the [inspect]
    subcommand and the CI JSONL validator both go through {!of_string}).

    Numbers: OCaml [int] and [float] are kept distinct on emission
    ([Float] always renders with a decimal point or exponent so the value
    re-parses as a float); non-finite floats have no JSON spelling and
    render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering — one call per JSONL line. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error.  Accepts
    the standard escapes and [\uXXXX] (decoded to UTF-8). *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing keys or non-objects. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] both yield a float. *)

val to_int : t -> int option

val to_str : t -> string option
