type direction = Lower_better | Higher_better | Info

type metric = {
  m_name : string;
  m_value : float;
  m_unit : string;
  m_direction : direction;
  m_tolerance_pct : float option;
}

type t = {
  figure : string;
  quick : bool;
  seeds : int list;
  metrics : metric list;
  phases : Profile.stat list;
}

let version = 1

let metric ?(unit_ = "") ?(direction = Info) ?tolerance_pct name value =
  { m_name = name; m_value = value; m_unit = unit_; m_direction = direction;
    m_tolerance_pct = tolerance_pct }

let make ~figure ~quick ?(seeds = []) ?(metrics = []) ?(phases = []) () =
  { figure; quick; seeds; metrics; phases }

let filename figure =
  let b = Bytes.of_string figure in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "BENCH_" ^ Bytes.to_string b ^ ".json"

let validate t =
  let seen = Hashtbl.create 16 in
  let rec metrics = function
    | [] -> Ok ()
    | m :: rest ->
      if not (Float.is_finite m.m_value) then
        Error (Printf.sprintf "metric %S: value is not finite" m.m_name)
      else if Hashtbl.mem seen m.m_name then
        Error (Printf.sprintf "metric %S appears twice" m.m_name)
      else begin
        match m.m_tolerance_pct with
        | Some tol when (not (Float.is_finite tol)) || tol < 0.0 ->
          Error (Printf.sprintf "metric %S: tolerance must be finite and non-negative" m.m_name)
        | Some _ | None ->
          Hashtbl.replace seen m.m_name ();
          metrics rest
      end
  in
  let rec phases = function
    | [] -> Ok ()
    | (p : Profile.stat) :: rest ->
      if not (Float.is_finite p.Profile.wall_ms) then
        Error (Printf.sprintf "phase %S: wall_ms is not finite" p.Profile.path)
      else if
        not
          (Float.is_finite p.Profile.gc.Gc_stats.minor_words
          && Float.is_finite p.Profile.gc.Gc_stats.promoted_words
          && Float.is_finite p.Profile.gc.Gc_stats.major_words)
      then Error (Printf.sprintf "phase %S: GC words are not finite" p.Profile.path)
      else phases rest
  in
  if t.figure = "" then Error "figure id must not be empty"
  else Result.bind (metrics t.metrics) (fun () -> phases t.phases)

(* ---- emission ---- *)

let direction_to_string = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"
  | Info -> "info"

let direction_of_string = function
  | "lower" -> Ok Lower_better
  | "higher" -> Ok Higher_better
  | "info" -> Ok Info
  | other -> Error (Printf.sprintf "unknown direction %S" other)

let metric_to_json m =
  let base =
    [
      ("name", Json.Str m.m_name);
      ("value", Json.Float m.m_value);
      ("unit", Json.Str m.m_unit);
      ("direction", Json.Str (direction_to_string m.m_direction));
    ]
  in
  match m.m_tolerance_pct with
  | None -> Json.Obj base
  | Some tol -> Json.Obj (base @ [ ("tolerance_pct", Json.Float tol) ])

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("figure", Json.Str t.figure);
      ("quick", Json.Bool t.quick);
      ("seeds", Json.List (List.map (fun s -> Json.Int s) t.seeds));
      ("metrics", Json.List (List.map metric_to_json t.metrics));
      ("phases", Profile.stats_to_json t.phases);
    ]

let to_string t = Json.to_string (to_json t)

(* ---- parsing ---- *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "snapshot: field %S has the wrong type" name))
  | None -> Error (Printf.sprintf "snapshot: missing field %S" name)

let to_bool = function Json.Bool b -> Some b | _ -> None

let metric_of_json j =
  let* name = field "name" Json.to_str j in
  let* value = field "value" Json.to_float j in
  let* unit_ = field "unit" Json.to_str j in
  let* dir = field "direction" Json.to_str j in
  let* direction = direction_of_string dir in
  let* tolerance_pct =
    match Json.member "tolerance_pct" j with
    | None -> Ok None
    | Some v -> (
      match Json.to_float v with
      | Some tol -> Ok (Some tol)
      | None -> Error (Printf.sprintf "metric %S: tolerance_pct has the wrong type" name))
  in
  Ok { m_name = name; m_value = value; m_unit = unit_; m_direction = direction;
       m_tolerance_pct = tolerance_pct }

let list_of name conv j =
  match Json.member name j with
  | Some (Json.List items) ->
    List.fold_left
      (fun acc item ->
        let* rev = acc in
        let* x = conv item in
        Ok (x :: rev))
      (Ok []) items
    |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "snapshot: field %S must be a list" name)
  | None -> Error (Printf.sprintf "snapshot: missing field %S" name)

let of_json j =
  let* v = field "version" Json.to_int j in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "snapshot: version %d, this reader understands %d" v version)
  in
  let* figure = field "figure" Json.to_str j in
  let* quick = field "quick" to_bool j in
  let* seeds =
    list_of "seeds" (fun s ->
        match Json.to_int s with Some i -> Ok i | None -> Error "snapshot: seeds must be integers")
      j
  in
  let* metrics = list_of "metrics" metric_of_json j in
  let* phases =
    match Json.member "phases" j with
    | Some p -> Profile.stats_of_json p
    | None -> Error "snapshot: missing field \"phases\""
  in
  let t = { figure; quick; seeds; metrics; phases } in
  let* () = validate t in
  Ok t

let of_string s =
  let* j = Json.of_string s in
  of_json j

(* ---- files ---- *)

(* Create the snapshot directory on demand so a fresh --snapshot-dir works
   without a separate mkdir; a path component that exists as a non-directory
   surfaces as the open_out error below. *)
let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write t ~dir =
  let* () = validate t in
  mkdir_p dir;
  let path = Filename.concat dir (filename t.figure) in
  try
    let oc = open_out path in
    output_string oc (to_string t);
    output_char oc '\n';
    close_out oc;
    Ok path
  with Sys_error msg -> Error (Printf.sprintf "cannot write snapshot %s: %s" path msg)

let read path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Result.map_error (Printf.sprintf "%s: %s" path) (of_string (String.trim s))
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read snapshot %s: %s" path msg)
