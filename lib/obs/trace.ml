type field = Int of int | Float of float | Str of string

type item =
  | Span of { epoch : int; phase : string; ms : float }
  | Event of { epoch : int; name : string; fields : (string * field) list }

type t = { mutable rev_items : item list; mutable count : int }

let create () = { rev_items = []; count = 0 }

let push t item =
  t.rev_items <- item :: t.rev_items;
  t.count <- t.count + 1

let span t ~epoch ~phase ~ms = push t (Span { epoch; phase; ms })

let reserved = [ "t"; "epoch"; "name" ]

let event t ~epoch ~name fields =
  List.iter
    (fun (k, _) ->
      if List.mem k reserved then
        invalid_arg (Printf.sprintf "Trace.event: reserved field key %S" k))
    fields;
  push t (Event { epoch; name; fields })

let items t = List.rev t.rev_items

let length t = t.count

let json_of_field = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s

let item_to_json = function
  | Span { epoch; phase; ms } ->
    Json.Obj
      [ ("t", Json.Str "span"); ("epoch", Json.Int epoch); ("phase", Json.Str phase);
        ("ms", Json.Float ms) ]
  | Event { epoch; name; fields } ->
    Json.Obj
      (("t", Json.Str "event") :: ("epoch", Json.Int epoch) :: ("name", Json.Str name)
      :: List.map (fun (k, v) -> (k, json_of_field v)) fields)

let item_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let int key = Option.bind (Json.member key j) Json.to_int in
  match str "t" with
  | None -> Error "missing \"t\" discriminator"
  | Some kind -> (
    match int "epoch" with
    | None -> Error "missing epoch"
    | Some epoch -> (
      match kind with
      | "span" -> (
        match (str "phase", Option.bind (Json.member "ms" j) Json.to_float) with
        | Some phase, Some ms -> Ok (Span { epoch; phase; ms })
        | _ -> Error "span missing phase or ms")
      | "event" -> (
        match (str "name", j) with
        | Some name, Json.Obj fields ->
          let rec fields_of acc = function
            | [] -> Ok (List.rev acc)
            | (k, _) :: rest when List.mem k reserved -> fields_of acc rest
            | (k, Json.Int i) :: rest -> fields_of ((k, Int i) :: acc) rest
            | (k, Json.Float f) :: rest -> fields_of ((k, Float f) :: acc) rest
            | (k, Json.Str s) :: rest -> fields_of ((k, Str s) :: acc) rest
            | (k, _) :: _ -> Error (Printf.sprintf "event field %S is not a scalar" k)
          in
          Result.map (fun fields -> Event { epoch; name; fields }) (fields_of [] fields)
        | _ -> Error "event missing name")
      | other -> Error (Printf.sprintf "unknown item type %S" other)))
