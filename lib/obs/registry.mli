(** Typed metrics registry: named counters, gauges and log-scale
    histograms, each optionally carrying static labels (task kind, switch
    id, allocator, …).

    An instrument is identified by its (name, labels) pair; asking for the
    same pair twice returns the same instrument, so independent code paths
    can never increment two divergent copies of one metric — the failure
    mode the controller's old hand-rolled robustness record invited.
    Asking for an existing pair with a different instrument kind raises.

    Instruments are plain mutable cells: an increment is a field write, so
    registry-backed counters cost the same on the hot path as the mutable
    ints they replaced. *)

type t

type labels = (string * string) list
(** Stored sorted by key; order in which callers list them is irrelevant. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val set : t -> int -> unit
  (** Overwrite the value — checkpoint restore only. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  (** Log-scale histogram: positive observations land in geometric buckets
      (ratio {!gamma} between consecutive bounds), non-positive ones in a
      dedicated underflow bucket.  Exact count, sum, min and max are kept
      alongside, so percentile estimates are clamped to the observed
      range. *)

  type t

  val gamma : float
  (** Bucket growth ratio (1.25: estimates are within 25% by
      construction, and a span from microseconds to minutes needs only
      ~90 buckets). *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  (** [nan] when empty. *)

  val min_value : t -> float
  val max_value : t -> float
  (** Observed extremes; [nan] when empty. *)

  val percentile : t -> float -> float
  (** Estimate by geometric interpolation inside the covering bucket,
      clamped to the observed min/max; [nan] when empty.
      @raise Invalid_argument if [p] is outside \[0, 100\]. *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as (inclusive upper bound, count), bounds
      ascending.  Non-positive observations report under bound [0.]. *)
end

val create : unit -> t

val counter : t -> ?labels:labels -> ?help:string -> string -> Counter.t
(** Find or create.  [help] attaches Prometheus [# HELP] text to the
    metric name (the first registration's text wins; later ones are
    ignored).  @raise Invalid_argument if (name, labels) already names a
    gauge or histogram. *)

val gauge : t -> ?labels:labels -> ?help:string -> string -> Gauge.t

val histogram : t -> ?labels:labels -> ?help:string -> string -> Histogram.t

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.t

type sample = { name : string; labels : labels; value : value }

val samples : t -> sample list
(** Every registered instrument, sorted by (name, labels) so snapshots
    are deterministic. *)

val to_prometheus : t -> string
(** The whole registry in the Prometheus text exposition format.  Metric
    names are prefixed with [dream_]; counters gain the conventional
    [_total] suffix; histograms emit cumulative [_bucket] series plus
    [_sum] and [_count].  Each family is preceded by its [# HELP] line
    (when help text was registered) and a [# TYPE] line; label names are
    sanitized to [[a-zA-Z_][a-zA-Z0-9_]*] and label values escape
    backslash, double quote and newline per the exposition format. *)
