(** Comparator and trend summarizer over {!Bench_snapshot} documents —
    the engine behind the [dream_bench] CLI and the CI perf gate.

    [diff] compares two snapshots of the same figure metric-by-metric.
    Each metric's gating direction and tolerance come from the *base*
    snapshot (the committed contract); a metric present in the base but
    missing from the new snapshot is a regression (lost coverage), while
    a metric only the new snapshot carries is reported as added and never
    gates.  A zero baseline has no relative scale, so any move off zero
    on a gating metric is an infinite-percent change and gates.  Phases
    are compared as informational rows (wall time and allocated words)
    that never gate.

    [trend] folds an ordered series of snapshot sets into per-metric
    trajectories (first/last/min/max) for the nightly trend job. *)

type status =
  | Unchanged  (** within tolerance, or an {!Bench_snapshot.Info} metric *)
  | Improved
  | Regressed
  | Missing  (** in the base set but absent from the new one — gates *)
  | Added  (** only in the new snapshot — reported, never gates *)

type row = {
  r_name : string;
  r_base : float option;
  r_current : float option;
  r_delta_pct : float;  (** 0 when either side is absent; may be [infinity] *)
  r_tolerance_pct : float;
  r_direction : Bench_snapshot.direction;
  r_status : status;
}

type report = { d_figure : string; d_rows : row list; d_regressions : int }

val diff :
  ?tolerance_pct:float -> base:Bench_snapshot.t -> Bench_snapshot.t -> (report, string) result
(** [diff ~base current].  Default tolerance 10%.  [Error] (the
    comparator's bad-input case) on a figure or scale (quick/full)
    mismatch, or a negative/non-finite default tolerance. *)

val regressions : report list -> int

val pp_report : Format.formatter -> report -> unit
(** One line per row: status, name, base, current, delta. *)

val report_to_json : report -> Json.t

type trend_row = {
  t_figure : string;
  t_name : string;
  t_unit : string;
  t_points : (string * float) list;  (** (series label, value) in series order *)
  t_min : float;
  t_max : float;
  t_delta_pct : float;  (** last vs first; may be [infinity] *)
}

val trend : (string * Bench_snapshot.t) list -> trend_row list
(** [(label, snapshot)] pairs in series order; snapshots are grouped by
    (figure, metric) and each group ordered as given. *)

val pp_trend : Format.formatter -> trend_row list -> unit
