(** The telemetry bundle a controller instruments against: one metrics
    {!Registry}, one {!Trace}, and the {!Clock} that times control-loop
    phases.

    A bundle is attached to exactly one run (pass it in
    [Dream_core.Config.telemetry]); reusing it across runs accumulates
    counters across both.  When no bundle is attached — the default — the
    controller creates a private registry for its own counters, records no
    trace, and behaves bit-identically to a build without telemetry.

    {!write_dir} exports everything at once:
    - [trace.jsonl] — every span and event, one JSON object per line;
    - [metrics.prom] — the registry in Prometheus text format;
    - [profile.json] — the {!Profile} span stats (only when a profile is
      attached);
    - [tasks.csv] — per-task per-epoch time series
      (epoch, task, kind, accuracy, satisfied, alloc);
    - [switches.csv] — per-switch per-epoch time series
      (epoch, switch, rules, fetches, installs, removals). *)

type t

val create : ?clock:Clock.t -> ?registry:Registry.t -> ?profile:Profile.t -> unit -> t
(** Defaults: {!Clock.cpu}, a fresh registry, and no profile — GC
    profiling is strictly opt-in, and a bundle without a profile performs
    no GC read anywhere. *)

val clock : t -> Clock.t

val registry : t -> Registry.t

val trace : t -> Trace.t

val profile : t -> Profile.t option

type task_row = {
  epoch : int;
  task : int;
  kind : string;
  accuracy : float;  (** scored accuracy this epoch *)
  satisfied : bool;
  alloc : int;  (** total counters allocated across switches *)
}

type switch_row = {
  epoch : int;
  switch : int;
  rules : int;  (** TCAM occupancy at epoch end *)
  fetches : int;
  installs : int;
  removals : int;
}

val record_task : t -> task_row -> unit

val record_switch : t -> switch_row -> unit

val task_rows : t -> task_row list
(** In recording order. *)

val switch_rows : t -> switch_row list

val write_dir : t -> dir:string -> (unit, string) result
(** Write all four artifacts into [dir] (which must exist).  [Error] with
    the failing path on any I/O problem. *)

val tasks_csv_header : string

val switches_csv_header : string
