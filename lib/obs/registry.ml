type labels = (string * string) list

let canon labels = List.sort compare labels

module Counter = struct
  type t = { mutable n : int }

  let make () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let set c k = c.n <- k
  let value c = c.n
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0.0 }
  let set g v = g.v <- v
  let value g = g.v
end

module Histogram = struct
  let gamma = 1.25

  let log_gamma = Float.log gamma

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    mutable underflow : int; (* observations <= 0 *)
    tbl : (int, int ref) Hashtbl.t; (* bucket index -> count *)
  }

  let make () =
    { count = 0; sum = 0.0; vmin = Float.nan; vmax = Float.nan; underflow = 0;
      tbl = Hashtbl.create 16 }

  (* Bucket [i] covers (gamma^(i-1), gamma^i]. *)
  let bucket_of v = int_of_float (Float.ceil (Float.log v /. log_gamma))

  let observe h v =
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if h.count = 1 then begin
      h.vmin <- v;
      h.vmax <- v
    end
    else begin
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v
    end;
    if v <= 0.0 then h.underflow <- h.underflow + 1
    else begin
      let i = bucket_of v in
      match Hashtbl.find_opt h.tbl i with
      | Some r -> Stdlib.incr r
      | None -> Hashtbl.replace h.tbl i (ref 1)
    end

  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then Float.nan else h.sum /. float_of_int h.count
  let min_value h = h.vmin
  let max_value h = h.vmax

  let sorted_buckets h =
    Hashtbl.fold (fun i r acc -> (i, !r) :: acc) h.tbl [] |> List.sort compare

  let percentile h p =
    if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
    if h.count = 0 then Float.nan
    else begin
      let target = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.count))) in
      if target <= h.underflow then Float.min h.vmin 0.0
      else begin
        let rec go cum = function
          | [] -> h.vmax
          | (i, n) :: rest ->
            let cum' = cum + n in
            if target <= cum' then begin
              let lo = Float.max h.vmin ((gamma ** float_of_int (i - 1)) : float) in
              let hi = Float.min h.vmax (gamma ** float_of_int i) in
              if lo <= 0.0 || hi <= lo then hi
              else begin
                let frac = float_of_int (target - cum) /. float_of_int n in
                lo *. ((hi /. lo) ** frac)
              end
            end
            else go cum' rest
        in
        go h.underflow (sorted_buckets h)
      end
    end

  let buckets h =
    let pos = List.map (fun (i, n) -> (gamma ** float_of_int i, n)) (sorted_buckets h) in
    if h.underflow > 0 then (0.0, h.underflow) :: pos else pos
end

type value = Counter_v of int | Gauge_v of float | Histogram_v of Histogram.t

type instrument = C of Counter.t | G of Gauge.t | H of Histogram.t

type t = {
  tbl : (string * labels, instrument) Hashtbl.t;
  help : (string, string) Hashtbl.t;  (** per metric name; first registration wins *)
}

let create () = { tbl = Hashtbl.create 64; help = Hashtbl.create 16 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find_or_create t name labels ?help ~want ~make ~cast () =
  (match help with
  | Some text when not (Hashtbl.mem t.help name) -> Hashtbl.replace t.help name text
  | Some _ | None -> ());
  let key = (name, canon labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some i -> (
    match cast i with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s is a %s, requested as a %s" name (kind_name i) want))
  | None ->
    let v = make () in
    Hashtbl.replace t.tbl key v;
    (match cast v with Some x -> x | None -> assert false)

let counter t ?(labels = []) ?help name =
  find_or_create t name labels ?help ~want:"counter"
    ~make:(fun () -> C (Counter.make ()))
    ~cast:(function C c -> Some c | G _ | H _ -> None)
    ()

let gauge t ?(labels = []) ?help name =
  find_or_create t name labels ?help ~want:"gauge"
    ~make:(fun () -> G (Gauge.make ()))
    ~cast:(function G g -> Some g | C _ | H _ -> None)
    ()

let histogram t ?(labels = []) ?help name =
  find_or_create t name labels ?help ~want:"histogram"
    ~make:(fun () -> H (Histogram.make ()))
    ~cast:(function H h -> Some h | C _ | G _ -> None)
    ()

type sample = { name : string; labels : labels; value : value }

let samples t =
  Hashtbl.fold
    (fun (name, labels) i acc ->
      let value =
        match i with
        | C c -> Counter_v (Counter.value c)
        | G g -> Gauge_v (Gauge.value g)
        | H h -> Histogram_v h
      in
      { name; labels; value } :: acc)
    t.tbl []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

(* ---- Prometheus text exposition ---- *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "dream_" ^ Bytes.to_string b

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

(* Label names must match [a-zA-Z_][a-zA-Z0-9_]*; anything else is mapped
   to '_' (and a leading digit gets a '_' prefix) so an awkward label key
   can never produce an unscrapable exposition. *)
let prom_label_name k =
  let b = Bytes.of_string k in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> ()
      | '0' .. '9' -> if i = 0 then Bytes.set b i '_'
      | _ -> Bytes.set b i '_')
    b;
  if Bytes.length b = 0 then "_" else Bytes.to_string b

(* Label-value escaping per the text exposition format: backslash, double
   quote and newline. *)
let prom_label_value v =
  String.concat ""
    (List.map
       (function '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length v) (String.get v)))

(* HELP text escaping: only backslash and newline (quotes are legal). *)
let prom_help_text h =
  String.concat ""
    (List.map
       (function '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length h) (String.get h)))

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
    let one (k, v) = Printf.sprintf "%s=\"%s\"" (prom_label_name k) (prom_label_value v) in
    "{" ^ String.concat "," (List.map one kvs) ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let base = prom_name s.name in
      let kind, base =
        match s.value with
        | Counter_v _ -> ("counter", base ^ "_total")
        | Gauge_v _ -> ("gauge", base)
        | Histogram_v _ -> ("histogram", base)
      in
      if not (Hashtbl.mem typed base) then begin
        Hashtbl.replace typed base ();
        (match Hashtbl.find_opt t.help s.name with
        | Some text ->
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base (prom_help_text text))
        | None -> ());
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
      end;
      match s.value with
      | Counter_v n ->
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base (prom_labels s.labels) n)
      | Gauge_v v ->
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" base (prom_labels s.labels) (prom_float v))
      | Histogram_v h ->
        let cum = ref 0 in
        List.iter
          (fun (le, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" base
                 (prom_labels ~extra:("le", prom_float le) s.labels)
                 !cum))
          (Histogram.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" base
             (prom_labels ~extra:("le", "+Inf") s.labels)
             (Histogram.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" base (prom_labels s.labels)
             (prom_float (Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" base (prom_labels s.labels) (Histogram.count h)))
    (samples t);
  Buffer.contents buf
