module Stats = Dream_util.Stats

type phase_stat = {
  phase : string;
  samples : int;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

type task_churn = {
  task : int;
  kind : string;
  alloc_changes : int;
  mean_accuracy : float;
  epochs_active : int;
}

type report = {
  dir : string;
  epochs : int;
  spans : int;
  events : int;
  phases : phase_stat list;
  event_counts : (string * int) list;
  counters : (string * int) list;
  noisiest : task_churn list;
  profile : Profile.stat list;
}

let ( let* ) = Result.bind

let read_lines path =
  match open_in path with
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    Ok (go [])
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)

(* The canonical phase order; phases the trace never mentions are dropped,
   unknown ones are appended alphabetically. *)
let phase_order = [ "fetch"; "estimate"; "allocate"; "configure"; "report"; "epoch" ]

let load_trace path =
  let* lines = read_lines path in
  let* items =
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        let fail msg = Error (Printf.sprintf "%s:%d: %s" path lineno msg) in
        match Json.of_string line with
        | Error msg -> fail msg
        | Ok j -> (
          match Trace.item_of_json j with
          | Error msg -> fail msg
          | Ok item -> Ok (item :: acc)))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Ok (List.rev items)

(* metrics.prom: keep the counters ("name_total[{labels}] value" lines),
   strip the dream_ prefix and _total suffix back to registry names.
   Labelled variants of one name are summed. *)
let load_counters path =
  let* lines = read_lines path in
  let strip ~prefix ~suffix s =
    if
      String.length s > String.length prefix + String.length suffix
      && String.sub s 0 (String.length prefix) = prefix
      && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
    then
      Some
        (String.sub s (String.length prefix)
           (String.length s - String.length prefix - String.length suffix))
    else None
  in
  let tbl = Hashtbl.create 32 in
  let* () =
    List.fold_left
      (fun acc (lineno, line) ->
        let* () = acc in
        if line = "" || line.[0] = '#' then Ok ()
        else begin
          match String.index_opt line ' ' with
          | None -> Error (Printf.sprintf "%s:%d: expected \"name value\"" path lineno)
          | Some sp ->
            let name = String.sub line 0 sp in
            let value = String.sub line (sp + 1) (String.length line - sp - 1) in
            let name =
              match String.index_opt name '{' with
              | Some b -> String.sub name 0 b
              | None -> name
            in
            (match strip ~prefix:"dream_" ~suffix:"_total" name with
            | None -> Ok () (* gauge or histogram series: not a counter *)
            | Some base -> (
              match int_of_string_opt value with
              | None -> Error (Printf.sprintf "%s:%d: counter %s has non-integer value %S" path lineno base value)
              | Some v ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt tbl base) in
                Hashtbl.replace tbl base (prev + v);
                Ok ()))
        end)
      (Ok ())
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Ok (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))

type task_acc = {
  t_kind : string;
  mutable t_epochs : int;
  mutable t_acc_sum : float;
  mutable t_changes : int;
  mutable t_last_alloc : int option;
}

let load_tasks path =
  let* lines = read_lines path in
  match lines with
  | [] -> Error (Printf.sprintf "%s: empty file" path)
  | header :: rows ->
    if header <> Telemetry.tasks_csv_header then
      Error (Printf.sprintf "%s: unexpected header %S" path header)
    else begin
      let tbl = Hashtbl.create 32 in
      let* () =
        List.fold_left
          (fun acc (lineno, line) ->
            let* () = acc in
            match String.split_on_char ',' line with
            | [ _epoch; task; kind; accuracy; _satisfied; alloc ] -> (
              match (int_of_string_opt task, float_of_string_opt accuracy, int_of_string_opt alloc)
              with
              | Some task, Some accuracy, Some alloc ->
                let a =
                  match Hashtbl.find_opt tbl task with
                  | Some a -> a
                  | None ->
                    let a =
                      { t_kind = kind; t_epochs = 0; t_acc_sum = 0.0; t_changes = 0;
                        t_last_alloc = None }
                    in
                    Hashtbl.replace tbl task a;
                    a
                in
                a.t_epochs <- a.t_epochs + 1;
                a.t_acc_sum <- a.t_acc_sum +. accuracy;
                (match a.t_last_alloc with
                | Some last when last <> alloc -> a.t_changes <- a.t_changes + 1
                | Some _ | None -> ());
                a.t_last_alloc <- Some alloc;
                Ok ()
              | _ -> Error (Printf.sprintf "%s:%d: malformed row" path lineno))
            | _ -> Error (Printf.sprintf "%s:%d: expected 6 columns" path lineno))
          (Ok ())
          (List.mapi (fun i l -> (i + 2, l)) rows)
      in
      Ok
        (Hashtbl.fold
           (fun task a acc ->
             {
               task;
               kind = a.t_kind;
               alloc_changes = a.t_changes;
               mean_accuracy =
                 (if a.t_epochs = 0 then 0.0 else a.t_acc_sum /. float_of_int a.t_epochs);
               epochs_active = a.t_epochs;
             }
             :: acc)
           tbl [])
    end

(* profile.json is only present when the run profiled; its absence is not
   an error, but a malformed one fails the load like every other artifact. *)
let load_profile path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let* lines = read_lines path in
    let doc = String.concat "\n" lines in
    match Json.of_string doc with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok j -> Result.map_error (Printf.sprintf "%s: %s" path) (Profile.stats_of_json j)
  end

let load_report ~top ~dir =
  let* items = load_trace (Filename.concat dir "trace.jsonl") in
  let* counters = load_counters (Filename.concat dir "metrics.prom") in
  let* churn = load_tasks (Filename.concat dir "tasks.csv") in
  let* profile = load_profile (Filename.concat dir "profile.json") in
  (* switches.csv is validated for well-formedness even though the summary
     does not aggregate it yet. *)
  let* _ = read_lines (Filename.concat dir "switches.csv") in
  let epochs = Hashtbl.create 64 in
  let by_phase = Hashtbl.create 8 in
  let event_tbl = Hashtbl.create 16 in
  let spans = ref 0 and events = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Trace.Span { epoch; phase; ms } ->
        incr spans;
        Hashtbl.replace epochs epoch ();
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_phase phase) in
        Hashtbl.replace by_phase phase (ms :: prev)
      | Trace.Event { epoch; name; _ } ->
        incr events;
        Hashtbl.replace epochs epoch ();
        let prev = Option.value ~default:0 (Hashtbl.find_opt event_tbl name) in
        Hashtbl.replace event_tbl name (prev + 1))
    items;
  let known, unknown =
    Hashtbl.fold (fun phase ms acc -> (phase, ms) :: acc) by_phase []
    |> List.partition (fun (phase, _) -> List.mem phase phase_order)
  in
  let ordered =
    List.filter_map
      (fun phase -> List.find_opt (fun (p, _) -> p = phase) known)
      phase_order
    @ List.sort compare unknown
  in
  let phases =
    List.map
      (fun (phase, ms) ->
        {
          phase;
          samples = List.length ms;
          p50_ms = Stats.percentile 50.0 ms;
          p95_ms = Stats.percentile 95.0 ms;
          max_ms = Stats.maximum ms;
        })
      ordered
  in
  let event_counts =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) event_tbl []
    |> List.sort (fun (na, a) (nb, b) -> compare (b, na) (a, nb))
  in
  let noisiest =
    let sorted =
      List.sort
        (fun a b -> compare (b.alloc_changes, a.task) (a.alloc_changes, b.task))
        churn
    in
    List.filteri (fun i _ -> i < top) sorted
  in
  Ok
    {
      dir;
      epochs = Hashtbl.length epochs;
      spans = !spans;
      events = !events;
      phases;
      event_counts;
      counters;
      noisiest;
      profile;
    }

let load ?(top = 5) dir = load_report ~top ~dir

let counter report name =
  Option.value ~default:0 (List.assoc_opt name report.counters)

(* The robustness counters Metrics.pp_robustness reports, in its order. *)
let robustness_names =
  [ "crashes"; "recoveries"; "switch_down_epochs"; "fetch_timeouts"; "fetch_retries";
    "fetch_failures"; "stale_epochs"; "counters_lost"; "install_failures";
    "recovery_reinstalls"; "controller_crashes"; "reconcile_removed"; "reconcile_installed";
    "invariant_violations" ]

let pp ppf r =
  Format.fprintf ppf "telemetry %s: %d epochs, %d spans, %d events@." r.dir r.epochs r.spans
    r.events;
  if r.phases <> [] then begin
    Format.fprintf ppf "@.phase latency (ms):@.";
    Format.fprintf ppf "  %-10s %8s %10s %10s %10s@." "phase" "samples" "p50" "p95" "max";
    List.iter
      (fun p ->
        Format.fprintf ppf "  %-10s %8d %10.3f %10.3f %10.3f@." p.phase p.samples p.p50_ms
          p.p95_ms p.max_ms)
      r.phases
  end;
  if r.event_counts <> [] then begin
    Format.fprintf ppf "@.events:@.";
    List.iter (fun (name, n) -> Format.fprintf ppf "  %-20s %6d@." name n) r.event_counts
  end;
  let rob = List.filter (fun (k, _) -> List.mem k robustness_names) r.counters in
  if List.exists (fun (_, v) -> v > 0) rob then begin
    Format.fprintf ppf "@.robustness counters:@.";
    List.iter
      (fun name ->
        match List.assoc_opt name r.counters with
        | Some v when v > 0 -> Format.fprintf ppf "  %-22s %6d@." name v
        | Some _ | None -> ())
      robustness_names
  end;
  (match List.assoc_opt "allocation_changes" r.counters with
  | Some v -> Format.fprintf ppf "@.allocation churn: %d per-switch allocation changes@." v
  | None -> ());
  if r.noisiest <> [] then begin
    Format.fprintf ppf "@.noisiest tasks (allocation changes):@.";
    List.iter
      (fun c ->
        Format.fprintf ppf "  task %-4d %-4s %4d changes over %4d epochs, mean accuracy %.2f@."
          c.task c.kind c.alloc_changes c.epochs_active c.mean_accuracy)
      r.noisiest
  end;
  if r.profile <> [] then begin
    Format.fprintf ppf "@.profile (wall + GC per span path):@.";
    Format.fprintf ppf "  %-24s %8s %12s %14s %14s %8s %8s@." "span" "count" "wall_ms"
      "minor_words" "major_words" "minor#" "major#";
    List.iter
      (fun (s : Profile.stat) ->
        Format.fprintf ppf "  %-24s %8d %12.3f %14.0f %14.0f %8d %8d@." s.Profile.path
          s.Profile.count s.Profile.wall_ms s.Profile.gc.Gc_stats.minor_words
          s.Profile.gc.Gc_stats.major_words s.Profile.gc.Gc_stats.minor_collections
          s.Profile.gc.Gc_stats.major_collections)
      r.profile
  end
