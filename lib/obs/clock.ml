type t = { now_ms : unit -> float }

let now_ms t = t.now_ms ()

(* The one blessed wall-clock read: everything else in the tree obtains
   time through a [t], so substituting [manual] makes a run deterministic. *)
let cpu = { now_ms = (fun () -> Sys.time () *. 1000.0) } [@@lint.allow "determinism-clock"]

type manual = { mutable at_ms : float }

let manual ?(start = 0.0) () =
  let m = { at_ms = start } in
  ({ now_ms = (fun () -> m.at_ms) }, m)

let advance m ms =
  if ms < 0.0 then invalid_arg "Clock.advance: negative step";
  m.at_ms <- m.at_ms +. ms
