type t = { now_ms : unit -> float }

let now_ms t = t.now_ms ()

let cpu = { now_ms = (fun () -> Sys.time () *. 1000.0) }

type manual = { mutable at_ms : float }

let manual ?(start = 0.0) () =
  let m = { at_ms = start } in
  ({ now_ms = (fun () -> m.at_ms) }, m)

let advance m ms =
  if ms < 0.0 then invalid_arg "Clock.advance: negative step";
  m.at_ms <- m.at_ms +. ms
