(** Reader for a telemetry directory written by {!Telemetry.write_dir}:
    parses the JSONL trace, the Prometheus snapshot and the CSV time
    series back into a human-readable report — phase-latency percentiles,
    event tallies, robustness counters, and the noisiest (highest
    allocation-churn) tasks.

    Every line of every artifact is validated; a malformed line fails the
    whole load with its file and line number, which is what the CI job
    leans on to guarantee the exporters only ever emit well-formed
    output. *)

type phase_stat = {
  phase : string;
  samples : int;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

type task_churn = {
  task : int;
  kind : string;
  alloc_changes : int;  (** epochs where the task's total allocation moved *)
  mean_accuracy : float;
  epochs_active : int;
}

type report = {
  dir : string;
  epochs : int;  (** distinct epochs covered by the trace *)
  spans : int;
  events : int;
  phases : phase_stat list;  (** control-loop order: fetch … report *)
  event_counts : (string * int) list;  (** by descending count *)
  counters : (string * int) list;  (** every counter in the snapshot, by name *)
  noisiest : task_churn list;  (** top-k by [alloc_changes] *)
  profile : Profile.stat list;
      (** [profile.json] span stats; empty when the run did not profile *)
}

val load : ?top:int -> string -> (report, string) result
(** [load dir] reads the bundle under [dir]; [top] bounds [noisiest]
    (default 5). *)

val counter : report -> string -> int
(** Value of a named counter (the registry name, e.g. ["fetch_retries"]);
    0 when absent. *)

val pp : Format.formatter -> report -> unit
(** The human summary the [inspect] subcommand prints. *)
