type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A float must re-parse as a float: force a '.' or exponent into the
   shortest %g rendering that round-trips. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Fail of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Fail (Printf.sprintf "offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  (* Encode one Unicode scalar value; surrogates arrive pre-combined. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
      v := (!v * 16) + digit c;
      advance st
    | None -> fail st "truncated \\u escape"
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "truncated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let code = hex4 st in
          let code =
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* high surrogate: a low surrogate must follow *)
              expect st '\\';
              expect st 'u';
              let low = hex4 st in
              if low < 0xDC00 || low > 0xDFFF then fail st "unpaired surrogate"
              else 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
            end
            else code
          in
          utf8_of_code buf code
        | c -> fail st (Printf.sprintf "invalid escape \\%c" c)));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then begin
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" s)
  end
  else begin
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* integers beyond native range still parse as floats *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "invalid number %S" s))
  end

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length s then Ok v
    else Error (Printf.sprintf "offset %d: trailing characters" st.pos)
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function Str s -> Some s | _ -> None
