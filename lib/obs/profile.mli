(** Hierarchical performance spans: wall time plus GC/allocation deltas
    per span, aggregated by span path.

    A profile measures *controller* cost, not simulated cost: every span
    reads the profile's {!Clock} and {!Gc_stats} source on entry and exit
    and accumulates the deltas under a path such as ["epoch/allocate"]
    (nested spans extend the path of the enclosing one, and a nested
    span's cost is also part of its parent's — the usual flame-graph
    convention).  With a {!Clock.manual} clock and a {!Gc_stats.manual}
    source a profile is bit-for-bit deterministic, which is how the tests
    pin every number below.

    A profile is attached to a run through [Telemetry.create ~profile];
    when none is attached — the default — no GC read ever happens and the
    run is byte-identical to a build without profiling. *)

type stat = {
  path : string;  (** ["/"]-joined span path, e.g. ["epoch/allocate"] *)
  count : int;  (** completed spans aggregated into this path *)
  wall_ms : float;  (** total wall time across those spans *)
  gc : Gc_stats.reading;  (** total GC deltas across those spans *)
}

type t

val create : ?clock:Clock.t -> ?gc:Gc_stats.t -> unit -> t
(** Defaults: {!Clock.cpu} and {!Gc_stats.real}. *)

val clock : t -> Clock.t

val gc_source : t -> Gc_stats.t

val reading : t -> Gc_stats.reading
(** Read the profile's GC source now — for callers that measure a span
    themselves and then {!record} it. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] under [name], nested inside any open spans,
    and accumulates its wall time and GC delta.  The span is recorded
    even when [f] raises. *)

val record : t -> path:string -> wall_ms:float -> gc:Gc_stats.reading -> unit
(** Merge an externally-measured span under an explicit [path] — used by
    the controller, whose phase boundaries are scattered across the tick
    rather than lexically nested. *)

val stats : t -> stat list
(** Every recorded path, sorted by path, so profiles are deterministic. *)

val find : t -> string -> stat option

val reset : t -> unit

val observe_epoch : t -> Registry.t -> wall_ms:float -> gc:Gc_stats.reading -> unit
(** Fold one epoch's measured cost into a metrics registry: an
    [epoch_alloc_words] histogram and [alloc_rate_words_per_ms] gauge
    (allocation rate), [gc_minor_collections]/[gc_major_collections]/
    [gc_compactions] counters, and a [gc_major_epoch_ms] histogram of the
    wall time of epochs that contained at least one major collection —
    the closest pause proxy [Gc.quick_stat] affords. *)

(** {1 Snapshot codec}

    [stats_of_json] is the exact inverse of [stats_to_json], so the
    [profile.json] artifact written by {!Telemetry.write_dir} reads back
    bit-identically (the [inspect] subcommand and the tests rely on
    this). *)

val stat_to_json : stat -> Json.t

val stat_of_json : Json.t -> (stat, string) result

val stats_to_json : stat list -> Json.t

val stats_of_json : Json.t -> (stat list, string) result
