(** Structured trace of the control loop: per-epoch phase spans plus
    discrete events (admit/reject/eject, reconfigurations, fault
    injections, recovery reconciliations).

    Items are buffered in memory in emission order and serialized to JSONL
    (one JSON object per line) by the exporter; {!item_of_json} is the
    exact inverse, so the [inspect] subcommand and the tests read back what
    the controller wrote. *)

type field = Int of int | Float of float | Str of string

type item =
  | Span of { epoch : int; phase : string; ms : float }
      (** one control-loop phase of one epoch, with its duration *)
  | Event of { epoch : int; name : string; fields : (string * field) list }

type t

val create : unit -> t

val span : t -> epoch:int -> phase:string -> ms:float -> unit

val event : t -> epoch:int -> name:string -> (string * field) list -> unit
(** Field keys must avoid the reserved ["t"], ["epoch"] and ["name"]. *)

val items : t -> item list
(** Emission order. *)

val length : t -> int

val item_to_json : item -> Json.t

val item_of_json : Json.t -> (item, string) result
