(** Mockable source of GC counters, the allocation-side twin of {!Clock}.

    Profiling wants [Gc.quick_stat] deltas around every measured span, but
    a raw [Gc] read is as non-deterministic as a wall-clock read: the
    numbers depend on the runtime, not the simulation.  Every GC read
    therefore goes through a {!t} — the one blessed [real] source wraps
    [Gc.quick_stat], and tests substitute a {!manual} source to get
    bit-for-bit deterministic profiles (the same pattern {!Clock.manual}
    uses for time). *)

type reading = {
  minor_words : float;  (** words allocated in the minor heap, cumulative *)
  promoted_words : float;  (** minor-heap words that survived into the major heap *)
  major_words : float;  (** words allocated in (or promoted to) the major heap *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val zero : reading

val sub : reading -> reading -> reading
(** [sub after before] is the component-wise delta of two cumulative
    readings. *)

val add : reading -> reading -> reading
(** Component-wise sum — accumulating deltas across the fragments of a
    non-contiguous span. *)

type t

val read : t -> reading
(** Current cumulative counters.  Monotone non-decreasing for [real]. *)

val real : t
(** [Gc.quick_stat] — the only direct GC read in the tree. *)

type manual

val manual : ?start:reading -> unit -> t * manual
(** A source that only moves when told to: [read] returns the last value
    installed through {!advance}.  Deterministic by construction. *)

val advance : manual -> reading -> unit
(** Add [delta] onto the manual source's current reading. *)
