type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type stats = { int_words : int; float_words : int; grows : int; reuses : int; resets : int }

type t = {
  mutable int_slots : ints array;
  mutable float_slots : floats array;
  mutable grows : int;
  mutable reuses : int;
  mutable resets : int;
}

let make_ints n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make_floats n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create () = { int_slots = [||]; float_slots = [||]; grows = 0; reuses = 0; resets = 0 }

(* Geometric growth so a slot settles at the high-water mark of its user
   after a handful of epochs and every later epoch is a pure reuse. *)
let grown_capacity ~current ~wanted = max wanted (max 8 (current * 2))

let ensure_slots make slots slot =
  if slot < Array.length slots then slots
  else begin
    let fresh = Array.init (slot + 1) (fun i -> if i < Array.length slots then slots.(i) else make 0) in
    fresh
  end

let[@hot] ints t ~slot ~len =
  if slot < 0 then invalid_arg "Arena.ints: negative slot";
  if len < 0 then invalid_arg "Arena.ints: negative length";
  t.int_slots <- ensure_slots make_ints t.int_slots slot;
  let current = Bigarray.Array1.dim t.int_slots.(slot) in
  if current >= len then t.reuses <- t.reuses + 1
  else begin
    t.int_slots.(slot) <- make_ints (grown_capacity ~current ~wanted:len);
    t.grows <- t.grows + 1
  end;
  t.int_slots.(slot)

let[@hot] floats t ~slot ~len =
  if slot < 0 then invalid_arg "Arena.floats: negative slot";
  if len < 0 then invalid_arg "Arena.floats: negative length";
  t.float_slots <- ensure_slots make_floats t.float_slots slot;
  let current = Bigarray.Array1.dim t.float_slots.(slot) in
  if current >= len then t.reuses <- t.reuses + 1
  else begin
    t.float_slots.(slot) <- make_floats (grown_capacity ~current ~wanted:len);
    t.grows <- t.grows + 1
  end;
  t.float_slots.(slot)

let[@hot] reset t = t.resets <- t.resets + 1

let stats t =
  let sum dim slots = Array.fold_left (fun acc b -> acc + dim b) 0 slots in
  {
    int_words = sum Bigarray.Array1.dim t.int_slots;
    float_words = sum Bigarray.Array1.dim t.float_slots;
    grows = t.grows;
    reuses = t.reuses;
    resets = t.resets;
  }
