(* Deterministic line-oriented serialization for checkpoints and journals.

   The format is plain text: one [key value] pair or [[section]] marker per
   line.  Floats are written as hex literals (%h), so every IEEE-754 double
   round-trips bit-exactly; int64 RNG words are written in decimal.  A
   sealed document carries a version magic and an MD5 checksum over the
   body, so a torn or hand-edited file is rejected instead of silently
   restoring garbage. *)

type error = { line : int; reason : string }

exception Parse_error of error

let parse_error line reason = raise (Parse_error { line; reason })

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.reason

(* ---- writing ---- *)

type writer = Buffer.t

let writer () = Buffer.create 4096

let contents w = Buffer.contents w

let section w name = Buffer.add_string w (Printf.sprintf "[%s]\n" name)

let string w key v =
  if String.contains v '\n' then invalid_arg "Codec.string: value must be single-line";
  Buffer.add_string w (Printf.sprintf "%s %s\n" key v)

let int w key v = string w key (string_of_int v)

let bool w key v = string w key (if v then "1" else "0")

let float w key v = string w key (Printf.sprintf "%h" v)

let int64 w key v = string w key (Int64.to_string v)

(* ---- reading ---- *)

type reader = { lines : string array; mutable pos : int }

let reader_of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  { lines = Array.of_list lines; pos = 0 }

let at_end r = r.pos >= Array.length r.lines

let peek_line r = if at_end r then None else Some r.lines.(r.pos)

let next_line r =
  match peek_line r with
  | None -> parse_error (r.pos + 1) "unexpected end of document"
  | Some l ->
    r.pos <- r.pos + 1;
    l

let is_section l = String.length l >= 2 && l.[0] = '[' && l.[String.length l - 1] = ']'

let skip_line r = if not (at_end r) then r.pos <- r.pos + 1

let peek_section r =
  match peek_line r with
  | Some l when is_section l -> Some (String.sub l 1 (String.length l - 2))
  | Some _ | None -> None

let expect_section r name =
  let l = next_line r in
  if l <> Printf.sprintf "[%s]" name then
    parse_error r.pos (Printf.sprintf "expected section [%s], got %S" name l)

(* Consume the next [key value] line, checking the key. *)
let string_field r key =
  let l = next_line r in
  match String.index_opt l ' ' with
  | None -> parse_error r.pos (Printf.sprintf "expected %S field, got %S" key l)
  | Some i ->
    let k = String.sub l 0 i in
    if k <> key then parse_error r.pos (Printf.sprintf "expected %S field, got %S" key k);
    String.sub l (i + 1) (String.length l - i - 1)

let int_field r key =
  let v = string_field r key in
  match int_of_string_opt v with
  | Some n -> n
  | None -> parse_error r.pos (Printf.sprintf "field %S: invalid int %S" key v)

let bool_field r key =
  match string_field r key with
  | "1" -> true
  | "0" -> false
  | v -> parse_error r.pos (Printf.sprintf "field %S: invalid bool %S" key v)

let float_field r key =
  let v = string_field r key in
  match float_of_string_opt v with
  | Some f -> f
  | None -> parse_error r.pos (Printf.sprintf "field %S: invalid float %S" key v)

let int64_field r key =
  let v = string_field r key in
  match Int64.of_string_opt v with
  | Some n -> n
  | None -> parse_error r.pos (Printf.sprintf "field %S: invalid int64 %S" key v)

(* Run [f] exactly [n] times, left to right (List.init leaves the
   evaluation order unspecified, which would scramble sequential reads). *)
let repeat n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f () :: acc) in
  go 0 []

(* Repeat [f] while the next line opens section [name]. *)
let list_of_sections r name f =
  let rec go acc =
    match peek_section r with
    | Some s when s = name ->
      ignore (next_line r);
      go (f r :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

(* ---- sealed documents ---- *)

let seal ~magic body =
  Printf.sprintf "%s\nchecksum %s\n%s" magic (Digest.to_hex (Digest.string body)) body

let unseal ~magic doc =
  match String.index_opt doc '\n' with
  | None -> Error "empty document"
  | Some i ->
    let header = String.sub doc 0 i in
    if header <> magic then
      Error (Printf.sprintf "bad magic: expected %S, got %S" magic header)
    else begin
      let rest = String.sub doc (i + 1) (String.length doc - i - 1) in
      match String.index_opt rest '\n' with
      | None -> Error "missing checksum line"
      | Some j ->
        let sum_line = String.sub rest 0 j in
        let body = String.sub rest (j + 1) (String.length rest - j - 1) in
        (match String.split_on_char ' ' sum_line with
        | [ "checksum"; hex ] ->
          if String.lowercase_ascii hex = Digest.to_hex (Digest.string body) then Ok body
          else Error "checksum mismatch: document is corrupt or was modified"
        | _ -> Error (Printf.sprintf "malformed checksum line %S" sum_line))
    end
