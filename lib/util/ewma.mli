(** Exponentially-weighted moving average.

    DREAM smooths task accuracies with an EWMA whose [history] weight is the
    coefficient on the previous average (the paper uses history weight
    [alpha = 0.4] for accuracies and [0.8] for change-detection volume
    means):  [avg' = history *. avg +. (1 -. history) *. sample]. *)

type t

val create : history:float -> t
(** [create ~history] makes an empty filter.  @raise Invalid_argument unless
    [0.0 <= history && history < 1.0]. *)

val update : t -> float -> float
(** [update t x] folds in a sample and returns the new average.  The first
    sample initialises the average to [x]. *)

val value : t -> float option
(** Current average, or [None] before the first sample. *)

val value_or : t -> float -> float
(** [value_or t default] is the current average, or [default] if empty. *)

val reset : t -> unit
(** Forget all history. *)

val scale : t -> float -> unit
(** [scale t k] multiplies the current average by [k] (used when a monitored
    prefix is split and its history is shared between children).  No-op when
    empty. *)

val seed : t -> float -> unit
(** [seed t x] forces the average to [x] (used to inherit a parent counter's
    history on divide). *)

val history : t -> float
(** The filter's history weight, for checkpointing. *)

val restore : history:float -> avg:float option -> t
(** Rebuild a filter from captured state ({!history}, {!value}).
    @raise Invalid_argument unless [0.0 <= history && history < 1.0]. *)

val emit : Codec.writer -> t -> unit
(** Append the filter state to a checkpoint document. *)

val parse : Codec.reader -> t
(** Inverse of {!emit}.  @raise Codec.Parse_error on mismatch. *)
