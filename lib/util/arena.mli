(** Reusable per-epoch scratch buffers.

    The epoch loop needs the same transient buffers every tick (per-switch
    budget vectors, sort scratch, staging tables).  Allocating them fresh
    each epoch is what the [epoch_alloc_words] histogram prices; an arena
    instead hands out {!Bigarray}-backed slots that live off the OCaml heap
    and are reused between epochs — [reset] marks an epoch boundary, it
    never frees.

    Contents are {e not} cleared between uses: a caller must overwrite the
    prefix it asked for before reading it back.  Slots are identified by
    small integer indices chosen by the caller, so independent users of one
    arena cannot alias as long as they use distinct slots. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : unit -> t

val ints : t -> slot:int -> len:int -> ints
(** A reusable int buffer of capacity at least [len] (the returned buffer
    may be longer).  Grows geometrically; after the high-water mark is
    reached every call is allocation-free.
    @raise Invalid_argument on a negative slot or length. *)

val floats : t -> slot:int -> len:int -> floats
(** Same as {!ints} for float64 scratch. *)

val reset : t -> unit
(** Mark an epoch boundary.  Buffers are retained (that is the point);
    only the reset counter moves. *)

type stats = {
  int_words : int;  (** total int capacity currently pooled *)
  float_words : int;  (** total float capacity currently pooled *)
  grows : int;  (** slot (re)allocations since creation *)
  reuses : int;  (** requests served without allocating *)
  resets : int;  (** epoch boundaries seen *)
}

val stats : t -> stats
