let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_array a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if xs = [] then Float.nan
  else begin
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end
  end

let median xs = percentile 50.0 xs

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty sample"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty sample"
  | x :: xs -> List.fold_left max x xs

let approx_equal ?(eps = 1e-9) a b =
  (* |a - b| <= eps; inf -. inf is nan, so equal infinities need the
     IEEE-equality case, and any nan operand falls through to false. *)
  a = b || Float.abs (a -. b) <= eps

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p5 : float;
  median : float;
  p95 : float;
  max : float;
}

let summarize = function
  | [] -> None
  | xs ->
    Some
      {
        count = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = minimum xs;
        p5 = percentile 5.0 xs;
        median = median xs;
        p95 = percentile 95.0 xs;
        max = maximum xs;
      }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p5=%.3f med=%.3f p95=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p5 s.median s.p95 s.max
