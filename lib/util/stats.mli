(** Descriptive statistics for experiment reporting.

    The evaluation reports mean and 5th-percentile satisfaction across
    tasks, plus 95th-percentile delays; this module centralises those
    computations so every figure uses the same definitions. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val mean_array : float array -> float

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0, 100\], by linear interpolation
    between closest ranks (the same convention as numpy's default).
    Total over the sample: [nan] on the empty list, the sole element on a
    singleton.  @raise Invalid_argument if [p] is outside \[0, 100\]. *)

val median : float list -> float
(** [nan] on the empty list, like {!percentile}. *)

val minimum : float list -> float
val maximum : float list -> float

val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal a b] is true when [|a - b| <= eps] (default [1e-9]).
    The epsilon helper dream-lint's [float-equality] rule asks for in
    place of [=] on floats.  Total: [nan] compares unequal to
    everything (including itself); two like-signed infinities compare
    equal. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p5 : float;
  median : float;
  p95 : float;
  max : float;
}
(** One-shot description of a sample. *)

val summarize : float list -> summary option
(** [None] on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
