type t = { history : float; mutable avg : float option }

let create ~history =
  if history < 0.0 || history >= 1.0 then invalid_arg "Ewma.create: history must be in [0, 1)";
  { history; avg = None }

let update t x =
  let v =
    match t.avg with
    | None -> x
    | Some avg -> (t.history *. avg) +. ((1.0 -. t.history) *. x)
  in
  t.avg <- Some v;
  v

let value t = t.avg

let value_or t default = match t.avg with None -> default | Some v -> v

let reset t = t.avg <- None

let scale t k = match t.avg with None -> () | Some v -> t.avg <- Some (v *. k)

let seed t x = t.avg <- Some x

let history t = t.history

let restore ~history ~avg =
  if history < 0.0 || history >= 1.0 then invalid_arg "Ewma.restore: history must be in [0, 1)";
  { history; avg }

let emit w t =
  Codec.float w "history" t.history;
  Codec.bool w "has_avg" (t.avg <> None);
  match t.avg with Some v -> Codec.float w "avg" v | None -> ()

let parse r =
  let history = Codec.float_field r "history" in
  let avg = if Codec.bool_field r "has_avg" then Some (Codec.float_field r "avg") else None in
  restore ~history ~avg
