type t = { history : float; mutable avg : float option }

let create ~history =
  if history < 0.0 || history >= 1.0 then invalid_arg "Ewma.create: history must be in [0, 1)";
  { history; avg = None }

let update t x =
  let v =
    match t.avg with
    | None -> x
    | Some avg -> (t.history *. avg) +. ((1.0 -. t.history) *. x)
  in
  t.avg <- Some v;
  v

let value t = t.avg

let value_or t default = match t.avg with None -> default | Some v -> v

let reset t = t.avg <- None

let scale t k = match t.avg with None -> () | Some v -> t.avg <- Some (v *. k)

let seed t x = t.avg <- Some x
