(* The average lives unboxed in a mutable float field with a [seeded]
   flag standing in for [None]: [update]/[scale]/[seed] run on the
   controller's per-counter hot path and must not allocate an option per
   call.  Only the [value]/[restore] edges of the API touch options. *)
type t = { history : float; mutable seeded : bool; mutable avg : float }

let create ~history =
  if history < 0.0 || history >= 1.0 then invalid_arg "Ewma.create: history must be in [0, 1)";
  { history; seeded = false; avg = 0.0 }

let update t x =
  let v =
    if t.seeded then (t.history *. t.avg) +. ((1.0 -. t.history) *. x) else x
  in
  t.avg <- v;
  t.seeded <- true;
  v

let value t =
  if t.seeded then (Some t.avg) [@alloc.allow "cold read edge of the API; hot readers use value_or"]
  else None

let value_or t default = if t.seeded then t.avg else default

let reset t = t.seeded <- false

let scale t k = if t.seeded then t.avg <- t.avg *. k

let seed t x =
  t.seeded <- true;
  t.avg <- x

let history t = t.history

let restore ~history ~avg =
  if history < 0.0 || history >= 1.0 then invalid_arg "Ewma.restore: history must be in [0, 1)";
  match avg with
  | None -> { history; seeded = false; avg = 0.0 }
  | Some v -> { history; seeded = true; avg = v }

let emit w t =
  Codec.float w "history" t.history;
  Codec.bool w "has_avg" t.seeded;
  if t.seeded then Codec.float w "avg" t.avg

let parse r =
  let history = Codec.float_field r "history" in
  let avg = if Codec.bool_field r "has_avg" then Some (Codec.float_field r "avg") else None in
  restore ~history ~avg
