type point = { epoch : int; value : float }

let binned samples ~bin =
  if bin <= 0 then invalid_arg "Timeseries.binned: bin must be positive";
  let groups = Hashtbl.create 32 in
  List.iter
    (fun (epoch, v) ->
      let b = epoch / bin * bin in
      let sum, n = match Hashtbl.find_opt groups b with Some x -> x | None -> (0.0, 0) in
      Hashtbl.replace groups b (sum +. v, n + 1))
    samples;
  Hashtbl.fold
    (fun b (sum, n) acc -> { epoch = b; value = sum /. float_of_int n } :: acc)
    groups []
  |> List.sort (fun a b -> Int.compare a.epoch b.epoch)

(* Eight block glyphs from U+2581 to U+2588, encoded as UTF-8 strings. *)
let bars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
              "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?lo ?hi values =
  match values with
  | [] -> ""
  | _ :: _ ->
    let lo = match lo with Some v -> v | None -> List.fold_left Float.min infinity values in
    let hi = match hi with Some v -> v | None -> List.fold_left Float.max neg_infinity values in
    let span = hi -. lo in
    let buffer = Buffer.create (3 * List.length values) in
    List.iter
      (fun v ->
        let index =
          if span <= 0.0 then 0
          else begin
            let scaled = (v -. lo) /. span *. 7.0 in
            let i = int_of_float (Float.round scaled) in
            if i < 0 then 0 else if i > 7 then 7 else i
          end
        in
        Buffer.add_string buffer bars.(index))
      values;
    Buffer.contents buffer

let of_points points = List.map (fun p -> p.value) points

let pp_series ppf ~name points =
  let values = of_points points in
  match values with
  | [] -> Format.fprintf ppf "%-16s (no data)" name
  | _ :: _ ->
    let mean = List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values) in
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    Format.fprintf ppf "%-16s %s  min %.2f  mean %.2f  max %.2f" name (sparkline values) lo mean
      hi
