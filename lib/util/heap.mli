(** Mutable binary max-heap.

    Divide-and-merge repeatedly extracts the highest-scoring counter; this
    heap keeps that selection O(log n) even with thousands of monitored
    prefixes per task. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] makes an empty heap; the maximum element under [cmp] is
    served first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Maximum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the maximum element. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_list : 'a t -> 'a list
(** Elements in unspecified order. *)
