(** Deterministic line-oriented serialization for checkpoints and journals.

    Documents are plain text: [[section]] markers and [key value] lines.
    Floats are emitted as hex literals so every double round-trips
    bit-exactly; {!seal} wraps a body with a version magic and an MD5
    checksum that {!unseal} verifies before any parsing happens. *)

type error = { line : int; reason : string }

exception Parse_error of error

val parse_error : int -> string -> 'a
(** @raise Parse_error always. *)

val error_to_string : error -> string

(** {2 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val section : writer -> string -> unit
val string : writer -> string -> string -> unit
val int : writer -> string -> int -> unit
val bool : writer -> string -> bool -> unit
val float : writer -> string -> float -> unit
val int64 : writer -> string -> int64 -> unit

(** {2 Reading}

    Readers are strictly sequential: every [*_field] call consumes one line
    and raises {!Parse_error} when the key (or section) does not match, so
    encoder and decoder stay structurally symmetric. *)

type reader

val reader_of_string : string -> reader
val at_end : reader -> bool

val skip_line : reader -> unit
(** Advance past the next line without interpreting it (used when scanning
    forward after a parse failure to classify torn vs corrupt input). *)

val peek_section : reader -> string option
val expect_section : reader -> string -> unit
val string_field : reader -> string -> string
val int_field : reader -> string -> int
val bool_field : reader -> string -> bool
val float_field : reader -> string -> float
val int64_field : reader -> string -> int64

val repeat : int -> (unit -> 'a) -> 'a list
(** [repeat n f] calls [f] exactly [n] times in order and collects the
    results — use for count-prefixed record lists where the evaluation
    order of [List.init] would be unsafe. *)

val list_of_sections : reader -> string -> (reader -> 'a) -> 'a list
(** [list_of_sections r name f] parses zero or more consecutive [name]
    sections, calling [f] after consuming each section marker. *)

(** {2 Sealed documents} *)

val seal : magic:string -> string -> string
val unseal : magic:string -> string -> (string, string) result
