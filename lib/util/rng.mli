(** Deterministic pseudo-random number generation.

    The simulator must be reproducible across runs and OCaml releases, so we
    ship our own generator (xoshiro256** seeded through splitmix64) instead
    of relying on [Stdlib.Random], whose sequence is not stable between
    compiler versions.  All experiment code takes an explicit [t] so that
    independent subsystems (traffic, workload) can use independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Useful to give each task or switch its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean. *)

val gaussian : t -> float
(** Standard normal variate (Box-Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] is [exp (mu + sigma * gaussian t)]. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** [pareto t ~alpha ~xmin] samples a Pareto(alpha) variate >= xmin. *)

val poisson : t -> float -> int
(** [poisson t lambda] samples a Poisson variate (Knuth for small lambda,
    normal approximation above 64). *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in \[1, n\] under a Zipf(s) law by
    inversion on the precomputed harmonic table is avoided: uses rejection
    sampling suitable for repeated draws with varying [n]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)

val state : t -> int64 * int64 * int64 * int64
(** Raw xoshiro256** state words, for checkpointing. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** Rebuild a generator from {!state} output; the stream continues exactly
    where the captured generator left off. *)
