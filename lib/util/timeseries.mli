(** Time-series helpers for experiment output: fixed-width binning of
    (epoch, value) samples and compact ASCII sparklines, so figure
    harnesses render comparable series without a plotting stack. *)

type point = { epoch : int; value : float }

val binned : (int * float) list -> bin:int -> point list
(** Group samples into [bin]-wide epochs buckets (bucket label = lowest
    epoch), averaging the values; sorted by epoch.
    @raise Invalid_argument if [bin <= 0]. *)

val sparkline : ?lo:float -> ?hi:float -> float list -> string
(** Render values as a bar-glyph string, scaled into \[lo, hi\] (defaults:
    the data's own range).  Empty input yields the empty string. *)

val of_points : point list -> float list

val pp_series : Format.formatter -> name:string -> point list -> unit
(** One line: name, sparkline, min/mean/max. *)
