(* This module is the tree's one blessed randomness source: dream-lint
   bans Stdlib.Random everywhere else, and here by policy declaration. *)
[@@@lint.allow "determinism-random"]

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, as
   recommended by the xoshiro authors. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible because
     bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v *. 0x1.0p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -. mean *. log u

let gaussian t =
  let u1 = float t 1.0 +. 1e-12 and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let pareto t ~alpha ~xmin =
  let u = 1.0 -. float t 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let poisson t lambda =
  if lambda <= 0.0 then 0
  else if lambda < 64.0 then begin
    (* Knuth's product-of-uniforms method. *)
    let l = exp (-.lambda) in
    let rec loop k p =
      let p = p *. float t 1.0 in
      if p <= l then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation, adequate for workload arrival counts. *)
    let u1 = float t 1.0 +. 1e-12 and u2 = float t 1.0 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let v = lambda +. (sqrt lambda *. z) in
    if v < 0.0 then 0 else int_of_float v
  end

(* The rejection-method helpers live at top level so [zipf] builds no
   closures per draw (it runs once per emitted packet on the generator's
   hot path). *)
let zipf_h ~s x = (x ** (1.0 -. s)) /. (1.0 -. s)
let zipf_h_inv ~s x = ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s))

let rec zipf_loop t ~s ~nf ~hx0 ~hn =
  let u = hx0 +. (float t 1.0 *. (hn -. hx0)) in
  let x = zipf_h_inv ~s u in
  let k = Float.round x in
  let k = if k < 1.0 then 1.0 else if k > nf then nf else k in
  if k -. x <= 0.5 || u >= zipf_h ~s (k +. 0.5) -. (k ** -.s) then int_of_float k
  else zipf_loop t ~s ~nf ~hx0 ~hn

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if n = 1 then 1
  else begin
    (* Rejection method of Devroye; works for s > 0, s <> 1 handled by the
       generalised inverse. *)
    let s = if Float.abs (s -. 1.0) < 1e-9 then 1.000001 else s in
    let nf = Float.of_int n in
    let hx0 = zipf_h ~s 0.5 -. 1.0 in
    let hn = zipf_h ~s (nf +. 0.5) in
    zipf_loop t ~s ~nf ~hx0 ~hn
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let state t = (t.s0, t.s1, t.s2, t.s3)

let of_state (s0, s1, s2, s3) = { s0; s1; s2; s3 }
