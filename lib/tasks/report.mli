(** Measurement reports delivered to the task's user each epoch.

    An item's [magnitude] is kind-specific: the volume of a heavy hitter,
    the residual volume of a hierarchical heavy hitter (after excluding
    descendant HHHs), or the absolute deviation from the historical mean
    for change detection. *)

type item = { prefix : Dream_prefix.Prefix.t; magnitude : float }

type t = { kind : Task_spec.kind; epoch : int; items : item list }

val prefixes : t -> Dream_prefix.Prefix.Set.t

val size : t -> int

val pp : Format.formatter -> t -> unit
