(** A task object (Section 5.1, Algorithm 1).

    The controller drives one of these per admitted task, each epoch:
    {!ingest_counters} (fetch), {!make_report} (createReport),
    {!estimate_accuracy} (estimateAccuracy, which also folds the raw
    estimates into the EWMA-smoothed overall accuracies the allocator
    reads), then — after the allocator has decided — {!configure}
    (configureCounters) with the new per-switch allocations, and finally
    {!desired_rules} to save counters to each switch. *)

type t

type accuracy_mode =
  | Overall  (** allocate on [max (global, local)] per switch (the paper's choice) *)
  | Global_only  (** ablation: allocate on global accuracy alone (Section 4
          explains why this misidentifies which switch needs resources) *)

val create :
  id:int ->
  spec:Task_spec.t ->
  topology:Dream_traffic.Topology.t ->
  ?accuracy_history:float ->
  ?accuracy_mode:accuracy_mode ->
  unit ->
  t
(** [accuracy_history] is the EWMA history weight for smoothing accuracies
    (paper default 0.4); [accuracy_mode] defaults to [Overall]. *)

val id : t -> int
val spec : t -> Task_spec.t
val monitor : t -> Monitor.t
val topology : t -> Dream_traffic.Topology.t

val switches : t -> Dream_traffic.Switch_id.Set.t
(** Switches the task needs counters on. *)

val allocations : t -> int Dream_traffic.Switch_id.Map.t
(** Allocations applied by the last {!configure} (one counter per relevant
    switch before the first allocation). *)

val desired_rules : t -> Dream_traffic.Switch_id.t -> Dream_prefix.Prefix.t list

val ingest_counters :
  t -> (Dream_traffic.Switch_id.t * (Dream_prefix.Prefix.t * float) list) list -> unit

val make_report : t -> epoch:int -> Report.t

val estimate_accuracy : t -> Accuracy.t
(** Raw estimate for the current epoch.  Also updates the smoothed
    accuracies and, for CD tasks, folds this epoch's volumes into the
    per-counter means. *)

val smoothed_global : t -> float
(** EWMA-smoothed estimated global accuracy (1 before any estimate). *)

val decay_accuracy : t -> ?switch:Dream_traffic.Switch_id.t -> factor:float -> unit -> unit
(** Scale the smoothed global accuracy (and, when [switch] is given, that
    switch's smoothed overall accuracy) by [factor].  The controller calls
    this when a task reports from stale counters — degraded visibility the
    estimators cannot see, which must still reach the allocator. *)

val overall_accuracy : t -> Dream_traffic.Switch_id.t -> float
(** EWMA-smoothed [max (global, local)] on a switch — the allocator's
    input (Section 4). *)

val configure : t -> allocations:int Dream_traffic.Switch_id.Map.t -> unit
(** Re-score counters and run divide-and-merge under the new allocations. *)

val counters_used : t -> Dream_traffic.Switch_id.t -> int

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the full task state — spec, topology, smoothed accuracies,
    allocations and the monitor's counter configuration — to a checkpoint
    document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}: a restored task produces bit-identical reports,
    estimates and configurations from the next epoch on.
    @raise Dream_util.Codec.Parse_error on mismatch. *)
