module Prefix = Dream_prefix.Prefix

type kind = Heavy_hitter | Hierarchical_heavy_hitter | Change_detection

let kind_to_string = function
  | Heavy_hitter -> "HH"
  | Hierarchical_heavy_hitter -> "HHH"
  | Change_detection -> "CD"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let all_kinds = [ Heavy_hitter; Hierarchical_heavy_hitter; Change_detection ]

type t = {
  kind : kind;
  filter : Prefix.t;
  leaf_length : int;
  threshold : float;
  accuracy_bound : float;
  drop_priority : int;
  cd_history : float;
}

let make ~kind ~filter ?(leaf_length = Prefix.address_bits) ~threshold ?(accuracy_bound = 0.8)
    ?(drop_priority = 0) ?(cd_history = 0.8) () =
  if threshold <= 0.0 then invalid_arg "Task_spec.make: threshold must be positive";
  if accuracy_bound < 0.0 || accuracy_bound > 1.0 then
    invalid_arg "Task_spec.make: accuracy_bound must be in [0, 1]";
  if leaf_length <= Prefix.length filter || leaf_length > Prefix.address_bits then
    invalid_arg "Task_spec.make: leaf_length must lie in (filter length, 32]";
  if cd_history < 0.0 || cd_history >= 1.0 then
    invalid_arg "Task_spec.make: cd_history must be in [0, 1)";
  { kind; filter; leaf_length; threshold; accuracy_bound; drop_priority; cd_history }

let accuracy_metric t =
  match t.kind with
  | Heavy_hitter | Change_detection -> `Recall
  | Hierarchical_heavy_hitter -> `Precision

type priority = Critical | High | Normal | Background

let bound_of_priority = function
  | Critical -> 0.95
  | High -> 0.9
  | Normal -> 0.8
  | Background -> 0.6

let drop_priority_of = function Critical -> 0 | High -> 10 | Normal -> 20 | Background -> 30

let pp ppf t =
  Format.fprintf ppf "%a(%a, theta=%.1fMb, bound=%.0f%%)" pp_kind t.kind Prefix.pp t.filter
    t.threshold (t.accuracy_bound *. 100.0)
