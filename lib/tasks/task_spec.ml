module Prefix = Dream_prefix.Prefix

type kind = Heavy_hitter | Hierarchical_heavy_hitter | Change_detection

let kind_to_string = function
  | Heavy_hitter -> "HH"
  | Hierarchical_heavy_hitter -> "HHH"
  | Change_detection -> "CD"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let all_kinds = [ Heavy_hitter; Hierarchical_heavy_hitter; Change_detection ]

type t = {
  kind : kind;
  filter : Prefix.t;
  leaf_length : int;
  threshold : float;
  accuracy_bound : float;
  drop_priority : int;
  cd_history : float;
}

let make ~kind ~filter ?(leaf_length = Prefix.address_bits) ~threshold ?(accuracy_bound = 0.8)
    ?(drop_priority = 0) ?(cd_history = 0.8) () =
  if threshold <= 0.0 then invalid_arg "Task_spec.make: threshold must be positive";
  if accuracy_bound < 0.0 || accuracy_bound > 1.0 then
    invalid_arg "Task_spec.make: accuracy_bound must be in [0, 1]";
  if leaf_length <= Prefix.length filter || leaf_length > Prefix.address_bits then
    invalid_arg "Task_spec.make: leaf_length must lie in (filter length, 32]";
  if cd_history < 0.0 || cd_history >= 1.0 then
    invalid_arg "Task_spec.make: cd_history must be in [0, 1)";
  { kind; filter; leaf_length; threshold; accuracy_bound; drop_priority; cd_history }

let kind_of_string = function
  | "HH" -> Some Heavy_hitter
  | "HHH" -> Some Hierarchical_heavy_hitter
  | "CD" -> Some Change_detection
  | _ -> None

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "spec";
  C.string w "kind" (kind_to_string t.kind);
  C.string w "filter" (Prefix.to_string t.filter);
  C.int w "leaf_length" t.leaf_length;
  C.float w "threshold" t.threshold;
  C.float w "accuracy_bound" t.accuracy_bound;
  C.int w "drop_priority" t.drop_priority;
  C.float w "cd_history" t.cd_history

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "spec";
  let kind =
    let s = C.string_field r "kind" in
    match kind_of_string s with
    | Some k -> k
    | None -> C.parse_error 0 (Printf.sprintf "unknown task kind %S" s)
  in
  let filter = Prefix.of_string (C.string_field r "filter") in
  let leaf_length = C.int_field r "leaf_length" in
  let threshold = C.float_field r "threshold" in
  let accuracy_bound = C.float_field r "accuracy_bound" in
  let drop_priority = C.int_field r "drop_priority" in
  let cd_history = C.float_field r "cd_history" in
  { kind; filter; leaf_length; threshold; accuracy_bound; drop_priority; cd_history }

let accuracy_metric t =
  match t.kind with
  | Heavy_hitter | Change_detection -> `Recall
  | Hierarchical_heavy_hitter -> `Precision

type priority = Critical | High | Normal | Background

let bound_of_priority = function
  | Critical -> 0.95
  | High -> 0.9
  | Normal -> 0.8
  | Background -> 0.6

let drop_priority_of = function Critical -> 0 | High -> 10 | Normal -> 20 | Background -> 30

let pp ppf t =
  Format.fprintf ppf "%a(%a, theta=%.1fMb, bound=%.0f%%)" pp_kind t.kind Prefix.pp t.filter
    t.threshold (t.accuracy_bound *. 100.0)
