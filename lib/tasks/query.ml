module Prefix = Dream_prefix.Prefix

type t = {
  kind : Task_spec.kind;
  over : string;
  threshold : float;
  accuracy : float option;
  priority : Task_spec.priority option;
  leaf_length : int;
}

let make kind over =
  { kind; over; threshold = 8.0; accuracy = None; priority = None; leaf_length = 32 }

let heavy_hitters ~over = make Task_spec.Heavy_hitter over

let hierarchical_heavy_hitters ~over = make Task_spec.Hierarchical_heavy_hitter over

let changes ~over = make Task_spec.Change_detection over

let exceeding_mb threshold t = { t with threshold }

let with_accuracy accuracy t = { t with accuracy = Some accuracy }

let with_priority priority t = { t with priority = Some priority }

let drill_to leaf_length t = { t with leaf_length }

let to_spec t =
  match Prefix.of_string t.over with
  | exception Invalid_argument _ ->
    Error (Printf.sprintf "invalid flow filter %S (expected e.g. \"10.0.0.0/8\")" t.over)
  | filter ->
    if t.threshold <= 0.0 then Error "threshold must be positive"
    else begin
      let accuracy_bound, drop_priority =
        match (t.accuracy, t.priority) with
        | Some a, _ ->
          (* An explicit bound wins; a priority still orders drops. *)
          (a, match t.priority with Some p -> Task_spec.drop_priority_of p | None -> 0)
        | None, Some p -> (Task_spec.bound_of_priority p, Task_spec.drop_priority_of p)
        | None, None -> (0.8, 0)
      in
      if accuracy_bound < 0.0 || accuracy_bound > 1.0 then
        Error "accuracy bound must lie in [0, 1]"
      else if t.leaf_length <= Prefix.length filter || t.leaf_length > Prefix.address_bits then
        Error
          (Printf.sprintf "drill depth /%d must be finer than the filter /%d (and at most /32)"
             t.leaf_length (Prefix.length filter))
      else
        Ok
          (Task_spec.make ~kind:t.kind ~filter ~leaf_length:t.leaf_length
             ~threshold:t.threshold ~accuracy_bound ~drop_priority ())
    end

let to_spec_exn t =
  match to_spec t with Ok spec -> spec | Error msg -> invalid_arg ("Query.to_spec_exn: " ^ msg)
