(** Shared recall estimation for HH and CD tasks (Section 5.3).

    Both kinds detect "exact" counters whose magnitude (volume for HH,
    deviation for CD) exceeds the threshold, and estimate recall as
    detected / (detected + estimated missed).  Missed items under a
    non-exact prefix with [b] wildcard bits and magnitude [v] are bounded
    by [min 2^b (floor (v / threshold))].  Local recall attributes missed
    items to bottlenecked switches only, when any switch is bottlenecked. *)

val estimate :
  Monitor.t ->
  allocations:int Dream_traffic.Switch_id.Map.t ->
  detected:(Counter.t -> bool) ->
  magnitude_total:(Counter.t -> float) ->
  magnitude_on:(Counter.t -> Dream_traffic.Switch_id.t -> float) ->
  Accuracy.t

val missed_bound : wildcards:int -> magnitude:float -> threshold:float -> int
(** The min-of-two-bounds estimate of items missed under one prefix. *)
