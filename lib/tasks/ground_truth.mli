(** Ground truth and real accuracy, for evaluation only.

    The paper's simulations score tasks with real accuracy computed
    offline; DREAM itself never sees these values.  Ground truth for HH
    and HHH is stateless per epoch; CD keeps per-leaf EWMA means across
    the task's whole trace (history weight from the spec), so {!evaluate}
    must be called once per epoch, in order. *)

type t

val create : Task_spec.t -> t

type truth = {
  true_items : Dream_prefix.Prefix.Set.t;  (** the items that really occurred *)
  real_accuracy : float;  (** recall (HH, CD) or precision (HHH) of the report *)
}

val evaluate : t -> Dream_traffic.Epoch_data.t -> Report.t -> truth
(** Score one epoch's report against the network-wide traffic.  Accuracy
    is 1 when it is undefined (no true items for recall, empty report for
    precision). *)

val true_heavy_hitters :
  Task_spec.t -> Dream_traffic.Aggregate.t -> Dream_prefix.Prefix.Set.t
(** Leaf prefixes whose volume exceeds the threshold. *)

val true_hierarchical_heavy_hitters :
  Task_spec.t -> Dream_traffic.Aggregate.t -> Dream_prefix.Prefix.Set.t
(** Exact HHH set (prefixes whose volume minus descendant-HHH volumes
    exceeds the threshold), computed recursively under the filter. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the CD per-leaf means to a checkpoint document (empty for
    HH/HHH tasks, which keep no cross-epoch state here). *)

val parse : Dream_util.Codec.reader -> spec:Task_spec.t -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
