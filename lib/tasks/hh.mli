(** Heavy-hitter task behaviour (Table 1, row HH).

    Reports exact monitored counters whose volume exceeds the threshold;
    since a TCAM counter's reading is exact, every reported HH is true and
    precision is always 1, so accuracy means recall. *)

val report : Monitor.t -> epoch:int -> Report.t

val estimate :
  Monitor.t -> allocations:int Dream_traffic.Switch_id.Map.t -> Accuracy.t
