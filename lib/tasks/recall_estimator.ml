module Switch_id = Dream_traffic.Switch_id

let missed_bound ~wildcards ~magnitude ~threshold =
  if magnitude <= threshold then 0
  else begin
    let by_volume = int_of_float (Float.floor (magnitude /. threshold)) in
    let by_leaves = if wildcards >= 62 then max_int else 1 lsl wildcards in
    min by_volume by_leaves
  end

let estimate monitor ~allocations ~detected ~magnitude_total ~magnitude_on =
  let spec = Monitor.spec monitor in
  let leaf_length = spec.Task_spec.leaf_length in
  let threshold = spec.Task_spec.threshold in
  let counters = Monitor.counters monitor in
  let exact, inexact = List.partition (fun c -> Counter.is_exact c ~leaf_length) counters in
  let detected_counters = List.filter detected exact in
  let num_detected = List.length detected_counters in
  let missed_total =
    List.fold_left
      (fun acc c ->
        acc
        + missed_bound
            ~wildcards:(Counter.wildcards c ~leaf_length)
            ~magnitude:(magnitude_total c) ~threshold)
      0 inexact
  in
  let global =
    if num_detected + missed_total = 0 then 1.0
    else float_of_int num_detected /. float_of_int (num_detected + missed_total)
  in
  let bottlenecks = Monitor.bottlenecked monitor ~allocations in
  let attribute (c : Counter.t) sw =
    Switch_id.Set.mem sw c.Counter.switches
    && (Switch_id.Set.is_empty bottlenecks || Switch_id.Set.mem sw bottlenecks)
  in
  let locals =
    Switch_id.Set.fold
      (fun sw acc ->
        let det =
          List.length
            (List.filter
               (fun (c : Counter.t) -> Switch_id.Set.mem sw c.Counter.switches)
               detected_counters)
        in
        let missed =
          List.fold_left
            (fun acc c ->
              if attribute c sw then
                acc
                + missed_bound
                    ~wildcards:(Counter.wildcards c ~leaf_length)
                    ~magnitude:(magnitude_on c sw) ~threshold
              else acc)
            0 inexact
        in
        let recall =
          if det + missed = 0 then 1.0 else float_of_int det /. float_of_int (det + missed)
        in
        Switch_id.Map.add sw recall acc)
      (Monitor.switches monitor) Switch_id.Map.empty
  in
  { Accuracy.global = Accuracy.clamp global; locals }
