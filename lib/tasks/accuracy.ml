module Switch_id = Dream_traffic.Switch_id

type t = { global : float; locals : float Switch_id.Map.t }

let perfect ~switches =
  {
    global = 1.0;
    locals = Switch_id.Set.fold (fun sw acc -> Switch_id.Map.add sw 1.0 acc) switches Switch_id.Map.empty;
  }

let local t sw = match Switch_id.Map.find_opt sw t.locals with Some v -> v | None -> t.global

let overall t sw = Float.max t.global (local t sw)

let clamp v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let pp ppf t =
  Format.fprintf ppf "global=%.2f locals=[%a]" t.global
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (sw, v) -> Format.fprintf ppf "%a:%.2f" Switch_id.pp sw v))
    (Switch_id.Map.bindings t.locals)
