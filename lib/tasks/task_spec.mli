(** Measurement task specification (Section 3).

    A user instantiates a task of one of three kinds over a flow filter,
    with a volume threshold and a target accuracy bound.  The packet header
    field is always a source/destination IP-like hierarchical field — the
    prefix trie under the filter — as in the paper. *)

type kind = Heavy_hitter | Hierarchical_heavy_hitter | Change_detection

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val all_kinds : kind list

type t = {
  kind : kind;
  filter : Dream_prefix.Prefix.t;  (** flow filter, e.g. a /12 *)
  leaf_length : int;  (** drill-down floor; /32 = exact IPs *)
  threshold : float;  (** Mb per epoch defining a HH / HHH / change *)
  accuracy_bound : float;  (** target accuracy in \[0, 1\], e.g. 0.8 *)
  drop_priority : int;  (** higher = dropped first *)
  cd_history : float;  (** EWMA history weight of the CD volume mean *)
}

val make :
  kind:kind ->
  filter:Dream_prefix.Prefix.t ->
  ?leaf_length:int ->
  threshold:float ->
  ?accuracy_bound:float ->
  ?drop_priority:int ->
  ?cd_history:float ->
  unit ->
  t
(** Defaults: [leaf_length = 32], [accuracy_bound = 0.8],
    [drop_priority = 0], [cd_history = 0.8] (the paper's defaults).
    @raise Invalid_argument on a threshold or bound out of range, or a
    [leaf_length] not exceeding the filter length. *)

val accuracy_metric : t -> [ `Recall | `Precision ]
(** Which accuracy measure drives allocation: recall for HH and CD,
    precision for HHH (Table 1). *)

type priority = Critical | High | Normal | Background

val bound_of_priority : priority -> float
(** The paper's footnote 2: operators may prefer priorities to accuracy
    bounds; a deployed system translates them.  Critical 0.95, High 0.9,
    Normal 0.8 (the diminishing-returns default), Background 0.6. *)

val drop_priority_of : priority -> int
(** A matching drop ordering: Background tasks are dropped first. *)

val pp : Format.formatter -> t -> unit

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the spec to a checkpoint document. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
