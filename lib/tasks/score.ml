let of_counter (spec : Task_spec.t) (c : Counter.t) =
  let threshold = spec.Task_spec.threshold in
  let wildcards = Counter.wildcards c ~leaf_length:spec.Task_spec.leaf_length in
  let denominator = float_of_int (wildcards + 1) in
  (* A prefix whose volume does not exceed the threshold cannot contain a
     heavy hitter or HHH, so drilling under it buys no accuracy: score it
     zero rather than waste TCAM entries on it.  Change detection floors at
     an eighth of the threshold instead: sub-threshold deviations still
     guide the drill toward volatile regions (so leaf-level history exists
     when a change erupts), but dead-calm regions attract no entries.
     A change's deviation persists for several epochs under the EWMA mean,
     which is what lets a post-change drill still catch it. *)
  match spec.Task_spec.kind with
  | Task_spec.Heavy_hitter ->
    if c.Counter.total <= threshold then 0.0 else c.Counter.total /. denominator
  | Task_spec.Hierarchical_heavy_hitter ->
    if c.Counter.total <= threshold then 0.0 else c.Counter.total
  | Task_spec.Change_detection ->
    let deviation = Counter.cd_deviation c in
    if deviation <= threshold /. 8.0 then 0.0 else deviation /. denominator

let apply monitor =
  let spec = Monitor.spec monitor in
  List.iter
    (fun (c : Counter.t) ->
      (* Fresh counters keep their inherited half-of-parent score: their
         volumes have not been measured yet. *)
      if not c.Counter.fresh then c.Counter.score <- of_counter spec c)
    (Monitor.counters monitor)
