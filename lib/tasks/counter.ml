module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Ewma = Dream_util.Ewma

type t = {
  prefix : Prefix.t;
  switches : Switch_id.Set.t;
  mutable volumes : float Switch_id.Map.t;
  mutable total : float;
  mutable score : float;
  mean : Ewma.t;
  mutable fresh : bool;
}

let create ~prefix ~switches ~cd_history =
  {
    prefix;
    switches;
    volumes = Switch_id.Map.empty;
    total = 0.0;
    score = 0.0;
    mean = Ewma.create ~history:cd_history;
    fresh = true;
  }

let set_volumes t volumes =
  t.volumes <- volumes;
  t.total <- Switch_id.Map.fold (fun _ v acc -> acc +. v) volumes 0.0;
  t.fresh <- false

let volume_on t sw = match Switch_id.Map.find_opt sw t.volumes with Some v -> v | None -> 0.0

let wildcards t ~leaf_length = leaf_length - Prefix.length t.prefix

let is_exact t ~leaf_length = Prefix.length t.prefix >= leaf_length

let cd_deviation t = Float.abs (t.total -. Ewma.value_or t.mean t.total)

let update_mean t = ignore (Ewma.update t.mean t.total)

let pp ppf t =
  Format.fprintf ppf "%a vol=%.2f score=%.2f %a%s" Prefix.pp t.prefix t.total t.score
    Switch_id.pp_set t.switches
    (if t.fresh then " fresh" else "")
