module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Ewma = Dream_util.Ewma

type t = {
  prefix : Prefix.t;
  switches : Switch_id.Set.t;
  mutable volumes : float Switch_id.Map.t;
  mutable total : float;
  mutable score : float;
  mean : Ewma.t;
  mutable fresh : bool;
}

let create ~prefix ~switches ~cd_history =
  {
    prefix;
    switches;
    volumes = Switch_id.Map.empty;
    total = 0.0;
    score = 0.0;
    mean = Ewma.create ~history:cd_history;
    fresh = true;
  }

let set_volumes t volumes =
  t.volumes <- volumes;
  t.total <- Switch_id.Map.fold (fun _ v acc -> acc +. v) volumes 0.0;
  t.fresh <- false

let volume_on t sw = match Switch_id.Map.find_opt sw t.volumes with Some v -> v | None -> 0.0

let wildcards t ~leaf_length = leaf_length - Prefix.length t.prefix

let is_exact t ~leaf_length = Prefix.length t.prefix >= leaf_length

let cd_deviation t = Float.abs (t.total -. Ewma.value_or t.mean t.total)

let update_mean t = ignore (Ewma.update t.mean t.total)

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "counter";
  C.string w "prefix" (Prefix.to_string t.prefix);
  C.int w "volumes" (Switch_id.Map.cardinal t.volumes);
  Switch_id.Map.iter
    (fun sw v ->
      C.int w "sw" sw;
      C.float w "vol" v)
    t.volumes;
  C.float w "score" t.score;
  Ewma.emit w t.mean;
  C.bool w "fresh" t.fresh

let parse r ~switch_set =
  let module C = Dream_util.Codec in
  C.expect_section r "counter";
  let prefix = Prefix.of_string (C.string_field r "prefix") in
  let n = C.int_field r "volumes" in
  let volumes =
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        let v = C.float_field r "vol" in
        (sw, v))
    |> List.fold_left (fun acc (sw, v) -> Switch_id.Map.add sw v acc) Switch_id.Map.empty
  in
  let score = C.float_field r "score" in
  let mean = Ewma.parse r in
  let fresh = C.bool_field r "fresh" in
  (* [total] is recomputed with the same fold [set_volumes] uses, so the
     restored float is bit-identical to the captured one. *)
  let total = Switch_id.Map.fold (fun _ v acc -> acc +. v) volumes 0.0 in
  { prefix; switches = switch_set prefix; volumes; total; score; mean; fresh }

let pp ppf t =
  Format.fprintf ppf "%a vol=%.2f score=%.2f %a%s" Prefix.pp t.prefix t.total t.score
    Switch_id.pp_set t.switches
    (if t.fresh then " fresh" else "")
