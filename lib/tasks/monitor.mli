(** Monitor configuration of one task: the set of prefixes it currently
    counts, and the task-independent divide-and-merge algorithm
    (Algorithm 2) that reshapes this set to fit per-switch allocations.

    Invariant: the monitored prefixes always partition the task's flow
    filter — divide replaces a prefix by both children, merge replaces all
    descendants of an ancestor by that ancestor (the paper's footnote 6:
    merging to the common ancestor avoids overlapping counters).  A counter
    occupies one TCAM entry on every switch in its S set (the switches that
    can see its traffic). *)

type t

val create : spec:Task_spec.t -> topology:Dream_traffic.Topology.t -> t
(** Initial configuration: a single counter on the task's flow filter
    (Section 5.1: each new task starts with one counter). *)

val spec : t -> Task_spec.t

val topology : t -> Dream_traffic.Topology.t

val counters : t -> Counter.t list
(** Current counters, in prefix order. *)

val num_counters : t -> int

val find : t -> Dream_prefix.Prefix.t -> Counter.t option

val switches : t -> Dream_traffic.Switch_id.Set.t
(** All switches that see the task's filter. *)

val usage : t -> Dream_traffic.Switch_id.t -> int
(** TCAM entries this task occupies on a switch. *)

val active : t -> Dream_traffic.Switch_id.Set.t
(** Switches the task currently installs rules on — those with a non-zero
    allocation.  A baseline allocator (e.g. Equal under extreme overload)
    can grant zero entries on a switch; the task then goes blind there
    instead of violating switch capacity. *)

val usage_map : t -> int Dream_traffic.Switch_id.Map.t

val rules_for : t -> Dream_traffic.Switch_id.t -> Dream_prefix.Prefix.t list
(** Prefixes to install on a switch (counters whose S contains it). *)

val ingest :
  t -> (Dream_traffic.Switch_id.t * (Dream_prefix.Prefix.t * float) list) list -> unit
(** Deliver fetched per-switch counter readings (Algorithm 1 line 2). *)

val bottlenecked :
  t -> allocations:int Dream_traffic.Switch_id.Map.t -> Dream_traffic.Switch_id.Set.t
(** Switches where the task has used its entire allocation — the switches
    whose missed events the local estimators should attribute (Section
    5.3). *)

module Cover : sig
  type solution = { ancestors : Dream_prefix.Prefix.t list; cost : float }
  (** Disjoint ancestors to merge, and the total score of the counters the
      merges destroy. *)

  val solve :
    t ->
    exclude:Dream_prefix.Prefix.t option ->
    Dream_traffic.Switch_id.Set.t ->
    solution option
  (** [solve t ~exclude f] finds a low-cost set of ancestors whose merging
      frees at least one entry on every switch in [f] (the cover() function
      of Section 5.2, greedy weighted set cover over the T_j sets).
      Candidates covering [exclude] are ignored (so a merge never destroys
      the counter about to be divided).  [None] if [f] cannot be covered. *)
end

val configure : t -> allocations:int Dream_traffic.Switch_id.Map.t -> unit
(** Algorithm 2: first merge until no switch exceeds its allocation, then
    repeatedly divide the highest-scoring counter, paying for each divide
    with a cover-merge when it would overflow a switch, while the score
    outweighs the merge cost.  Scores must have been set by the task-
    dependent scorer beforehand. *)

val is_partition : t -> bool
(** Whether the counters exactly partition the filter (test hook). *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the active-switch set and every counter (in prefix order) to a
    checkpoint document.  The spec and topology are serialized by the
    owning task, not here. *)

val parse :
  Dream_util.Codec.reader ->
  spec:Task_spec.t ->
  topology:Dream_traffic.Topology.t ->
  t
(** Inverse of {!emit}; per-switch usage is rebuilt incrementally as
    counters are re-added.  @raise Dream_util.Codec.Parse_error on
    mismatch. *)
