let report monitor ~epoch =
  let spec = Monitor.spec monitor in
  let leaf_length = spec.Task_spec.leaf_length in
  let threshold = spec.Task_spec.threshold in
  let items =
    List.filter_map
      (fun (c : Counter.t) ->
        if Counter.is_exact c ~leaf_length && c.Counter.total > threshold then
          Some { Report.prefix = c.Counter.prefix; magnitude = c.Counter.total }
        else None)
      (Monitor.counters monitor)
  in
  { Report.kind = spec.Task_spec.kind; epoch; items }

let estimate monitor ~allocations =
  let spec = Monitor.spec monitor in
  let threshold = spec.Task_spec.threshold in
  Recall_estimator.estimate monitor ~allocations
    ~detected:(fun c -> c.Counter.total > threshold)
    ~magnitude_total:(fun c -> c.Counter.total)
    ~magnitude_on:(fun c sw -> Counter.volume_on c sw)
