let report monitor ~epoch =
  let spec = Monitor.spec monitor in
  let leaf_length = spec.Task_spec.leaf_length in
  let threshold = spec.Task_spec.threshold in
  let items =
    List.filter_map
      (fun (c : Counter.t) ->
        let deviation = Counter.cd_deviation c in
        if Counter.is_exact c ~leaf_length && deviation > threshold then
          Some { Report.prefix = c.Counter.prefix; magnitude = deviation }
        else None)
      (Monitor.counters monitor)
  in
  { Report.kind = spec.Task_spec.kind; epoch; items }

let estimate monitor ~allocations =
  let spec = Monitor.spec monitor in
  let threshold = spec.Task_spec.threshold in
  let magnitude_on (c : Counter.t) sw =
    (* Per-switch means are not tracked; apportion the total deviation by
       the switch's share of the counter's volume. *)
    let deviation = Counter.cd_deviation c in
    if c.Counter.total <= 0.0 then begin
      let n = Dream_traffic.Switch_id.Set.cardinal c.Counter.switches in
      if n = 0 then 0.0 else deviation /. float_of_int n
    end
    else deviation *. (Counter.volume_on c sw /. c.Counter.total)
  in
  Recall_estimator.estimate monitor ~allocations
    ~detected:(fun c -> Counter.cd_deviation c > threshold)
    ~magnitude_total:Counter.cd_deviation ~magnitude_on

let finish_epoch monitor = List.iter Counter.update_mean (Monitor.counters monitor)
