(** Hierarchical-heavy-hitter task behaviour (Table 1, row HHH).

    Detection traverses the monitored prefix trie bottom-up and reports a
    prefix whose volume, after excluding detected descendant HHHs, still
    exceeds the threshold.  Accuracy is estimated precision: each detected
    HHH gets a value of 1 (confirmed true), 0 (cannot be true), or 0.5
    (ambiguous), following the case analysis of Section 5.3, and the
    estimate is the average of the values. *)

type detection = {
  prefix : Dream_prefix.Prefix.t;
  residual : float;  (** volume after excluding descendant detected HHHs *)
  value : float;  (** estimated precision value in \{0, 0.5, 1\} *)
}

val detect : Monitor.t -> detection list
(** Detected HHHs with their precision values, in prefix order. *)

val report : Monitor.t -> epoch:int -> Report.t

val estimate :
  Monitor.t -> allocations:int Dream_traffic.Switch_id.Map.t -> Accuracy.t

val estimate_recall : Monitor.t -> float
(** Recall estimated like the HH estimator (Section 5.3: "for HHH tasks,
    recall can be calculated similar to HH tasks"): detected HHHs over
    detected plus a bound on the HHHs hiding inside coarse detections and
    unresolved over-threshold prefixes.  The paper observes this tracks
    precision; the test suite checks the correlation. *)
