(** Task-dependent prefix scoring (Table 1).

    The score estimates how "interesting" a monitored prefix is — how much
    accuracy a drill-down under it is likely to buy.  HH and CD normalise
    by the number of wildcard bits (+1) so that a coarse prefix with the
    same volume as a fine one scores lower per potential leaf; HHH scores
    raw volume because every level of the hierarchy matters. *)

val of_counter : Task_spec.t -> Counter.t -> float

val apply : Monitor.t -> unit
(** Set every counter's [score] field from the monitor's spec. *)
