module Prefix = Dream_prefix.Prefix
module Trie = Dream_prefix.Trie
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Ewma = Dream_util.Ewma
module Heap = Dream_util.Heap

type t = {
  spec : Task_spec.t;
  topology : Topology.t;
  table : Counter.t Prefix.Table.t;
  staged : float Switch_id.Map.t Prefix.Table.t;
      (* ingest scratch, cleared per call — hoisted so the hot loop never
         allocates a fresh hash table per task per epoch *)
  mutable usage : int Switch_id.Map.t; (* entries per active switch, kept incrementally *)
  mutable active : Switch_id.Set.t; (* switches with a non-zero allocation *)
  mutable sorted_cache : Counter.t list option; (* counters in prefix order *)
}

(* The switches a counter actually occupies: its traffic switches that the
   allocator has granted at least one entry on. *)
let effective t (c : Counter.t) = Switch_id.Set.inter c.switches t.active

let bump_usage t set delta =
  t.usage <-
    Switch_id.Set.fold
      (fun sw acc ->
        let v = (match Switch_id.Map.find_opt sw acc with Some v -> v | None -> 0) + delta in
        if v = 0 then Switch_id.Map.remove sw acc else Switch_id.Map.add sw v acc)
      set t.usage

let add_counter t (c : Counter.t) =
  assert (not (Prefix.Table.mem t.table c.prefix));
  Prefix.Table.replace t.table c.prefix c;
  t.sorted_cache <- None;
  bump_usage t (effective t c) 1

let remove_counter t (c : Counter.t) =
  Prefix.Table.remove t.table c.prefix;
  t.sorted_cache <- None;
  bump_usage t (effective t c) (-1)

let new_counter t prefix =
  Counter.create ~prefix
    ~switches:(Topology.switch_set t.topology prefix)
    ~cd_history:t.spec.Task_spec.cd_history

let create ~spec ~topology =
  let t =
    {
      spec;
      topology;
      table = Prefix.Table.create 64;
      staged = Prefix.Table.create 64;
      usage = Switch_id.Map.empty;
      active = Topology.switch_set topology spec.Task_spec.filter;
      sorted_cache = None;
    }
  in
  add_counter t (new_counter t spec.Task_spec.filter);
  t

let spec t = t.spec

let topology t = t.topology

let counters t =
  match t.sorted_cache with
  | Some cached -> cached
  | None ->
    let all = Prefix.Table.fold (fun _ c acc -> c :: acc) t.table [] in
    let sorted =
      List.sort (fun (a : Counter.t) (b : Counter.t) -> Prefix.compare a.prefix b.prefix) all
    in
    t.sorted_cache <- Some sorted;
    sorted

let num_counters t = Prefix.Table.length t.table

let find t p = Prefix.Table.find_opt t.table p

let switches t = Topology.switch_set t.topology t.spec.Task_spec.filter

let usage t sw = match Switch_id.Map.find_opt sw t.usage with Some v -> v | None -> 0

let active t = t.active

let usage_map t = t.usage

let rules_for t sw =
  if not (Switch_id.Set.mem sw t.active) then []
  else begin
    List.filter_map
      (fun (c : Counter.t) -> if Switch_id.Set.mem sw c.switches then Some c.prefix else None)
      (counters t)
  end

let ingest t readings =
  (* readings: per switch, (prefix, volume) pairs for this task's rules. *)
  let staged = t.staged in
  Prefix.Table.clear staged;
  List.iter
    (fun (sw, pairs) ->
      List.iter
        (fun (p, v) ->
          let m =
            match Prefix.Table.find_opt staged p with
            | Some m -> m
            | None -> Switch_id.Map.empty
          in
          Prefix.Table.replace staged p (Switch_id.Map.add sw v m))
        pairs)
    readings;
  Prefix.Table.iter
    (fun p c ->
      let volumes =
        match Prefix.Table.find_opt staged p with Some m -> m | None -> Switch_id.Map.empty
      in
      Counter.set_volumes c volumes)
    t.table

let allocation allocations sw =
  match Switch_id.Map.find_opt sw allocations with Some v -> v | None -> 0

let overloaded t ~allocations =
  Switch_id.Map.fold
    (fun sw used acc ->
      if used > allocation allocations sw then Switch_id.Set.add sw acc else acc)
    t.usage Switch_id.Set.empty

let bottlenecked t ~allocations =
  Switch_id.Set.filter
    (fun sw -> Switch_id.Set.mem sw t.active && usage t sw >= allocation allocations sw)
    (switches t)

(* ---- cover(): greedy weighted set cover over ancestor T sets ---- *)

module Cover = struct
  type solution = { ancestors : Prefix.t list; cost : float }

  type node_info = {
    s : Switch_id.Set.t; (* switches with traffic under this node *)
    t_set : Switch_id.Set.t; (* switches freed by merging this node *)
    cost : float; (* total score of descendant counters *)
    count : int; (* descendant monitored counters *)
  }

  let build_candidates t =
    (* The monitored counters, sorted by prefix, ARE the trie: walk the
       structural nodes they imply instead of path-copying a fresh
       immutable trie on every build (the single largest allocation site
       of the configure phase before the zero-alloc pass). *)
    let bindings =
      Array.map (fun (c : Counter.t) -> (c.prefix, c)) (Array.of_list (counters t))
    in
    let candidates = ref [] in
    let merge_info prefix (value : Counter.t option) (children : node_info list) =
      match value with
      | Some c ->
        (* Partition invariant: monitored nodes have no monitored
           descendants, so children must be empty. *)
        { s = effective t c; t_set = Switch_id.Set.empty; cost = c.score; count = 1 }
      | None ->
        let info =
          match children with
          | [ only ] -> { only with t_set = only.t_set }
          | [ l; r ] ->
            {
              s = Switch_id.Set.union l.s r.s;
              t_set =
                Switch_id.Set.union
                  (Switch_id.Set.union l.t_set r.t_set)
                  (Switch_id.Set.inter l.s r.s);
              cost = l.cost +. r.cost;
              count = l.count + r.count;
            }
          | _ -> { s = Switch_id.Set.empty; t_set = Switch_id.Set.empty; cost = 0.0; count = 0 }
        in
        if (not (Switch_id.Set.is_empty info.t_set)) && info.count >= 2 then
          candidates := (prefix, info) :: !candidates;
        info
    in
    ignore
      (Trie.fold_bindings_bottom_up ~root:t.spec.Task_spec.filter bindings ~f:merge_info);
    !candidates

  type candidates = {
    cands : (Prefix.t * node_info) list;
    cheapest_per_switch : float Switch_id.Map.t;
        (* lower bound on the cost of any candidate freeing each switch;
           stays a valid lower bound across repairs *)
  }

  let build t =
    let cands = build_candidates t in
    let cheapest_per_switch =
      List.fold_left
        (fun acc (_, info) ->
          Switch_id.Set.fold
            (fun sw acc ->
              let current =
                match Switch_id.Map.find_opt sw acc with Some v -> v | None -> Float.infinity
              in
              Switch_id.Map.add sw (Float.min current info.cost) acc)
            info.t_set acc)
        Switch_id.Map.empty cands
    in
    { cands; cheapest_per_switch }

  (* A merge at [ancestor] turns that subtree into a single counter: every
     candidate inside it disappears; all others remain exactly valid (the
     merged counter's score is the sum of its victims').  The cheapest
     bounds are left untouched — they only ever under-estimate. *)
  let repair_after_merge candidates ancestor =
    {
      candidates with
      cands = List.filter (fun (q, _) -> not (Prefix.covers ancestor q)) candidates.cands;
    }

  (* Lower bound on the cost of covering [f]: any solution must include,
     for each switch, a candidate at least as expensive as that switch's
     cheapest. *)
  let min_cost_bound candidates f =
    Switch_id.Set.fold
      (fun sw acc ->
        let c =
          match Switch_id.Map.find_opt sw candidates.cheapest_per_switch with
          | Some v -> v
          | None -> Float.infinity
        in
        Float.max acc c)
      f 0.0

  let solve_with { cands; cheapest_per_switch = _ } ~exclude f =
    if Switch_id.Set.is_empty f then Some { ancestors = []; cost = 0.0 }
    else begin
      let keep (prefix, _) =
        match exclude with None -> true | Some p -> not (Prefix.covers prefix p)
      in
      let candidates = List.filter keep cands in
      let rec greedy chosen cost uncovered candidates =
        if Switch_id.Set.is_empty uncovered then Some { ancestors = chosen; cost }
        else begin
          let useful =
            List.filter_map
              (fun (prefix, info) ->
                let gain = Switch_id.Set.cardinal (Switch_id.Set.inter info.t_set uncovered) in
                if gain = 0 then None else Some (prefix, info, gain))
              candidates
          in
          match useful with
          | [] -> None
          | _ :: _ ->
            let best =
              List.fold_left
                (fun acc (prefix, info, gain) ->
                  let ratio = info.cost /. float_of_int gain in
                  match acc with
                  | Some (_, _, _, best_ratio) when best_ratio <= ratio -> acc
                  | _ -> Some (prefix, info, gain, ratio))
                None useful
            in
            begin
              match best with
              | None -> None
              | Some (prefix, info, _, _) ->
                let remaining =
                  List.filter
                    (fun (q, _) -> not (Prefix.covers q prefix || Prefix.covers prefix q))
                    candidates
                in
                greedy (prefix :: chosen) (cost +. info.cost)
                  (Switch_id.Set.diff uncovered info.t_set)
                  remaining
            end
        end
      in
      greedy [] 0.0 f candidates
    end

  let solve t ~exclude f = solve_with (build t) ~exclude f
end

(* ---- merge and divide ---- *)

let descendant_counters t ancestor =
  (* Unsorted on purpose: this runs inside the divide-and-merge loop and
     must not pay for the sorted-counters cache rebuild. *)
  Prefix.Table.fold
    (fun _ (c : Counter.t) acc -> if Prefix.covers ancestor c.prefix then c :: acc else acc)
    t.table []

let[@hot] merge t ancestor =
  match descendant_counters t ancestor with
  | [] -> ()
  | [ c ] when Prefix.equal c.Counter.prefix ancestor ->
    () (* already monitoring exactly this prefix *)
  | victims ->
    (* Sort victims: [descendant_counters] folds a Hashtbl, whose order
       depends on insertion history.  The float sums below must not — a
       restored controller rebuilds its tables in a different order and
       still has to produce bit-identical merges. *)
    let victims =
      List.sort
        (fun (a : Counter.t) (b : Counter.t) -> Prefix.compare a.prefix b.prefix)
        victims
    in
    let merged = new_counter t ancestor in
    let volumes =
      List.fold_left
        (fun acc (c : Counter.t) ->
          Switch_id.Map.union (fun _ a b -> Some (a +. b)) acc c.volumes)
        Switch_id.Map.empty victims
    in
    let score = List.fold_left (fun acc (c : Counter.t) -> acc +. c.score) 0.0 victims in
    let mean_sum, has_mean =
      List.fold_left
        (fun (acc, has) (c : Counter.t) ->
          match Ewma.value c.mean with Some v -> (acc +. v, true) | None -> (acc, has))
        (0.0, false) victims
    in
    List.iter (remove_counter t) victims;
    add_counter t merged;
    Counter.set_volumes merged volumes;
    merged.Counter.score <- score;
    if has_mean then Ewma.seed merged.Counter.mean mean_sum

let apply_merges t solution = List.iter (merge t) solution.Cover.ancestors

let[@hot] divide t (c : Counter.t) =
  match Prefix.children c.prefix with
  | None -> ()
  | Some (l, r) ->
    remove_counter t c;
    let spawn p =
      let child = new_counter t p in
      child.Counter.score <- c.score /. 2.0;
      begin
        match Ewma.value c.mean with
        | Some m -> Ewma.seed child.Counter.mean (m /. 2.0)
        | None -> ()
      end;
      add_counter t child;
      child
    in
    ignore (spawn l);
    ignore (spawn r)

(* ---- Algorithm 2 ---- *)

let total_allocation allocations =
  Switch_id.Map.fold (fun _ v acc -> acc + v) allocations 0

let shrink_to_fit t ~allocations =
  (* Merge minimum-cost covers until no switch exceeds its allocation.  If
     a cover cannot be found (single counter left on an overloaded switch),
     collapse to the root filter as a last resort. *)
  let rec go guard =
    let f = overloaded t ~allocations in
    if (not (Switch_id.Set.is_empty f)) && guard > 0 then begin
      match Cover.solve t ~exclude:None f with
      | Some ({ Cover.ancestors = _ :: _; _ } as sol) ->
        apply_merges t sol;
        go (guard - 1)
      | Some { Cover.ancestors = []; _ } | None ->
        if num_counters t > 1 then begin
          merge t t.spec.Task_spec.filter;
          go (guard - 1)
        end
    end
  in
  go (num_counters t + 8)

let[@hot] divide_phase t ~allocations =
  let leaf_length = t.spec.Task_spec.leaf_length in
  let cmp (a : Counter.t) (b : Counter.t) = Float.compare a.score b.score in
  let heap = Heap.create ~cmp in
  List.iter
    (fun (c : Counter.t) ->
      if not (Counter.is_exact c ~leaf_length) then Heap.push heap c)
    (counters t);
  (* Cover candidates are expensive to build (a full pass over the counter
     trie), so cache them across heap pops and invalidate only when a merge
     or divide changes the configuration. *)
  let cached = ref None in
  let candidates () =
    match !cached with
    | Some c -> c
    | None ->
      let c = Cover.build t in
      cached := Some c;
      c
  in
  let push_children l r =
    let push p =
      match find t p with
      | Some c when not (Counter.is_exact c ~leaf_length) -> Heap.push heap c
      | Some _ | None -> ()
    in
    push l;
    push r
  in
  let budget = (4 * total_allocation allocations) + 64 in
  (* Paid divides (ones that must merge other counters to free entries)
     must beat the merge cost by a margin, or the configuration churns
     forever swapping near-equal marginal prefixes. *)
  let improvement_floor = t.spec.Task_spec.threshold /. 16.0 in
  let rec loop budget =
    if budget <= 0 then ()
    else begin
      match Heap.pop heap with
      | None -> ()
      | Some c ->
        (* Skip stale heap entries (counters merged away meanwhile). *)
        let live =
          match find t c.Counter.prefix with Some c' when c' == c -> true | Some _ | None -> false
        in
        if not live then loop budget
        else if c.Counter.score <= 0.0 then () (* max score <= 0: nothing worth dividing *)
        else begin
          match Prefix.children c.Counter.prefix with
          | None -> loop budget
          | Some (l, r) ->
            let s_l = Switch_id.Set.inter (Topology.switch_set t.topology l) t.active in
            let s_r = Switch_id.Set.inter (Topology.switch_set t.topology r) t.active in
            let extra = Switch_id.Set.inter s_l s_r in
            let f =
              Switch_id.Set.filter (fun sw -> usage t sw + 1 > allocation allocations sw) extra
            in
            if Switch_id.Set.is_empty f then begin
              (* A divide keeps cached candidates conservatively valid:
                 the divided counter's score equals its children's sum, S
                 sets are unchanged, and T sets can only have grown. *)
              divide t c;
              push_children l r;
              loop (budget - 1)
            end
            else begin
              let cands = candidates () in
              (* Any cover of f costs at least the per-switch cheapest
                 bound, so skip the solve outright when it cannot pay. *)
              if Cover.min_cost_bound cands f +. improvement_floor >= c.Counter.score then
                loop budget
              else begin
                match Cover.solve_with cands ~exclude:(Some c.Counter.prefix) f with
                | Some sol when sol.Cover.cost +. improvement_floor < c.Counter.score ->
                  apply_merges t sol;
                  cached :=
                    Some
                      (List.fold_left Cover.repair_after_merge cands sol.Cover.ancestors);
                  (* Re-check: the merge must actually have freed room. *)
                  let still_blocked =
                    Switch_id.Set.exists
                      (fun sw -> usage t sw + 1 > allocation allocations sw)
                      extra
                  in
                  if not still_blocked then begin
                    divide t c;
                    push_children l r
                  end;
                  loop (budget - 1)
                | Some _ | None -> loop (budget - 1)
              end
            end
        end
    end
  in
  loop budget

let recompute_usage t =
  t.usage <- Switch_id.Map.empty;
  Prefix.Table.iter (fun _ c -> bump_usage t (effective t c) 1) t.table

let set_active t active =
  if not (Switch_id.Set.equal active t.active) then begin
    t.active <- active;
    recompute_usage t
  end

let configure t ~allocations =
  let granted =
    Switch_id.Set.filter (fun sw -> allocation allocations sw >= 1) (switches t)
  in
  set_active t granted;
  shrink_to_fit t ~allocations;
  divide_phase t ~allocations

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "monitor";
  C.int w "active" (Switch_id.Set.cardinal t.active);
  Switch_id.Set.iter (fun sw -> C.int w "sw" sw) t.active;
  C.int w "counters" (num_counters t);
  List.iter (Counter.emit w) (counters t)

let parse r ~spec ~topology =
  let module C = Dream_util.Codec in
  C.expect_section r "monitor";
  let n = C.int_field r "active" in
  let active = C.repeat n (fun () -> C.int_field r "sw") |> Switch_id.set_of_list in
  let t =
    {
      spec;
      topology;
      table = Prefix.Table.create 64;
      staged = Prefix.Table.create 64;
      usage = Switch_id.Map.empty;
      active;
      sorted_cache = None;
    }
  in
  let n = C.int_field r "counters" in
  ignore
    (C.repeat n (fun () ->
         add_counter t (Counter.parse r ~switch_set:(Topology.switch_set topology))));
  t

let is_partition t =
  let filter = t.spec.Task_spec.filter in
  let covered =
    List.fold_left (fun acc (c : Counter.t) -> acc + Prefix.size c.prefix) 0 (counters t)
  in
  let disjoint =
    let sorted = counters t in
    let rec check = function
      | [] | [ _ ] -> true
      | (a : Counter.t) :: ((b : Counter.t) :: _ as rest) ->
        Prefix.last_address a.prefix < Prefix.first_address b.prefix && check rest
    in
    check sorted
  in
  disjoint
  && covered = Prefix.size filter
  && List.for_all (fun (c : Counter.t) -> Prefix.covers filter c.prefix) (counters t)
