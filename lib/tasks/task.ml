module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Ewma = Dream_util.Ewma

type accuracy_mode = Overall | Global_only

type t = {
  id : int;
  spec : Task_spec.t;
  topology : Topology.t;
  monitor : Monitor.t;
  global_acc : Ewma.t;
  overall_acc : (Switch_id.t, Ewma.t) Hashtbl.t;
  accuracy_history : float;
  accuracy_mode : accuracy_mode;
  mutable allocations : int Switch_id.Map.t;
}

let create ~id ~spec ~topology ?(accuracy_history = 0.4) ?(accuracy_mode = Overall) () =
  let monitor = Monitor.create ~spec ~topology in
  let initial_allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw 1 acc)
      (Monitor.switches monitor) Switch_id.Map.empty
  in
  {
    id;
    spec;
    topology;
    monitor;
    global_acc = Ewma.create ~history:accuracy_history;
    overall_acc = Hashtbl.create 8;
    accuracy_history;
    accuracy_mode;
    allocations = initial_allocations;
  }

let id t = t.id
let spec t = t.spec
let monitor t = t.monitor
let topology t = t.topology
let switches t = Monitor.switches t.monitor
let allocations t = t.allocations

let desired_rules t sw = Monitor.rules_for t.monitor sw

let ingest_counters t readings = Monitor.ingest t.monitor readings

let make_report t ~epoch =
  match t.spec.Task_spec.kind with
  | Task_spec.Heavy_hitter -> Hh.report t.monitor ~epoch
  | Task_spec.Hierarchical_heavy_hitter -> Hhh.report t.monitor ~epoch
  | Task_spec.Change_detection -> Cd.report t.monitor ~epoch

let overall_filter t sw =
  match Hashtbl.find_opt t.overall_acc sw with
  | Some f -> f
  | None ->
    let f = Ewma.create ~history:t.accuracy_history in
    Hashtbl.replace t.overall_acc sw f;
    f

let estimate_accuracy t =
  let accuracy =
    match t.spec.Task_spec.kind with
    | Task_spec.Heavy_hitter -> Hh.estimate t.monitor ~allocations:t.allocations
    | Task_spec.Hierarchical_heavy_hitter -> Hhh.estimate t.monitor ~allocations:t.allocations
    | Task_spec.Change_detection ->
      let acc = Cd.estimate t.monitor ~allocations:t.allocations in
      Cd.finish_epoch t.monitor;
      acc
  in
  ignore (Ewma.update t.global_acc accuracy.Accuracy.global);
  Switch_id.Set.iter
    (fun sw ->
      let sample =
        match t.accuracy_mode with
        | Overall -> Accuracy.overall accuracy sw
        | Global_only -> accuracy.Accuracy.global
      in
      ignore (Ewma.update (overall_filter t sw) sample))
    (switches t);
  accuracy

let decay_accuracy t ?switch ~factor () =
  Ewma.scale t.global_acc factor;
  match switch with None -> () | Some sw -> Ewma.scale (overall_filter t sw) factor

let smoothed_global t = Ewma.value_or t.global_acc 1.0

let overall_accuracy t sw = Ewma.value_or (overall_filter t sw) 1.0

let configure t ~allocations =
  t.allocations <- allocations;
  Score.apply t.monitor;
  Monitor.configure t.monitor ~allocations

let counters_used t sw = Monitor.usage t.monitor sw
