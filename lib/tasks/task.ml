module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Ewma = Dream_util.Ewma

type accuracy_mode = Overall | Global_only

type t = {
  id : int;
  spec : Task_spec.t;
  topology : Topology.t;
  monitor : Monitor.t;
  global_acc : Ewma.t;
  overall_acc : (Switch_id.t, Ewma.t) Hashtbl.t;
  accuracy_history : float;
  accuracy_mode : accuracy_mode;
  mutable allocations : int Switch_id.Map.t;
}

let create ~id ~spec ~topology ?(accuracy_history = 0.4) ?(accuracy_mode = Overall) () =
  let monitor = Monitor.create ~spec ~topology in
  let initial_allocations =
    Switch_id.Set.fold
      (fun sw acc -> Switch_id.Map.add sw 1 acc)
      (Monitor.switches monitor) Switch_id.Map.empty
  in
  {
    id;
    spec;
    topology;
    monitor;
    global_acc = Ewma.create ~history:accuracy_history;
    overall_acc = Hashtbl.create 8;
    accuracy_history;
    accuracy_mode;
    allocations = initial_allocations;
  }

let id t = t.id
let spec t = t.spec
let monitor t = t.monitor
let topology t = t.topology
let switches t = Monitor.switches t.monitor
let allocations t = t.allocations

let desired_rules t sw = Monitor.rules_for t.monitor sw

let ingest_counters t readings = Monitor.ingest t.monitor readings

let make_report t ~epoch =
  match t.spec.Task_spec.kind with
  | Task_spec.Heavy_hitter -> Hh.report t.monitor ~epoch
  | Task_spec.Hierarchical_heavy_hitter -> Hhh.report t.monitor ~epoch
  | Task_spec.Change_detection -> Cd.report t.monitor ~epoch

let overall_filter t sw =
  match Hashtbl.find_opt t.overall_acc sw with
  | Some f -> f
  | None ->
    let f = Ewma.create ~history:t.accuracy_history in
    Hashtbl.replace t.overall_acc sw f;
    f

let estimate_accuracy t =
  let accuracy =
    match t.spec.Task_spec.kind with
    | Task_spec.Heavy_hitter -> Hh.estimate t.monitor ~allocations:t.allocations
    | Task_spec.Hierarchical_heavy_hitter -> Hhh.estimate t.monitor ~allocations:t.allocations
    | Task_spec.Change_detection ->
      let acc = Cd.estimate t.monitor ~allocations:t.allocations in
      Cd.finish_epoch t.monitor;
      acc
  in
  ignore (Ewma.update t.global_acc accuracy.Accuracy.global);
  Switch_id.Set.iter
    (fun sw ->
      let sample =
        match t.accuracy_mode with
        | Overall -> Accuracy.overall accuracy sw
        | Global_only -> accuracy.Accuracy.global
      in
      ignore (Ewma.update (overall_filter t sw) sample))
    (switches t);
  accuracy

let decay_accuracy t ?switch ~factor () =
  Ewma.scale t.global_acc factor;
  match switch with None -> () | Some sw -> Ewma.scale (overall_filter t sw) factor

let smoothed_global t = Ewma.value_or t.global_acc 1.0

let overall_accuracy t sw = Ewma.value_or (overall_filter t sw) 1.0

let configure t ~allocations =
  t.allocations <- allocations;
  Score.apply t.monitor;
  Monitor.configure t.monitor ~allocations

let counters_used t sw = Monitor.usage t.monitor sw

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "task";
  C.int w "id" t.id;
  Task_spec.emit w t.spec;
  Topology.emit w t.topology;
  C.float w "accuracy_history" t.accuracy_history;
  C.string w "accuracy_mode"
    (match t.accuracy_mode with Overall -> "overall" | Global_only -> "global");
  Ewma.emit w t.global_acc;
  let overall =
    Hashtbl.fold (fun sw f acc -> (sw, f) :: acc) t.overall_acc []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  C.int w "overall_acc" (List.length overall);
  List.iter
    (fun (sw, f) ->
      C.int w "sw" sw;
      Ewma.emit w f)
    overall;
  C.int w "allocations" (Switch_id.Map.cardinal t.allocations);
  Switch_id.Map.iter
    (fun sw alloc ->
      C.int w "sw" sw;
      C.int w "alloc" alloc)
    t.allocations;
  Monitor.emit w t.monitor

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "task";
  let id = C.int_field r "id" in
  let spec = Task_spec.parse r in
  let topology = Topology.parse r in
  let accuracy_history = C.float_field r "accuracy_history" in
  let accuracy_mode =
    match C.string_field r "accuracy_mode" with
    | "overall" -> Overall
    | "global" -> Global_only
    | m -> C.parse_error 0 (Printf.sprintf "unknown accuracy mode %S" m)
  in
  let global_acc = Ewma.parse r in
  let overall_acc = Hashtbl.create 8 in
  let n = C.int_field r "overall_acc" in
  ignore
    (C.repeat n (fun () ->
         let sw = C.int_field r "sw" in
         Hashtbl.replace overall_acc sw (Ewma.parse r)));
  let n = C.int_field r "allocations" in
  let allocations =
    C.repeat n (fun () ->
        let sw = C.int_field r "sw" in
        let alloc = C.int_field r "alloc" in
        (sw, alloc))
    |> List.fold_left (fun acc (sw, a) -> Switch_id.Map.add sw a acc) Switch_id.Map.empty
  in
  let monitor = Monitor.parse r ~spec ~topology in
  {
    id;
    spec;
    topology;
    monitor;
    global_acc;
    overall_acc;
    accuracy_history;
    accuracy_mode;
    allocations;
  }
