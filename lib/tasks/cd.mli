(** Change-detection task behaviour (Table 1, row CD).

    A change is significant when the counter's volume deviates from its
    historical mean by more than the threshold; reporting, scoring and
    accuracy estimation mirror HH with |volume - mean| in place of volume.
    Call {!finish_epoch} once per epoch, after reporting and estimating,
    to fold the epoch's volumes into the per-counter means. *)

val report : Monitor.t -> epoch:int -> Report.t

val estimate :
  Monitor.t -> allocations:int Dream_traffic.Switch_id.Map.t -> Accuracy.t

val finish_epoch : Monitor.t -> unit
