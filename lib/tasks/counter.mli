(** One monitored TCAM counter of a task.

    A counter monitors a prefix on every switch that can see its traffic
    (its S set, from the topology), because the task must sum per-switch
    volumes at the controller (Section 5.2).  Volumes are refreshed each
    epoch by the fetch step; [fresh] marks counters installed by the last
    reconfiguration whose volumes have not been measured yet. *)

type t = {
  prefix : Dream_prefix.Prefix.t;
  switches : Dream_traffic.Switch_id.Set.t;  (** S: switches with traffic for this prefix *)
  mutable volumes : float Dream_traffic.Switch_id.Map.t;  (** last fetched, per switch *)
  mutable total : float;  (** sum of [volumes] *)
  mutable score : float;  (** task-dependent "interestingness" *)
  mean : Dream_util.Ewma.t;  (** CD volume history (unused by HH/HHH) *)
  mutable fresh : bool;
}

val create :
  prefix:Dream_prefix.Prefix.t ->
  switches:Dream_traffic.Switch_id.Set.t ->
  cd_history:float ->
  t
(** A fresh counter with zero volumes and score. *)

val set_volumes : t -> float Dream_traffic.Switch_id.Map.t -> unit
(** Record fetched volumes; updates [total] and clears [fresh]. *)

val volume_on : t -> Dream_traffic.Switch_id.t -> float

val wildcards : t -> leaf_length:int -> int
(** Free bits down to the task's drill-down floor. *)

val is_exact : t -> leaf_length:int -> bool

val cd_deviation : t -> float
(** [|total - mean|]; 0 before any history. *)

val update_mean : t -> unit
(** Fold the current total into the CD mean (call after reporting). *)

val pp : Format.formatter -> t -> unit

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the counter's measurement state to a checkpoint document.
    [switches] is not written; it is re-derived from the topology. *)

val parse :
  Dream_util.Codec.reader ->
  switch_set:(Dream_prefix.Prefix.t -> Dream_traffic.Switch_id.Set.t) ->
  t
(** Inverse of {!emit}; [switch_set] recomputes the S set (pass
    [Topology.switch_set topology]).
    @raise Dream_util.Codec.Parse_error on mismatch. *)
