module Prefix = Dream_prefix.Prefix
module Trie = Dream_prefix.Trie
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology

type detection = { prefix : Prefix.t; residual : float; value : float }

(* Bottom-up state per trie node. *)
type node_result = {
  unclaimed : float; (* volume not claimed by detected descendant HHHs *)
  over_sum : float; (* total over-approximation of detected HHHs below *)
  has_detected : bool;
}

let detect monitor =
  let spec = Monitor.spec monitor in
  let threshold = spec.Task_spec.threshold in
  let leaf_length = spec.Task_spec.leaf_length in
  let counters = Monitor.counters monitor in
  (* Sorted counters are walked as the trie they imply — no trie build. *)
  let bindings =
    Array.map (fun (c : Counter.t) -> (c.Counter.prefix, c)) (Array.of_list counters)
  in
  let detections = ref [] in
  let over_approx residual value = if value >= 1.0 then 0.0 else Float.max 0.0 (residual -. threshold) in
  let visit prefix (value : Counter.t option) (children : node_result list) =
    match value with
    | Some c ->
      (* Monitored counter: a trie leaf under the partition invariant. *)
      let residual = c.Counter.total in
      if residual > threshold then begin
        let v =
          if Prefix.length prefix >= leaf_length then 1.0
          else if residual > 2.0 *. threshold then 0.0
          else 0.5
        in
        detections := { prefix; residual; value = v } :: !detections;
        { unclaimed = 0.0; over_sum = over_approx residual v; has_detected = true }
      end
      else { unclaimed = residual; over_sum = 0.0; has_detected = false }
    | None ->
      let residual = List.fold_left (fun acc r -> acc +. r.unclaimed) 0.0 children in
      let child_over = List.fold_left (fun acc r -> acc +. r.over_sum) 0.0 children in
      let has_detected_below = List.exists (fun r -> r.has_detected) children in
      if residual > threshold then begin
        let v =
          if not has_detected_below then
            (* All descendants monitored and below threshold: confirmed. *)
            1.0
          else begin
            (* The over-approximated volume of descendant detections could
               hide a true HHH in one of the children; halve if so. *)
            let child_could_be_hhh =
              List.exists (fun r -> r.unclaimed +. r.over_sum > threshold) children
            in
            if child_could_be_hhh then 0.5 else 1.0
          end
        in
        detections := { prefix; residual; value = v } :: !detections;
        { unclaimed = 0.0; over_sum = child_over +. over_approx residual v; has_detected = true }
      end
      else { unclaimed = residual; over_sum = child_over; has_detected = has_detected_below }
  in
  ignore (Trie.fold_bindings_bottom_up ~root:spec.Task_spec.filter bindings ~f:visit);
  List.sort (fun a b -> Prefix.compare a.prefix b.prefix) !detections

let report monitor ~epoch =
  let spec = Monitor.spec monitor in
  let items =
    List.map (fun d -> { Report.prefix = d.prefix; magnitude = d.residual }) (detect monitor)
  in
  { Report.kind = spec.Task_spec.kind; epoch; items }

let estimate_recall monitor =
  let spec = Monitor.spec monitor in
  let threshold = spec.Task_spec.threshold in
  let leaf_length = spec.Task_spec.leaf_length in
  let detections = detect monitor in
  let detected = List.length detections in
  (* Every coarse (non-exact) detection may stand in for several finer
     HHHs; bound the hidden ones by its residual volume, as the HH
     estimator bounds missed heavy hitters by prefix volume. *)
  let missed =
    List.fold_left
      (fun acc d ->
        if Prefix.length d.prefix >= leaf_length then acc
        else begin
          let hidden = int_of_float (Float.floor (d.residual /. threshold)) - 1 in
          acc + max 0 hidden
        end)
      0 detections
  in
  if detected + missed = 0 then 1.0
  else float_of_int detected /. float_of_int (detected + missed)

let estimate monitor ~allocations =
  let detections = detect monitor in
  let global =
    match detections with
    | [] -> 1.0
    | _ :: _ ->
      List.fold_left (fun acc d -> acc +. d.value) 0.0 detections
      /. float_of_int (List.length detections)
  in
  let topology = Monitor.topology monitor in
  let bottlenecks = Monitor.bottlenecked monitor ~allocations in
  let locals =
    Switch_id.Set.fold
      (fun sw acc ->
        let values =
          List.filter_map
            (fun d ->
              if Switch_id.Set.mem sw (Topology.switch_set topology d.prefix) then
                (* Only bottleneck switches inherit the uncertain value;
                   others are scored 1 (Section 5.3). *)
                Some (if Switch_id.Set.mem sw bottlenecks then d.value else 1.0)
              else None)
            detections
        in
        let local =
          match values with
          | [] -> 1.0
          | _ :: _ -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
        in
        Switch_id.Map.add sw local acc)
      (Monitor.switches monitor) Switch_id.Map.empty
  in
  { Accuracy.global = Accuracy.clamp global; locals }
