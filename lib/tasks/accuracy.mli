(** Estimated task accuracy: one global figure plus a local figure per
    switch (Section 4, "Task Accuracy Computation").  All values live in
    \[0, 1\].  For HH and CD tasks the figures are estimated recall; for
    HHH they are estimated precision. *)

type t = {
  global : float;
  locals : float Dream_traffic.Switch_id.Map.t;
}

val perfect : switches:Dream_traffic.Switch_id.Set.t -> t
(** Accuracy 1 everywhere — what an idle task (no traffic) reports. *)

val local : t -> Dream_traffic.Switch_id.t -> float
(** Local accuracy on a switch, defaulting to the global value where no
    local estimate exists. *)

val overall : t -> Dream_traffic.Switch_id.t -> float
(** [max global local] — the overall accuracy used for allocation
    decisions. *)

val clamp : float -> float
(** Clamp into \[0, 1\]. *)

val pp : Format.formatter -> t -> unit
