(** A small builder for measurement queries — the user-facing way to write
    "find heavy hitters over 10/8 sending more than 8 Mb, at 90% accuracy"
    without touching {!Task_spec} records:

    {[
      Query.(
        heavy_hitters ~over:"10.0.0.0/8"
        |> exceeding_mb 8.0
        |> with_accuracy 0.9
        |> to_spec)
    ]}

    Builders are immutable; [to_spec] validates everything at once and
    returns an error message rather than raising. *)

type t

val heavy_hitters : over:string -> t
(** HH detection over the dotted-quad prefix filter [over]. *)

val hierarchical_heavy_hitters : over:string -> t

val changes : over:string -> t
(** Change detection. *)

val exceeding_mb : float -> t -> t
(** Threshold in Mb per epoch (default 8). *)

val with_accuracy : float -> t -> t
(** Accuracy bound in \[0, 1\] (default 0.8, the diminishing-returns
    point). *)

val with_priority : Task_spec.priority -> t -> t
(** Use an operator priority instead of an explicit bound: sets both the
    accuracy bound and the drop priority (the paper's footnote 2). *)

val drill_to : int -> t -> t
(** Prefix length of an "exact" item (default 32: exact IPs). *)

val to_spec : t -> (Task_spec.t, string) result
(** Validate and build.  Errors name the offending field. *)

val to_spec_exn : t -> Task_spec.t
(** @raise Invalid_argument with the error message. *)
