module Prefix = Dream_prefix.Prefix

type item = { prefix : Prefix.t; magnitude : float }

type t = { kind : Task_spec.kind; epoch : int; items : item list }

let prefixes t = Prefix.Set.of_list (List.map (fun i -> i.prefix) t.items)

let size t = List.length t.items

let pp ppf t =
  Format.fprintf ppf "@[<v>%a report (epoch %d, %d items):@,%a@]" Task_spec.pp_kind t.kind t.epoch
    (size t)
    (Format.pp_print_list (fun ppf i ->
         Format.fprintf ppf "  %a  %.2f" Prefix.pp i.prefix i.magnitude))
    t.items
