module Prefix = Dream_prefix.Prefix
module Aggregate = Dream_traffic.Aggregate
module Epoch_data = Dream_traffic.Epoch_data

type t = {
  spec : Task_spec.t;
  cd_means : (Prefix.t, float) Hashtbl.t; (* leaf prefix -> EWMA mean volume *)
}

let create spec = { spec; cd_means = Hashtbl.create 256 }

type truth = { true_items : Prefix.Set.t; real_accuracy : float }

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "ground_truth";
  let means =
    Hashtbl.fold (fun p m acc -> (p, m) :: acc) t.cd_means []
    |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
  in
  C.int w "cd_means" (List.length means);
  List.iter
    (fun (p, m) ->
      C.string w "prefix" (Prefix.to_string p);
      C.float w "mean" m)
    means

let parse r ~spec =
  let module C = Dream_util.Codec in
  C.expect_section r "ground_truth";
  let n = C.int_field r "cd_means" in
  let cd_means = Hashtbl.create 256 in
  ignore
    (C.repeat n (fun () ->
         let p = Prefix.of_string (C.string_field r "prefix") in
         let m = C.float_field r "mean" in
         Hashtbl.replace cd_means p m));
  { spec; cd_means }

let leaf_of (spec : Task_spec.t) addr =
  Prefix.ancestor_at (Prefix.of_address addr) spec.Task_spec.leaf_length

(* Volumes per leaf prefix under the filter.  [fold_in] visits flows in
   the same ascending address order the [flows_in] list did, so each
   leaf's float sum accumulates in the identical order. *)
let leaf_volumes (spec : Task_spec.t) aggregate =
  let volumes = Hashtbl.create 256 in
  Aggregate.fold_in aggregate spec.Task_spec.filter ~init:()
    ~f:(fun () (f : Dream_traffic.Flow.t) ->
      let leaf = leaf_of spec f.Dream_traffic.Flow.addr in
      let existing = match Hashtbl.find_opt volumes leaf with Some v -> v | None -> 0.0 in
      Hashtbl.replace volumes leaf (existing +. f.Dream_traffic.Flow.volume));
  volumes

let true_heavy_hitters spec aggregate =
  let volumes = leaf_volumes spec aggregate in
  Hashtbl.fold
    (fun leaf v acc -> if v > spec.Task_spec.threshold then Prefix.Set.add leaf acc else acc)
    volumes Prefix.Set.empty

let true_hierarchical_heavy_hitters (spec : Task_spec.t) aggregate =
  let threshold = spec.Task_spec.threshold in
  let leaf_length = spec.Task_spec.leaf_length in
  let result = ref Prefix.Set.empty in
  (* Returns the volume under [p] not claimed by detected descendant HHHs;
     prunes subtrees whose total volume cannot contain an HHH. *)
  let rec walk p =
    let volume = Aggregate.volume aggregate p in
    if volume <= threshold then volume
    else if Prefix.length p >= leaf_length then begin
      result := Prefix.Set.add p !result;
      0.0
    end
    else begin
      match Prefix.children p with
      | None ->
        result := Prefix.Set.add p !result;
        0.0
      | Some (l, r) ->
        let unclaimed = walk l +. walk r in
        if unclaimed > threshold then begin
          result := Prefix.Set.add p !result;
          0.0
        end
        else unclaimed
    end
  in
  ignore (walk spec.Task_spec.filter);
  !result

let true_changes t aggregate =
  let spec = t.spec in
  let threshold = spec.Task_spec.threshold in
  let history = spec.Task_spec.cd_history in
  let volumes = leaf_volumes spec aggregate in
  (* A change can also be a leaf with history that sent nothing this epoch. *)
  let keys = Hashtbl.create 256 in
  Hashtbl.iter (fun leaf _ -> Hashtbl.replace keys leaf ()) volumes;
  Hashtbl.iter (fun leaf _ -> Hashtbl.replace keys leaf ()) t.cd_means;
  let changes = ref Prefix.Set.empty in
  Hashtbl.iter
    (fun leaf () ->
      let volume = match Hashtbl.find_opt volumes leaf with Some v -> v | None -> 0.0 in
      let mean = match Hashtbl.find_opt t.cd_means leaf with Some m -> m | None -> volume in
      if Float.abs (volume -. mean) > threshold then changes := Prefix.Set.add leaf !changes;
      let mean' = (history *. mean) +. ((1.0 -. history) *. volume) in
      (* volumes are non-negative, so <= 0.0 is "sent nothing" without
         testing floats for exact equality *)
      if mean' < 0.001 && volume <= 0.0 then Hashtbl.remove t.cd_means leaf
      else Hashtbl.replace t.cd_means leaf mean')
    keys;
  !changes

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let evaluate t epoch_data report =
  let aggregate = epoch_data.Epoch_data.combined in
  let reported = Report.prefixes report in
  let true_items =
    match t.spec.Task_spec.kind with
    | Task_spec.Heavy_hitter -> true_heavy_hitters t.spec aggregate
    | Task_spec.Hierarchical_heavy_hitter -> true_hierarchical_heavy_hitters t.spec aggregate
    | Task_spec.Change_detection -> true_changes t aggregate
  in
  let hits = Prefix.Set.cardinal (Prefix.Set.inter reported true_items) in
  let real_accuracy =
    match Task_spec.accuracy_metric t.spec with
    | `Recall -> ratio hits (Prefix.Set.cardinal true_items)
    | `Precision -> ratio hits (Prefix.Set.cardinal reported)
  in
  { true_items; real_accuracy }
