module Rng = Dream_util.Rng
module Switch_id = Dream_traffic.Switch_id

type spec = {
  seed : int;
  crash_rate : float;
  mean_downtime : float;
  fetch_timeout_rate : float;
  counter_loss_rate : float;
  install_failure_rate : float;
  perturb_stddev : float;
  stale_decay : float;
  retry_budget_fraction : float;
}

let zero =
  {
    seed = 0;
    crash_rate = 0.0;
    mean_downtime = 4.0;
    fetch_timeout_rate = 0.0;
    counter_loss_rate = 0.0;
    install_failure_rate = 0.0;
    perturb_stddev = 0.0;
    stale_decay = 0.9;
    retry_budget_fraction = 0.5;
  }

let uniform ?(seed = 0) rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault_model.uniform: rate must be in [0, 1]";
  {
    zero with
    seed;
    (* Crashes are an order of magnitude rarer than transient faults, as in
       any real deployment: a lossy channel is common, a dead switch is not. *)
    crash_rate = rate /. 10.0;
    fetch_timeout_rate = rate;
    counter_loss_rate = rate;
    install_failure_rate = rate;
    perturb_stddev = rate /. 10.0;
  }

let validate spec =
  let check_rate name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Fault_model: %s must be in [0, 1], got %g" name v)
  in
  check_rate "crash_rate" spec.crash_rate;
  check_rate "fetch_timeout_rate" spec.fetch_timeout_rate;
  check_rate "counter_loss_rate" spec.counter_loss_rate;
  check_rate "install_failure_rate" spec.install_failure_rate;
  if spec.mean_downtime < 1.0 then invalid_arg "Fault_model: mean_downtime must be >= 1 epoch";
  if spec.perturb_stddev < 0.0 then invalid_arg "Fault_model: perturb_stddev must be >= 0";
  if spec.stale_decay <= 0.0 || spec.stale_decay > 1.0 then
    invalid_arg "Fault_model: stale_decay must be in (0, 1]";
  if spec.retry_budget_fraction < 0.0 || spec.retry_budget_fraction > 1.0 then
    invalid_arg "Fault_model: retry_budget_fraction must be in [0, 1]"

type switch_state = {
  lifecycle : Rng.t; (* crash / recovery draws *)
  data : Rng.t; (* timeout / loss / install / perturbation draws *)
  mutable down_until : int; (* first epoch the switch is back up; <= epoch means up *)
}

type events = { crashed : Switch_id.t list; recovered : Switch_id.t list }

type t = { spec : spec; states : switch_state array; mutable epoch : int }

let create spec ~num_switches =
  validate spec;
  if num_switches <= 0 then invalid_arg "Fault_model.create: num_switches must be positive";
  (* One master stream expands the seed; each switch then owns two
     independent streams, so per-switch event sequences do not depend on the
     order (or number) of draws made for other switches. *)
  let master = Rng.create spec.seed in
  let states =
    Array.init num_switches (fun _ ->
        let lifecycle = Rng.split master in
        let data = Rng.split master in
        { lifecycle; data; down_until = 0 })
  in
  { spec; states; epoch = 0 }

let spec t = t.spec

let num_switches t = Array.length t.states

let state t sw =
  if sw < 0 || sw >= Array.length t.states then
    invalid_arg (Printf.sprintf "Fault_model: unknown switch %d" sw);
  t.states.(sw)

let is_down t sw = (state t sw).down_until > t.epoch

let down_count t =
  Array.fold_left (fun acc s -> if s.down_until > t.epoch then acc + 1 else acc) 0 t.states

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  let crashed = ref [] and recovered = ref [] in
  Array.iteri
    (fun sw s ->
      if s.down_until > 0 && s.down_until = t.epoch then recovered := sw :: !recovered;
      (* [<] not [<=]: a switch that recovered this very epoch gets one
         epoch of grace, so its recovery (and the controller's rule
         reinstall) is never voided before it was ever visible. *)
      if s.down_until < t.epoch && t.spec.crash_rate > 0.0
         && Rng.bernoulli s.lifecycle t.spec.crash_rate
      then begin
        let downtime = max 1 (int_of_float (Float.round (Rng.exponential s.lifecycle t.spec.mean_downtime))) in
        s.down_until <- t.epoch + downtime;
        crashed := sw :: !crashed
      end)
    t.states;
  { crashed = List.rev !crashed; recovered = List.rev !recovered }

let fetch_times_out t sw =
  let s = state t sw in
  t.spec.fetch_timeout_rate > 0.0 && Rng.bernoulli s.data t.spec.fetch_timeout_rate

let lose_counter t sw =
  let s = state t sw in
  t.spec.counter_loss_rate > 0.0 && Rng.bernoulli s.data t.spec.counter_loss_rate

let install_fails t sw =
  let s = state t sw in
  t.spec.install_failure_rate > 0.0 && Rng.bernoulli s.data t.spec.install_failure_rate

let perturb t sw v =
  if t.spec.perturb_stddev <= 0.0 then v
  else begin
    let s = state t sw in
    Float.max 0.0 (v *. (1.0 +. (t.spec.perturb_stddev *. Rng.gaussian s.data)))
  end
