module Rng = Dream_util.Rng
module Switch_id = Dream_traffic.Switch_id

type spec = {
  seed : int;
  crash_rate : float;
  mean_downtime : float;
  fetch_timeout_rate : float;
  counter_loss_rate : float;
  install_failure_rate : float;
  perturb_stddev : float;
  stale_decay : float;
  retry_budget_fraction : float;
  controller_crash_rate : float;
}

let zero =
  {
    seed = 0;
    crash_rate = 0.0;
    mean_downtime = 4.0;
    fetch_timeout_rate = 0.0;
    counter_loss_rate = 0.0;
    install_failure_rate = 0.0;
    perturb_stddev = 0.0;
    stale_decay = 0.9;
    retry_budget_fraction = 0.5;
    controller_crash_rate = 0.0;
  }

let uniform ?(seed = 0) rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault_model.uniform: rate must be in [0, 1]";
  {
    zero with
    seed;
    (* Crashes are an order of magnitude rarer than transient faults, as in
       any real deployment: a lossy channel is common, a dead switch is not. *)
    crash_rate = rate /. 10.0;
    fetch_timeout_rate = rate;
    counter_loss_rate = rate;
    install_failure_rate = rate;
    perturb_stddev = rate /. 10.0;
  }

let pp_spec ppf s =
  Format.fprintf ppf
    "seed=%d crash=%g downtime=%g timeout=%g loss=%g install_fail=%g perturb=%g decay=%g \
     retry_budget=%g ctrl_crash=%g"
    s.seed s.crash_rate s.mean_downtime s.fetch_timeout_rate s.counter_loss_rate
    s.install_failure_rate s.perturb_stddev s.stale_decay s.retry_budget_fraction
    s.controller_crash_rate

let validate spec =
  let check_rate name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Fault_model: %s must be in [0, 1], got %g" name v)
  in
  check_rate "crash_rate" spec.crash_rate;
  check_rate "fetch_timeout_rate" spec.fetch_timeout_rate;
  check_rate "counter_loss_rate" spec.counter_loss_rate;
  check_rate "install_failure_rate" spec.install_failure_rate;
  if spec.mean_downtime < 1.0 then invalid_arg "Fault_model: mean_downtime must be >= 1 epoch";
  if spec.perturb_stddev < 0.0 then invalid_arg "Fault_model: perturb_stddev must be >= 0";
  if spec.stale_decay <= 0.0 || spec.stale_decay > 1.0 then
    invalid_arg "Fault_model: stale_decay must be in (0, 1]";
  if spec.retry_budget_fraction < 0.0 || spec.retry_budget_fraction > 1.0 then
    invalid_arg "Fault_model: retry_budget_fraction must be in [0, 1]";
  check_rate "controller_crash_rate" spec.controller_crash_rate

type switch_state = {
  lifecycle : Rng.t; (* crash / recovery draws *)
  data : Rng.t; (* timeout / loss / install / perturbation draws *)
  mutable down_until : int; (* first epoch the switch is back up; <= epoch means up *)
}

type events = {
  crashed : Switch_id.t list;
  recovered : Switch_id.t list;
  controller_crashed : bool;
}

type t = {
  spec : spec;
  states : switch_state array;
  controller : Rng.t; (* controller-crash draws, one per epoch *)
  mutable epoch : int;
}

let create spec ~num_switches =
  validate spec;
  if num_switches <= 0 then invalid_arg "Fault_model.create: num_switches must be positive";
  (* One master stream expands the seed; each switch then owns two
     independent streams, so per-switch event sequences do not depend on the
     order (or number) of draws made for other switches. *)
  let master = Rng.create spec.seed in
  let states =
    Array.init num_switches (fun _ ->
        let lifecycle = Rng.split master in
        let data = Rng.split master in
        { lifecycle; data; down_until = 0 })
  in
  (* Split after the per-switch streams: adding controller crashes must not
     perturb the switch fault schedules existing experiments replay. *)
  let controller = Rng.split master in
  { spec; states; controller; epoch = 0 }

let spec t = t.spec

let num_switches t = Array.length t.states

let state t sw =
  if sw < 0 || sw >= Array.length t.states then
    invalid_arg (Printf.sprintf "Fault_model: unknown switch %d" sw);
  t.states.(sw)

let is_down t sw = (state t sw).down_until > t.epoch

let down_count t =
  Array.fold_left (fun acc s -> if s.down_until > t.epoch then acc + 1 else acc) 0 t.states

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  let crashed = ref [] and recovered = ref [] in
  Array.iteri
    (fun sw s ->
      if s.down_until > 0 && s.down_until = t.epoch then recovered := sw :: !recovered;
      (* [<] not [<=]: a switch that recovered this very epoch gets one
         epoch of grace, so its recovery (and the controller's rule
         reinstall) is never voided before it was ever visible. *)
      if s.down_until < t.epoch && t.spec.crash_rate > 0.0
         && Rng.bernoulli s.lifecycle t.spec.crash_rate
      then begin
        let downtime = max 1 (int_of_float (Float.round (Rng.exponential s.lifecycle t.spec.mean_downtime))) in
        s.down_until <- t.epoch + downtime;
        crashed := sw :: !crashed
      end)
    t.states;
  let controller_crashed =
    t.spec.controller_crash_rate > 0.0
    && Rng.bernoulli t.controller t.spec.controller_crash_rate
  in
  { crashed = List.rev !crashed; recovered = List.rev !recovered; controller_crashed }

let fetch_times_out t sw =
  let s = state t sw in
  t.spec.fetch_timeout_rate > 0.0 && Rng.bernoulli s.data t.spec.fetch_timeout_rate

let lose_counter t sw =
  let s = state t sw in
  t.spec.counter_loss_rate > 0.0 && Rng.bernoulli s.data t.spec.counter_loss_rate

let install_fails t sw =
  let s = state t sw in
  t.spec.install_failure_rate > 0.0 && Rng.bernoulli s.data t.spec.install_failure_rate

let perturb t sw v =
  if t.spec.perturb_stddev <= 0.0 then v
  else begin
    let s = state t sw in
    Float.max 0.0 (v *. (1.0 +. (t.spec.perturb_stddev *. Rng.gaussian s.data)))
  end

(* ---- checkpoint serialization ---- *)

let emit_rng w name rng =
  let s0, s1, s2, s3 = Rng.state rng in
  let module C = Dream_util.Codec in
  C.int64 w (name ^ "0") s0;
  C.int64 w (name ^ "1") s1;
  C.int64 w (name ^ "2") s2;
  C.int64 w (name ^ "3") s3

let parse_rng r name =
  let module C = Dream_util.Codec in
  let s0 = C.int64_field r (name ^ "0") in
  let s1 = C.int64_field r (name ^ "1") in
  let s2 = C.int64_field r (name ^ "2") in
  let s3 = C.int64_field r (name ^ "3") in
  Rng.of_state (s0, s1, s2, s3)

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "fault_model";
  C.int w "seed" t.spec.seed;
  C.float w "crash_rate" t.spec.crash_rate;
  C.float w "mean_downtime" t.spec.mean_downtime;
  C.float w "fetch_timeout_rate" t.spec.fetch_timeout_rate;
  C.float w "counter_loss_rate" t.spec.counter_loss_rate;
  C.float w "install_failure_rate" t.spec.install_failure_rate;
  C.float w "perturb_stddev" t.spec.perturb_stddev;
  C.float w "stale_decay" t.spec.stale_decay;
  C.float w "retry_budget_fraction" t.spec.retry_budget_fraction;
  C.float w "controller_crash_rate" t.spec.controller_crash_rate;
  C.int w "epoch" t.epoch;
  emit_rng w "controller" t.controller;
  C.int w "switches" (Array.length t.states);
  Array.iter
    (fun s ->
      emit_rng w "lifecycle" s.lifecycle;
      emit_rng w "data" s.data;
      C.int w "down_until" s.down_until)
    t.states

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "fault_model";
  let seed = C.int_field r "seed" in
  let crash_rate = C.float_field r "crash_rate" in
  let mean_downtime = C.float_field r "mean_downtime" in
  let fetch_timeout_rate = C.float_field r "fetch_timeout_rate" in
  let counter_loss_rate = C.float_field r "counter_loss_rate" in
  let install_failure_rate = C.float_field r "install_failure_rate" in
  let perturb_stddev = C.float_field r "perturb_stddev" in
  let stale_decay = C.float_field r "stale_decay" in
  let retry_budget_fraction = C.float_field r "retry_budget_fraction" in
  let controller_crash_rate = C.float_field r "controller_crash_rate" in
  let spec =
    {
      seed;
      crash_rate;
      mean_downtime;
      fetch_timeout_rate;
      counter_loss_rate;
      install_failure_rate;
      perturb_stddev;
      stale_decay;
      retry_budget_fraction;
      controller_crash_rate;
    }
  in
  validate spec;
  let epoch = C.int_field r "epoch" in
  let controller = parse_rng r "controller" in
  let n = C.int_field r "switches" in
  let states =
    C.repeat n (fun () ->
        let lifecycle = parse_rng r "lifecycle" in
        let data = parse_rng r "data" in
        let down_until = C.int_field r "down_until" in
        { lifecycle; data; down_until })
    |> Array.of_list
  in
  { spec; states; controller; epoch }
