module Rng = Dream_util.Rng
module Switch_id = Dream_traffic.Switch_id

type spec = {
  seed : int;
  crash_rate : float;
  mean_downtime : float;
  fetch_timeout_rate : float;
  counter_loss_rate : float;
  install_failure_rate : float;
  perturb_stddev : float;
  stale_decay : float;
  retry_budget_fraction : float;
  controller_crash_rate : float;
  partition_rate : float;
  mean_partition : float;
  partition_groups : int;
  partition_eligible : int;
  straggler_fraction : float;
  straggler_slowdown : float;
  storm_rate : float;
  storm_size : int;
}

let zero =
  {
    seed = 0;
    crash_rate = 0.0;
    mean_downtime = 4.0;
    fetch_timeout_rate = 0.0;
    counter_loss_rate = 0.0;
    install_failure_rate = 0.0;
    perturb_stddev = 0.0;
    stale_decay = 0.9;
    retry_budget_fraction = 0.5;
    controller_crash_rate = 0.0;
    partition_rate = 0.0;
    mean_partition = 8.0;
    partition_groups = 4;
    partition_eligible = 4;
    straggler_fraction = 0.0;
    straggler_slowdown = 4.0;
    storm_rate = 0.0;
    storm_size = 6;
  }

(* NaN fails both [< 0.0] and [> 1.0], so range checks must be written
   positively or NaN slips through every rate knob. *)
let in_unit v = v >= 0.0 && v <= 1.0

let uniform ?(seed = 0) rate =
  if not (in_unit rate) then invalid_arg "Fault_model.uniform: rate must be in [0, 1]";
  {
    zero with
    seed;
    (* Crashes are an order of magnitude rarer than transient faults, as in
       any real deployment: a lossy channel is common, a dead switch is not. *)
    crash_rate = rate /. 10.0;
    fetch_timeout_rate = rate;
    counter_loss_rate = rate;
    install_failure_rate = rate;
    perturb_stddev = rate /. 10.0;
  }

let adversity ?(seed = 0) level =
  if not (in_unit level) then invalid_arg "Fault_model.adversity: level must be in [0, 1]";
  {
    zero with
    seed;
    (* Sustained adversity, not point faults: lossy channels plus partition
       windows, slow control channels on half the fleet, and tenant storms.
       At level 0 every rate is zero, so the spec injects nothing. *)
    fetch_timeout_rate = 0.25 *. level;
    partition_rate = 0.1 *. level;
    mean_partition = 10.0;
    straggler_fraction = 0.5 *. level;
    straggler_slowdown = 1.0 +. (3.0 *. level);
    storm_rate = 0.1 *. level;
  }

let pp_spec ppf s =
  Format.fprintf ppf
    "seed=%d crash=%g downtime=%g timeout=%g loss=%g install_fail=%g perturb=%g decay=%g \
     retry_budget=%g ctrl_crash=%g partition=%g partition_mean=%g groups=%d/%d straggler=%g \
     slowdown=%g storm=%g storm_size=%d"
    s.seed s.crash_rate s.mean_downtime s.fetch_timeout_rate s.counter_loss_rate
    s.install_failure_rate s.perturb_stddev s.stale_decay s.retry_budget_fraction
    s.controller_crash_rate s.partition_rate s.mean_partition s.partition_eligible
    s.partition_groups s.straggler_fraction s.straggler_slowdown s.storm_rate s.storm_size

let validate spec =
  let check_rate name v =
    if not (in_unit v) then
      invalid_arg (Printf.sprintf "Fault_model: %s must be in [0, 1], got %g" name v)
  in
  check_rate "crash_rate" spec.crash_rate;
  check_rate "fetch_timeout_rate" spec.fetch_timeout_rate;
  check_rate "counter_loss_rate" spec.counter_loss_rate;
  check_rate "install_failure_rate" spec.install_failure_rate;
  if not (spec.mean_downtime >= 1.0) then
    invalid_arg "Fault_model: mean_downtime must be >= 1 epoch";
  if not (spec.perturb_stddev >= 0.0 && Float.is_finite spec.perturb_stddev) then
    invalid_arg "Fault_model: perturb_stddev must be finite and >= 0";
  if not (spec.stale_decay > 0.0 && spec.stale_decay <= 1.0) then
    invalid_arg "Fault_model: stale_decay must be in (0, 1]";
  if not (in_unit spec.retry_budget_fraction) then
    invalid_arg "Fault_model: retry_budget_fraction must be in [0, 1]";
  check_rate "controller_crash_rate" spec.controller_crash_rate;
  check_rate "partition_rate" spec.partition_rate;
  if not (spec.mean_partition >= 1.0) then
    invalid_arg "Fault_model: mean_partition must be >= 1 epoch";
  if spec.partition_groups < 1 then invalid_arg "Fault_model: partition_groups must be >= 1";
  if spec.partition_eligible < 0 then invalid_arg "Fault_model: partition_eligible must be >= 0";
  check_rate "straggler_fraction" spec.straggler_fraction;
  if not (spec.straggler_slowdown >= 1.0 && Float.is_finite spec.straggler_slowdown) then
    invalid_arg "Fault_model: straggler_slowdown must be >= 1";
  check_rate "storm_rate" spec.storm_rate;
  if spec.storm_size < 0 then invalid_arg "Fault_model: storm_size must be >= 0"

type switch_state = {
  lifecycle : Rng.t; (* crash / recovery draws *)
  data : Rng.t; (* timeout / loss / install / perturbation draws *)
  mutable down_until : int; (* first epoch the switch is back up; <= epoch means up *)
}

type events = {
  crashed : Switch_id.t list;
  recovered : Switch_id.t list;
  controller_crashed : bool;
  partitioned : int list;
  healed : int list;
  storm_tasks : int;
}

(* Scripted injections: explicit (epoch, payload) events the chaos harness
   schedules on top of the organic rate-driven faults.  They are matched by
   equality against the post-increment epoch inside [begin_epoch], consume
   no randomness, and are serialized whole in checkpoints so a restored run
   replays the identical timeline. *)
type injections = {
  mutable crashes : (int * int * int) list; (* at, switch, downtime *)
  mutable ctrl_crashes : int list; (* at *)
  mutable partitions : (int * int * int) list; (* at, group, span *)
  mutable heals : (int * int) list; (* at, group *)
  mutable storms : (int * int) list; (* at, extra tasks *)
  mutable noise : (int * int * float * float * float) list;
      (* at, span, timeout_rate, loss_rate, perturb_stddev *)
}

type t = {
  spec : spec;
  states : switch_state array;
  controller : Rng.t; (* controller-crash draws, one per epoch *)
  partition : Rng.t; (* per-group partition window draws *)
  storm : Rng.t; (* admission-storm draws, one per epoch *)
  partition_until : int array; (* per group; <= epoch means reachable *)
  stragglers : bool array; (* per switch, fixed at creation *)
  mutable epoch : int;
  inj : injections;
  (* Effective data-path rates for the current epoch: max of the spec rate
     and every open noise window.  Derived from [inj.noise], never
     serialized. *)
  mutable noise_timeout : float;
  mutable noise_loss : float;
  mutable noise_perturb : float;
}

let group_of t sw = sw mod t.spec.partition_groups

let create spec ~num_switches =
  validate spec;
  if num_switches <= 0 then invalid_arg "Fault_model.create: num_switches must be positive";
  (* One master stream expands the seed; each switch then owns two
     independent streams, so per-switch event sequences do not depend on the
     order (or number) of draws made for other switches. *)
  let master = Rng.create spec.seed in
  let states =
    Array.init num_switches (fun _ ->
        let lifecycle = Rng.split master in
        let data = Rng.split master in
        { lifecycle; data; down_until = 0 })
  in
  (* Split after the per-switch streams: adding controller crashes must not
     perturb the switch fault schedules existing experiments replay. *)
  let controller = Rng.split master in
  (* Adversity streams split after everything PR 1 and PR 4 established, and
     straggler selection only draws when the fraction is positive, so specs
     that predate sustained adversity replay byte-identically. *)
  let partition = Rng.split master in
  let storm = Rng.split master in
  let select = Rng.split master in
  let stragglers = Array.make num_switches false in
  if spec.straggler_fraction > 0.0 then begin
    let order = Array.init num_switches (fun i -> i) in
    Rng.shuffle select order;
    let slow =
      int_of_float (Float.round (spec.straggler_fraction *. float_of_int num_switches))
    in
    Array.iteri (fun rank sw -> if rank < slow then stragglers.(sw) <- true) order
  end;
  let partition_until = Array.make spec.partition_groups 0 in
  let inj =
    { crashes = []; ctrl_crashes = []; partitions = []; heals = []; storms = []; noise = [] }
  in
  { spec; states; controller; partition; storm; partition_until; stragglers; epoch = 0; inj;
    noise_timeout = 0.0; noise_loss = 0.0; noise_perturb = 0.0 }

let spec t = t.spec

let num_switches t = Array.length t.states

let state t sw =
  if sw < 0 || sw >= Array.length t.states then
    invalid_arg (Printf.sprintf "Fault_model: unknown switch %d" sw);
  t.states.(sw)

let is_down t sw = (state t sw).down_until > t.epoch

let down_count t =
  Array.fold_left (fun acc s -> if s.down_until > t.epoch then acc + 1 else acc) 0 t.states

(* ---- scripted injections ---- *)

let check_at t name at =
  if at <= t.epoch then
    invalid_arg (Printf.sprintf "Fault_model.%s: at=%d is not in the future (epoch %d)" name at t.epoch)

let schedule_crash t ~at ~switch ~downtime =
  check_at t "schedule_crash" at;
  let _ = state t switch in
  if downtime < 1 then invalid_arg "Fault_model.schedule_crash: downtime must be >= 1";
  t.inj.crashes <- t.inj.crashes @ [ (at, switch, downtime) ]

let schedule_controller_crash t ~at =
  check_at t "schedule_controller_crash" at;
  t.inj.ctrl_crashes <- t.inj.ctrl_crashes @ [ at ]

let schedule_partition t ~at ~group ~span =
  check_at t "schedule_partition" at;
  if group < 0 || group >= t.spec.partition_groups then
    invalid_arg (Printf.sprintf "Fault_model.schedule_partition: unknown group %d" group);
  if span < 1 then invalid_arg "Fault_model.schedule_partition: span must be >= 1";
  t.inj.partitions <- t.inj.partitions @ [ (at, group, span) ]

let schedule_heal t ~at ~group =
  check_at t "schedule_heal" at;
  if group < 0 || group >= t.spec.partition_groups then
    invalid_arg (Printf.sprintf "Fault_model.schedule_heal: unknown group %d" group);
  t.inj.heals <- t.inj.heals @ [ (at, group) ]

let schedule_storm t ~at ~tasks =
  check_at t "schedule_storm" at;
  if tasks < 1 then invalid_arg "Fault_model.schedule_storm: tasks must be >= 1";
  t.inj.storms <- t.inj.storms @ [ (at, tasks) ]

let schedule_noise t ~at ~span ~timeout_rate ~loss_rate ~perturb_stddev =
  check_at t "schedule_noise" at;
  if span < 1 then invalid_arg "Fault_model.schedule_noise: span must be >= 1";
  if not (in_unit timeout_rate) then
    invalid_arg "Fault_model.schedule_noise: timeout_rate must be in [0, 1]";
  if not (in_unit loss_rate) then
    invalid_arg "Fault_model.schedule_noise: loss_rate must be in [0, 1]";
  if not (perturb_stddev >= 0.0 && Float.is_finite perturb_stddev) then
    invalid_arg "Fault_model.schedule_noise: perturb_stddev must be finite and >= 0";
  t.inj.noise <- t.inj.noise @ [ (at, span, timeout_rate, loss_rate, perturb_stddev) ]

let pending_injections t =
  let after at = if at > t.epoch then 1 else 0 in
  List.fold_left (fun acc (at, _, _) -> acc + after at) 0 t.inj.crashes
  + List.fold_left (fun acc at -> acc + after at) 0 t.inj.ctrl_crashes
  + List.fold_left (fun acc (at, _, _) -> acc + after at) 0 t.inj.partitions
  + List.fold_left (fun acc (at, _) -> acc + after at) 0 t.inj.heals
  + List.fold_left (fun acc (at, _) -> acc + after at) 0 t.inj.storms
  + List.fold_left
      (fun acc (at, span, _, _, _) -> if at + span > t.epoch then acc + 1 else acc)
      0 t.inj.noise

let recompute_noise t =
  let timeout = ref 0.0 and loss = ref 0.0 and perturb = ref 0.0 in
  List.iter
    (fun (at, span, tr, lr, ps) ->
      if at <= t.epoch && t.epoch < at + span then begin
        timeout := Float.max !timeout tr;
        loss := Float.max !loss lr;
        perturb := Float.max !perturb ps
      end)
    t.inj.noise;
  t.noise_timeout <- !timeout;
  t.noise_loss <- !loss;
  t.noise_perturb <- !perturb

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  let crashed = ref [] and recovered = ref [] in
  Array.iteri
    (fun sw s ->
      if s.down_until > 0 && s.down_until = t.epoch then recovered := sw :: !recovered;
      (* [<] not [<=]: a switch that recovered this very epoch gets one
         epoch of grace, so its recovery (and the controller's rule
         reinstall) is never voided before it was ever visible. *)
      if s.down_until < t.epoch && t.spec.crash_rate > 0.0
         && Rng.bernoulli s.lifecycle t.spec.crash_rate
      then begin
        let downtime = max 1 (int_of_float (Float.round (Rng.exponential s.lifecycle t.spec.mean_downtime))) in
        s.down_until <- t.epoch + downtime;
        crashed := sw :: !crashed
      end)
    t.states;
  (* Scripted crashes after organic ones; the same one-epoch grace applies,
     so a scheduled crash aimed at a switch that is down (or just recovered
     this epoch) is silently skipped rather than voiding a recovery the
     controller never saw. *)
  List.iter
    (fun (at, sw, downtime) ->
      if at = t.epoch then begin
        let s = t.states.(sw) in
        if s.down_until < t.epoch then begin
          s.down_until <- t.epoch + downtime;
          crashed := sw :: !crashed
        end
      end)
    t.inj.crashes;
  let controller_crashed =
    (t.spec.controller_crash_rate > 0.0
     && Rng.bernoulli t.controller t.spec.controller_crash_rate)
    || List.exists (fun at -> at = t.epoch) t.inj.ctrl_crashes
  in
  let partitioned = ref [] and healed = ref [] in
  Array.iteri
    (fun g until ->
      if until > 0 && until = t.epoch then healed := g :: !healed;
      (* Same one-epoch grace as crash recovery: a group that just healed is
         reachable for at least one epoch before it can partition again. *)
      if g < t.spec.partition_eligible && until < t.epoch && t.spec.partition_rate > 0.0
         && Rng.bernoulli t.partition t.spec.partition_rate
      then begin
        let span =
          max 1 (int_of_float (Float.round (Rng.exponential t.partition t.spec.mean_partition)))
        in
        t.partition_until.(g) <- t.epoch + span;
        partitioned := g :: !partitioned
      end)
    t.partition_until;
  (* Scripted partitions may target any group (the harness sidesteps
     [partition_eligible] deliberately) but still honour the heal grace. *)
  List.iter
    (fun (at, g, span) ->
      if at = t.epoch && t.partition_until.(g) < t.epoch then begin
        t.partition_until.(g) <- t.epoch + span;
        partitioned := g :: !partitioned
      end)
    t.inj.partitions;
  (* A scripted heal closes an open window early and always surfaces the
     group in [healed], even when no window is open: the controller reacts
     by hinting breaker probes, which is exactly the probe/heal race the
     chaos harness wants to provoke. *)
  List.iter
    (fun (at, g) ->
      if at = t.epoch then begin
        if t.partition_until.(g) > t.epoch then t.partition_until.(g) <- t.epoch;
        if not (List.mem g !healed) then healed := g :: !healed
      end)
    t.inj.heals;
  let storm_tasks =
    (if t.spec.storm_rate > 0.0 && Rng.bernoulli t.storm t.spec.storm_rate then t.spec.storm_size
     else 0)
    + List.fold_left
        (fun acc (at, tasks) -> if at = t.epoch then acc + tasks else acc)
        0 t.inj.storms
  in
  recompute_noise t;
  {
    crashed = List.rev !crashed;
    recovered = List.rev !recovered;
    controller_crashed;
    partitioned = List.rev !partitioned;
    healed = List.rev !healed;
    storm_tasks;
  }

let fetch_times_out t sw =
  let s = state t sw in
  let rate = Float.max t.spec.fetch_timeout_rate t.noise_timeout in
  rate > 0.0 && Rng.bernoulli s.data rate

let lose_counter t sw =
  let s = state t sw in
  let rate = Float.max t.spec.counter_loss_rate t.noise_loss in
  rate > 0.0 && Rng.bernoulli s.data rate

let install_fails t sw =
  let s = state t sw in
  t.spec.install_failure_rate > 0.0 && Rng.bernoulli s.data t.spec.install_failure_rate

let perturb t sw v =
  let stddev = Float.max t.spec.perturb_stddev t.noise_perturb in
  if stddev <= 0.0 then v
  else begin
    let s = state t sw in
    Float.max 0.0 (v *. (1.0 +. (stddev *. Rng.gaussian s.data)))
  end

let is_partitioned t sw =
  let _ = state t sw in
  t.partition_until.(group_of t sw) > t.epoch

let partitioned_count t =
  let n = ref 0 in
  for sw = 0 to Array.length t.states - 1 do
    if is_partitioned t sw then incr n
  done;
  !n

let is_straggler t sw =
  let _ = state t sw in
  t.stragglers.(sw)

let straggler_count t = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 t.stragglers

let latency_factor t sw = if is_straggler t sw then t.spec.straggler_slowdown else 1.0

(* ---- checkpoint serialization ---- *)

let emit_rng w name rng =
  let s0, s1, s2, s3 = Rng.state rng in
  let module C = Dream_util.Codec in
  C.int64 w (name ^ "0") s0;
  C.int64 w (name ^ "1") s1;
  C.int64 w (name ^ "2") s2;
  C.int64 w (name ^ "3") s3

let parse_rng r name =
  let module C = Dream_util.Codec in
  let s0 = C.int64_field r (name ^ "0") in
  let s1 = C.int64_field r (name ^ "1") in
  let s2 = C.int64_field r (name ^ "2") in
  let s3 = C.int64_field r (name ^ "3") in
  Rng.of_state (s0, s1, s2, s3)

let emit w t =
  let module C = Dream_util.Codec in
  C.section w "fault_model";
  C.int w "seed" t.spec.seed;
  C.float w "crash_rate" t.spec.crash_rate;
  C.float w "mean_downtime" t.spec.mean_downtime;
  C.float w "fetch_timeout_rate" t.spec.fetch_timeout_rate;
  C.float w "counter_loss_rate" t.spec.counter_loss_rate;
  C.float w "install_failure_rate" t.spec.install_failure_rate;
  C.float w "perturb_stddev" t.spec.perturb_stddev;
  C.float w "stale_decay" t.spec.stale_decay;
  C.float w "retry_budget_fraction" t.spec.retry_budget_fraction;
  C.float w "controller_crash_rate" t.spec.controller_crash_rate;
  C.float w "partition_rate" t.spec.partition_rate;
  C.float w "mean_partition" t.spec.mean_partition;
  C.int w "partition_groups" t.spec.partition_groups;
  C.int w "partition_eligible" t.spec.partition_eligible;
  C.float w "straggler_fraction" t.spec.straggler_fraction;
  C.float w "straggler_slowdown" t.spec.straggler_slowdown;
  C.float w "storm_rate" t.spec.storm_rate;
  C.int w "storm_size" t.spec.storm_size;
  C.int w "epoch" t.epoch;
  emit_rng w "controller" t.controller;
  emit_rng w "partition" t.partition;
  emit_rng w "storm" t.storm;
  Array.iter (fun until -> C.int w "partition_until" until) t.partition_until;
  C.int w "switches" (Array.length t.states);
  Array.iter
    (fun s ->
      emit_rng w "lifecycle" s.lifecycle;
      emit_rng w "data" s.data;
      C.int w "down_until" s.down_until)
    t.states;
  Array.iter (fun slow -> C.int w "straggler" (if slow then 1 else 0)) t.stragglers;
  (* Scripted injections, past ones included: replaying the full timeline
     keeps emit/parse an exact round trip, and a spent event (at <= epoch)
     can never refire. *)
  C.int w "inj_crashes" (List.length t.inj.crashes);
  List.iter
    (fun (at, sw, d) ->
      C.int w "at" at;
      C.int w "switch" sw;
      C.int w "downtime" d)
    t.inj.crashes;
  C.int w "inj_ctrl_crashes" (List.length t.inj.ctrl_crashes);
  List.iter (fun at -> C.int w "at" at) t.inj.ctrl_crashes;
  C.int w "inj_partitions" (List.length t.inj.partitions);
  List.iter
    (fun (at, g, span) ->
      C.int w "at" at;
      C.int w "group" g;
      C.int w "span" span)
    t.inj.partitions;
  C.int w "inj_heals" (List.length t.inj.heals);
  List.iter
    (fun (at, g) ->
      C.int w "at" at;
      C.int w "group" g)
    t.inj.heals;
  C.int w "inj_storms" (List.length t.inj.storms);
  List.iter
    (fun (at, tasks) ->
      C.int w "at" at;
      C.int w "tasks" tasks)
    t.inj.storms;
  C.int w "inj_noise" (List.length t.inj.noise);
  List.iter
    (fun (at, span, tr, lr, ps) ->
      C.int w "at" at;
      C.int w "span" span;
      C.float w "timeout_rate" tr;
      C.float w "loss_rate" lr;
      C.float w "perturb_stddev" ps)
    t.inj.noise

let parse r =
  let module C = Dream_util.Codec in
  C.expect_section r "fault_model";
  let seed = C.int_field r "seed" in
  let crash_rate = C.float_field r "crash_rate" in
  let mean_downtime = C.float_field r "mean_downtime" in
  let fetch_timeout_rate = C.float_field r "fetch_timeout_rate" in
  let counter_loss_rate = C.float_field r "counter_loss_rate" in
  let install_failure_rate = C.float_field r "install_failure_rate" in
  let perturb_stddev = C.float_field r "perturb_stddev" in
  let stale_decay = C.float_field r "stale_decay" in
  let retry_budget_fraction = C.float_field r "retry_budget_fraction" in
  let controller_crash_rate = C.float_field r "controller_crash_rate" in
  let partition_rate = C.float_field r "partition_rate" in
  let mean_partition = C.float_field r "mean_partition" in
  let partition_groups = C.int_field r "partition_groups" in
  let partition_eligible = C.int_field r "partition_eligible" in
  let straggler_fraction = C.float_field r "straggler_fraction" in
  let straggler_slowdown = C.float_field r "straggler_slowdown" in
  let storm_rate = C.float_field r "storm_rate" in
  let storm_size = C.int_field r "storm_size" in
  let spec =
    {
      seed;
      crash_rate;
      mean_downtime;
      fetch_timeout_rate;
      counter_loss_rate;
      install_failure_rate;
      perturb_stddev;
      stale_decay;
      retry_budget_fraction;
      controller_crash_rate;
      partition_rate;
      mean_partition;
      partition_groups;
      partition_eligible;
      straggler_fraction;
      straggler_slowdown;
      storm_rate;
      storm_size;
    }
  in
  validate spec;
  let epoch = C.int_field r "epoch" in
  let controller = parse_rng r "controller" in
  let partition = parse_rng r "partition" in
  let storm = parse_rng r "storm" in
  let partition_until =
    C.repeat partition_groups (fun () -> C.int_field r "partition_until") |> Array.of_list
  in
  let n = C.int_field r "switches" in
  let states =
    C.repeat n (fun () ->
        let lifecycle = parse_rng r "lifecycle" in
        let data = parse_rng r "data" in
        let down_until = C.int_field r "down_until" in
        { lifecycle; data; down_until })
    |> Array.of_list
  in
  let stragglers =
    C.repeat n (fun () -> C.int_field r "straggler" <> 0) |> Array.of_list
  in
  let crashes =
    C.repeat (C.int_field r "inj_crashes") (fun () ->
        let at = C.int_field r "at" in
        let sw = C.int_field r "switch" in
        let d = C.int_field r "downtime" in
        (at, sw, d))
  in
  let ctrl_crashes =
    C.repeat (C.int_field r "inj_ctrl_crashes") (fun () -> C.int_field r "at")
  in
  let partitions =
    C.repeat (C.int_field r "inj_partitions") (fun () ->
        let at = C.int_field r "at" in
        let g = C.int_field r "group" in
        let span = C.int_field r "span" in
        (at, g, span))
  in
  let heals =
    C.repeat (C.int_field r "inj_heals") (fun () ->
        let at = C.int_field r "at" in
        let g = C.int_field r "group" in
        (at, g))
  in
  let storms =
    C.repeat (C.int_field r "inj_storms") (fun () ->
        let at = C.int_field r "at" in
        let tasks = C.int_field r "tasks" in
        (at, tasks))
  in
  let noise =
    C.repeat (C.int_field r "inj_noise") (fun () ->
        let at = C.int_field r "at" in
        let span = C.int_field r "span" in
        let tr = C.float_field r "timeout_rate" in
        let lr = C.float_field r "loss_rate" in
        let ps = C.float_field r "perturb_stddev" in
        (at, span, tr, lr, ps))
  in
  let inj = { crashes; ctrl_crashes; partitions; heals; storms; noise } in
  let t =
    { spec; states; controller; partition; storm; partition_until; stragglers; epoch; inj;
      noise_timeout = 0.0; noise_loss = 0.0; noise_perturb = 0.0 }
  in
  recompute_noise t;
  t
