(** Seeded fault injection for the control channel and switches.

    DREAM's evaluation assumes every counter fetch succeeds and no switch
    ever restarts; this module supplies the failures a real deployment
    sees, deterministically.  A {!spec} fixes per-epoch / per-event rates
    and a seed; {!create} expands the seed into two independent
    {!Dream_util.Rng} streams per switch (lifecycle and data-path), so a
    (spec, num_switches) pair always replays the same fault schedule no
    matter how many draws other switches consume.

    The controller drives the model: {!begin_epoch} once per tick to
    advance crash/recovery state, then the per-event predicates as it
    touches each switch.  All predicates short-circuit without consuming
    randomness when their rate is zero, so a zero-rate spec is
    behaviourally identical to running with no fault model at all. *)

type spec = {
  seed : int;
  crash_rate : float;  (** per-switch per-epoch crash probability *)
  mean_downtime : float;  (** mean epochs a crashed switch stays down (>= 1) *)
  fetch_timeout_rate : float;  (** probability one counter-fetch batch times out *)
  counter_loss_rate : float;  (** per-rule probability a fetched counter is lost *)
  install_failure_rate : float;  (** per-rule probability an install fails *)
  perturb_stddev : float;  (** relative Gaussian noise on fetched counter values *)
  stale_decay : float;
      (** factor applied to a task's smoothed estimated accuracy for each
          epoch it reports from stale counters, in (0, 1] *)
  retry_budget_fraction : float;
      (** fraction of the epoch the controller may spend on fetch retries *)
  controller_crash_rate : float;
      (** per-epoch probability the controller itself crashes and must
          recover from its last checkpoint + journal *)
  partition_rate : float;
      (** per-group per-epoch probability the control channel to that
          switch group partitions (TCAM state survives; the controller
          just cannot reach it) *)
  mean_partition : float;  (** mean epochs a partition window lasts (>= 1) *)
  partition_groups : int;
      (** switches are grouped as [sw mod partition_groups]; a partition
          takes out a whole group at once (correlated reachability) *)
  partition_eligible : int;
      (** only groups with index < [partition_eligible] ever partition —
          a deterministic knob for "exactly this fraction of the fleet
          can become unreachable" experiments *)
  straggler_fraction : float;
      (** fraction of switches (chosen once, seeded) whose control channel
          is persistently slow *)
  straggler_slowdown : float;
      (** latency multiplier on straggler control channels (>= 1) *)
  storm_rate : float;  (** per-epoch probability of a tenant admission storm *)
  storm_size : int;  (** extra task submissions a storm injects *)
}

val zero : spec
(** All failure rates zero (seed 0, downtime 4, decay 0.9, retry budget
    0.5): injects nothing. *)

val uniform : ?seed:int -> float -> spec
(** [uniform ~seed rate] scales every failure mode from one knob: timeout,
    loss and install-failure rates equal [rate]; crashes and perturbation
    at [rate / 10].  @raise Invalid_argument unless [rate] is in [0, 1]. *)

val adversity : ?seed:int -> float -> spec
(** [adversity ~seed level] scales the sustained-adversity modes from one
    knob in [0, 1]: partition and storm rates at [level / 10], fetch
    timeouts at [level / 4], half the fleet stragglers with slowdown
    [1 + 3 * level].  Level 0 equals {!zero}: injects nothing.
    @raise Invalid_argument unless [level] is in [0, 1]. *)

val pp_spec : Format.formatter -> spec -> unit
(** One line, every knob — recorded in the telemetry trace so an exported
    bundle is self-describing about the fault schedule it ran under. *)

type t

type events = {
  crashed : Dream_traffic.Switch_id.t list;
  recovered : Dream_traffic.Switch_id.t list;
  controller_crashed : bool;  (** the controller dies at the start of this epoch *)
  partitioned : int list;  (** groups whose control channel partitioned this epoch *)
  healed : int list;  (** groups whose partition window just closed *)
  storm_tasks : int;  (** extra task submissions an admission storm injects now *)
}

val create : spec -> num_switches:int -> t
(** @raise Invalid_argument on out-of-range rates or [num_switches <= 0]. *)

val spec : t -> spec

val num_switches : t -> int

val begin_epoch : t -> events
(** Advance one epoch: decide which switches crash this epoch (their TCAM
    state is lost), which finish their downtime and come back up, and
    whether the controller itself dies.  Controller-crash draws come from
    a stream split after all per-switch streams, so enabling them never
    perturbs an existing switch fault schedule. *)

val is_down : t -> Dream_traffic.Switch_id.t -> bool

val down_count : t -> int
(** Switches currently down. *)

val fetch_times_out : t -> Dream_traffic.Switch_id.t -> bool
(** Roll one counter-fetch attempt on an up switch; re-roll to retry. *)

val lose_counter : t -> Dream_traffic.Switch_id.t -> bool
(** Roll one rule's counter dropping out of a successful batch. *)

val install_fails : t -> Dream_traffic.Switch_id.t -> bool
(** Roll one rule-install attempt. *)

val perturb : t -> Dream_traffic.Switch_id.t -> float -> float
(** Apply multiplicative Gaussian noise to a counter value (clamped at 0);
    identity when [perturb_stddev = 0]. *)

val group_of : t -> Dream_traffic.Switch_id.t -> int
(** The partition group a switch belongs to ([sw mod partition_groups]). *)

val is_partitioned : t -> Dream_traffic.Switch_id.t -> bool
(** The switch's group is inside a reachability window: its TCAM keeps
    counting but the controller cannot fetch, install or delete. *)

val partitioned_count : t -> int
(** Switches currently unreachable through a partition. *)

val is_straggler : t -> Dream_traffic.Switch_id.t -> bool

val straggler_count : t -> int

val latency_factor : t -> Dream_traffic.Switch_id.t -> float
(** Control-channel latency multiplier: [straggler_slowdown] on straggler
    switches, 1.0 everywhere else. *)

(** {1 Scripted injections}

    The chaos harness schedules explicit fault events on top of (or instead
    of) the organic rate-driven ones.  Epochs are the fault model's own
    counter: the N-th {!begin_epoch} call runs epoch N (1-based), so an
    event scheduled [~at:n] fires during the n-th call.  All [schedule_*]
    functions require [at] strictly in the future, consume no randomness
    when they fire (scripted timelines never perturb the organic RNG
    streams), and are included in {!emit}/{!parse} so a restored checkpoint
    replays the identical timeline. *)

val schedule_crash : t -> at:int -> switch:Dream_traffic.Switch_id.t -> downtime:int -> unit
(** Crash [switch] at epoch [at] for [downtime] epochs.  Skipped silently
    if the switch is already down (or recovered that very epoch) — the
    one-epoch recovery grace organic crashes honour applies here too.
    @raise Invalid_argument on a past epoch, unknown switch or
    [downtime < 1]. *)

val schedule_controller_crash : t -> at:int -> unit
(** Make [begin_epoch] report [controller_crashed = true] at epoch [at]. *)

val schedule_partition : t -> at:int -> group:int -> span:int -> unit
(** Open a reachability window on [group] at epoch [at] lasting [span]
    epochs.  Unlike organic partitions, any group may be targeted,
    including those beyond [partition_eligible].  Skipped silently if the
    group is already partitioned (or healed that very epoch).
    @raise Invalid_argument on a past epoch, unknown group or [span < 1]. *)

val schedule_heal : t -> at:int -> group:int -> unit
(** Force [group] to surface in [events.healed] at epoch [at], closing any
    open partition window early.  Firing it on a group that is {e not}
    partitioned is allowed and deliberate: the controller responds to a
    heal by hinting breaker probes, so a spurious heal provokes exactly the
    probe/heal race the chaos harness wants to explore. *)

val schedule_storm : t -> at:int -> tasks:int -> unit
(** Add [tasks] extra admissions to [events.storm_tasks] at epoch [at],
    on top of whatever an organic storm contributes.
    @raise Invalid_argument on a past epoch or [tasks < 1]. *)

val schedule_noise : t ->
  at:int -> span:int -> timeout_rate:float -> loss_rate:float -> perturb_stddev:float -> unit
(** During epochs [at .. at + span - 1], raise the effective fetch-timeout
    and counter-loss rates and the perturbation stddev to at least the
    given values (the maximum of the spec rate and every open window
    applies).  @raise Invalid_argument on a past epoch, [span < 1] or
    out-of-range rates. *)

val pending_injections : t -> int
(** Scheduled events that have not yet fired (noise windows count until
    they close) — lets a harness assert a timeline was fully consumed. *)

val emit : Dream_util.Codec.writer -> t -> unit
(** Append the full model state — spec, epoch, every RNG stream and
    downtime clock — to a checkpoint document, so a restored run replays
    the exact same fault schedule suffix. *)

val parse : Dream_util.Codec.reader -> t
(** Inverse of {!emit}.  @raise Dream_util.Codec.Parse_error on mismatch,
    [Invalid_argument] on out-of-range rates. *)
