(** IPv4 prefixes.

    A prefix is the set of 32-bit addresses sharing its first [length] bits.
    Prefixes are the unit of TCAM measurement in DREAM: a task monitors a
    set of prefixes and drills down or merges within the prefix trie rooted
    at its flow filter.  Addresses are plain [int]s in \[0, 2^32). *)

type t
(** A prefix; immutable.  The underlying bits below [length] are always
    zero, so structural equality coincides with semantic equality. *)

type address = int
(** A 32-bit IPv4 address stored in an OCaml int. *)

val address_bits : int
(** Width of the address space: 32. *)

val make : bits:int -> length:int -> t
(** [make ~bits ~length] is the prefix whose first [length] bits are the
    high-order bits of [bits]; low-order bits are masked off.
    @raise Invalid_argument if [length] is outside \[0, 32\] or [bits] is
    outside \[0, 2^32). *)

val root : t
(** The zero-length prefix covering the whole address space. *)

val of_address : address -> t
(** The /32 prefix containing exactly [address]. *)

val bits : t -> int
(** High-order bits, right-padded with zeros to 32 bits. *)

val length : t -> int
(** Prefix length in \[0, 32\]. *)

val wildcard_bits : t -> int
(** [32 - length t]: the number of free bits, i.e. [log2] of the number of
    addresses covered. *)

val size : t -> int
(** Number of addresses covered: [2 ^ wildcard_bits]. *)

val is_exact : t -> bool
(** True for /32 prefixes (a single address). *)

val first_address : t -> address
val last_address : t -> address
(** Inclusive address range covered by the prefix. *)

val contains : t -> address -> bool

val is_ancestor_of : t -> t -> bool
(** [is_ancestor_of a b] is true when [a] strictly contains [b]. *)

val covers : t -> t -> bool
(** [covers a b] is true when [a = b] or [a] is an ancestor of [b]. *)

val parent : t -> t option
(** [None] for the root prefix. *)

val left_child : t -> t option
val right_child : t -> t option
(** Children one bit longer; [None] for /32 prefixes. *)

val children : t -> (t * t) option
(** Both children at once; [None] for /32 prefixes. *)

val sibling : t -> t option
(** The other child of the parent; [None] for the root. *)

val ancestor_at : t -> int -> t
(** [ancestor_at p len] is the length-[len] prefix containing [p].
    @raise Invalid_argument if [len > length p]. *)

val common_ancestor : t -> t -> t
(** Longest prefix covering both arguments. *)

val nth_descendant : t -> length:int -> int -> t
(** [nth_descendant p ~length i] is the [i]-th (in address order) descendant
    of [p] with the given length.  @raise Invalid_argument if [length <
    length p] or [i] is out of range. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: by first address, then by length (shorter first), so a
    sorted list groups ancestors immediately before their descendants. *)

val hash : t -> int

val to_string : t -> string
(** Dotted-quad with length, e.g. ["10.32.0.0/12"]. *)

val of_string : string -> t
(** Inverse of [to_string].  @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
