type address = int

let address_bits = 32

let address_space = 1 lsl address_bits

type t = { bits : int; length : int }

let mask length = if length = 0 then 0 else lnot ((1 lsl (address_bits - length)) - 1) land (address_space - 1)

let make ~bits ~length =
  if length < 0 || length > address_bits then invalid_arg "Prefix.make: length out of [0, 32]";
  if bits < 0 || bits >= address_space then invalid_arg "Prefix.make: bits out of [0, 2^32)";
  { bits = bits land mask length; length }

let root = { bits = 0; length = 0 }

let of_address addr = make ~bits:addr ~length:address_bits

let bits t = t.bits

let length t = t.length

let wildcard_bits t = address_bits - t.length

let size t = 1 lsl wildcard_bits t

let is_exact t = t.length = address_bits

let first_address t = t.bits

let last_address t = t.bits lor ((1 lsl wildcard_bits t) - 1)

let contains t addr = addr land mask t.length = t.bits

let covers a b = a.length <= b.length && b.bits land mask a.length = a.bits

let is_ancestor_of a b = a.length < b.length && covers a b

let parent t = if t.length = 0 then None else Some { bits = t.bits land mask (t.length - 1); length = t.length - 1 }

let left_child t = if is_exact t then None else Some { bits = t.bits; length = t.length + 1 }

let right_child t =
  if is_exact t then None
  else Some { bits = t.bits lor (1 lsl (address_bits - t.length - 1)); length = t.length + 1 }

let children t =
  match (left_child t, right_child t) with
  | Some l, Some r -> Some (l, r)
  | _, _ -> None

let sibling t =
  if t.length = 0 then None
  else Some { bits = t.bits lxor (1 lsl (address_bits - t.length)); length = t.length }

let ancestor_at t len =
  if len > t.length then invalid_arg "Prefix.ancestor_at: requested length exceeds prefix length";
  { bits = t.bits land mask len; length = len }

let common_ancestor a b =
  let max_len = min a.length b.length in
  let rec find len =
    if len > max_len then max_len
    else if a.bits land mask len <> b.bits land mask len then len - 1
    else find (len + 1)
  in
  let len = find 1 in
  { bits = a.bits land mask len; length = len }

let nth_descendant t ~length:len i =
  if len < t.length then invalid_arg "Prefix.nth_descendant: length shorter than prefix";
  if len > address_bits then invalid_arg "Prefix.nth_descendant: length exceeds 32";
  let count = 1 lsl (len - t.length) in
  if i < 0 || i >= count then invalid_arg "Prefix.nth_descendant: index out of range";
  { bits = t.bits lor (i lsl (address_bits - len)); length = len }

let equal a b = a.bits = b.bits && a.length = b.length

let compare a b =
  let c = Int.compare a.bits b.bits in
  if c <> 0 then c else Int.compare a.length b.length

let hash t = Hashtbl.hash (t.bits, t.length)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d/%d"
    ((t.bits lsr 24) land 0xff)
    ((t.bits lsr 16) land 0xff)
    ((t.bits lsr 8) land 0xff)
    (t.bits land 0xff)
    t.length

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Prefix.of_string: malformed prefix %S" s) in
  match String.split_on_char '/' s with
  | [ quad; len ] -> begin
    match String.split_on_char '.' quad with
    | [ a; b; c; d ] -> begin
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d, int_of_string_opt len) with
      | Some a, Some b, Some c, Some d, Some len
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256 && d >= 0 && d < 256 ->
        let bits = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d in
        if len < 0 || len > address_bits then fail () else make ~bits ~length:len
      | _, _, _, _, _ -> fail ()
    end
    | _ -> fail ()
  end
  | _ -> fail ()

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
