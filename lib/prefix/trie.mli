(** Immutable binary trie keyed by {!Prefix.t}.

    Nodes exist for every prefix on the path from the trie's root prefix to
    a bound prefix; values hang off arbitrary nodes (internal or leaf).
    Monitor configurations use it to compute, bottom-up, the per-ancestor
    switch sets (S_j, T_j) of Section 5.2, and ground truth uses it for
    hierarchical heavy hitters. *)

type 'a t

val empty : Prefix.t -> 'a t
(** [empty root] is a trie that can hold values on [root] and its
    descendants. *)

val root_prefix : 'a t -> Prefix.t

val is_empty : 'a t -> bool
(** True when no prefix is bound. *)

val cardinal : 'a t -> int
(** Number of bound prefixes. *)

val add : 'a t -> Prefix.t -> 'a -> 'a t
(** [add t p v] binds [p] to [v], replacing any existing binding.
    @raise Invalid_argument if [p] is not covered by the root prefix. *)

val remove : 'a t -> Prefix.t -> 'a t
(** Remove the binding at [p] (if any), pruning now-empty branches. *)

val find : 'a t -> Prefix.t -> 'a option

val mem : 'a t -> Prefix.t -> bool

val update : 'a t -> Prefix.t -> ('a option -> 'a option) -> 'a t
(** Functional update of the binding at [p]. *)

val longest_match : 'a t -> Prefix.address -> (Prefix.t * 'a) option
(** Longest bound prefix containing the address — TCAM matching
    semantics. *)

val bindings : 'a t -> (Prefix.t * 'a) list
(** All bindings in {!Prefix.compare} order. *)

val fold : 'a t -> init:'b -> f:('b -> Prefix.t -> 'a -> 'b) -> 'b
(** Fold over bindings in prefix order. *)

val iter : 'a t -> f:(Prefix.t -> 'a -> unit) -> unit

val descendants : 'a t -> Prefix.t -> (Prefix.t * 'a) list
(** Bindings covered by the given prefix (including itself). *)

val remove_subtree : 'a t -> Prefix.t -> 'a t
(** Drop every binding covered by the given prefix. *)

val fold_bindings_bottom_up :
  root:Prefix.t -> (Prefix.t * 'a) array -> f:(Prefix.t -> 'a option -> 'b list -> 'b) -> 'b option
(** [fold_bindings_bottom_up ~root bindings ~f] is {!fold_bottom_up} over
    the trie that [add]ing every binding to [empty root] would build — the
    same nodes, visit order, child lists and result — but walks the sorted
    bindings array directly instead of constructing the trie.  This is the
    allocation-light path the epoch loop uses: monitors already hold their
    counters sorted, and path-copied trie nodes were pure scratch.

    Preconditions (the trie would enforce them structurally): bindings
    sorted by {!Prefix.compare}, prefixes distinct, all covered by
    [root]. *)

val fold_bottom_up :
  'a t -> f:(Prefix.t -> 'a option -> 'b list -> 'b) -> 'b option
(** [fold_bottom_up t ~f] visits every trie node (bound or structural) in
    post-order; [f prefix value child_results] receives the results of the
    node's existing children (0, 1 or 2 of them).  Returns [None] on an
    empty trie.  This is the bottom-up pass used to compute S_j / T_j. *)
