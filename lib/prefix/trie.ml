type 'a node = { value : 'a option; left : 'a node option; right : 'a node option }

type 'a t = { root_prefix : Prefix.t; root : 'a node option; cardinal : int }

let empty_node = { value = None; left = None; right = None }

let empty root_prefix = { root_prefix; root = None; cardinal = 0 }

let root_prefix t = t.root_prefix

let is_empty t = t.cardinal = 0

let cardinal t = t.cardinal

(* Direction of [target] below [at]: true = right branch. *)
let branch_right ~at target =
  let bit_index = Prefix.address_bits - Prefix.length at - 1 in
  Prefix.bits target land (1 lsl bit_index) <> 0

let node_is_empty n = n.value = None && n.left = None && n.right = None

let rec add_node node at target v =
  let node = match node with Some n -> n | None -> empty_node in
  if Prefix.equal at target then ({ node with value = Some v }, node.value = None)
  else if branch_right ~at target then begin
    let at' = match Prefix.right_child at with Some p -> p | None -> assert false in
    let child, fresh = add_node node.right at' target v in
    ({ node with right = Some child }, fresh)
  end
  else begin
    let at' = match Prefix.left_child at with Some p -> p | None -> assert false in
    let child, fresh = add_node node.left at' target v in
    ({ node with left = Some child }, fresh)
  end

let add t p v =
  if not (Prefix.covers t.root_prefix p) then
    invalid_arg
      (Printf.sprintf "Trie.add: %s outside root %s" (Prefix.to_string p)
         (Prefix.to_string t.root_prefix));
  let root, fresh = add_node t.root t.root_prefix p v in
  { t with root = Some root; cardinal = (if fresh then t.cardinal + 1 else t.cardinal) }

let rec remove_node node at target =
  match node with
  | None -> (None, false)
  | Some n ->
    if Prefix.equal at target then begin
      let n' = { n with value = None } in
      ((if node_is_empty n' then None else Some n'), n.value <> None)
    end
    else begin
      let n', removed =
        if branch_right ~at target then begin
          let at' = match Prefix.right_child at with Some p -> p | None -> assert false in
          let child, removed = remove_node n.right at' target in
          ({ n with right = child }, removed)
        end
        else begin
          let at' = match Prefix.left_child at with Some p -> p | None -> assert false in
          let child, removed = remove_node n.left at' target in
          ({ n with left = child }, removed)
        end
      in
      ((if node_is_empty n' then None else Some n'), removed)
    end

let remove t p =
  if not (Prefix.covers t.root_prefix p) then t
  else begin
    let root, removed = remove_node t.root t.root_prefix p in
    { t with root; cardinal = (if removed then t.cardinal - 1 else t.cardinal) }
  end

let rec find_node node at target =
  match node with
  | None -> None
  | Some n ->
    if Prefix.equal at target then n.value
    else if branch_right ~at target then begin
      match Prefix.right_child at with
      | Some at' -> find_node n.right at' target
      | None -> None
    end
    else begin
      match Prefix.left_child at with
      | Some at' -> find_node n.left at' target
      | None -> None
    end

let find t p = if Prefix.covers t.root_prefix p then find_node t.root t.root_prefix p else None

let mem t p = find t p <> None

let update t p f =
  match f (find t p) with
  | Some v -> add t p v
  | None -> remove t p

let longest_match t addr =
  if not (Prefix.contains t.root_prefix addr) then None
  else begin
    let rec go node at best =
      match node with
      | None -> best
      | Some n ->
        let best = match n.value with Some v -> Some (at, v) | None -> best in
        if Prefix.is_exact at then best
        else begin
          let bit_index = Prefix.address_bits - Prefix.length at - 1 in
          if addr land (1 lsl bit_index) <> 0 then begin
            match Prefix.right_child at with
            | Some at' -> go n.right at' best
            | None -> best
          end
          else begin
            match Prefix.left_child at with
            | Some at' -> go n.left at' best
            | None -> best
          end
        end
    in
    go t.root t.root_prefix None
  end

let fold t ~init ~f =
  let rec go node at acc =
    match node with
    | None -> acc
    | Some n ->
      let acc = match n.value with Some v -> f acc at v | None -> acc in
      let acc =
        match Prefix.left_child at with
        | Some at' -> go n.left at' acc
        | None -> acc
      in
      begin
        match Prefix.right_child at with
        | Some at' -> go n.right at' acc
        | None -> acc
      end
  in
  go t.root t.root_prefix init

let bindings t = List.rev (fold t ~init:[] ~f:(fun acc p v -> (p, v) :: acc))

let iter t ~f = fold t ~init:() ~f:(fun () p v -> f p v)

let descendants t p =
  List.filter (fun (q, _) -> Prefix.covers p q) (bindings t)

let remove_subtree t p =
  List.fold_left (fun t (q, _) -> remove t q) t (descendants t p)

let fold_bindings_bottom_up ~root bindings ~f =
  let n = Array.length bindings in
  (* First binding index in [lo, hi) whose first address is >= key; the
     bindings are in Prefix.compare order, whose first component is the
     first covered address, so each node's left- and right-subtree
     bindings form contiguous slices. *)
  let bisect lo hi key =
    let rec go lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if Prefix.first_address (fst bindings.(mid)) < key then go (mid + 1) hi else go lo mid
      end
    in
    go lo hi
  in
  (* Visit the structural trie the bindings imply — every prefix on a path
     from [root] to a bound prefix — without building it.  Calls, results
     and visit order are exactly those of [fold_bottom_up] over a trie
     holding the same bindings. *)
  let rec go at lo hi =
    let value, lo =
      let p, v = bindings.(lo) in
      if Prefix.equal p at then (Some v, lo + 1) else (None, lo)
    in
    if lo >= hi then f at value []
    else begin
      match Prefix.children at with
      | None ->
        (* Bindings below an exact prefix cannot exist (they would not be
           distinct); visit the node alone. *)
        f at value []
      | Some (l, r) ->
        let mid = bisect lo hi (Prefix.first_address r) in
        let results =
          if lo < mid && mid < hi then [ go l lo mid; go r mid hi ]
          else if lo < mid then [ go l lo mid ]
          else [ go r mid hi ]
        in
        f at value results
    end
  in
  if n = 0 then None else Some (go root 0 n)

let fold_bottom_up t ~f =
  let rec go node at =
    let child child_node child_prefix =
      match (child_node, child_prefix) with
      | Some n, Some p -> Some (go n p)
      | _, _ -> None
    in
    let results =
      List.filter_map Fun.id
        [ child node.left (Prefix.left_child at); child node.right (Prefix.right_child at) ]
    in
    f at node.value results
  in
  match t.root with
  | None -> None
  | Some n -> Some (go n t.root_prefix)
