(* Tests for dream.util: RNG determinism and distributions, EWMA, stats,
   heap — including qcheck properties on the heap and percentiles. *)

module Rng = Dream_util.Rng
module Ewma = Dream_util.Ewma
module Stats = Dream_util.Stats
module Heap = Dream_util.Heap
module Timeseries = Dream_util.Timeseries

let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 42 and b = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0, 17)" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let v = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5, 9]" true (v >= 5 && v <= 9)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    Alcotest.(check bool) "in [0, 3)" true (v >= 0.0 && v < 3.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 1 in
  let child = Rng.split parent in
  let equal = ref true in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 parent) (Rng.bits64 child)) then equal := false
  done;
  Alcotest.(check bool) "split diverges from parent" false !equal

let test_rng_copy_preserves () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy equals original" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.3)

let test_rng_pareto_min () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above xmin" true (Rng.pareto rng ~alpha:1.5 ~xmin:2.0 >= 2.0)
  done

let test_rng_poisson_mean () =
  let rng = Rng.create 17 in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.poisson rng 3.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_rng_zipf_range () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    let v = Rng.zipf rng ~n:10 ~s:1.1 in
    Alcotest.(check bool) "rank in [1, 10]" true (v >= 1 && v <= 10)
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 23 in
  let counts = Array.make 11 0 in
  for _ = 1 to 10000 do
    let v = Rng.zipf rng ~n:10 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 8" true (counts.(2) > counts.(8))

let test_rng_gaussian_moments () =
  let rng = Rng.create 29 in
  let n = 50000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.03);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick () =
  let rng = Rng.create 37 in
  for _ = 1 to 100 do
    let v = Rng.pick rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "element of array" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* ---- Ewma ---- *)

let test_ewma_first_sample () =
  let f = Ewma.create ~history:0.4 in
  check_float "first sample initialises" 3.0 (Ewma.update f 3.0)

let test_ewma_blend () =
  let f = Ewma.create ~history:0.4 in
  ignore (Ewma.update f 10.0);
  check_float "0.4*10 + 0.6*0" 4.0 (Ewma.update f 0.0)

let test_ewma_empty_value () =
  let f = Ewma.create ~history:0.5 in
  Alcotest.(check bool) "empty" true (Ewma.value f = None);
  check_float "default" 7.0 (Ewma.value_or f 7.0)

let test_ewma_reset () =
  let f = Ewma.create ~history:0.5 in
  ignore (Ewma.update f 1.0);
  Ewma.reset f;
  Alcotest.(check bool) "reset empties" true (Ewma.value f = None)

let test_ewma_scale_seed () =
  let f = Ewma.create ~history:0.5 in
  ignore (Ewma.update f 8.0);
  Ewma.scale f 0.5;
  check_float "scaled" 4.0 (Ewma.value_or f 0.0);
  Ewma.seed f 2.5;
  check_float "seeded" 2.5 (Ewma.value_or f 0.0)

let test_ewma_invalid_history () =
  Alcotest.check_raises "history 1.0" (Invalid_argument "Ewma.create: history must be in [0, 1)")
    (fun () -> ignore (Ewma.create ~history:1.0))

let test_ewma_convergence () =
  let f = Ewma.create ~history:0.8 in
  for _ = 1 to 200 do
    ignore (Ewma.update f 42.0)
  done;
  Alcotest.(check bool) "converges to constant input" true
    (Float.abs (Ewma.value_or f 0.0 -. 42.0) < 1e-6)

(* ---- Stats ---- *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check_float "constant stddev" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "known stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p50" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p25 interpolates" 2.0 (Stats.percentile 25.0 xs)

let test_stats_percentile_degenerate () =
  (* Total over the sample: tiny samples answer instead of raising. *)
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.percentile 50.0 []));
  Alcotest.(check bool) "empty median is nan" true (Float.is_nan (Stats.median []));
  check_float "singleton p0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  check_float "singleton p50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  check_float "singleton p100" 7.0 (Stats.percentile 100.0 [ 7.0 ]);
  check_float "two elements p50" 1.5 (Stats.percentile 50.0 [ 1.0; 2.0 ]);
  check_float "two elements p25" 1.25 (Stats.percentile 25.0 [ 2.0; 1.0 ])

let test_stats_percentile_errors () =
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile 101.0 [ 1.0 ]));
  Alcotest.check_raises "out of range on empty" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile (-1.0) []))

let test_stats_summary () =
  match Stats.summarize [ 3.0; 1.0; 2.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
    Alcotest.(check int) "count" 3 s.Stats.count;
    check_float "min" 1.0 s.Stats.min;
    check_float "max" 3.0 s.Stats.max;
    check_float "median" 2.0 s.Stats.median

let test_stats_summary_empty () =
  Alcotest.(check bool) "no summary of empty" true (Stats.summarize [] = None)

(* ---- Heap ---- *)

let test_heap_pop_order () =
  let h = Heap.of_list ~cmp:Int.compare [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "descending" [ 9; 6; 5; 4; 3; 2; 1; 1 ] (drain [])

let test_heap_peek () =
  let h = Heap.of_list ~cmp:Int.compare [ 2; 7; 5 ] in
  Alcotest.(check (option int)) "peek max" (Some 7) (Heap.peek h);
  Alcotest.(check int) "peek preserves" 3 (Heap.length h)

let test_heap_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap drains in descending order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:Int.compare xs in
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort (fun a b -> Int.compare b a) xs)

let heap_length_prop =
  QCheck.Test.make ~name:"heap length tracks pushes" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      Heap.length h = List.length xs)

let percentile_bounds_prop =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0)) (int_range 0 100))
    (fun (xs, p) ->
      let v = Stats.percentile (float_of_int p) xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

(* ---- Timeseries ---- *)

let test_ts_binned () =
  let points = Timeseries.binned [ (0, 1.0); (1, 3.0); (10, 5.0); (12, 7.0) ] ~bin:10 in
  match points with
  | [ a; b ] ->
    Alcotest.(check int) "first bucket" 0 a.Timeseries.epoch;
    check_float "first mean" 2.0 a.Timeseries.value;
    Alcotest.(check int) "second bucket" 10 b.Timeseries.epoch;
    check_float "second mean" 6.0 b.Timeseries.value
  | _ -> Alcotest.fail "expected two buckets"

let test_ts_binned_invalid () =
  Alcotest.check_raises "bin 0" (Invalid_argument "Timeseries.binned: bin must be positive")
    (fun () -> ignore (Timeseries.binned [] ~bin:0))

let test_ts_sparkline () =
  Alcotest.(check string) "empty" "" (Timeseries.sparkline []);
  let s = Timeseries.sparkline [ 0.0; 1.0 ] in
  (* Two glyphs of three bytes each. *)
  Alcotest.(check int) "two glyphs" 6 (String.length s);
  let flat = Timeseries.sparkline [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "flat series renders" 9 (String.length flat)

let test_ts_sparkline_scaling () =
  (* With explicit bounds, the glyph for lo and hi are the extremes. *)
  let s = Timeseries.sparkline ~lo:0.0 ~hi:1.0 [ 0.0; 1.0 ] in
  Alcotest.(check string) "lowest then highest" "\xe2\x96\x81\xe2\x96\x88" s

let () =
  Alcotest.run "dream.util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy preserves state" `Quick test_rng_copy_preserves;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "pareto min" `Quick test_rng_pareto_min;
          Alcotest.test_case "poisson mean" `Slow test_rng_poisson_mean;
          Alcotest.test_case "zipf range" `Quick test_rng_zipf_range;
          Alcotest.test_case "zipf skew" `Slow test_rng_zipf_skew;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "first sample" `Quick test_ewma_first_sample;
          Alcotest.test_case "blend" `Quick test_ewma_blend;
          Alcotest.test_case "empty value" `Quick test_ewma_empty_value;
          Alcotest.test_case "reset" `Quick test_ewma_reset;
          Alcotest.test_case "scale and seed" `Quick test_ewma_scale_seed;
          Alcotest.test_case "invalid history" `Quick test_ewma_invalid_history;
          Alcotest.test_case "convergence" `Quick test_ewma_convergence;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile degenerate samples" `Quick
            test_stats_percentile_degenerate;
          Alcotest.test_case "percentile errors" `Quick test_stats_percentile_errors;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "summary empty" `Quick test_stats_summary_empty;
        ] );
      ( "heap",
        [
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          QCheck_alcotest.to_alcotest heap_sorted_prop;
          QCheck_alcotest.to_alcotest heap_length_prop;
          QCheck_alcotest.to_alcotest percentile_bounds_prop;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "binned" `Quick test_ts_binned;
          Alcotest.test_case "binned invalid" `Quick test_ts_binned_invalid;
          Alcotest.test_case "sparkline" `Quick test_ts_sparkline;
          Alcotest.test_case "sparkline scaling" `Quick test_ts_sparkline_scaling;
        ] );
    ]
