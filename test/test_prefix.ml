(* Tests for dream.prefix: prefix algebra (including the paper's Figure 5
   trie worked at /28..32 granularity) and the binary trie, with qcheck
   properties for the algebraic laws. *)

module Prefix = Dream_prefix.Prefix
module Trie = Dream_prefix.Trie

let prefix = Alcotest.testable Prefix.pp Prefix.equal

let p s = Prefix.of_string s

(* ---- Prefix ---- *)

let test_make_masks_low_bits () =
  let a = Prefix.make ~bits:0x0A1B_FFFF ~length:16 in
  Alcotest.(check int) "low bits zeroed" 0x0A1B_0000 (Prefix.bits a)

let test_make_invalid () =
  Alcotest.check_raises "length 33" (Invalid_argument "Prefix.make: length out of [0, 32]")
    (fun () -> ignore (Prefix.make ~bits:0 ~length:33));
  Alcotest.check_raises "negative bits" (Invalid_argument "Prefix.make: bits out of [0, 2^32)")
    (fun () -> ignore (Prefix.make ~bits:(-1) ~length:8))

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Prefix.to_string (p s)))
    [ "0.0.0.0/0"; "10.0.0.0/8"; "10.32.0.0/12"; "255.255.255.255/32"; "192.168.1.0/24" ]

let test_of_string_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (try
           ignore (Prefix.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "10.0.0.0"; "10.0.0/8"; "256.0.0.0/8"; "10.0.0.0/33"; "a.b.c.d/8"; "" ]

let test_of_string_masks () =
  Alcotest.check prefix "extra bits masked" (p "10.0.0.0/8") (Prefix.of_string "10.255.3.7/8")

let test_children_parent () =
  let parent = p "10.0.0.0/8" in
  match Prefix.children parent with
  | None -> Alcotest.fail "expected children"
  | Some (l, r) ->
    Alcotest.check prefix "left" (p "10.0.0.0/9") l;
    Alcotest.check prefix "right" (p "10.128.0.0/9") r;
    Alcotest.check (Alcotest.option prefix) "left's parent" (Some parent) (Prefix.parent l);
    Alcotest.check (Alcotest.option prefix) "right's parent" (Some parent) (Prefix.parent r)

let test_root_and_exact () =
  Alcotest.(check bool) "root has no parent" true (Prefix.parent Prefix.root = None);
  let exact = Prefix.of_address 0x0A0B0C0D in
  Alcotest.(check bool) "exact has no children" true (Prefix.children exact = None);
  Alcotest.(check bool) "is_exact" true (Prefix.is_exact exact);
  Alcotest.(check int) "size of exact" 1 (Prefix.size exact)

let test_sibling () =
  Alcotest.check (Alcotest.option prefix) "sibling" (Some (p "10.128.0.0/9"))
    (Prefix.sibling (p "10.0.0.0/9"));
  Alcotest.(check bool) "root has no sibling" true (Prefix.sibling Prefix.root = None)

let test_range () =
  let a = p "10.0.0.0/8" in
  Alcotest.(check int) "first" 0x0A000000 (Prefix.first_address a);
  Alcotest.(check int) "last" 0x0AFFFFFF (Prefix.last_address a);
  Alcotest.(check int) "size" (1 lsl 24) (Prefix.size a)

let test_contains () =
  let a = p "10.0.0.0/8" in
  Alcotest.(check bool) "contains inside" true (Prefix.contains a 0x0A123456);
  Alcotest.(check bool) "excludes outside" false (Prefix.contains a 0x0B000000)

let test_cover_ancestor () =
  let a = p "10.0.0.0/8" and b = p "10.32.0.0/12" in
  Alcotest.(check bool) "ancestor" true (Prefix.is_ancestor_of a b);
  Alcotest.(check bool) "not reflexive" false (Prefix.is_ancestor_of a a);
  Alcotest.(check bool) "covers reflexive" true (Prefix.covers a a);
  Alcotest.(check bool) "covers descendant" true (Prefix.covers a b);
  Alcotest.(check bool) "no reverse cover" false (Prefix.covers b a)

let test_common_ancestor () =
  Alcotest.check prefix "common of siblings" (p "10.0.0.0/8")
    (Prefix.common_ancestor (p "10.0.0.0/9") (p "10.128.0.0/9"));
  Alcotest.check prefix "disjoint top bits" Prefix.root
    (Prefix.common_ancestor (p "10.0.0.0/8") (p "192.0.0.0/8"));
  Alcotest.check prefix "ancestor of pair" (p "10.0.0.0/8")
    (Prefix.common_ancestor (p "10.0.0.0/8") (p "10.32.0.0/12"))

let test_ancestor_at () =
  Alcotest.check prefix "ancestor at 8" (p "10.0.0.0/8") (Prefix.ancestor_at (p "10.32.0.0/12") 8);
  Alcotest.check_raises "longer than prefix"
    (Invalid_argument "Prefix.ancestor_at: requested length exceeds prefix length") (fun () ->
      ignore (Prefix.ancestor_at (p "10.0.0.0/8") 12))

let test_nth_descendant () =
  let f = p "10.0.0.0/8" in
  Alcotest.check prefix "0th /10" (p "10.0.0.0/10") (Prefix.nth_descendant f ~length:10 0);
  Alcotest.check prefix "3rd /10" (p "10.192.0.0/10") (Prefix.nth_descendant f ~length:10 3);
  Alcotest.check_raises "out of range" (Invalid_argument "Prefix.nth_descendant: index out of range")
    (fun () -> ignore (Prefix.nth_descendant f ~length:10 4))

let test_compare_order () =
  let sorted =
    List.sort Prefix.compare [ p "10.128.0.0/9"; p "10.0.0.0/8"; p "10.0.0.0/9" ]
  in
  Alcotest.(check (list string)) "ancestors before descendants, address order"
    [ "10.0.0.0/8"; "10.0.0.0/9"; "10.128.0.0/9" ]
    (List.map Prefix.to_string sorted)

(* qcheck generators *)

let gen_prefix =
  QCheck.Gen.(
    int_range 0 32 >>= fun length ->
    map
      (fun bits -> Prefix.make ~bits:(bits land 0xFFFFFFFF) ~length)
      (int_bound 0x3FFFFFFFFFFF))

let arb_prefix = QCheck.make ~print:Prefix.to_string gen_prefix

let prop_parent_covers =
  QCheck.Test.make ~name:"parent covers child" ~count:500 arb_prefix (fun x ->
      match Prefix.parent x with None -> Prefix.length x = 0 | Some pa -> Prefix.covers pa x)

let prop_children_partition =
  QCheck.Test.make ~name:"children partition parent" ~count:500 arb_prefix (fun x ->
      match Prefix.children x with
      | None -> Prefix.is_exact x
      | Some (l, r) ->
        Prefix.size l + Prefix.size r = Prefix.size x
        && Prefix.first_address l = Prefix.first_address x
        && Prefix.last_address r = Prefix.last_address x
        && Prefix.last_address l + 1 = Prefix.first_address r)

let prop_contains_range =
  QCheck.Test.make ~name:"contains = within range" ~count:500
    QCheck.(pair arb_prefix (int_bound 0xFFFFFFFF))
    (fun (x, addr) ->
      Prefix.contains x addr
      = (addr >= Prefix.first_address x && addr <= Prefix.last_address x))

let prop_common_ancestor_covers =
  QCheck.Test.make ~name:"common ancestor covers both" ~count:500
    QCheck.(pair arb_prefix arb_prefix)
    (fun (a, b) ->
      let c = Prefix.common_ancestor a b in
      Prefix.covers c a && Prefix.covers c b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:500 arb_prefix (fun x ->
      Prefix.equal x (Prefix.of_string (Prefix.to_string x)))

(* ---- Trie ---- *)

let root8 = p "10.0.0.0/8"

let test_trie_add_find () =
  let t = Trie.add (Trie.empty root8) (p "10.32.0.0/12") 42 in
  Alcotest.(check (option int)) "found" (Some 42) (Trie.find t (p "10.32.0.0/12"));
  Alcotest.(check (option int)) "absent" None (Trie.find t (p "10.0.0.0/12"));
  Alcotest.(check int) "cardinal" 1 (Trie.cardinal t)

let test_trie_add_replaces () =
  let t = Trie.add (Trie.add (Trie.empty root8) root8 1) root8 2 in
  Alcotest.(check (option int)) "replaced" (Some 2) (Trie.find t root8);
  Alcotest.(check int) "cardinal still 1" 1 (Trie.cardinal t)

let test_trie_outside_root () =
  Alcotest.(check bool) "add outside raises" true
    (try
       ignore (Trie.add (Trie.empty root8) (p "11.0.0.0/9") 1);
       false
     with Invalid_argument _ -> true)

let test_trie_remove () =
  let t = Trie.add (Trie.add (Trie.empty root8) (p "10.32.0.0/12") 1) (p "10.0.0.0/12") 2 in
  let t = Trie.remove t (p "10.32.0.0/12") in
  Alcotest.(check (option int)) "removed" None (Trie.find t (p "10.32.0.0/12"));
  Alcotest.(check (option int)) "other kept" (Some 2) (Trie.find t (p "10.0.0.0/12"));
  Alcotest.(check int) "cardinal" 1 (Trie.cardinal t)

let test_trie_longest_match () =
  let t =
    Trie.add (Trie.add (Trie.empty root8) (p "10.0.0.0/8") 8) (p "10.32.0.0/12") 12
  in
  (match Trie.longest_match t 0x0A200001 with
  | Some (q, v) ->
    Alcotest.check prefix "longest" (p "10.32.0.0/12") q;
    Alcotest.(check int) "value" 12 v
  | None -> Alcotest.fail "expected match");
  (match Trie.longest_match t 0x0AF00001 with
  | Some (q, v) ->
    Alcotest.check prefix "falls back to /8" (p "10.0.0.0/8") q;
    Alcotest.(check int) "value" 8 v
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "outside root" true (Trie.longest_match t 0x0B000000 = None)

let test_trie_bindings_sorted () =
  let t =
    List.fold_left
      (fun t (q, v) -> Trie.add t (p q) v)
      (Trie.empty root8)
      [ ("10.128.0.0/9", 1); ("10.0.0.0/8", 2); ("10.64.0.0/10", 3) ]
  in
  Alcotest.(check (list string)) "prefix order"
    [ "10.0.0.0/8"; "10.64.0.0/10"; "10.128.0.0/9" ]
    (List.map (fun (q, _) -> Prefix.to_string q) (Trie.bindings t))

let test_trie_descendants_subtree () =
  let t =
    List.fold_left
      (fun t q -> Trie.add t (p q) ())
      (Trie.empty root8)
      [ "10.0.0.0/10"; "10.64.0.0/10"; "10.128.0.0/9" ]
  in
  Alcotest.(check int) "descendants of /9" 2 (List.length (Trie.descendants t (p "10.0.0.0/9")));
  let t = Trie.remove_subtree t (p "10.0.0.0/9") in
  Alcotest.(check int) "after remove_subtree" 1 (Trie.cardinal t)

let test_trie_fold_bottom_up () =
  (* Sum of sizes of bound prefixes via post-order traversal. *)
  let t =
    List.fold_left
      (fun t q -> Trie.add t (p q) ())
      (Trie.empty root8)
      [ "10.0.0.0/9"; "10.128.0.0/9" ]
  in
  let result =
    Trie.fold_bottom_up t ~f:(fun q value children ->
        let own = if value <> None then Prefix.size q else 0 in
        own + List.fold_left ( + ) 0 children)
  in
  Alcotest.(check (option int)) "covers the /8" (Some (Prefix.size root8)) result

let test_trie_update () =
  let t = Trie.empty root8 in
  let t = Trie.update t root8 (fun v -> Some (match v with None -> 1 | Some n -> n + 1)) in
  let t = Trie.update t root8 (fun v -> Some (match v with None -> 1 | Some n -> n + 1)) in
  Alcotest.(check (option int)) "updated twice" (Some 2) (Trie.find t root8);
  let t = Trie.update t root8 (fun _ -> None) in
  Alcotest.(check bool) "update to None removes" true (Trie.is_empty t)

let gen_sub_prefix =
  (* Prefixes under 10.0.0.0/8. *)
  QCheck.Gen.(
    int_range 8 32 >>= fun length ->
    map
      (fun bits ->
        Prefix.make ~bits:(0x0A000000 lor (bits land 0x00FFFFFF)) ~length)
      (int_bound 0xFFFFFF))

let arb_sub_prefix_list =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map Prefix.to_string l))
    QCheck.Gen.(list_size (int_range 0 40) gen_sub_prefix)

let prop_trie_model =
  QCheck.Test.make ~name:"trie bindings match a map model" ~count:200 arb_sub_prefix_list
    (fun prefixes ->
      let trie =
        List.fold_left (fun t q -> Trie.add t q (Prefix.to_string q)) (Trie.empty root8) prefixes
      in
      let model =
        List.fold_left (fun m q -> Prefix.Map.add q (Prefix.to_string q) m) Prefix.Map.empty
          prefixes
      in
      Trie.bindings trie = Prefix.Map.bindings model)

let prop_trie_remove_inverse =
  QCheck.Test.make ~name:"remove undoes add" ~count:200 arb_sub_prefix_list (fun prefixes ->
      let trie = List.fold_left (fun t q -> Trie.add t q ()) (Trie.empty root8) prefixes in
      let emptied = List.fold_left (fun t q -> Trie.remove t q) trie prefixes in
      Trie.is_empty emptied)

let prop_trie_longest_match_model =
  QCheck.Test.make ~name:"longest_match agrees with linear scan" ~count:200
    QCheck.(pair arb_sub_prefix_list (int_range 0x0A000000 0x0AFFFFFF))
    (fun (prefixes, addr) ->
      let trie = List.fold_left (fun t q -> Trie.add t q ()) (Trie.empty root8) prefixes in
      let expected =
        List.fold_left
          (fun best q ->
            if Prefix.contains q addr then begin
              match best with
              | Some b when Prefix.length b >= Prefix.length q -> best
              | Some _ | None -> Some q
            end
            else best)
          None prefixes
      in
      match (Trie.longest_match trie addr, expected) with
      | None, None -> true
      | Some (q, ()), Some e -> Prefix.equal q e
      | Some _, None | None, Some _ -> false)

let () =
  Alcotest.run "dream.prefix"
    [
      ( "prefix",
        [
          Alcotest.test_case "make masks low bits" `Quick test_make_masks_low_bits;
          Alcotest.test_case "make invalid" `Quick test_make_invalid;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "of_string malformed" `Quick test_of_string_malformed;
          Alcotest.test_case "of_string masks" `Quick test_of_string_masks;
          Alcotest.test_case "children and parent" `Quick test_children_parent;
          Alcotest.test_case "root and exact" `Quick test_root_and_exact;
          Alcotest.test_case "sibling" `Quick test_sibling;
          Alcotest.test_case "address range" `Quick test_range;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "covers and ancestors" `Quick test_cover_ancestor;
          Alcotest.test_case "common ancestor" `Quick test_common_ancestor;
          Alcotest.test_case "ancestor_at" `Quick test_ancestor_at;
          Alcotest.test_case "nth descendant" `Quick test_nth_descendant;
          Alcotest.test_case "compare order" `Quick test_compare_order;
          QCheck_alcotest.to_alcotest prop_parent_covers;
          QCheck_alcotest.to_alcotest prop_children_partition;
          QCheck_alcotest.to_alcotest prop_contains_range;
          QCheck_alcotest.to_alcotest prop_common_ancestor_covers;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
        ] );
      ( "trie",
        [
          Alcotest.test_case "add and find" `Quick test_trie_add_find;
          Alcotest.test_case "add replaces" `Quick test_trie_add_replaces;
          Alcotest.test_case "outside root rejected" `Quick test_trie_outside_root;
          Alcotest.test_case "remove" `Quick test_trie_remove;
          Alcotest.test_case "longest match" `Quick test_trie_longest_match;
          Alcotest.test_case "bindings sorted" `Quick test_trie_bindings_sorted;
          Alcotest.test_case "descendants and subtree removal" `Quick test_trie_descendants_subtree;
          Alcotest.test_case "fold bottom up" `Quick test_trie_fold_bottom_up;
          Alcotest.test_case "update" `Quick test_trie_update;
          QCheck_alcotest.to_alcotest prop_trie_model;
          QCheck_alcotest.to_alcotest prop_trie_remove_inverse;
          QCheck_alcotest.to_alcotest prop_trie_longest_match_model;
        ] );
    ]
