(* Tests for dream.fault and the failure-tolerant controller: fault-model
   determinism, the zero-spec regression guard (fault plumbing must not
   change fault-free results), fault-path determinism, and graceful
   survival of an aggressively faulty run. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Fault_model = Dream_fault.Fault_model
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Data_plane = Dream_switch.Data_plane
module Task_spec = Dream_tasks.Task_spec
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Controller = Dream_core.Controller

(* ---- Fault_model ---- *)

let aggressive seed =
  {
    Fault_model.zero with
    Fault_model.seed;
    crash_rate = 0.15;
    mean_downtime = 3.0;
    fetch_timeout_rate = 0.3;
    counter_loss_rate = 0.1;
    install_failure_rate = 0.1;
    perturb_stddev = 0.05;
  }

let schedule spec ~num_switches ~epochs =
  let fm = Fault_model.create spec ~num_switches in
  let events = ref [] in
  for _ = 1 to epochs do
    let e = Fault_model.begin_epoch fm in
    events := (e.Fault_model.crashed, e.Fault_model.recovered) :: !events
  done;
  List.rev !events

let test_model_deterministic () =
  let a = schedule (aggressive 5) ~num_switches:8 ~epochs:100 in
  let b = schedule (aggressive 5) ~num_switches:8 ~epochs:100 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = schedule (aggressive 6) ~num_switches:8 ~epochs:100 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_model_crash_recovery_cycle () =
  let spec = { (aggressive 11) with Fault_model.crash_rate = 0.3 } in
  let fm = Fault_model.create spec ~num_switches:4 in
  let crashes = ref 0 and recoveries = ref 0 in
  for _ = 1 to 200 do
    let e = Fault_model.begin_epoch fm in
    crashes := !crashes + List.length e.Fault_model.crashed;
    recoveries := !recoveries + List.length e.Fault_model.recovered;
    List.iter
      (fun sw -> Alcotest.(check bool) "crashed switch is down" true (Fault_model.is_down fm sw))
      e.Fault_model.crashed;
    List.iter
      (fun sw ->
        Alcotest.(check bool) "recovered switch is up" false (Fault_model.is_down fm sw))
      e.Fault_model.recovered
  done;
  Alcotest.(check bool) (Printf.sprintf "crashes occur (%d)" !crashes) true (!crashes > 10);
  Alcotest.(check bool) "most crashes recover" true (!recoveries > !crashes / 2)

let test_model_zero_is_silent () =
  let fm = Fault_model.create Fault_model.zero ~num_switches:4 in
  for _ = 1 to 50 do
    let e = Fault_model.begin_epoch fm in
    Alcotest.(check bool) "no crashes" true (e.Fault_model.crashed = []);
    for sw = 0 to 3 do
      Alcotest.(check bool) "up" false (Fault_model.is_down fm sw);
      Alcotest.(check bool) "no timeout" false (Fault_model.fetch_times_out fm sw);
      Alcotest.(check bool) "no loss" false (Fault_model.lose_counter fm sw);
      Alcotest.(check bool) "no install failure" false (Fault_model.install_fails fm sw);
      Alcotest.(check (float 0.0)) "perturb is identity" 42.5 (Fault_model.perturb fm sw 42.5)
    done
  done

let test_model_validation () =
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Fault_model.uniform 1.5);
  raises (fun () -> Fault_model.uniform (-0.1));
  raises (fun () -> Fault_model.create { Fault_model.zero with Fault_model.crash_rate = 2.0 } ~num_switches:4);
  raises (fun () -> Fault_model.create { Fault_model.zero with Fault_model.stale_decay = 0.0 } ~num_switches:4);
  raises (fun () -> Fault_model.create Fault_model.zero ~num_switches:0)

(* ---- Data_plane ---- *)

let test_data_plane_transparent_without_faults () =
  let sw = Switch.create ~id:0 ~capacity:16 in
  let dp = Data_plane.create sw in
  Alcotest.(check bool) "never down" false (Data_plane.down dp);
  let p = Prefix.nth_descendant Prefix.root ~length:8 3 in
  (match Data_plane.install dp ~owner:1 p with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install must succeed");
  Alcotest.(check int) "rule landed" 1 (Tcam.used_by (Switch.tcam sw) ~owner:1);
  match Data_plane.remove dp ~owner:1 p with
  | Ok true -> ()
  | Ok false | Error (`Down | `Unreachable) -> Alcotest.fail "remove must find the rule"

let test_data_plane_down_refuses () =
  let spec = { Fault_model.zero with Fault_model.crash_rate = 1.0; mean_downtime = 100.0 } in
  let fm = Fault_model.create spec ~num_switches:1 in
  let sw = Switch.create ~id:0 ~capacity:16 in
  let dp = Data_plane.create ~faults:fm sw in
  let p = Prefix.nth_descendant Prefix.root ~length:8 1 in
  (match Data_plane.install dp ~owner:1 p with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "install before crash must succeed");
  ignore (Fault_model.begin_epoch fm);
  Alcotest.(check bool) "down after crash" true (Data_plane.down dp);
  (match Data_plane.install dp ~owner:1 p with
  | Error `Down -> ()
  | Ok () | Error _ -> Alcotest.fail "install on a down switch must refuse");
  match Data_plane.remove dp ~owner:1 p with
  | Error (`Down | `Unreachable) -> ()
  | Ok _ -> Alcotest.fail "remove on a down switch must refuse"

(* ---- Controller under faults ---- *)

let mk_controller ?(config = Config.default) ?(capacity = 128) ?(num_switches = 4)
    ?(strategy = Allocator.Dream Dream_allocator.default_config) () =
  Controller.create ~config ~strategy ~num_switches ~capacity

let submit_task controller rng ~filter_index ~duration =
  let filter = Prefix.nth_descendant Prefix.root ~length:12 (filter_index * 53) in
  let num_switches = Controller.num_switches controller in
  let topology =
    Topology.create rng ~filter ~num_switches ~switches_per_task:(min 4 num_switches)
  in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in
  Controller.submit controller ~spec ~topology
    ~source:(Dream_traffic.Source.of_generator generator)
    ~duration

type run_result = {
  summary : Metrics.summary;
  records : Metrics.record list;
  modelled_delays : (float * float) list; (* (fetch_ms, save_ms), deterministic *)
}

let run_controller config =
  let controller = mk_controller ~config () in
  let rng = Rng.create 21 in
  for i = 0 to 7 do
    ignore (submit_task controller rng ~filter_index:i ~duration:25)
  done;
  Controller.run controller ~epochs:40;
  Controller.finalize controller;
  {
    summary = Controller.summary controller;
    records = Controller.records controller;
    modelled_delays =
      List.map
        (fun (s : Controller.delay_sample) -> (s.Controller.fetch_ms, s.Controller.save_ms))
        (Controller.delay_samples controller);
  }

let test_zero_spec_identical_to_no_faults () =
  (* Regression guard: the fault plumbing must not change fault-free
     behaviour.  A zero-rate spec exercises the fault-aware code path end
     to end and must still be byte-identical to running with no fault
     model at all. *)
  let plain = run_controller Config.default in
  let zeroed = run_controller { Config.default with Config.faults = Some Fault_model.zero } in
  Alcotest.(check bool) "same records" true (plain.records = zeroed.records);
  Alcotest.(check bool) "same summary" true (plain.summary = zeroed.summary);
  Alcotest.(check bool) "same modelled delays" true
    (plain.modelled_delays = zeroed.modelled_delays);
  Alcotest.(check bool) "robustness counters all zero" true
    (zeroed.summary.Metrics.robustness = Metrics.no_faults)

let faulty_config fault_seed =
  { Config.default with Config.faults = Some (aggressive fault_seed) }

let test_fault_path_deterministic () =
  let a = run_controller (faulty_config 5) in
  let b = run_controller (faulty_config 5) in
  Alcotest.(check bool) "same records" true (a.records = b.records);
  Alcotest.(check bool) "same summary" true (a.summary = b.summary);
  Alcotest.(check bool) "same modelled delays" true (a.modelled_delays = b.modelled_delays);
  let c = run_controller (faulty_config 6) in
  Alcotest.(check bool) "different fault seed diverges" true
    (a.records <> c.records || a.summary <> c.summary)

let test_faulty_run_survives_gracefully () =
  let config = faulty_config 42 in
  let controller = mk_controller ~config ~capacity:256 () in
  let rng = Rng.create 33 in
  for i = 0 to 5 do
    ignore (submit_task controller rng ~filter_index:i ~duration:60)
  done;
  for _ = 1 to 70 do
    Controller.tick controller;
    (* Capacity safety holds even while switches crash and recover. *)
    Array.iter
      (fun sw ->
        Alcotest.(check bool) "used <= capacity" true
          (Tcam.used (Switch.tcam sw) <= Tcam.capacity (Switch.tcam sw)))
      (Controller.switches controller);
    (* Active tasks keep reporting from the healthy switches. *)
    List.iter
      (fun id ->
        match Controller.smoothed_accuracy controller ~task_id:id with
        | Some a -> Alcotest.(check bool) "accuracy in range" true (a >= 0.0 && a <= 1.0)
        | None -> Alcotest.fail "active task lost its accuracy")
      (Controller.active_task_ids controller)
  done;
  Controller.finalize controller;
  let r = Controller.robustness controller in
  Alcotest.(check bool) (Printf.sprintf "crashes (%d)" r.Metrics.crashes) true (r.Metrics.crashes > 0);
  Alcotest.(check bool) "switch-down epochs" true (r.Metrics.switch_down_epochs > 0);
  Alcotest.(check bool) "fetch timeouts" true (r.Metrics.fetch_timeouts > 0);
  Alcotest.(check bool) "retries" true (r.Metrics.fetch_retries > 0);
  Alcotest.(check bool) "stale-counter epochs" true (r.Metrics.stale_epochs > 0);
  Alcotest.(check bool) "counters lost" true (r.Metrics.counters_lost > 0);
  Alcotest.(check bool) "install failures" true (r.Metrics.install_failures > 0);
  Alcotest.(check bool) "recovery reinstalls" true (r.Metrics.recovery_reinstalls > 0);
  (* The summary carries the same counters. *)
  let s = Controller.summary controller in
  Alcotest.(check bool) "summary exposes robustness" true
    (s.Metrics.robustness = r && r <> Metrics.no_faults)

let test_down_switches_quarantined () =
  (* Crash-heavy run: whenever a switch is down, no surviving task may
     have rules installed on it (its TCAM was wiped and the controller
     must not reinstall until recovery). *)
  let spec =
    { Fault_model.zero with Fault_model.seed = 13; crash_rate = 0.2; mean_downtime = 5.0 }
  in
  let config = { Config.default with Config.faults = Some spec } in
  let controller = mk_controller ~config ~capacity:128 () in
  let rng = Rng.create 51 in
  for i = 0 to 3 do
    ignore (submit_task controller rng ~filter_index:i ~duration:80)
  done;
  let saw_down = ref false in
  for _ = 1 to 80 do
    Controller.tick controller;
    match Controller.faults controller with
    | None -> Alcotest.fail "fault model must be live"
    | Some fm ->
      Array.iter
        (fun sw ->
          if Fault_model.is_down fm (Switch.id sw) then begin
            saw_down := true;
            Alcotest.(check int) "down switch holds no rules" 0 (Tcam.used (Switch.tcam sw))
          end)
        (Controller.switches controller)
  done;
  Alcotest.(check bool) "scenario exercised downtime" true !saw_down

(* ---- degraded paths ---- *)

let test_stale_decay_bounds () =
  (* The exact contract the controller's stale-counter path relies on:
     decay scales the smoothed accuracy by the factor, compounds
     multiplicatively, and never leaves [0, 1]. *)
  let module Ewma = Dream_util.Ewma in
  let e = Ewma.create ~history:0.4 in
  ignore (Ewma.update e 0.8);
  let factor = 0.9 in
  Ewma.scale e factor;
  Alcotest.(check (float 1e-9)) "one decay scales by the factor" (0.8 *. factor)
    (Ewma.value_or e 1.0);
  for _ = 1 to 9 do
    Ewma.scale e factor
  done;
  Alcotest.(check (float 1e-9)) "ten decays compound" (0.8 *. (factor ** 10.0))
    (Ewma.value_or e 1.0);
  Alcotest.(check bool) "never negative" true (Ewma.value_or e 1.0 >= 0.0);
  (* At the task level a decay before any estimate is a no-op: the smoothed
     accuracy stays at its optimistic default instead of collapsing. *)
  let rng = Rng.create 9 in
  let filter = Prefix.nth_descendant Prefix.root ~length:12 7 in
  let topology = Topology.create rng ~filter ~num_switches:2 ~switches_per_task:2 in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let task = Dream_tasks.Task.create ~id:1 ~spec ~topology ~accuracy_history:0.4 () in
  Dream_tasks.Task.decay_accuracy task ~switch:0 ~factor ();
  Alcotest.(check (float 1e-9)) "no-op before the first estimate" 1.0
    (Dream_tasks.Task.smoothed_global task);
  Alcotest.(check bool) "switch-level accuracy bounded" true
    (let a = Dream_tasks.Task.overall_accuracy task 0 in
     a >= 0.0 && a <= 1.0)

let test_stale_run_decay_lowers_accuracy () =
  (* Two identical stale-heavy runs differing only in the decay factor
     (decay draws no randomness, so the fault schedules coincide until the
     allocator first reacts to a decayed accuracy).  At that first point of
     divergence the decayed run must read lower — the degraded visibility
     reached the allocator. *)
  let spec decay =
    {
      Fault_model.zero with
      Fault_model.seed = 23;
      fetch_timeout_rate = 0.6;
      retry_budget_fraction = 0.05;
      stale_decay = decay;
    }
  in
  let trajectory decay =
    let config = { Config.default with Config.faults = Some (spec decay) } in
    let controller = mk_controller ~config () in
    let rng = Rng.create 21 in
    for i = 0 to 7 do
      ignore (submit_task controller rng ~filter_index:i ~duration:25)
    done;
    let samples = ref [] in
    for _ = 1 to 40 do
      Controller.tick controller;
      let accs =
        List.filter_map
          (fun id -> Controller.smoothed_accuracy controller ~task_id:id)
          (Controller.active_task_ids controller)
      in
      samples := Dream_util.Stats.mean accs :: !samples
    done;
    (List.rev !samples, Controller.robustness controller)
  in
  let undecayed, _ = trajectory 1.0 in
  let decayed, rob = trajectory 0.5 in
  Alcotest.(check bool) "stale epochs occurred" true (rob.Metrics.stale_epochs > 0);
  Alcotest.(check bool) "some fetches were abandoned" true (rob.Metrics.fetch_failures > 0);
  let rec first_divergence = function
    | a :: rest_a, b :: rest_b ->
      if Float.abs (a -. b) > 1e-12 then Some (a, b) else first_divergence (rest_a, rest_b)
    | _ -> None
  in
  match first_divergence (undecayed, decayed) with
  | None -> Alcotest.fail "decay never affected the smoothed accuracies"
  | Some (without_decay, with_decay) ->
    Alcotest.(check bool) "decay lowers the allocator's signal" true
      (with_decay < without_decay)

let test_quarantine_divide_merge_reinstall_roundtrip () =
  (* Crash-heavy run with the invariant checker on: quarantine must zero a
     down switch, divide-and-merge must reconfigure onto the healthy ones,
     and recovery must reinstall the full rule set — all without the
     installed state ever diverging from the configured counters. *)
  let spec =
    { Fault_model.zero with Fault_model.seed = 13; crash_rate = 0.15; mean_downtime = 4.0 }
  in
  let config =
    { Config.default with Config.faults = Some spec; check_invariants = true }
  in
  let controller = mk_controller ~config ~capacity:256 () in
  let rng = Rng.create 51 in
  for i = 0 to 5 do
    ignore (submit_task controller rng ~filter_index:i ~duration:60)
  done;
  Controller.run controller ~epochs:70;
  Controller.finalize controller;
  let r = Controller.robustness controller in
  Alcotest.(check bool) "switches crashed" true (r.Metrics.crashes > 0);
  Alcotest.(check bool) "switches recovered" true (r.Metrics.recoveries > 0);
  Alcotest.(check bool) "recovery reinstalled rules" true (r.Metrics.recovery_reinstalls > 0);
  Alcotest.(check int) "round trip never violated an invariant" 0
    r.Metrics.invariant_violations

let test_retry_budget_exhaustion_within_one_epoch () =
  (* Every fetch times out and the retry budget is a sliver of the epoch:
     the controller must abandon the fetch within the epoch (bounded
     retries, a recorded failure) instead of retrying forever. *)
  let spec =
    {
      Fault_model.zero with
      Fault_model.seed = 3;
      fetch_timeout_rate = 1.0;
      retry_budget_fraction = 0.005;
    }
  in
  let config = { Config.default with Config.faults = Some spec } in
  let controller = mk_controller ~config ~num_switches:1 () in
  let rng = Rng.create 5 in
  ignore (submit_task controller rng ~filter_index:0 ~duration:20);
  (* Epoch 0 installs the first rules; epoch 1 is the first fetch. *)
  Controller.tick controller;
  let before = Controller.robustness controller in
  Controller.tick controller;
  let after = Controller.robustness controller in
  Alcotest.(check bool) "fetch timed out" true
    (after.Metrics.fetch_timeouts > before.Metrics.fetch_timeouts);
  Alcotest.(check bool) "fetch abandoned within the epoch" true
    (after.Metrics.fetch_failures > before.Metrics.fetch_failures);
  (* Budget 0.005 * 1000 ms with exponential backoff from one RTT keeps
     the retry count tiny; generous bound so the delay model can evolve. *)
  Alcotest.(check bool) "retries bounded by the budget" true
    (after.Metrics.fetch_retries - before.Metrics.fetch_retries <= 16)

(* ---- input validation ---- *)

let test_controller_validates_inputs () =
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  let strategy = Allocator.Dream Dream_allocator.default_config in
  raises (fun () ->
      Controller.create ~config:Config.default ~strategy ~num_switches:0 ~capacity:128);
  raises (fun () ->
      Controller.create ~config:Config.default ~strategy ~num_switches:(-3) ~capacity:128);
  raises (fun () ->
      Controller.create ~config:Config.default ~strategy ~num_switches:4 ~capacity:0);
  raises (fun () -> Switch.network ~num_switches:0 ~capacity:64);
  raises (fun () -> Switch.network ~num_switches:4 ~capacity:(-1))

let () =
  Alcotest.run "dream.fault"
    [
      ( "fault-model",
        [
          Alcotest.test_case "deterministic schedules" `Quick test_model_deterministic;
          Alcotest.test_case "crash/recovery cycle" `Quick test_model_crash_recovery_cycle;
          Alcotest.test_case "zero spec injects nothing" `Quick test_model_zero_is_silent;
          Alcotest.test_case "spec validation" `Quick test_model_validation;
        ] );
      ( "data-plane",
        [
          Alcotest.test_case "transparent without faults" `Quick
            test_data_plane_transparent_without_faults;
          Alcotest.test_case "down switch refuses operations" `Quick test_data_plane_down_refuses;
        ] );
      ( "controller",
        [
          Alcotest.test_case "zero spec identical to no faults" `Quick
            test_zero_spec_identical_to_no_faults;
          Alcotest.test_case "fault path deterministic" `Quick test_fault_path_deterministic;
          Alcotest.test_case "faulty run survives gracefully" `Quick
            test_faulty_run_survives_gracefully;
          Alcotest.test_case "down switches quarantined" `Quick test_down_switches_quarantined;
          Alcotest.test_case "input validation" `Quick test_controller_validates_inputs;
        ] );
      ( "degraded-paths",
        [
          Alcotest.test_case "stale decay bounds" `Quick test_stale_decay_bounds;
          Alcotest.test_case "stale decay lowers the allocator's signal" `Quick
            test_stale_run_decay_lowers_accuracy;
          Alcotest.test_case "quarantine/divide-merge/reinstall round trip" `Quick
            test_quarantine_divide_merge_reinstall_roundtrip;
          Alcotest.test_case "retry budget exhausted within one epoch" `Quick
            test_retry_budget_exhaustion_within_one_epoch;
        ] );
    ]
