(* Tests for dream.core: metrics summaries and the controller end-to-end —
   admission, epochs, capacity safety, completion, drops, determinism, and
   the delay samples. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Generator = Dream_traffic.Generator
module Profile = Dream_traffic.Profile
module Switch = Dream_switch.Switch
module Tcam = Dream_switch.Tcam
module Task_spec = Dream_tasks.Task_spec
module Allocator = Dream_alloc.Allocator
module Dream_allocator = Dream_alloc.Dream_allocator
module Config = Dream_core.Config
module Metrics = Dream_core.Metrics
module Controller = Dream_core.Controller

(* ---- Metrics ---- *)

let record ?(kind = Task_spec.Heavy_hitter) ~id ~outcome ~satisfaction () =
  {
    Metrics.task_id = id;
    kind;
    outcome;
    arrived_at = 0;
    ended_at = 100;
    active_epochs = 100;
    satisfaction;
    mean_accuracy = satisfaction;
  }

let test_metrics_summary () =
  let records =
    [
      record ~id:0 ~outcome:Metrics.Completed ~satisfaction:1.0 ();
      record ~id:1 ~outcome:Metrics.Completed ~satisfaction:0.5 ();
      record ~id:2 ~outcome:Metrics.Dropped ~satisfaction:0.0 ();
      record ~id:3 ~outcome:Metrics.Rejected ~satisfaction:0.0 ();
    ]
  in
  let s = Metrics.summarize records in
  Alcotest.(check int) "submitted" 4 s.Metrics.submitted;
  Alcotest.(check int) "admitted" 3 s.Metrics.admitted;
  Alcotest.(check int) "rejected" 1 s.Metrics.rejected;
  Alcotest.(check int) "dropped" 1 s.Metrics.dropped;
  Alcotest.(check (float 1e-9)) "mean over admitted" 50.0 s.Metrics.mean_satisfaction;
  Alcotest.(check (float 1e-9)) "rejection pct" 25.0 s.Metrics.rejection_pct;
  Alcotest.(check (float 1e-9)) "drop pct" 25.0 s.Metrics.drop_pct

let test_metrics_empty () =
  let s = Metrics.summarize [] in
  Alcotest.(check int) "submitted" 0 s.Metrics.submitted;
  Alcotest.(check (float 1e-9)) "mean" 0.0 s.Metrics.mean_satisfaction

(* ---- Controller harness ---- *)

let mk_controller ?(config = Config.default) ?(capacity = 512) ?(num_switches = 4)
    ?(strategy = Allocator.Dream Dream_allocator.default_config) () =
  Controller.create ~config ~strategy ~num_switches ~capacity

let submit_task controller rng ~filter_index ~duration =
  let filter = Prefix.nth_descendant Prefix.root ~length:12 (filter_index * 53) in
  let num_switches = Controller.num_switches controller in
  let topology =
    Topology.create rng ~filter ~num_switches ~switches_per_task:(min 4 num_switches)
  in
  let spec =
    Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
  in
  let generator =
    Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
  in
  Controller.submit controller ~spec ~topology
    ~source:(Dream_traffic.Source.of_generator generator)
    ~duration

let test_controller_admits_and_completes () =
  let controller = mk_controller () in
  let rng = Rng.create 3 in
  (match submit_task controller rng ~filter_index:1 ~duration:30 with
  | `Admitted id -> Alcotest.(check int) "first id" 0 id
  | `Rejected -> Alcotest.fail "must admit into an empty network");
  Alcotest.(check int) "one active" 1 (Controller.active_tasks controller);
  Controller.run controller ~epochs:31;
  Alcotest.(check int) "task completed" 0 (Controller.active_tasks controller);
  match Controller.records controller with
  | [ r ] ->
    Alcotest.(check bool) "completed" true (r.Metrics.outcome = Metrics.Completed);
    Alcotest.(check int) "lived its duration" 30 r.Metrics.active_epochs;
    Alcotest.(check bool) "was satisfied most of the time" true (r.Metrics.satisfaction > 0.5)
  | _ -> Alcotest.fail "expected exactly one record"

let test_controller_capacity_never_violated () =
  let controller = mk_controller ~capacity:64 () in
  let rng = Rng.create 7 in
  for i = 0 to 9 do
    ignore (submit_task controller rng ~filter_index:i ~duration:40)
  done;
  for _ = 1 to 50 do
    Controller.tick controller;
    Array.iter
      (fun sw ->
        Alcotest.(check bool) "used <= capacity" true
          (Tcam.used (Switch.tcam sw) <= Tcam.capacity (Switch.tcam sw)))
      (Controller.switches controller)
  done

let test_controller_rejects_under_overload () =
  let controller = mk_controller ~capacity:32 () in
  let rng = Rng.create 11 in
  let rejected = ref 0 in
  for i = 0 to 19 do
    (match submit_task controller rng ~filter_index:i ~duration:60 with
    | `Rejected -> incr rejected
    | `Admitted _ -> ());
    Controller.tick controller;
    Controller.tick controller
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some rejections on tiny switches (%d)" !rejected)
    true (!rejected > 0)

let test_controller_reports_available () =
  let controller = mk_controller () in
  let rng = Rng.create 5 in
  (match submit_task controller rng ~filter_index:2 ~duration:30 with
  | `Admitted _ -> ()
  | `Rejected -> Alcotest.fail "must admit");
  Controller.run controller ~epochs:10;
  (match Controller.last_report controller ~task_id:0 with
  | Some report -> Alcotest.(check bool) "found heavy hitters" true (Dream_tasks.Report.size report > 0)
  | None -> Alcotest.fail "expected a report");
  match Controller.smoothed_accuracy controller ~task_id:0 with
  | Some a -> Alcotest.(check bool) "accuracy in range" true (a >= 0.0 && a <= 1.0)
  | None -> Alcotest.fail "expected accuracy"

let run_summary seed =
  let controller = mk_controller ~capacity:128 () in
  let rng = Rng.create seed in
  for i = 0 to 7 do
    ignore (submit_task controller rng ~filter_index:i ~duration:25)
  done;
  Controller.run controller ~epochs:40;
  Controller.finalize controller;
  Controller.summary controller

let test_controller_deterministic () =
  let a = run_summary 21 and b = run_summary 21 in
  Alcotest.(check (float 1e-9)) "same mean satisfaction" a.Metrics.mean_satisfaction
    b.Metrics.mean_satisfaction;
  Alcotest.(check int) "same rejections" a.Metrics.rejected b.Metrics.rejected

let test_controller_finalize_records_partial () =
  let controller = mk_controller () in
  let rng = Rng.create 9 in
  ignore (submit_task controller rng ~filter_index:1 ~duration:1000);
  Controller.run controller ~epochs:10;
  Controller.finalize controller;
  match Controller.records controller with
  | [ r ] ->
    Alcotest.(check int) "partial life recorded" 10 r.Metrics.active_epochs;
    Alcotest.(check bool) "completed outcome" true (r.Metrics.outcome = Metrics.Completed)
  | _ -> Alcotest.fail "expected one record"

let test_controller_delay_samples () =
  let controller = mk_controller () in
  let rng = Rng.create 13 in
  ignore (submit_task controller rng ~filter_index:1 ~duration:20);
  Controller.run controller ~epochs:20;
  let samples = Controller.delay_samples controller in
  Alcotest.(check int) "one sample per epoch" 20 (List.length samples);
  List.iter
    (fun (s : Controller.delay_sample) ->
      Alcotest.(check bool) "fetch cost non-negative" true (s.Controller.fetch_ms >= 0.0);
      Alcotest.(check bool) "save cost non-negative" true (s.Controller.save_ms >= 0.0))
    samples;
  Alcotest.(check bool) "rules were installed" true (Controller.total_rules_installed controller > 0);
  Alcotest.(check bool) "counters were fetched" true
    (Controller.total_rules_fetched controller > Controller.total_rules_installed controller)

let test_controller_prototype_config_degrades () =
  (* The control-delay model must not crash and should produce plausible
     (lower or equal) satisfaction vs the ideal simulator. *)
  let run config =
    let controller = mk_controller ~config ~capacity:256 () in
    let rng = Rng.create 17 in
    for i = 0 to 3 do
      ignore (submit_task controller rng ~filter_index:i ~duration:30)
    done;
    Controller.run controller ~epochs:40;
    Controller.finalize controller;
    (Controller.summary controller).Metrics.mean_satisfaction
  in
  let ideal = run Config.default in
  let prototype = run Config.prototype in
  Alcotest.(check bool)
    (Printf.sprintf "prototype (%f) close to ideal (%f)" prototype ideal)
    true
    (prototype <= ideal +. 15.0)

let test_controller_drops_release_rules () =
  (* Overload a tiny network so drops occur, and check dropped tasks leave
     no rules behind. *)
  let config = { Config.default with Config.drop_threshold = 2 } in
  let controller = mk_controller ~config ~capacity:24 () in
  let rng = Rng.create 19 in
  for i = 0 to 11 do
    ignore (submit_task controller rng ~filter_index:i ~duration:200)
  done;
  Controller.run controller ~epochs:80;
  let dropped =
    List.filter (fun r -> r.Metrics.outcome = Metrics.Dropped) (Controller.records controller)
  in
  List.iter
    (fun r ->
      Array.iter
        (fun sw ->
          Alcotest.(check int) "no rules left" 0
            (Tcam.used_by (Switch.tcam sw) ~owner:r.Metrics.task_id))
        (Controller.switches controller))
    dropped;
  (* Active tasks' installed rules always match their monitors. *)
  Alcotest.(check bool) "controller still sane" true (Controller.active_tasks controller >= 0)

let test_controller_install_budget_respected () =
  let config = Config.hardware ~installs_per_epoch:16 in
  (* Strip the delay model so only the budget differs from default. *)
  let config = { config with Config.control_delay = None } in
  let controller = mk_controller ~config ~capacity:256 () in
  let rng = Rng.create 23 in
  for i = 0 to 3 do
    ignore (submit_task controller rng ~filter_index:i ~duration:40)
  done;
  let previous = ref 0 in
  for _ = 1 to 30 do
    Controller.tick controller;
    let installed = Controller.total_rules_installed controller in
    let delta = installed - !previous in
    previous := installed;
    (* 4 switches x 16 budget = at most 64 installs per epoch. *)
    Alcotest.(check bool)
      (Printf.sprintf "installs per epoch (%d) within budget" delta)
      true (delta <= 64)
  done

let test_controller_install_budget_degrades () =
  let run config =
    let controller = mk_controller ~config ~capacity:256 () in
    let rng = Rng.create 29 in
    for i = 0 to 3 do
      ignore (submit_task controller rng ~filter_index:i ~duration:40)
    done;
    Controller.run controller ~epochs:50;
    Controller.finalize controller;
    (Controller.summary controller).Metrics.mean_satisfaction
  in
  let unlimited = run Config.default in
  let throttled =
    run { Config.default with Config.install_budget = Some 4 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "throttled (%f) <= unlimited (%f)" throttled unlimited)
    true
    (throttled <= unlimited +. 1e-9)

let test_controller_with_baselines () =
  List.iter
    (fun strategy ->
      let controller = mk_controller ~strategy ~capacity:256 () in
      let rng = Rng.create 31 in
      for i = 0 to 5 do
        ignore (submit_task controller rng ~filter_index:i ~duration:25)
      done;
      Controller.run controller ~epochs:35;
      (* Capacity holds for the baselines too. *)
      Array.iter
        (fun sw ->
          Alcotest.(check bool) "capacity" true
            (Tcam.used (Switch.tcam sw) <= Tcam.capacity (Switch.tcam sw)))
        (Controller.switches controller);
      Controller.finalize controller;
      let s = Controller.summary controller in
      Alcotest.(check int) "all accounted" 6 s.Metrics.submitted;
      Alcotest.(check bool) "sane satisfaction" true
        (s.Metrics.mean_satisfaction >= 0.0 && s.Metrics.mean_satisfaction <= 100.0))
    [ Allocator.Equal; Allocator.Fixed 16; Allocator.Fixed 4 ]

let test_controller_replay_source () =
  (* A recorded trace replays through the controller deterministically. *)
  let run () =
    let controller = mk_controller () in
    let rng = Rng.create 41 in
    let filter = Prefix.nth_descendant Prefix.root ~length:12 99 in
    let topology =
      Topology.create rng ~filter ~num_switches:(Controller.num_switches controller)
        ~switches_per_task:4
    in
    let generator =
      Generator.create (Rng.split rng) ~topology ~profile:(Profile.default ~threshold:8.0)
    in
    let trace = Array.of_list (Dream_traffic.Trace_io.record generator ~epochs:25) in
    let spec =
      Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:24 ~threshold:8.0 ()
    in
    (match
       Controller.submit controller ~spec ~topology
         ~source:(Dream_traffic.Source.replay ~cycle:false trace)
         ~duration:25
     with
    | `Admitted _ -> ()
    | `Rejected -> Alcotest.fail "must admit");
    Controller.run controller ~epochs:25;
    Controller.finalize controller;
    (Controller.summary controller).Metrics.mean_satisfaction
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-9)) "replay deterministic" a b;
  Alcotest.(check bool) "replay satisfies" true (a > 30.0)

let () =
  Alcotest.run "dream.core"
    [
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "empty" `Quick test_metrics_empty;
        ] );
      ( "controller",
        [
          Alcotest.test_case "admits and completes" `Quick test_controller_admits_and_completes;
          Alcotest.test_case "capacity never violated" `Quick test_controller_capacity_never_violated;
          Alcotest.test_case "rejects under overload" `Quick test_controller_rejects_under_overload;
          Alcotest.test_case "reports available" `Quick test_controller_reports_available;
          Alcotest.test_case "deterministic" `Quick test_controller_deterministic;
          Alcotest.test_case "finalize records partial" `Quick
            test_controller_finalize_records_partial;
          Alcotest.test_case "delay samples" `Quick test_controller_delay_samples;
          Alcotest.test_case "prototype config degrades gracefully" `Quick
            test_controller_prototype_config_degrades;
          Alcotest.test_case "drops release rules" `Quick test_controller_drops_release_rules;
          Alcotest.test_case "install budget respected" `Quick
            test_controller_install_budget_respected;
          Alcotest.test_case "install budget degrades satisfaction" `Quick
            test_controller_install_budget_degrades;
          Alcotest.test_case "baselines end-to-end" `Quick test_controller_with_baselines;
          Alcotest.test_case "replay source" `Quick test_controller_replay_source;
        ] );
    ]
