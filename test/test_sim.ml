(* Integration tests for dream.sim: the experiment runner end-to-end on a
   small scenario, the step-policy simulation behind Figure 4, and the
   figure registry. *)

module Task_spec = Dream_tasks.Task_spec
module Scenario = Dream_workload.Scenario
module Metrics = Dream_core.Metrics
module Allocator = Dream_alloc.Allocator
module Step_policy = Dream_alloc.Step_policy
module Experiment = Dream_sim.Experiment
module Fig04 = Dream_sim.Fig04
module Fig02 = Dream_sim.Fig02
module Figures = Dream_sim.Figures

(* Small but non-trivial: ~8 concurrent tasks on 4 switches. *)
let small =
  {
    Scenario.default with
    Scenario.num_switches = 4;
    switches_per_task = 4;
    num_tasks = 12;
    arrival_window = 60;
    mean_duration = 40;
    min_duration = 20;
    total_epochs = 120;
    capacity = 512;
  }

let test_experiment_runs () =
  let r = Experiment.run small Experiment.dream_strategy in
  Alcotest.(check string) "strategy name" "DREAM" r.Experiment.strategy;
  Alcotest.(check int) "all submissions accounted" 12 r.Experiment.summary.Metrics.submitted;
  Alcotest.(check int) "delay sample per epoch" 120 (List.length r.Experiment.delay_samples);
  Alcotest.(check bool) "some satisfaction" true
    (r.Experiment.summary.Metrics.mean_satisfaction > 30.0)

let test_experiment_deterministic () =
  let a = Experiment.run small Experiment.dream_strategy in
  let b = Experiment.run small Experiment.dream_strategy in
  Alcotest.(check (float 1e-9)) "same satisfaction"
    a.Experiment.summary.Metrics.mean_satisfaction b.Experiment.summary.Metrics.mean_satisfaction;
  Alcotest.(check int) "same rules installed" a.Experiment.rules_installed
    b.Experiment.rules_installed

let test_experiment_baselines_run () =
  List.iter
    (fun strategy ->
      let r = Experiment.run small strategy in
      Alcotest.(check bool) "summary sane" true
        (r.Experiment.summary.Metrics.mean_satisfaction >= 0.0
        && r.Experiment.summary.Metrics.mean_satisfaction <= 100.0))
    [ Allocator.Equal; Allocator.Fixed 32 ]

let test_dream_beats_equal_under_overload () =
  (* The paper's headline: under overload, DREAM's admitted tasks stay
     satisfied while Equal starves everyone. *)
  let overloaded = { small with Scenario.capacity = 128; num_tasks = 16 } in
  let dream = Experiment.run overloaded Experiment.dream_strategy in
  let equal = Experiment.run overloaded Allocator.Equal in
  Alcotest.(check bool)
    (Printf.sprintf "DREAM %.1f > Equal %.1f"
       dream.Experiment.summary.Metrics.mean_satisfaction
       equal.Experiment.summary.Metrics.mean_satisfaction)
    true
    (dream.Experiment.summary.Metrics.mean_satisfaction
    > equal.Experiment.summary.Metrics.mean_satisfaction);
  Alcotest.(check bool) "DREAM rejected some tasks" true
    (dream.Experiment.summary.Metrics.rejected > 0);
  Alcotest.(check int) "Equal rejected none" 0 equal.Experiment.summary.Metrics.rejected

let test_incremental_updates_dominate () =
  (* Section 6.5: most counters do not change between epochs, so fetches
     far outnumber installs. *)
  let r = Experiment.run small Experiment.dream_strategy in
  Alcotest.(check bool) "fetched >> installed" true
    (r.Experiment.rules_fetched > 3 * r.Experiment.rules_installed)

(* ---- Figure 4 policy simulation ---- *)

let test_fig4_mm_converges_best () =
  let errors =
    List.map
      (fun policy -> (policy, Fig04.mean_absolute_error (Fig04.simulate policy ~epochs:500)))
      Step_policy.all
  in
  let mm = List.assoc Step_policy.MM errors in
  let am = List.assoc Step_policy.AM errors in
  let aa = List.assoc Step_policy.AA errors in
  Alcotest.(check bool)
    (Printf.sprintf "MM (%.0f) better than AM (%.0f)" mm am)
    true (mm < am);
  Alcotest.(check bool)
    (Printf.sprintf "MM (%.0f) better than AA (%.0f)" mm aa)
    true (mm < aa)

let test_fig4_tracks_goal () =
  let trace = Fig04.simulate Step_policy.MM ~epochs:500 in
  (* At the end of each plateau the MM allocation is near the goal. *)
  List.iter
    (fun epoch ->
      let goal = float_of_int (Fig04.goal epoch) in
      let actual = float_of_int trace.Fig04.allocations.(epoch) in
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d: %.0f near %.0f" epoch actual goal)
        true
        (Float.abs (actual -. goal) /. goal < 0.35))
    [ 95; 195; 295; 395; 495 ]

(* ---- Figure 2 recall harness ---- *)

let test_fig2_more_resources_higher_recall () =
  let mean_recall resources =
    let series = Fig02.recall_series ~seed:31 ~resources ~epochs:60 ~bin:60 in
    match series with
    | [ p ] -> p.Fig02.recall
    | _ -> Alcotest.fail "expected one bin"
  in
  let low = mean_recall 64 and high = mean_recall 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "recall grows with resources (%.2f -> %.2f)" low high)
    true (high > low);
  Alcotest.(check bool) "high budget gets good recall" true (high > 0.75)

(* ---- Figure registry ---- *)

let test_registry_complete () =
  let ids = List.map fst Figures.all in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "fig2"; "fig4"; "fig6"; "fig8"; "fig10"; "fig12"; "fig14"; "fig15"; "fig16"; "fig17" ];
  Alcotest.(check bool) "unknown id is an error" true (Result.is_error (Figures.run ~quick:true "nope"))

let () =
  Alcotest.run "dream.sim"
    [
      ( "experiment",
        [
          Alcotest.test_case "runs end to end" `Slow test_experiment_runs;
          Alcotest.test_case "deterministic" `Slow test_experiment_deterministic;
          Alcotest.test_case "baselines run" `Slow test_experiment_baselines_run;
          Alcotest.test_case "DREAM beats Equal under overload" `Slow
            test_dream_beats_equal_under_overload;
          Alcotest.test_case "incremental updates dominate" `Slow test_incremental_updates_dominate;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "MM converges best" `Quick test_fig4_mm_converges_best;
          Alcotest.test_case "MM tracks the goal" `Quick test_fig4_tracks_goal;
        ] );
      ( "fig2",
        [ Alcotest.test_case "resources raise recall" `Slow test_fig2_more_resources_higher_recall ] );
      ("figures", [ Alcotest.test_case "registry" `Quick test_registry_complete ]);
    ]
