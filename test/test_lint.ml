(* Tests for dream.lint: each rule fires on its positive snippet with the
   right rule id and line, stays silent on the negative snippet and out of
   its directory scope; [@lint.allow] suppresses exactly one finding and
   unused allows are themselves findings; reports round-trip through
   Dream_obs.Json. *)

module Engine = Dream_lint.Engine
module Finding = Dream_lint.Finding
module Report = Dream_lint.Report
module Rules = Dream_lint.Rules
module Json = Dream_obs.Json

let lint ?rules ~path src = Engine.lint_string ?rules ~path src

let rule_ids findings = List.map (fun f -> f.Finding.rule) findings

let only id =
  match Rules.find id with
  | Some r -> [ r ]
  | None -> Alcotest.failf "no such rule %s" id

let check_fires ~rule ~line ~path src =
  match lint ~path src with
  | [ f ] ->
    Alcotest.(check string) "rule id" rule f.Finding.rule;
    Alcotest.(check int) "line" line f.Finding.line;
    Alcotest.(check string) "file" path f.Finding.file
  | fs ->
    Alcotest.failf "expected exactly one %s finding, got %d: %s" rule (List.length fs)
      (String.concat "; " (rule_ids fs))

let check_silent ?rules ~path src =
  match lint ?rules ~path src with
  | [] -> ()
  | fs -> Alcotest.failf "expected no findings, got: %s" (String.concat "; " (rule_ids fs))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- determinism-random ---- *)

let test_random_fires () =
  check_fires ~rule:"determinism-random" ~line:2 ~path:"lib/fake.ml"
    "let a = 1\nlet b = Random.int 5\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"bench/fake.ml"
    "let b = Stdlib.Random.float 1.0\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml"
    "let s = Random.State.make [| 1 |]\n"

let test_random_module_paths () =
  (* Aliasing or opening the module is the same violation. *)
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml" "module R = Random\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml"
    "open Random\nlet x = 1\n"

let test_random_silent () =
  check_silent ~path:"lib/fake.ml" "let b = Dream_util.Rng.int rng 5\n";
  (* Unrelated module with a Random submodule is not Stdlib.Random. *)
  check_silent ~path:"lib/fake.ml" "let b = My.Random.int 5\n" |> ignore

(* ---- determinism-clock ---- *)

let test_clock_fires () =
  check_fires ~rule:"determinism-clock" ~line:1 ~path:"lib/fake.ml" "let t = Sys.time ()\n";
  check_fires ~rule:"determinism-clock" ~line:2 ~path:"test/fake.ml"
    "let a = 0\nlet t = Unix.gettimeofday ()\n";
  check_fires ~rule:"determinism-clock" ~line:1 ~path:"lib/fake.ml" "let t = Unix.time ()\n"

let test_clock_silent () =
  check_silent ~path:"lib/fake.ml" "let t = Clock.now_ms clock\n";
  check_silent ~path:"lib/fake.ml" "let t = Sys.file_exists \"x\"\n"

(* ---- determinism-gc ---- *)

let test_gc_fires () =
  check_fires ~rule:"determinism-gc" ~line:1 ~path:"lib/fake.ml"
    "let s = Gc.quick_stat ()\n";
  check_fires ~rule:"determinism-gc" ~line:2 ~path:"bench/fake.ml"
    "let a = 0\nlet () = Gc.compact ()\n";
  check_fires ~rule:"determinism-gc" ~line:1 ~path:"lib/fake.ml" "module G = Gc\n"

let test_gc_silent () =
  check_silent ~path:"lib/fake.ml" "let r = Gc_stats.read src\n";
  check_silent ~path:"lib/fake.ml" "let r = Dream_obs.Gc_stats.read src\n";
  (* An unrelated module with a Gc submodule is not Stdlib.Gc. *)
  check_silent ~path:"lib/fake.ml" "let s = My.Gc.stat ()\n"

(* ---- float-equality ---- *)

let test_float_equality_fires () =
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml" "let b = x = 1.0\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml" "let b = x <> y *. 2.0\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml"
    "let c = compare x (float_of_int n)\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml"
    "let b = (x : float) = y\n"

let test_float_equality_silent () =
  check_silent ~path:"lib/fake.ml" "let b = x = 1\n";
  (* Orderings are fine; epsilon comparisons are the point. *)
  check_silent ~path:"lib/fake.ml" "let b = x <= 1.0\n";
  check_silent ~path:"lib/fake.ml" "let b = Float.abs (x -. y) < 1e-9\n";
  (* Deliberate exact comparisons in test/ (determinism checks) are policy. *)
  check_silent ~path:"test/fake.ml" "let b = x = 1.0\n"

(* ---- exception-hygiene ---- *)

let test_exception_fires () =
  check_fires ~rule:"exception-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let f () = try g () with _ -> 0\n";
  check_fires ~rule:"exception-hygiene" ~line:2 ~path:"lib/fake.ml"
    "let f () =\n  match g () with x -> x | exception _ -> 0\n"

let test_exception_silent () =
  check_silent ~path:"lib/fake.ml" "let f () = try g () with Not_found -> 0\n";
  check_silent ~path:"lib/fake.ml"
    "let f () = try g () with exn -> log exn; raise exn\n";
  (* Out of scope: the rule is a lib/ policy. *)
  check_silent ~path:"bin/fake.ml" "let f () = try g () with _ -> 0\n"

(* ---- partiality ---- *)

let test_partiality_fires () =
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = List.hd xs\n";
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = List.nth xs 3\n";
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = Option.get o\n";
  (* Bare references count too (partial application, eta). *)
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let f = List.tl\n"

let test_partiality_silent () =
  check_silent ~path:"lib/fake.ml"
    "let x = match xs with [] -> None | x :: _ -> Some x\n";
  check_silent ~path:"bin/fake.ml" "let x = List.hd xs\n"

(* ---- stdout-hygiene ---- *)

let test_stdout_fires () =
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = print_endline \"hi\"\n";
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = Printf.printf \"%d\" 3\n";
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = Format.printf \"%d\" 3\n"

let test_stdout_silent () =
  check_silent ~path:"lib/fake.ml" "let () = Format.fprintf ppf \"%d\" 3\n";
  check_silent ~path:"lib/fake.ml" "let s = Printf.sprintf \"%d\" 3\n";
  check_silent ~path:"bin/fake.ml" "let () = print_endline \"hi\"\n"

(* ---- mli-coverage ---- *)

let with_temp_lib f =
  let dir = Filename.temp_dir "dream_lint" "" in
  let libdir = Filename.concat dir "lib" in
  Sys.mkdir libdir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat libdir e)) (Sys.readdir libdir);
      Sys.rmdir libdir;
      Sys.rmdir dir)
    (fun () -> f libdir)

let write path contents = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let test_mli_coverage () =
  with_temp_lib (fun libdir ->
      let ml = Filename.concat libdir "a.ml" in
      write ml "let x = 1\n";
      (match Engine.lint_file ~rules:(only "mli-coverage") ml with
      | [ f ] ->
        Alcotest.(check string) "rule id" "mli-coverage" f.Finding.rule;
        Alcotest.(check int) "line" 1 f.Finding.line
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
      write (ml ^ "i") "val x : int\n";
      Alcotest.(check int) "silent with sibling mli" 0
        (List.length (Engine.lint_file ~rules:(only "mli-coverage") ml)))

(* ---- suppression ---- *)

let test_suppression_silences_exactly_one () =
  let src =
    "let a = Random.int 1\nlet b = (Random.int 2 [@lint.allow \"determinism-random\"])\n"
  in
  match lint ~path:"lib/fake.ml" src with
  | [ f ] ->
    Alcotest.(check string) "surviving rule" "determinism-random" f.Finding.rule;
    Alcotest.(check int) "unsuppressed line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_suppression_on_binding () =
  check_silent ~path:"lib/fake.ml"
    "let a = Random.int 1 [@@lint.allow \"determinism-random\"]\n"

let test_file_level_allow () =
  (* A floating allow silences the whole file and owes no finding. *)
  check_silent ~path:"lib/fake.ml"
    "[@@@lint.allow \"determinism-random\"]\nlet a = Random.int 1\nlet b = Random.int 2\n"

let test_suppression_is_per_rule () =
  (* An allow for one rule does not silence another at the same site; the
     clock finding survives and the mismatched allow is itself unused. *)
  match
    lint ~path:"lib/fake.ml" "let t = Sys.time () [@@lint.allow \"partiality\"]\n"
  with
  | fs ->
    Alcotest.(check (list string))
      "clock finding plus unused allow"
      [ "determinism-clock"; "unused-suppression" ]
      (List.sort String.compare (rule_ids fs))

let test_unused_suppression () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow \"determinism-random\"])\n" with
  | [ f ] -> Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_unknown_rule_in_allow () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow \"no-such-rule\"])\n" with
  | [ f ] ->
    Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule;
    Alcotest.(check bool) "names the bad rule" true
      (contains ~sub:"no-such-rule" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_malformed_allow_payload () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow 42])\n" with
  | [ f ] -> Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_unused_check_respects_rule_subset () =
  (* With only determinism-random active, an allow for a rule that did not
     run must not be reported as unused. *)
  check_silent ~path:"lib/fake.ml"
    ~rules:(only "determinism-random")
    "let t = Sys.time () [@@lint.allow \"determinism-clock\"]\n"

(* ---- parse errors ---- *)

let test_parse_error () =
  match lint ~path:"lib/fake.ml" "let = = =\n" with
  | [ f ] ->
    Alcotest.(check string) "rule id" Engine.parse_error_rule f.Finding.rule;
    Alcotest.(check string) "severity" "error" (Finding.severity_to_string f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ---- registry ---- *)

let test_registry () =
  Alcotest.(check int) "eight rules" 8 (List.length Rules.all);
  Alcotest.(check int) "unique ids" (List.length Rules.ids)
    (List.length (List.sort_uniq String.compare Rules.ids));
  List.iter
    (fun id ->
      match Rules.find id with
      | Some r -> Alcotest.(check string) "find returns the rule" id r.Rules.id
      | None -> Alcotest.failf "registry lookup failed for %s" id)
    Rules.ids

(* ---- JSON report round trip ---- *)

let test_report_round_trip () =
  let findings =
    lint ~path:"lib/fake.ml" "let a = Random.int 1\nlet t = Sys.time ()\nlet x = List.hd l\n"
  in
  Alcotest.(check int) "three findings" 3 (List.length findings);
  match Report.of_json_string (Json.to_string (Report.to_json findings)) with
  | Ok findings' ->
    Alcotest.(check bool) "identical after round trip" true (findings = findings')
  | Error e -> Alcotest.failf "report reparse failed: %s" e

let finding_gen =
  QCheck.Gen.(
    let str = string_size ~gen:printable (int_range 0 20) in
    map
      (fun (rule, file, line, col, err, message) ->
        Finding.v ~rule ~file ~line ~col
          ~severity:(if err then Finding.Error else Finding.Warning)
          message)
      (tup6 str str (int_range 1 10000) (int_range 0 500) bool str))

let arbitrary_finding = QCheck.make ~print:(Format.asprintf "%a" Finding.pp) finding_gen

let prop_finding_json_round_trip =
  QCheck.Test.make ~name:"finding JSON round-trips through Obs.Json" ~count:200
    arbitrary_finding (fun f ->
      match Finding.of_json (Finding.to_json f) with
      | Ok f' -> f = f'
      | Error _ -> false)

let prop_report_json_round_trip =
  QCheck.Test.make ~name:"report JSON round-trips through Obs.Json" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 8) arbitrary_finding)
    (fun fs ->
      match Report.of_json_string (Json.to_string (Report.to_json fs)) with
      | Ok fs' -> fs = fs'
      | Error _ -> false)

let () =
  Alcotest.run "dream.lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "Random fires" `Quick test_random_fires;
          Alcotest.test_case "Random via alias/open fires" `Quick test_random_module_paths;
          Alcotest.test_case "Rng stays silent" `Quick test_random_silent;
          Alcotest.test_case "clock reads fire" `Quick test_clock_fires;
          Alcotest.test_case "Clock stays silent" `Quick test_clock_silent;
          Alcotest.test_case "Gc reads fire" `Quick test_gc_fires;
          Alcotest.test_case "Gc_stats stays silent" `Quick test_gc_silent;
        ] );
      ( "float-equality",
        [
          Alcotest.test_case "fires on float operands" `Quick test_float_equality_fires;
          Alcotest.test_case "silent on ints/orderings/tests" `Quick
            test_float_equality_silent;
        ] );
      ( "exception-hygiene",
        [
          Alcotest.test_case "catch-all fires" `Quick test_exception_fires;
          Alcotest.test_case "specific handlers silent" `Quick test_exception_silent;
        ] );
      ( "partiality",
        [
          Alcotest.test_case "partial accessors fire" `Quick test_partiality_fires;
          Alcotest.test_case "total code silent" `Quick test_partiality_silent;
        ] );
      ( "stdout-hygiene",
        [
          Alcotest.test_case "implicit stdout fires" `Quick test_stdout_fires;
          Alcotest.test_case "explicit formatter silent" `Quick test_stdout_silent;
        ] );
      ( "mli-coverage",
        [ Alcotest.test_case "missing mli fires, sibling silences" `Quick test_mli_coverage ] );
      ( "suppression",
        [
          Alcotest.test_case "allow silences exactly one" `Quick
            test_suppression_silences_exactly_one;
          Alcotest.test_case "allow on a binding" `Quick test_suppression_on_binding;
          Alcotest.test_case "file-level allow" `Quick test_file_level_allow;
          Alcotest.test_case "allow is per rule" `Quick test_suppression_is_per_rule;
          Alcotest.test_case "unused allow is a finding" `Quick test_unused_suppression;
          Alcotest.test_case "unknown rule in allow" `Quick test_unknown_rule_in_allow;
          Alcotest.test_case "malformed payload" `Quick test_malformed_allow_payload;
          Alcotest.test_case "unused check respects --rules" `Quick
            test_unused_check_respects_rule_subset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON round trip" `Quick test_report_round_trip;
          QCheck_alcotest.to_alcotest prop_finding_json_round_trip;
          QCheck_alcotest.to_alcotest prop_report_json_round_trip;
        ] );
    ]
