(* Tests for dream.lint: each rule fires on its positive snippet with the
   right rule id and line, stays silent on the negative snippet and out of
   its directory scope; [@lint.allow] suppresses exactly one finding and
   unused allows are themselves findings; reports round-trip through
   Dream_obs.Json. *)

module Baseline = Dream_lint.Baseline
module Engine = Dream_lint.Engine
module Finding = Dream_lint.Finding
module Report = Dream_lint.Report
module Rules = Dream_lint.Rules
module Json = Dream_obs.Json

let lint ?rules ~path src = Engine.lint_string ?rules ~path src

let rule_ids findings = List.map (fun f -> f.Finding.rule) findings

let only id =
  match Rules.find id with
  | Some r -> [ r ]
  | None -> Alcotest.failf "no such rule %s" id

let check_fires ~rule ~line ~path src =
  match lint ~path src with
  | [ f ] ->
    Alcotest.(check string) "rule id" rule f.Finding.rule;
    Alcotest.(check int) "line" line f.Finding.line;
    Alcotest.(check string) "file" path f.Finding.file
  | fs ->
    Alcotest.failf "expected exactly one %s finding, got %d: %s" rule (List.length fs)
      (String.concat "; " (rule_ids fs))

let check_silent ?rules ~path src =
  match lint ?rules ~path src with
  | [] -> ()
  | fs -> Alcotest.failf "expected no findings, got: %s" (String.concat "; " (rule_ids fs))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- determinism-random ---- *)

let test_random_fires () =
  check_fires ~rule:"determinism-random" ~line:2 ~path:"lib/fake.ml"
    "let a = 1\nlet b = Random.int 5\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"bench/fake.ml"
    "let b = Stdlib.Random.float 1.0\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml"
    "let s = Random.State.make [| 1 |]\n"

let test_random_module_paths () =
  (* Aliasing or opening the module is the same violation. *)
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml" "module R = Random\n";
  check_fires ~rule:"determinism-random" ~line:1 ~path:"lib/fake.ml"
    "open Random\nlet x = 1\n"

let test_random_silent () =
  check_silent ~path:"lib/fake.ml" "let b = Dream_util.Rng.int rng 5\n";
  (* Unrelated module with a Random submodule is not Stdlib.Random. *)
  check_silent ~path:"lib/fake.ml" "let b = My.Random.int 5\n" |> ignore

(* ---- determinism-clock ---- *)

let test_clock_fires () =
  check_fires ~rule:"determinism-clock" ~line:1 ~path:"lib/fake.ml" "let t = Sys.time ()\n";
  check_fires ~rule:"determinism-clock" ~line:2 ~path:"test/fake.ml"
    "let a = 0\nlet t = Unix.gettimeofday ()\n";
  check_fires ~rule:"determinism-clock" ~line:1 ~path:"lib/fake.ml" "let t = Unix.time ()\n"

let test_clock_silent () =
  check_silent ~path:"lib/fake.ml" "let t = Clock.now_ms clock\n";
  check_silent ~path:"lib/fake.ml" "let t = Sys.file_exists \"x\"\n"

(* ---- determinism-gc ---- *)

let test_gc_fires () =
  check_fires ~rule:"determinism-gc" ~line:1 ~path:"lib/fake.ml"
    "let s = Gc.quick_stat ()\n";
  check_fires ~rule:"determinism-gc" ~line:2 ~path:"bench/fake.ml"
    "let a = 0\nlet () = Gc.compact ()\n";
  check_fires ~rule:"determinism-gc" ~line:1 ~path:"lib/fake.ml" "module G = Gc\n"

let test_gc_silent () =
  check_silent ~path:"lib/fake.ml" "let r = Gc_stats.read src\n";
  check_silent ~path:"lib/fake.ml" "let r = Dream_obs.Gc_stats.read src\n";
  (* An unrelated module with a Gc submodule is not Stdlib.Gc. *)
  check_silent ~path:"lib/fake.ml" "let s = My.Gc.stat ()\n"

(* ---- float-equality ---- *)

let test_float_equality_fires () =
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml" "let b = x = 1.0\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml" "let b = x <> y *. 2.0\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml"
    "let c = compare x (float_of_int n)\n";
  check_fires ~rule:"float-equality" ~line:1 ~path:"lib/fake.ml"
    "let b = (x : float) = y\n"

let test_float_equality_silent () =
  check_silent ~path:"lib/fake.ml" "let b = x = 1\n";
  (* Orderings are fine; epsilon comparisons are the point. *)
  check_silent ~path:"lib/fake.ml" "let b = x <= 1.0\n";
  check_silent ~path:"lib/fake.ml" "let b = Float.abs (x -. y) < 1e-9\n";
  (* Deliberate exact comparisons in test/ (determinism checks) are policy. *)
  check_silent ~path:"test/fake.ml" "let b = x = 1.0\n"

(* ---- exception-hygiene ---- *)

let test_exception_fires () =
  check_fires ~rule:"exception-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let f () = try g () with _ -> 0\n";
  check_fires ~rule:"exception-hygiene" ~line:2 ~path:"lib/fake.ml"
    "let f () =\n  match g () with x -> x | exception _ -> 0\n"

let test_exception_silent () =
  check_silent ~path:"lib/fake.ml" "let f () = try g () with Not_found -> 0\n";
  check_silent ~path:"lib/fake.ml"
    "let f () = try g () with exn -> log exn; raise exn\n";
  (* Out of scope: the rule is a lib/ policy. *)
  check_silent ~path:"bin/fake.ml" "let f () = try g () with _ -> 0\n"

(* ---- partiality ---- *)

let test_partiality_fires () =
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = List.hd xs\n";
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = List.nth xs 3\n";
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let x = Option.get o\n";
  (* Bare references count too (partial application, eta). *)
  check_fires ~rule:"partiality" ~line:1 ~path:"lib/fake.ml" "let f = List.tl\n"

let test_partiality_silent () =
  check_silent ~path:"lib/fake.ml"
    "let x = match xs with [] -> None | x :: _ -> Some x\n";
  check_silent ~path:"bin/fake.ml" "let x = List.hd xs\n"

(* ---- stdout-hygiene ---- *)

let test_stdout_fires () =
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = print_endline \"hi\"\n";
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = Printf.printf \"%d\" 3\n";
  check_fires ~rule:"stdout-hygiene" ~line:1 ~path:"lib/fake.ml"
    "let () = Format.printf \"%d\" 3\n"

let test_stdout_silent () =
  check_silent ~path:"lib/fake.ml" "let () = Format.fprintf ppf \"%d\" 3\n";
  check_silent ~path:"lib/fake.ml" "let s = Printf.sprintf \"%d\" 3\n";
  check_silent ~path:"bin/fake.ml" "let () = print_endline \"hi\"\n"

(* ---- mli-coverage ---- *)

let with_temp_lib f =
  let dir = Filename.temp_dir "dream_lint" "" in
  let libdir = Filename.concat dir "lib" in
  Sys.mkdir libdir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat libdir e)) (Sys.readdir libdir);
      Sys.rmdir libdir;
      Sys.rmdir dir)
    (fun () -> f libdir)

let write path contents = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

let test_mli_coverage () =
  with_temp_lib (fun libdir ->
      let ml = Filename.concat libdir "a.ml" in
      write ml "let x = 1\n";
      (match Engine.lint_file ~rules:(only "mli-coverage") ml with
      | [ f ] ->
        Alcotest.(check string) "rule id" "mli-coverage" f.Finding.rule;
        Alcotest.(check int) "line" 1 f.Finding.line
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
      write (ml ^ "i") "val x : int\n";
      Alcotest.(check int) "silent with sibling mli" 0
        (List.length (Engine.lint_file ~rules:(only "mli-coverage") ml)))

(* ---- suppression ---- *)

let test_suppression_silences_exactly_one () =
  let src =
    "let a = Random.int 1\nlet b = (Random.int 2 [@lint.allow \"determinism-random\"])\n"
  in
  match lint ~path:"lib/fake.ml" src with
  | [ f ] ->
    Alcotest.(check string) "surviving rule" "determinism-random" f.Finding.rule;
    Alcotest.(check int) "unsuppressed line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_suppression_on_binding () =
  check_silent ~path:"lib/fake.ml"
    "let a = Random.int 1 [@@lint.allow \"determinism-random\"]\n"

let test_file_level_allow () =
  (* A floating allow silences the whole file and owes no finding. *)
  check_silent ~path:"lib/fake.ml"
    "[@@@lint.allow \"determinism-random\"]\nlet a = Random.int 1\nlet b = Random.int 2\n"

let test_suppression_is_per_rule () =
  (* An allow for one rule does not silence another at the same site; the
     clock finding survives and the mismatched allow is itself unused. *)
  match
    lint ~path:"lib/fake.ml" "let t = Sys.time () [@@lint.allow \"partiality\"]\n"
  with
  | fs ->
    Alcotest.(check (list string))
      "clock finding plus unused allow"
      [ "determinism-clock"; "unused-suppression" ]
      (List.sort String.compare (rule_ids fs))

let test_unused_suppression () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow \"determinism-random\"])\n" with
  | [ f ] -> Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_unknown_rule_in_allow () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow \"no-such-rule\"])\n" with
  | [ f ] ->
    Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule;
    Alcotest.(check bool) "names the bad rule" true
      (contains ~sub:"no-such-rule" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_malformed_allow_payload () =
  match lint ~path:"lib/fake.ml" "let a = (5 [@lint.allow 42])\n" with
  | [ f ] -> Alcotest.(check string) "rule id" "unused-suppression" f.Finding.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_unused_check_respects_rule_subset () =
  (* With only determinism-random active, an allow for a rule that did not
     run must not be reported as unused. *)
  check_silent ~path:"lib/fake.ml"
    ~rules:(only "determinism-random")
    "let t = Sys.time () [@@lint.allow \"determinism-clock\"]\n"

(* ---- parse errors ---- *)

let test_parse_error () =
  match lint ~path:"lib/fake.ml" "let = = =\n" with
  | [ f ] ->
    Alcotest.(check string) "rule id" Engine.parse_error_rule f.Finding.rule;
    Alcotest.(check string) "severity" "error" (Finding.severity_to_string f.Finding.severity)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ---- registry ---- *)

let test_registry () =
  Alcotest.(check int) "ten rules" 10 (List.length Rules.all);
  Alcotest.(check int) "unique ids" (List.length Rules.ids)
    (List.length (List.sort_uniq String.compare Rules.ids));
  List.iter
    (fun id ->
      match Rules.find id with
      | Some r -> Alcotest.(check string) "find returns the rule" id r.Rules.id
      | None -> Alcotest.failf "registry lookup failed for %s" id)
    Rules.ids

(* ---- hot-path-alloc (interprocedural) ---- *)

let hot ?(rules = only "hot-path-alloc") sources = Engine.lint_sources ~rules sources

let check_hot_fires ~sub src =
  match hot [ ("lib/fake.ml", src) ] with
  | [ f ] ->
    Alcotest.(check string) "rule id" "hot-path-alloc" f.Finding.rule;
    Alcotest.(check string) "severity" "error"
      (Finding.severity_to_string f.Finding.severity);
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" f.Finding.message sub)
      true
      (contains ~sub f.Finding.message)
  | fs ->
    Alcotest.failf "expected exactly one hot-path-alloc finding, got %d: %s"
      (List.length fs)
      (String.concat "; " (List.map (fun f -> f.Finding.message) fs))

let check_hot_silent src =
  match hot [ ("lib/fake.ml", src) ] with
  | [] -> ()
  | fs -> Alcotest.failf "expected no findings, got: %s" (String.concat "; " (rule_ids fs))

let test_hot_alloc_classes_fire () =
  check_hot_fires ~sub:"tuple construction" "let[@hot] tick () = (1, 2)\n";
  check_hot_fires ~sub:"record construction"
    "type r = { a : int }\nlet[@hot] tick () = { a = 1 }\n";
  (* A cons spine is one list, one finding — not one per cell. *)
  check_hot_fires ~sub:"list construction" "let[@hot] tick () = [ 1; 2; 3 ]\n";
  check_hot_fires ~sub:"array literal" "let[@hot] tick () = [| 1; 2 |]\n";
  (* A constructor's tuple payload is part of the constructor block. *)
  check_hot_fires ~sub:"variant Some" "let[@hot] tick a b = Some (a, b)\n";
  check_hot_fires ~sub:"closure construction"
    "let[@hot] tick xs = let f = fun x -> x + 1 in f (List.length xs)\n";
  check_hot_fires ~sub:"builds a fresh copy" "let[@hot] tick xs ys = xs @ ys\n";
  check_hot_fires ~sub:"boxes its float result" "let[@hot] tick n = float_of_int n\n";
  check_hot_fires ~sub:"allocates format machinery"
    "let[@hot] tick n = Printf.sprintf \"%d\" n\n";
  check_hot_fires ~sub:"List.map allocates its result"
    "let[@hot] tick xs = List.map succ xs\n"

let test_hot_alloc_silent () =
  (* Arithmetic, projections, mutation: no allocation, no finding. *)
  check_hot_silent "let[@hot] tick x = x + 1\n";
  check_hot_silent "let[@hot] tick a i = a.(i) <- a.(i) + 1\n";
  (* Allocation outside the hot set is not this rule's business. *)
  check_hot_silent "let cold () = (1, 2)\n";
  (* Argumentless constructors are immediates. *)
  check_hot_silent "let[@hot] tick () = None\n"

let test_hot_alloc_cross_module_chain () =
  let sources =
    [
      ("lib/a/entry.ml", "let[@hot] tick () = Helper.build ()\n");
      ("lib/a/helper.ml", "let build () = (1, 2)\n");
    ]
  in
  match hot sources with
  | [ f ] ->
    Alcotest.(check string) "finding lands in the callee" "lib/a/helper.ml" f.Finding.file;
    Alcotest.(check bool) "witness chain in message" true
      (contains ~sub:"Entry.tick -> Helper.build" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_hot_alloc_partial_application () =
  check_hot_fires ~sub:"partial application"
    "let add3 a b c = a + b + c\nlet[@hot] tick x = add3 x 1\n"

let test_alloc_allow_suppresses () =
  check_hot_silent
    "let[@hot] tick a b = (a, b) [@alloc.allow \"boxed pair is the public API\"]\n"

let test_alloc_allow_unused () =
  (* An allow on a site the pass never reaches must be cleaned up. *)
  match hot [ ("lib/fake.ml", "let cold () = (1, 2) [@alloc.allow \"stale\"]\n") ] with
  | [ f ] ->
    Alcotest.(check string) "rule id" Engine.unused_suppression_rule f.Finding.rule;
    Alcotest.(check bool) "says it suppresses nothing" true
      (contains ~sub:"suppresses nothing" f.Finding.message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_alloc_allow_malformed () =
  (* No reason string: the allow is rejected and the site still fires. *)
  match hot [ ("lib/fake.ml", "let[@hot] tick a b = (a, b) [@alloc.allow]\n") ] with
  | fs ->
    Alcotest.(check (list string))
      "finding plus malformed allow"
      [ "hot-path-alloc"; Engine.unused_suppression_rule ]
      (List.sort String.compare (rule_ids fs))

(* ---- domain-safety (interprocedural) ---- *)

let domain sources = Engine.lint_sources ~rules:(only "domain-safety") sources

let check_domain_fires ~sub ~path src =
  match domain [ (path, src) ] with
  | [ f ] ->
    Alcotest.(check string) "rule id" "domain-safety" f.Finding.rule;
    Alcotest.(check string) "severity" "warning"
      (Finding.severity_to_string f.Finding.severity);
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" f.Finding.message sub)
      true
      (contains ~sub f.Finding.message)
  | fs -> Alcotest.failf "expected one domain-safety finding, got %d" (List.length fs)

let check_domain_silent ~path src =
  match domain [ (path, src) ] with
  | [] -> ()
  | fs -> Alcotest.failf "expected no findings, got: %s" (String.concat "; " (rule_ids fs))

let test_domain_safety_fires () =
  check_domain_fires ~sub:"ref cell" ~path:"lib/fake.ml" "let counter = ref 0\n";
  check_domain_fires ~sub:"Hashtbl" ~path:"lib/fake.ml" "let cache = Hashtbl.create 16\n";
  check_domain_fires ~sub:"Buffer" ~path:"lib/fake.ml" "let buf = Buffer.create 80\n";
  check_domain_fires ~sub:"array" ~path:"lib/fake.ml" "let scratch = [| 0; 0 |]\n";
  check_domain_fires ~sub:"mutable" ~path:"lib/fake.ml"
    "type t = { mutable n : int }\nlet state = { n = 0 }\n"

let test_domain_safety_silent () =
  check_domain_silent ~path:"lib/fake.ml" "let x = 42\nlet xs = [ 1; 2 ]\n";
  (* Local mutability inside a function is fine; the rule is about
     module-level sharing. *)
  check_domain_silent ~path:"lib/fake.ml"
    "let f () = let c = ref 0 in incr c; !c\n";
  (* The rule is a lib/ policy. *)
  check_domain_silent ~path:"bin/fake.ml" "let cache = Hashtbl.create 16\n"

let test_domain_safety_suppression () =
  check_domain_silent ~path:"lib/fake.ml"
    "let cache = Hashtbl.create 16 [@@lint.allow \"domain-safety\"]\n"

(* ---- baseline ratchet ---- *)

let finding_gen =
  QCheck.Gen.(
    let str = string_size ~gen:printable (int_range 0 20) in
    map
      (fun (rule, file, line, col, err, message) ->
        Finding.v ~rule ~file ~line ~col
          ~severity:(if err then Finding.Error else Finding.Warning)
          message)
      (tup6 str str (int_range 1 10000) (int_range 0 500) bool str))

let arbitrary_finding = QCheck.make ~print:(Format.asprintf "%a" Finding.pp) finding_gen

let finding ~rule ~file = Finding.v ~rule ~file ~line:1 ~col:0 ~severity:Finding.Error "x"

let test_baseline_of_findings () =
  let fs =
    [
      finding ~rule:"a" ~file:"lib/x.ml";
      finding ~rule:"a" ~file:"lib/x.ml";
      finding ~rule:"b" ~file:"lib/y.ml";
    ]
  in
  match Baseline.of_findings fs with
  | [ e1; e2 ] ->
    Alcotest.(check int) "counted" 2 e1.Baseline.b_count;
    Alcotest.(check string) "sorted by rule" "a" e1.Baseline.b_rule;
    Alcotest.(check int) "singleton" 1 e2.Baseline.b_count
  | es -> Alcotest.failf "expected two entries, got %d" (List.length es)

let test_baseline_diff () =
  let baseline =
    Baseline.of_findings
      [ finding ~rule:"a" ~file:"lib/x.ml"; finding ~rule:"b" ~file:"lib/y.ml" ]
  in
  let current =
    Baseline.of_findings
      [ finding ~rule:"a" ~file:"lib/x.ml"; finding ~rule:"a" ~file:"lib/x.ml" ]
  in
  let d = Baseline.diff ~baseline ~current in
  (match d.Baseline.fresh with
  | [ g ] ->
    Alcotest.(check string) "grown key" "a" g.Baseline.d_rule;
    Alcotest.(check int) "baseline count" 1 g.Baseline.d_baseline;
    Alcotest.(check int) "current count" 2 g.Baseline.d_current
  | gs -> Alcotest.failf "expected one fresh delta, got %d" (List.length gs));
  match d.Baseline.improved with
  | [ g ] -> Alcotest.(check string) "vanished key" "b" g.Baseline.d_rule
  | gs -> Alcotest.failf "expected one improved delta, got %d" (List.length gs)

let test_baseline_ratchet_refuses_growth () =
  let old_ = Baseline.of_findings [ finding ~rule:"a" ~file:"lib/x.ml" ] in
  let grown =
    Baseline.of_findings
      [ finding ~rule:"a" ~file:"lib/x.ml"; finding ~rule:"a" ~file:"lib/x.ml" ]
  in
  (match Baseline.update ~old_:(Some old_) ~current:grown with
  | Ok _ -> Alcotest.fail "ratchet accepted a grown baseline"
  | Error msg ->
    Alcotest.(check bool) "error names the key" true (contains ~sub:"lib/x.ml" msg));
  (* Bootstrap from nothing and shrink-in-place are both fine. *)
  (match Baseline.update ~old_:None ~current:grown with
  | Ok [ e ] -> Alcotest.(check int) "bootstrap keeps counts" 2 e.Baseline.b_count
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error e -> Alcotest.failf "bootstrap refused: %s" e);
  match Baseline.update ~old_:(Some grown) ~current:old_ with
  | Ok [ e ] -> Alcotest.(check int) "shrunk" 1 e.Baseline.b_count
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error e -> Alcotest.failf "shrink refused: %s" e

let test_baseline_update_keeps_reasons () =
  let old_ =
    [ { Baseline.b_rule = "a"; b_file = "lib/x.ml"; b_count = 2; b_reason = Some "parked" } ]
  in
  let current = Baseline.of_findings [ finding ~rule:"a" ~file:"lib/x.ml" ] in
  match Baseline.update ~old_:(Some old_) ~current with
  | Ok [ e ] ->
    Alcotest.(check int) "count shrunk" 1 e.Baseline.b_count;
    Alcotest.(check (option string)) "reason carried" (Some "parked") e.Baseline.b_reason
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error e -> Alcotest.failf "update refused: %s" e

let test_baseline_reason_round_trip () =
  let b =
    [
      { Baseline.b_rule = "a"; b_file = "lib/x.ml"; b_count = 3; b_reason = Some "parked" };
      { Baseline.b_rule = "b"; b_file = "lib/y.ml"; b_count = 1; b_reason = None };
    ]
  in
  match Baseline.of_string (Baseline.to_string b) with
  | Ok b' -> Alcotest.(check bool) "identical" true (b = b')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let prop_baseline_json_round_trip =
  QCheck.Test.make ~name:"baseline JSON round-trips through Obs.Json" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) arbitrary_finding)
    (fun fs ->
      let b = Baseline.of_findings fs in
      match Baseline.of_string (Baseline.to_string b) with
      | Ok b' -> b = b'
      | Error _ -> false)

let test_debt_snapshot () =
  let fs =
    [
      finding ~rule:"hot-path-alloc" ~file:"lib/x.ml";
      finding ~rule:"hot-path-alloc" ~file:"lib/y.ml";
      finding ~rule:"domain-safety" ~file:"lib/x.ml";
    ]
  in
  let snap = Baseline.debt_snapshot fs in
  Alcotest.(check string) "figure" "lint-debt" snap.Dream_obs.Bench_snapshot.figure;
  let value name =
    match
      List.find_opt
        (fun (m : Dream_obs.Bench_snapshot.metric) -> m.Dream_obs.Bench_snapshot.m_name = name)
        snap.Dream_obs.Bench_snapshot.metrics
    with
    | Some m -> m.Dream_obs.Bench_snapshot.m_value
    | None -> Alcotest.failf "missing metric %s" name
  in
  Alcotest.(check (float 0.0)) "per-rule count" 2.0 (value "debt_hot-path-alloc");
  Alcotest.(check (float 0.0)) "total" 3.0 (value "debt_total")

(* ---- whole-run determinism ---- *)

let test_lint_sources_deterministic () =
  let sources =
    [
      ("lib/a/entry.ml", "let[@hot] tick () = Helper.build ()\nlet cache = Hashtbl.create 4\n");
      ("lib/a/helper.ml", "let build () = (1, 2)\nlet scratch = [| 0 |]\n");
    ]
  in
  let render fs = Json.to_string (Report.to_json fs) in
  let r1 = render (Engine.lint_sources sources) in
  let r2 = render (Engine.lint_sources (List.rev sources)) in
  Alcotest.(check string) "same report bytes regardless of input order" r1 r2;
  let r3 = render (Engine.lint_sources sources) in
  Alcotest.(check string) "byte-identical across runs" r1 r3

(* ---- tree walk ---- *)

let test_ml_files_under_skips_and_sorts () =
  let dir = Filename.temp_dir "dream_lint_walk" "" in
  let mkdir d = Sys.mkdir d 0o755 in
  let touch parts contents =
    write (List.fold_left Filename.concat dir parts) contents
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> rm dir)
    (fun () ->
      mkdir (Filename.concat dir "sub");
      mkdir (Filename.concat dir "_build");
      mkdir (Filename.concat dir "_opam");
      mkdir (Filename.concat dir ".git");
      touch [ "z.ml" ] "let z = 1\n";
      touch [ "a.ml" ] "let a = 1\n";
      touch [ "sub"; "b.ml" ] "let b = 1\n";
      touch [ "_build"; "x.ml" ] "let x = 1\n";
      touch [ "_opam"; "y.ml" ] "let y = 1\n";
      touch [ ".git"; "h.ml" ] "let h = 1\n";
      touch [ "notes.txt" ] "not ocaml\n";
      let expected =
        [ Filename.concat dir "a.ml";
          Filename.concat (Filename.concat dir "sub") "b.ml";
          Filename.concat dir "z.ml" ]
      in
      Alcotest.(check (list string)) "sorted, skips _build/_opam/dot-dirs" expected
        (Engine.ml_files_under dir);
      Alcotest.(check (list string)) "stable across runs" expected
        (Engine.ml_files_under dir);
      Alcotest.(check (list string)) "a lone .ml path yields itself"
        [ Filename.concat dir "a.ml" ]
        (Engine.ml_files_under (Filename.concat dir "a.ml")))

(* ---- JSON report round trip ---- *)

let test_report_round_trip () =
  let findings =
    lint ~path:"lib/fake.ml" "let a = Random.int 1\nlet t = Sys.time ()\nlet x = List.hd l\n"
  in
  Alcotest.(check int) "three findings" 3 (List.length findings);
  match Report.of_json_string (Json.to_string (Report.to_json findings)) with
  | Ok findings' ->
    Alcotest.(check bool) "identical after round trip" true (findings = findings')
  | Error e -> Alcotest.failf "report reparse failed: %s" e

let prop_finding_json_round_trip =
  QCheck.Test.make ~name:"finding JSON round-trips through Obs.Json" ~count:200
    arbitrary_finding (fun f ->
      match Finding.of_json (Finding.to_json f) with
      | Ok f' -> f = f'
      | Error _ -> false)

let prop_report_json_round_trip =
  QCheck.Test.make ~name:"report JSON round-trips through Obs.Json" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 8) arbitrary_finding)
    (fun fs ->
      match Report.of_json_string (Json.to_string (Report.to_json fs)) with
      | Ok fs' -> fs = fs'
      | Error _ -> false)

let () =
  Alcotest.run "dream.lint"
    [
      ( "determinism",
        [
          Alcotest.test_case "Random fires" `Quick test_random_fires;
          Alcotest.test_case "Random via alias/open fires" `Quick test_random_module_paths;
          Alcotest.test_case "Rng stays silent" `Quick test_random_silent;
          Alcotest.test_case "clock reads fire" `Quick test_clock_fires;
          Alcotest.test_case "Clock stays silent" `Quick test_clock_silent;
          Alcotest.test_case "Gc reads fire" `Quick test_gc_fires;
          Alcotest.test_case "Gc_stats stays silent" `Quick test_gc_silent;
        ] );
      ( "float-equality",
        [
          Alcotest.test_case "fires on float operands" `Quick test_float_equality_fires;
          Alcotest.test_case "silent on ints/orderings/tests" `Quick
            test_float_equality_silent;
        ] );
      ( "exception-hygiene",
        [
          Alcotest.test_case "catch-all fires" `Quick test_exception_fires;
          Alcotest.test_case "specific handlers silent" `Quick test_exception_silent;
        ] );
      ( "partiality",
        [
          Alcotest.test_case "partial accessors fire" `Quick test_partiality_fires;
          Alcotest.test_case "total code silent" `Quick test_partiality_silent;
        ] );
      ( "stdout-hygiene",
        [
          Alcotest.test_case "implicit stdout fires" `Quick test_stdout_fires;
          Alcotest.test_case "explicit formatter silent" `Quick test_stdout_silent;
        ] );
      ( "mli-coverage",
        [ Alcotest.test_case "missing mli fires, sibling silences" `Quick test_mli_coverage ] );
      ( "suppression",
        [
          Alcotest.test_case "allow silences exactly one" `Quick
            test_suppression_silences_exactly_one;
          Alcotest.test_case "allow on a binding" `Quick test_suppression_on_binding;
          Alcotest.test_case "file-level allow" `Quick test_file_level_allow;
          Alcotest.test_case "allow is per rule" `Quick test_suppression_is_per_rule;
          Alcotest.test_case "unused allow is a finding" `Quick test_unused_suppression;
          Alcotest.test_case "unknown rule in allow" `Quick test_unknown_rule_in_allow;
          Alcotest.test_case "malformed payload" `Quick test_malformed_allow_payload;
          Alcotest.test_case "unused check respects --rules" `Quick
            test_unused_check_respects_rule_subset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "hot-path-alloc",
        [
          Alcotest.test_case "allocation classes fire" `Quick test_hot_alloc_classes_fire;
          Alcotest.test_case "non-allocating hot code silent" `Quick test_hot_alloc_silent;
          Alcotest.test_case "cross-module witness chain" `Quick
            test_hot_alloc_cross_module_chain;
          Alcotest.test_case "partial application" `Quick test_hot_alloc_partial_application;
          Alcotest.test_case "alloc.allow suppresses" `Quick test_alloc_allow_suppresses;
          Alcotest.test_case "unused alloc.allow is a finding" `Quick test_alloc_allow_unused;
          Alcotest.test_case "malformed alloc.allow" `Quick test_alloc_allow_malformed;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "toplevel mutable state fires" `Quick test_domain_safety_fires;
          Alcotest.test_case "immutable/local/out-of-scope silent" `Quick
            test_domain_safety_silent;
          Alcotest.test_case "lint.allow suppresses" `Quick test_domain_safety_suppression;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "of_findings counts per key" `Quick test_baseline_of_findings;
          Alcotest.test_case "diff splits fresh/improved" `Quick test_baseline_diff;
          Alcotest.test_case "ratchet refuses growth" `Quick
            test_baseline_ratchet_refuses_growth;
          Alcotest.test_case "update keeps reasons" `Quick test_baseline_update_keeps_reasons;
          Alcotest.test_case "reasons round-trip" `Quick test_baseline_reason_round_trip;
          QCheck_alcotest.to_alcotest prop_baseline_json_round_trip;
          Alcotest.test_case "debt snapshot" `Quick test_debt_snapshot;
        ] );
      ( "determinism-of-output",
        [
          Alcotest.test_case "lint_sources is order-insensitive and stable" `Quick
            test_lint_sources_deterministic;
        ] );
      ( "tree-walk",
        [
          Alcotest.test_case "skips _build/_opam/dot-dirs, sorted" `Quick
            test_ml_files_under_skips_and_sorts;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON round trip" `Quick test_report_round_trip;
          QCheck_alcotest.to_alcotest prop_finding_json_round_trip;
          QCheck_alcotest.to_alcotest prop_report_json_round_trip;
        ] );
    ]
