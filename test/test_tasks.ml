(* Tests for dream.tasks' task-independent machinery: counters, the monitor
   configuration, divide-and-merge (Algorithm 2), the multi-switch cover,
   and the partition invariant under random drills. *)

module Rng = Dream_util.Rng
module Prefix = Dream_prefix.Prefix
module Switch_id = Dream_traffic.Switch_id
module Topology = Dream_traffic.Topology
module Flow = Dream_traffic.Flow
module Aggregate = Dream_traffic.Aggregate
module Epoch_data = Dream_traffic.Epoch_data
module Task_spec = Dream_tasks.Task_spec
module Counter = Dream_tasks.Counter
module Monitor = Dream_tasks.Monitor
module Score = Dream_tasks.Score

(* A 4-bit universe: filter 10.0.0.0/28, leaves at /32.  Two switches split
   it at /29 (0*** on one switch, 1*** on the other). *)
let filter = Prefix.of_string "10.0.0.0/28"

let leaf bits = Prefix.make ~bits:(Prefix.bits filter lor bits) ~length:32

let sub bits length = Prefix.make ~bits:(Prefix.bits filter lor (bits lsl (32 - length))) ~length

let mk_topology () =
  Topology.create (Rng.create 1) ~filter ~num_switches:2 ~switches_per_task:2

let spec ?(kind = Task_spec.Heavy_hitter) () =
  Task_spec.make ~kind ~filter ~leaf_length:32 ~threshold:10.0 ()

let mk_monitor ?kind () = Monitor.create ~spec:(spec ?kind ()) ~topology:(mk_topology ())

(* The worked example: volumes per active leaf, threshold 10.
   HHs: 0000 (12), 0111 (11).  HHHs: 0000, 010*, 0111. *)
let example_flows =
  [
    Flow.make ~addr:(Prefix.bits (leaf 0b0000)) ~volume:12.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b0001)) ~volume:2.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b0100)) ~volume:6.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b0101)) ~volume:7.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b0111)) ~volume:11.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b1010)) ~volume:3.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b1100)) ~volume:4.0;
    Flow.make ~addr:(Prefix.bits (leaf 0b1111)) ~volume:1.0;
  ]

let example_epoch ~epoch =
  let topology = mk_topology () in
  Epoch_data.of_flows ~epoch
    (List.filter_map
       (fun (f : Flow.t) ->
         match Topology.switch_of_address topology f.Flow.addr with
         | Some sw -> Some (sw, [ f ])
         | None -> None)
       example_flows)

(* Drive one measurement epoch by hand: read desired rules straight off the
   aggregates, score, and configure. *)
let step monitor ~allocations ~epoch =
  let data = example_epoch ~epoch in
  let readings =
    Switch_id.Set.fold
      (fun sw acc ->
        let agg = Epoch_data.switch_view data sw in
        (sw, List.map (fun q -> (q, Aggregate.volume agg q)) (Monitor.rules_for monitor sw)) :: acc)
      (Monitor.switches monitor) []
  in
  Monitor.ingest monitor readings;
  Score.apply monitor;
  Monitor.configure monitor ~allocations

let allocations_of monitor n =
  Switch_id.Set.fold
    (fun sw acc -> Switch_id.Map.add sw n acc)
    (Monitor.switches monitor) Switch_id.Map.empty

(* ---- Counter ---- *)

let test_counter_basics () =
  let c = Counter.create ~prefix:(sub 0b01 30) ~switches:(Switch_id.set_of_list [ 0 ]) ~cd_history:0.8 in
  Alcotest.(check bool) "fresh" true c.Counter.fresh;
  Alcotest.(check int) "wildcards to /32" 2 (Counter.wildcards c ~leaf_length:32);
  Alcotest.(check bool) "not exact" false (Counter.is_exact c ~leaf_length:32);
  Counter.set_volumes c (Switch_id.Map.singleton 0 5.0);
  Alcotest.(check bool) "no longer fresh" false c.Counter.fresh;
  Alcotest.(check (float 1e-9)) "total" 5.0 c.Counter.total;
  Alcotest.(check (float 1e-9)) "volume on switch" 5.0 (Counter.volume_on c 0);
  Alcotest.(check (float 1e-9)) "volume elsewhere" 0.0 (Counter.volume_on c 1)

let test_counter_cd_mean () =
  let c = Counter.create ~prefix:(leaf 0) ~switches:Switch_id.Set.empty ~cd_history:0.5 in
  Counter.set_volumes c (Switch_id.Map.singleton 0 10.0);
  Alcotest.(check (float 1e-9)) "no history: deviation 0" 0.0 (Counter.cd_deviation c);
  Counter.update_mean c;
  Counter.set_volumes c (Switch_id.Map.singleton 0 4.0);
  Alcotest.(check (float 1e-9)) "deviation vs mean 10" 6.0 (Counter.cd_deviation c)

(* ---- Monitor basics ---- *)

let test_monitor_initial () =
  let m = mk_monitor () in
  Alcotest.(check int) "one counter" 1 (Monitor.num_counters m);
  Alcotest.(check bool) "monitors the filter" true (Monitor.find m filter <> None);
  Alcotest.(check int) "usage on each switch" 1 (Monitor.usage m 0);
  Alcotest.(check bool) "partition" true (Monitor.is_partition m)

let test_monitor_drill_finds_heavy_leaves () =
  let m = mk_monitor () in
  let allocations = allocations_of m 16 in
  for epoch = 0 to 5 do
    step m ~allocations ~epoch
  done;
  (* After a few epochs the two heavy leaves must be monitored exactly. *)
  Alcotest.(check bool) "0000 monitored" true (Monitor.find m (leaf 0b0000) <> None);
  Alcotest.(check bool) "0111 monitored" true (Monitor.find m (leaf 0b0111) <> None);
  Alcotest.(check bool) "partition maintained" true (Monitor.is_partition m)

let test_monitor_respects_allocation () =
  let m = mk_monitor () in
  let allocations = allocations_of m 3 in
  for epoch = 0 to 7 do
    step m ~allocations ~epoch;
    Switch_id.Set.iter
      (fun sw ->
        Alcotest.(check bool)
          (Printf.sprintf "usage <= alloc on %d (epoch %d)" sw epoch)
          true
          (Monitor.usage m sw <= 3))
      (Monitor.switches m)
  done

let test_monitor_shrinks_on_reduced_allocation () =
  let m = mk_monitor () in
  let big = allocations_of m 16 in
  for epoch = 0 to 4 do
    step m ~allocations:big ~epoch
  done;
  let before = Monitor.num_counters m in
  Alcotest.(check bool) "expanded" true (before > 4);
  let small = allocations_of m 2 in
  step m ~allocations:small ~epoch:5;
  Switch_id.Set.iter
    (fun sw -> Alcotest.(check bool) "fits in 2" true (Monitor.usage m sw <= 2))
    (Monitor.switches m);
  Alcotest.(check bool) "partition after shrink" true (Monitor.is_partition m)

let test_monitor_zero_allocation_uninstalls () =
  let m = mk_monitor () in
  let allocations =
    Switch_id.Map.add 0 4 (Switch_id.Map.add 1 0 Switch_id.Map.empty)
  in
  step m ~allocations ~epoch:0;
  Alcotest.(check (list string)) "no rules on switch 1" []
    (List.map Prefix.to_string (Monitor.rules_for m 1));
  Alcotest.(check bool) "switch 1 inactive" false (Switch_id.Set.mem 1 (Monitor.active m));
  Alcotest.(check bool) "switch 0 active" true (Switch_id.Set.mem 0 (Monitor.active m))

let test_monitor_bottlenecked () =
  let m = mk_monitor () in
  let allocations = allocations_of m 1 in
  step m ~allocations ~epoch:0;
  (* With one counter per switch and the filter spanning both switches,
     both switches are saturated. *)
  Alcotest.(check int) "both bottlenecked" 2
    (Switch_id.Set.cardinal (Monitor.bottlenecked m ~allocations));
  let loose = allocations_of m 100 in
  Alcotest.(check int) "none bottlenecked under loose allocations" 0
    (Switch_id.Set.cardinal (Monitor.bottlenecked m ~allocations:loose))

let test_monitor_drill_direction () =
  (* The drill goes toward the heavy side: with a modest budget the heavy
     leaves get exact counters while the light side stays coarse. *)
  let m = mk_monitor () in
  let allocations = allocations_of m 6 in
  for epoch = 0 to 9 do
    step m ~allocations ~epoch
  done;
  Alcotest.(check bool) "heavy leaf resolved" true (Monitor.find m (leaf 0b0000) <> None);
  Alcotest.(check bool) "light leaf 1111 not resolved" true (Monitor.find m (leaf 0b1111) = None)

(* ---- Accuracy and Report types ---- *)

module Accuracy = Dream_tasks.Accuracy
module Report = Dream_tasks.Report

let test_accuracy_overall () =
  let locals = Switch_id.Map.add 0 0.3 (Switch_id.Map.add 1 0.9 Switch_id.Map.empty) in
  let a = { Accuracy.global = 0.5; locals } in
  Alcotest.(check (float 1e-9)) "overall takes max" 0.5 (Accuracy.overall a 0);
  Alcotest.(check (float 1e-9)) "local can exceed global" 0.9 (Accuracy.overall a 1);
  Alcotest.(check (float 1e-9)) "missing local falls back to global" 0.5 (Accuracy.local a 7);
  Alcotest.(check (float 1e-9)) "clamp low" 0.0 (Accuracy.clamp (-0.2));
  Alcotest.(check (float 1e-9)) "clamp high" 1.0 (Accuracy.clamp 1.7)

let test_accuracy_perfect () =
  let a = Accuracy.perfect ~switches:(Switch_id.set_of_list [ 0; 1 ]) in
  Alcotest.(check (float 1e-9)) "global 1" 1.0 a.Accuracy.global;
  Alcotest.(check (float 1e-9)) "locals 1" 1.0 (Accuracy.local a 0)

let test_report_helpers () =
  let report =
    {
      Report.kind = Task_spec.Heavy_hitter;
      epoch = 3;
      items =
        [
          { Report.prefix = leaf 0b0000; magnitude = 12.0 };
          { Report.prefix = leaf 0b0111; magnitude = 11.0 };
        ];
    }
  in
  Alcotest.(check int) "size" 2 (Report.size report);
  Alcotest.(check int) "prefix set" 2 (Prefix.Set.cardinal (Report.prefixes report));
  (* pp must render without raising. *)
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Report.pp report) > 0)

(* ---- Wider topologies ---- *)

let test_monitor_eight_switches () =
  (* A /28 filter split over 8 switches (subfilters /31): the partition and
     budgets must hold through drills with uneven allocations. *)
  let topology =
    Topology.create (Rng.create 3)
      ~filter:(Prefix.of_string "10.0.0.0/28")
      ~num_switches:8 ~switches_per_task:8
  in
  let spec = Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:32 ~threshold:10.0 () in
  let m = Monitor.create ~spec ~topology in
  let allocations =
    List.fold_left
      (fun acc sw -> Switch_id.Map.add sw (1 + (sw mod 3)) acc)
      Switch_id.Map.empty [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  for epoch = 0 to 6 do
    let data =
      Epoch_data.of_flows ~epoch
        (List.filter_map
           (fun (f : Flow.t) ->
             match Topology.switch_of_address topology f.Flow.addr with
             | Some sw -> Some (sw, [ f ])
             | None -> None)
           example_flows)
    in
    let readings =
      Switch_id.Set.fold
        (fun sw acc ->
          let agg = Epoch_data.switch_view data sw in
          (sw, List.map (fun q -> (q, Aggregate.volume agg q)) (Monitor.rules_for m sw)) :: acc)
        (Monitor.switches m) []
    in
    Monitor.ingest m readings;
    Score.apply m;
    Monitor.configure m ~allocations;
    Alcotest.(check bool) "partition" true (Monitor.is_partition m);
    Switch_id.Map.iter
      (fun sw alloc ->
        Alcotest.(check bool)
          (Printf.sprintf "budget on %d" sw)
          true
          (Monitor.usage m sw <= alloc))
      allocations
  done

(* ---- Cover ---- *)

let test_cover_empty_set () =
  let m = mk_monitor () in
  match Monitor.Cover.solve m ~exclude:None Switch_id.Set.empty with
  | Some sol ->
    Alcotest.(check int) "no ancestors" 0 (List.length sol.Monitor.Cover.ancestors);
    Alcotest.(check (float 1e-9)) "zero cost" 0.0 sol.Monitor.Cover.cost
  | None -> Alcotest.fail "empty set must be coverable"

let test_cover_single_counter_uncoverable () =
  let m = mk_monitor () in
  (* Only the filter counter exists: nothing can merge, so no cover. *)
  Alcotest.(check bool) "uncoverable" true
    (Monitor.Cover.solve m ~exclude:None (Switch_id.Set.singleton 0) = None)

let test_cover_finds_mergeable_ancestor () =
  let m = mk_monitor () in
  let allocations = allocations_of m 8 in
  for epoch = 0 to 4 do
    step m ~allocations ~epoch
  done;
  (* Both switches have multiple counters now; a cover for either switch
     must exist and actually free an entry there. *)
  Switch_id.Set.iter
    (fun sw ->
      if Monitor.usage m sw >= 2 then begin
        match Monitor.Cover.solve m ~exclude:None (Switch_id.Set.singleton sw) with
        | Some sol ->
          Alcotest.(check bool) "non-empty" true (sol.Monitor.Cover.ancestors <> []);
          List.iter
            (fun anc ->
              Alcotest.(check bool) "ancestor within filter" true (Prefix.covers filter anc))
            sol.Monitor.Cover.ancestors
        | None -> Alcotest.fail "expected a cover"
      end)
    (Monitor.switches m)

let test_cover_multi_switch () =
  (* Cover a two-switch overload set: applying the merges must free at
     least one entry on each requested switch. *)
  let m = mk_monitor () in
  let allocations = allocations_of m 8 in
  for epoch = 0 to 4 do
    step m ~allocations ~epoch
  done;
  let f = Switch_id.set_of_list [ 0; 1 ] in
  if Monitor.usage m 0 >= 2 && Monitor.usage m 1 >= 2 then begin
    let before0 = Monitor.usage m 0 and before1 = Monitor.usage m 1 in
    match Monitor.Cover.solve m ~exclude:None f with
    | Some sol ->
      (* Apply the merges by configuring with allocations one below the
         current usage on both switches. *)
      Alcotest.(check bool) "positive cost for real counters" true (sol.Monitor.Cover.cost >= 0.0);
      let tight =
        Switch_id.Map.add 0 (before0 - 1) (Switch_id.Map.add 1 (before1 - 1) Switch_id.Map.empty)
      in
      Monitor.configure m ~allocations:tight;
      Alcotest.(check bool) "freed on 0" true (Monitor.usage m 0 <= before0 - 1);
      Alcotest.(check bool) "freed on 1" true (Monitor.usage m 1 <= before1 - 1);
      Alcotest.(check bool) "still a partition" true (Monitor.is_partition m)
    | None -> Alcotest.fail "expected a multi-switch cover"
  end

(* ---- Partition invariant under random allocation schedules ---- *)

let prop_partition_under_random_allocations =
  QCheck.Test.make ~name:"partition + budgets hold under random allocation schedules" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 12))
    (fun allocation_schedule ->
      let m = mk_monitor () in
      let rng = Rng.create 0x5eed in
      List.for_all
        (fun n ->
          let allocations = allocations_of m n in
          let epoch = Rng.int rng 1000 in
          step m ~allocations ~epoch;
          Monitor.is_partition m
          && Switch_id.Set.for_all
               (fun sw -> Monitor.usage m sw <= n)
               (Monitor.switches m))
        allocation_schedule)

(* ---- Score ---- *)

let test_score_hh () =
  let s = spec () in
  let c = Counter.create ~prefix:(sub 0b01 30) ~switches:Switch_id.Set.empty ~cd_history:0.8 in
  Counter.set_volumes c (Switch_id.Map.singleton 0 30.0);
  (* volume 30 over (2 wildcards + 1). *)
  Alcotest.(check (float 1e-9)) "volume / (wildcards+1)" 10.0 (Score.of_counter s c);
  Counter.set_volumes c (Switch_id.Map.singleton 0 9.0);
  Alcotest.(check (float 1e-9)) "sub-threshold scores zero" 0.0 (Score.of_counter s c)

let test_score_hhh () =
  let s = spec ~kind:Task_spec.Hierarchical_heavy_hitter () in
  let c = Counter.create ~prefix:(sub 0b01 30) ~switches:Switch_id.Set.empty ~cd_history:0.8 in
  Counter.set_volumes c (Switch_id.Map.singleton 0 30.0);
  Alcotest.(check (float 1e-9)) "raw volume" 30.0 (Score.of_counter s c)

let test_score_cd () =
  let s = spec ~kind:Task_spec.Change_detection () in
  let c = Counter.create ~prefix:(sub 0b01 30) ~switches:Switch_id.Set.empty ~cd_history:0.8 in
  Counter.set_volumes c (Switch_id.Map.singleton 0 30.0);
  Counter.update_mean c;
  Counter.set_volumes c (Switch_id.Map.singleton 0 0.0);
  (* deviation 30 over 3; CD scores sub-threshold deviations too (floored
     only below threshold/8). *)
  Alcotest.(check (float 1e-9)) "deviation / (wildcards+1)" 10.0 (Score.of_counter s c);
  Counter.set_volumes c (Switch_id.Map.singleton 0 26.0);
  Alcotest.(check bool) "sub-threshold deviation still scores" true (Score.of_counter s c > 0.0);
  Counter.set_volumes c (Switch_id.Map.singleton 0 29.5);
  Alcotest.(check (float 1e-9)) "dead-calm scores zero" 0.0 (Score.of_counter s c)

let () =
  Alcotest.run "dream.tasks"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "cd mean" `Quick test_counter_cd_mean;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "initial state" `Quick test_monitor_initial;
          Alcotest.test_case "drill finds heavy leaves" `Quick test_monitor_drill_finds_heavy_leaves;
          Alcotest.test_case "respects allocation" `Quick test_monitor_respects_allocation;
          Alcotest.test_case "shrinks on reduced allocation" `Quick
            test_monitor_shrinks_on_reduced_allocation;
          Alcotest.test_case "zero allocation uninstalls" `Quick
            test_monitor_zero_allocation_uninstalls;
          Alcotest.test_case "bottleneck detection" `Quick test_monitor_bottlenecked;
          Alcotest.test_case "drill direction" `Quick test_monitor_drill_direction;
          QCheck_alcotest.to_alcotest prop_partition_under_random_allocations;
        ] );
      ( "cover",
        [
          Alcotest.test_case "empty set" `Quick test_cover_empty_set;
          Alcotest.test_case "single counter uncoverable" `Quick
            test_cover_single_counter_uncoverable;
          Alcotest.test_case "finds mergeable ancestor" `Quick test_cover_finds_mergeable_ancestor;
          Alcotest.test_case "multi-switch cover" `Quick test_cover_multi_switch;
        ] );
      ( "task-spec",
        [
          Alcotest.test_case "priority translation" `Quick (fun () ->
              Alcotest.(check (float 1e-9)) "normal is the default bound" 0.8
                (Task_spec.bound_of_priority Task_spec.Normal);
              Alcotest.(check bool) "critical above high" true
                (Task_spec.bound_of_priority Task_spec.Critical
                > Task_spec.bound_of_priority Task_spec.High);
              Alcotest.(check bool) "background dropped first" true
                (Task_spec.drop_priority_of Task_spec.Background
                > Task_spec.drop_priority_of Task_spec.Critical));
          Alcotest.test_case "accuracy metric per kind" `Quick (fun () ->
              let m k = Task_spec.accuracy_metric (spec ~kind:k ()) in
              Alcotest.(check bool) "HH recall" true (m Task_spec.Heavy_hitter = `Recall);
              Alcotest.(check bool) "HHH precision" true
                (m Task_spec.Hierarchical_heavy_hitter = `Precision);
              Alcotest.(check bool) "CD recall" true (m Task_spec.Change_detection = `Recall));
          Alcotest.test_case "spec validation" `Quick (fun () ->
              Alcotest.(check bool) "bad threshold" true
                (try
                   ignore (Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~threshold:0.0 ());
                   false
                 with Invalid_argument _ -> true);
              Alcotest.(check bool) "bad leaf length" true
                (try
                   ignore
                     (Task_spec.make ~kind:Task_spec.Heavy_hitter ~filter ~leaf_length:20
                        ~threshold:1.0 ());
                   false
                 with Invalid_argument _ -> true));
        ] );
      ( "accuracy-report",
        [
          Alcotest.test_case "overall accuracy" `Quick test_accuracy_overall;
          Alcotest.test_case "perfect" `Quick test_accuracy_perfect;
          Alcotest.test_case "report helpers" `Quick test_report_helpers;
          Alcotest.test_case "eight-switch monitor" `Quick test_monitor_eight_switches;
        ] );
      ( "query",
        [
          Alcotest.test_case "builder happy path" `Quick (fun () ->
              let module Query = Dream_tasks.Query in
              match
                Query.(
                  heavy_hitters ~over:"10.0.0.0/8"
                  |> exceeding_mb 16.0
                  |> with_accuracy 0.9
                  |> drill_to 24
                  |> to_spec)
              with
              | Ok spec ->
                Alcotest.(check bool) "kind" true (spec.Task_spec.kind = Task_spec.Heavy_hitter);
                Alcotest.(check (float 1e-9)) "threshold" 16.0 spec.Task_spec.threshold;
                Alcotest.(check (float 1e-9)) "bound" 0.9 spec.Task_spec.accuracy_bound;
                Alcotest.(check int) "leaf" 24 spec.Task_spec.leaf_length
              | Error msg -> Alcotest.fail msg);
          Alcotest.test_case "priority sets bound and drop order" `Quick (fun () ->
              let module Query = Dream_tasks.Query in
              match
                Query.(changes ~over:"172.16.0.0/12" |> with_priority Task_spec.High |> to_spec)
              with
              | Ok spec ->
                Alcotest.(check (float 1e-9)) "bound from priority" 0.9
                  spec.Task_spec.accuracy_bound;
                Alcotest.(check int) "drop priority" (Task_spec.drop_priority_of Task_spec.High)
                  spec.Task_spec.drop_priority
              | Error msg -> Alcotest.fail msg);
          Alcotest.test_case "builder errors" `Quick (fun () ->
              let module Query = Dream_tasks.Query in
              let is_err q = Result.is_error (Query.to_spec q) in
              Alcotest.(check bool) "bad prefix" true
                (is_err Query.(heavy_hitters ~over:"nonsense"));
              Alcotest.(check bool) "bad threshold" true
                (is_err Query.(heavy_hitters ~over:"10.0.0.0/8" |> exceeding_mb (-1.0)));
              Alcotest.(check bool) "bad accuracy" true
                (is_err Query.(heavy_hitters ~over:"10.0.0.0/8" |> with_accuracy 1.5));
              Alcotest.(check bool) "drill above filter" true
                (is_err Query.(heavy_hitters ~over:"10.0.0.0/8" |> drill_to 8)));
        ] );
      ( "score",
        [
          Alcotest.test_case "hh" `Quick test_score_hh;
          Alcotest.test_case "hhh" `Quick test_score_hhh;
          Alcotest.test_case "cd" `Quick test_score_cd;
        ] );
    ]
